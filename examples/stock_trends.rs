//! Dynamic versus static sharing on a diverse stock workload (the setting
//! of Figs. 12–13): queries with different windows, aggregates and
//! *query-specific predicates* on the shared `Tick+` sub-pattern. Static
//! always-share plans pay heavy event-level-snapshot maintenance; HAMLET's
//! per-burst decisions share only when it helps.
//!
//! Run with: `cargo run --release --example stock_trends`

use hamlet::prelude::*;
use hamlet_stream::stock;
use std::time::Instant;

fn run(
    policy: SharingPolicy,
    reg: &std::sync::Arc<TypeRegistry>,
    queries: &[Query],
    events: &[Event],
) -> (std::time::Duration, u64, u64, usize, Vec<WindowResult>) {
    let mut eng = HamletEngine::new(
        reg.clone(),
        queries.to_vec(),
        EngineConfig {
            policy,
            ..EngineConfig::default()
        },
    )
    .expect("example setup is valid");
    let t0 = Instant::now();
    let mut results = Vec::new();
    for e in events {
        results.extend(eng.process(e));
    }
    results.extend(eng.flush());
    let dt = t0.elapsed();
    let stats = eng.stats();
    (
        dt,
        stats.runs.snapshots(),
        stats.runs.shared_bursts,
        eng.peak_memory(),
        results,
    )
}

fn main() {
    let reg = stock::registry();
    let cfg = GenConfig {
        events_per_min: 4_500,
        minutes: 4,
        mean_burst: 120.0, // the paper's stock bursts average ~120 events
        num_groups: 32,
        group_skew: 0.0,
        seed: 13,
        max_lateness: 0,
    };
    let events = stock::generate(&reg, &cfg);
    let queries = stock::workload_diverse(&reg, 30, 99);
    println!(
        "stream: {} events, workload: {} diverse queries (windows 5-20 min, \
         COUNT/AVG/MAX/SUM, per-query predicates)",
        events.len(),
        queries.len()
    );

    let mut table = Vec::new();
    let mut outputs = Vec::new();
    for (name, policy) in [
        ("dynamic (HAMLET)", SharingPolicy::Dynamic),
        ("static always-share", SharingPolicy::AlwaysShare),
        ("never share (GRETA)", SharingPolicy::NeverShare),
    ] {
        let (dt, snaps, shared_bursts, mem, results) = run(policy, &reg, &queries, &events);
        table.push((name, dt, snaps, shared_bursts, mem));
        outputs.push(results);
    }

    println!(
        "\n{:<22} {:>12} {:>12} {:>10} {:>14} {:>12}",
        "policy", "time", "events/s", "snapshots", "shared bursts", "peak mem"
    );
    for (name, dt, snaps, bursts, mem) in &table {
        println!(
            "{:<22} {:>12?} {:>12.0} {:>10} {:>14} {:>12}",
            name,
            dt,
            events.len() as f64 / dt.as_secs_f64(),
            snaps,
            bursts,
            mem
        );
    }

    // All policies agree on the aggregates.
    let norm = |rs: &Vec<WindowResult>| {
        let mut v: Vec<String> = rs
            .iter()
            .filter(|r| !matches!(r.value, AggValue::Count(0) | AggValue::Null))
            .map(|r| {
                format!(
                    "{:?}|{}|{}|{:?}",
                    r.query, r.group_key, r.window_start, r.value
                )
            })
            .collect();
        v.sort();
        v
    };
    assert_eq!(norm(&outputs[0]), norm(&outputs[1]));
    assert_eq!(norm(&outputs[0]), norm(&outputs[2]));
    println!("\nall three policies produced identical aggregates ✓");
    println!(
        "dynamic sharing kept {} snapshots vs {} under the static plan",
        table[0].2, table[1].2
    );
}
