//! Live pipeline demo: feed a bursty, *out-of-order* ridesharing stream
//! through the online runtime — paced source, bounded-lateness reorder
//! stage, sharded workers, live metrics — then drain gracefully and
//! check the result against an offline reference run.
//!
//! ```sh
//! cargo run --release --example live_pipeline
//! ```

use hamlet::prelude::*;
use hamlet_stream::ridesharing;
use std::time::Duration;

fn main() {
    let reg = ridesharing::registry();
    let queries = ridesharing::workload_shared_kleene(&reg, 8, 30);

    // A 20K-event bursty stream whose delivery order trails event time
    // by up to 5 ticks (a delayed-batch network model).
    let cfg = GenConfig {
        events_per_min: 20_000,
        minutes: 1,
        mean_burst: 40.0,
        num_groups: 32,
        group_skew: 0.3,
        seed: 42,
        max_lateness: 5,
    };
    let events = ridesharing::generate(&reg, &cfg);
    println!(
        "streaming {} events (max observed lateness: {} ticks) through 2 shard workers…",
        events.len(),
        hamlet_stream::max_observed_lateness(&events)
    );

    // Offline reference: the same events, sorted back in time order, fed
    // straight through one engine.
    let mut in_order = events.clone();
    in_order.sort_by_key(|e| e.time);
    let mut reference = {
        let mut eng = HamletEngine::new(
            reg.clone(),
            queries.clone(),
            hamlet_core::EngineConfig::default(),
        )
        .expect("workload compiles");
        let mut out = Vec::new();
        for e in &in_order {
            out.extend(eng.process(e));
        }
        out.extend(eng.flush());
        out
    };

    // Online: watermark slack = the stream's lateness bound, so the
    // reorder stage restores event-time order exactly and nothing is
    // dropped as late.
    let handle = Pipeline::builder(reg, queries)
        .workers(2)
        .watermark(BoundedLateness::new(5))
        .spawn(
            RateLimitedSource::new(ReplaySource::new(events), 100_000.0),
            VecSink::new(),
        )
        .expect("workload compiles");

    // Watch it run.
    loop {
        let m = handle.metrics();
        println!(
            "  [{:>5.2}s] ingested {:>6} ({:>7.0} ev/s) results {:>5} late {} \
             queued {:>4} | p50 {:?} p99 {:?}",
            m.elapsed.as_secs_f64(),
            m.ingested,
            m.ingest_eps(),
            m.results,
            m.late,
            m.queued(),
            m.latency.p50,
            m.latency.p99,
        );
        if m.source_done && m.queued() == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    let report = handle.drain();
    println!(
        "\ndrained: {} events in {:?} ({:.0} ev/s), {} results, {} late drops",
        report.events,
        report.wall,
        report.throughput_eps(),
        report.results,
        report.late,
    );
    println!(
        "end-to-end latency p50 {:?} p99 {:?} max {:?}",
        report.latency.p50(),
        report.latency.p99(),
        report.latency.max(),
    );

    // The drained online output matches the offline run exactly (after
    // the canonical sort — two workers interleave emission order).
    let mut online = report.sink.results;
    sort_results(&mut online);
    sort_results(&mut reference);
    assert_eq!(online, reference, "online/offline divergence");
    println!(
        "✓ online output is identical to the offline reference ({} window results)",
        online.len()
    );
}
