//! Ridesharing dashboard (Example 1 of the paper): a workload of trip
//! statistics queries — all sharing the hot `Travel+` sub-pattern — over a
//! bursty synthetic stream, processed once with HAMLET's dynamic sharing
//! and once query-at-a-time (GRETA baseline) to show the speed-up.
//!
//! Run with: `cargo run --release --example ridesharing_dashboard`

use hamlet::prelude::*;
use hamlet_stream::ridesharing;
use std::time::Instant;

fn main() {
    let reg = ridesharing::registry();
    let cfg = GenConfig {
        events_per_min: 10_000,
        minutes: 2,
        mean_burst: 40.0,
        num_groups: 4,
        group_skew: 0.0,
        seed: 7,
        max_lateness: 0,
    };
    let events = ridesharing::generate(&reg, &cfg);
    let queries = ridesharing::workload_shared_kleene(&reg, 10, 60);
    println!(
        "stream: {} events over {} min, workload: {} queries sharing Travel+",
        events.len(),
        cfg.minutes,
        queries.len()
    );

    // --- HAMLET with the dynamic sharing optimizer ----------------------
    let mut hamlet = HamletEngine::new(reg.clone(), queries.clone(), EngineConfig::default())
        .expect("engine builds");
    let t0 = Instant::now();
    let mut hamlet_results = Vec::new();
    for e in &events {
        hamlet_results.extend(hamlet.process(e));
    }
    hamlet_results.extend(hamlet.flush());
    let hamlet_time = t0.elapsed();

    // --- GRETA: each query independently ---------------------------------
    let mut greta = GretaEngine::new(reg.clone(), queries.clone()).expect("engine builds");
    let t0 = Instant::now();
    let mut greta_results = Vec::new();
    for e in &events {
        greta_results.extend(greta.process(e));
    }
    greta_results.extend(greta.flush());
    let greta_time = t0.elapsed();

    // --- Dashboard -------------------------------------------------------
    let stats = hamlet.stats();
    println!(
        "\nHAMLET  : {hamlet_time:?} ({:.0} events/s)",
        events.len() as f64 / hamlet_time.as_secs_f64()
    );
    println!(
        "GRETA   : {greta_time:?} ({:.0} events/s)",
        events.len() as f64 / greta_time.as_secs_f64()
    );
    println!(
        "speed-up: {:.1}x",
        greta_time.as_secs_f64() / hamlet_time.as_secs_f64()
    );
    println!(
        "sharing : {} shared vs {} solo bursts, {} snapshots ({} graphlet-level, {} event-level), {} merges, {} splits",
        stats.runs.shared_bursts,
        stats.runs.solo_bursts,
        stats.runs.snapshots(),
        stats.runs.graphlet_snapshots,
        stats.runs.event_snapshots,
        stats.runs.merges,
        stats.runs.splits,
    );

    // Trip counts per district for query 0, last emitted window.
    println!("\ntrip-trend counts (query q0, sample windows):");
    let mut shown = 0;
    for r in hamlet_results.iter().filter(|r| r.query == QueryId(0)) {
        println!(
            "  district={} window@{}: {} trends",
            r.group_key,
            r.window_start,
            r.value.as_count()
        );
        shown += 1;
        if shown >= 6 {
            break;
        }
    }

    // Both engines must agree bit-exactly.
    let norm = |mut rs: Vec<WindowResult>| {
        rs.retain(|r| !matches!(r.value, AggValue::Count(0) | AggValue::Null));
        rs.sort_by_key(|r| (r.query, r.window_start, format!("{}", r.group_key)));
        rs.iter()
            .map(|r| {
                format!(
                    "{:?}|{}|{}|{:?}",
                    r.query, r.group_key, r.window_start, r.value
                )
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(norm(hamlet_results), norm(greta_results), "engines agree");
    println!("\nresults verified identical across engines ✓");
}
