//! Smart-home energy monitoring (the DEBS-2014-like data set of §6.1):
//! per-house load-trend queries with sliding windows and a predicate,
//! showing AVG aggregation and window overlap handling.
//!
//! Run with: `cargo run --release --example smart_home`

use hamlet::prelude::*;
use hamlet_stream::smart_home;
use std::collections::BTreeMap;

fn main() {
    let reg = smart_home::registry();
    let cfg = GenConfig {
        events_per_min: 20_000,
        minutes: 2,
        mean_burst: 60.0,
        num_groups: 8, // houses
        group_skew: 0.0,
        seed: 21,
        max_lateness: 0,
    };
    let events = smart_home::generate(&reg, &cfg);

    // Two sharable queries: count load-measurement trends per house, and
    // the average measured value along high-load runs.
    let queries = vec![
        parse_query(
            &reg,
            1,
            "RETURN COUNT(Load) PATTERN SEQ(Start, Load+) \
             GROUP BY house WITHIN 60 SLIDE 30",
        )
        .expect("example setup is valid"),
        parse_query(
            &reg,
            2,
            "RETURN AVG(Load.value) PATTERN SEQ(Work, Load+) \
             WHERE Load.value > 200 GROUP BY house WITHIN 60 SLIDE 30",
        )
        .expect("example setup is valid"),
    ];

    let mut engine = HamletEngine::new(reg.clone(), queries, EngineConfig::default())
        .expect("example setup is valid");
    let mut results = Vec::new();
    for e in &events {
        results.extend(engine.process(e));
    }
    results.extend(engine.flush());

    // Aggregate the window results into a compact per-house report.
    let mut load_windows: BTreeMap<String, u64> = BTreeMap::new();
    let mut overload_avgs: BTreeMap<String, (f64, u64)> = BTreeMap::new();
    for r in &results {
        let house = format!("{}", r.group_key);
        match (r.query, &r.value) {
            (QueryId(1), AggValue::Count(c)) if *c > 0 => {
                *load_windows.entry(house).or_default() += 1;
            }
            (QueryId(2), AggValue::Float(avg)) => {
                let slot = overload_avgs.entry(house).or_insert((0.0, 0));
                slot.0 += avg;
                slot.1 += 1;
            }
            _ => {}
        }
    }

    println!(
        "{} events processed, {} window results\n",
        events.len(),
        results.len()
    );
    println!(
        "{:<10} {:>22} {:>26}",
        "house", "windows w/ load trends", "avg overload value (>200V)"
    );
    for (house, wins) in &load_windows {
        let avg = overload_avgs
            .get(house)
            .map(|(s, n)| s / *n as f64)
            .unwrap_or(f64::NAN);
        println!("{house:<10} {wins:>22} {avg:>26.1}");
    }

    let stats = engine.stats();
    println!(
        "\nsliding windows (60s/30s): each event feeds 2 window instances; \
         {} optimizer decisions, {:?} spent deciding ({}µs avg)",
        stats.decisions,
        stats.decision_time,
        if stats.decisions > 0 {
            stats.decision_time.as_micros() / stats.decisions as u128
        } else {
            0
        },
    );
    assert!(stats.windows_emitted > 0);
}
