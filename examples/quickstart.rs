//! Quickstart: define a stream schema, write two trend aggregation queries
//! in the paper's SASE-style language, feed a handful of events, and read
//! the per-window aggregates.
//!
//! Run with: `cargo run --example quickstart`

use hamlet::prelude::*;
use std::sync::Arc;

fn main() {
    // 1. Event types and their schemas (Fig. 1's ridesharing slice).
    let mut reg = TypeRegistry::new();
    let request = reg.register("Request", &["district", "driver", "rider"]);
    let travel = reg.register("Travel", &["district", "driver", "rider", "speed"]);
    reg.register("Pickup", &["district", "driver", "rider"]);
    let reg = Arc::new(reg);

    // 2. Two queries sharing the expensive Kleene sub-pattern Travel+.
    let q1 = parse_query(
        &reg,
        1,
        "RETURN COUNT(*) PATTERN SEQ(Request, Travel+) \
         GROUP BY district WITHIN 1800",
    )
    .expect("q1 parses");
    let q2 = parse_query(
        &reg,
        2,
        "RETURN COUNT(*) PATTERN SEQ(Request, Travel+) \
         WHERE Travel.speed < 10 GROUP BY district WITHIN 1800",
    )
    .expect("q2 parses");

    // 3. The HAMLET engine with the dynamic sharing optimizer (default).
    let mut engine =
        HamletEngine::new(reg.clone(), vec![q1, q2], EngineConfig::default()).expect("engine");

    // 4. A tiny stream: one trip in district 7 (slow traffic), one in 9.
    let mk = |ty, t: u64, district: i64, speed: f64| {
        EventBuilder::new(&reg, ty, t)
            .attr("district", district)
            .attr("speed", speed)
            .build()
    };
    let mut events = vec![
        EventBuilder::new(&reg, request, 0)
            .attr("district", 7i64)
            .build(),
        mk(travel, 60, 7, 8.0),
        mk(travel, 120, 7, 6.5),
        mk(travel, 180, 7, 9.0),
        EventBuilder::new(&reg, request, 200)
            .attr("district", 9i64)
            .build(),
        mk(travel, 260, 9, 35.0),
        mk(travel, 320, 9, 42.0),
    ];
    events.sort_by_key(|e| e.time);

    let mut results = Vec::new();
    for e in &events {
        results.extend(engine.process(e));
    }
    results.extend(engine.flush());

    // 5. Read the aggregates: q1 counts all trip trends per district; q2
    // counts only slow-traffic trends (speed < 10).
    println!("window results:");
    results.sort_by_key(|r| (r.query, format!("{}", r.group_key)));
    for r in &results {
        println!(
            "  {} district={} window@{}: {:?}",
            r.query, r.group_key, r.window_start, r.value
        );
    }

    let stats = engine.stats();
    println!(
        "\nengine: {} events routed, {} optimizer decisions, {} snapshots, \
         {} shared / {} solo bursts",
        stats.events_routed,
        stats.decisions,
        stats.runs.snapshots(),
        stats.runs.shared_bursts,
        stats.runs.solo_bursts,
    );

    // District 7 has 3 Travel events: trends = non-empty ordered subsets
    // of {t1,t2,t3} after the request = 7.
    let q1_d7 = results
        .iter()
        .find(|r| r.query == QueryId(1) && format!("{}", r.group_key) == "[7]")
        .expect("district 7 result");
    assert_eq!(q1_d7.value.as_count(), 7);
    println!("\nquickstart OK");
}
