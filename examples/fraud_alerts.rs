//! General trend aggregation queries (§5) in one workload: negation
//! (`NOT`), disjunction (`OR`) and nested Kleene — a fraud/anomaly
//! monitoring scenario over a payments-like stream, including a
//! partition-parallel run.
//!
//! Run with: `cargo run --release --example fraud_alerts`

use hamlet::prelude::*;
use hamlet_core::{ParallelEngine, ParallelReport};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn main() {
    // Schema: login/transfer/review/alert events per account.
    let mut reg = TypeRegistry::new();
    let login = reg.register("Login", &["account", "amount"]);
    let transfer = reg.register("Transfer", &["account", "amount"]);
    let review = reg.register("Review", &["account", "amount"]);
    let flag = reg.register("Flag", &["account", "amount"]);
    let wire = reg.register("Wire", &["account", "amount"]);
    let reg = Arc::new(reg);

    let queries = vec![
        // Unreviewed transfer runs: a login followed by transfers with NO
        // compliance review in between (gap negation, §5).
        parse_query(
            &reg,
            1,
            "RETURN COUNT(*) PATTERN SEQ(Login, NOT Review, Transfer+) \
             GROUP BY account WITHIN 120",
        )
        .expect("example setup is valid"),
        // Escalating transfers: each strictly larger than the previous
        // (edge predicate) — the classic smurfing shape.
        parse_query(
            &reg,
            2,
            "RETURN COUNT(*) PATTERN SEQ(Login, Transfer+) \
             WHERE Transfer.amount > PREV.amount GROUP BY account WITHIN 120",
        )
        .expect("example setup is valid"),
        // Either suspicious shape counts (disjunction over disjoint
        // branches, §5).
        parse_query(
            &reg,
            3,
            "RETURN COUNT(*) PATTERN SEQ(Flag, Transfer+) OR SEQ(Review, Wire+) \
             GROUP BY account WITHIN 120",
        )
        .expect("example setup is valid"),
        // Repeated sessions: nested Kleene (Example 10).
        parse_query(
            &reg,
            4,
            "RETURN COUNT(*) PATTERN (SEQ(Login, Transfer+))+ \
             GROUP BY account WITHIN 120",
        )
        .expect("example setup is valid"),
    ];

    // A synthetic payments stream: 96 accounts, bursty transfer runs.
    let mut rng = StdRng::seed_from_u64(42);
    let mut events = Vec::new();
    for t in 0..8_000u64 {
        let ty = match t % 17 {
            0 => login,
            5 => review,
            9 => flag,
            13 => wire,
            _ => transfer,
        };
        let account = rng.gen_range(0..96i64);
        let amount = rng.gen_range(10.0..5_000.0f64);
        events.push(
            EventBuilder::new(&reg, ty, t / 4)
                .attr("account", account)
                .attr("amount", amount)
                .build(),
        );
    }

    // Sequential run.
    let mut engine = HamletEngine::new(reg.clone(), queries.clone(), EngineConfig::default())
        .expect("example setup is valid");
    println!("{}", engine.explain());
    let mut results = Vec::new();
    let t0 = std::time::Instant::now();
    for e in &events {
        results.extend(engine.process(e));
    }
    results.extend(engine.flush());
    let sequential = t0.elapsed();

    let alerts: usize = results
        .iter()
        .filter(|r| r.value.as_count() > 0 && r.query == QueryId(1))
        .count();
    println!(
        "{} events → {} window results; {} account-windows with unreviewed \
         transfer runs (q1)",
        events.len(),
        results.len(),
        alerts
    );
    for r in results.iter().filter(|r| r.value.as_count() > 0).take(6) {
        println!(
            "  {} account={} window@{}: {:?}",
            r.query, r.group_key, r.window_start, r.value
        );
    }

    // Partition-parallel run over the same stream must agree bit-for-bit:
    // ParallelReport.results is sorted by (window, query, key), so sorting
    // the sequential run the same way makes the two directly comparable.
    // Fed batch-by-batch through the streaming entry point (the batches
    // could come straight off a generator without holding the full
    // stream).
    let par: ParallelReport = ParallelEngine::new(reg.clone(), queries, EngineConfig::default(), 4)
        .expect("example setup is valid")
        .run_batches(hamlet_stream::batches(&events, 2048));
    sort_results(&mut results);
    assert_eq!(results, par.results);

    let merged = par.merged_stats();
    println!(
        "\nparallel (4 shards) verified identical: {} results, {} snapshots, \
         workers routed {:?} events, total peak state {} KB",
        par.results.len(),
        merged.runs.snapshots(),
        par.stats
            .iter()
            .map(|s| s.events_routed)
            .collect::<Vec<_>>(),
        par.total_peak_mem() / 1024,
    );
    println!(
        "single-thread took {sequential:?}; 4 workers took {:?} -> {:.2}x speedup \
         (each shard owns ~1/4 of the accounts and sees only its events; \
         grows with cores and account cardinality — see `figures fig_scaling`)",
        par.wall,
        sequential.as_secs_f64() / par.wall.as_secs_f64().max(1e-9),
    );
}
