//! General trend aggregation queries (§5) in one workload: negation
//! (`NOT`), disjunction (`OR`) and nested Kleene — a fraud/anomaly
//! monitoring scenario over a payments-like stream, including a
//! partition-parallel run.
//!
//! Run with: `cargo run --release --example fraud_alerts`

use hamlet::prelude::*;
use hamlet_core::{ParallelEngine, ParallelReport};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn main() {
    // Schema: login/transfer/review/alert events per account.
    let mut reg = TypeRegistry::new();
    let login = reg.register("Login", &["account", "amount"]);
    let transfer = reg.register("Transfer", &["account", "amount"]);
    let review = reg.register("Review", &["account", "amount"]);
    let flag = reg.register("Flag", &["account", "amount"]);
    let wire = reg.register("Wire", &["account", "amount"]);
    let reg = Arc::new(reg);

    let queries = vec![
        // Unreviewed transfer runs: a login followed by transfers with NO
        // compliance review in between (gap negation, §5).
        parse_query(
            &reg,
            1,
            "RETURN COUNT(*) PATTERN SEQ(Login, NOT Review, Transfer+) \
             GROUP BY account WITHIN 120",
        )
        .unwrap(),
        // Escalating transfers: each strictly larger than the previous
        // (edge predicate) — the classic smurfing shape.
        parse_query(
            &reg,
            2,
            "RETURN COUNT(*) PATTERN SEQ(Login, Transfer+) \
             WHERE Transfer.amount > PREV.amount GROUP BY account WITHIN 120",
        )
        .unwrap(),
        // Either suspicious shape counts (disjunction over disjoint
        // branches, §5).
        parse_query(
            &reg,
            3,
            "RETURN COUNT(*) PATTERN SEQ(Flag, Transfer+) OR SEQ(Review, Wire+) \
             GROUP BY account WITHIN 120",
        )
        .unwrap(),
        // Repeated sessions: nested Kleene (Example 10).
        parse_query(
            &reg,
            4,
            "RETURN COUNT(*) PATTERN (SEQ(Login, Transfer+))+ \
             GROUP BY account WITHIN 120",
        )
        .unwrap(),
    ];

    // A synthetic payments stream: 6 accounts, bursty transfer runs.
    let mut rng = StdRng::seed_from_u64(42);
    let mut events = Vec::new();
    for t in 0..4_000u64 {
        let ty = match t % 17 {
            0 => login,
            5 => review,
            9 => flag,
            13 => wire,
            _ => transfer,
        };
        let account = rng.gen_range(0..6i64);
        let amount = rng.gen_range(10.0..5_000.0f64);
        events.push(
            EventBuilder::new(&reg, ty, t / 4)
                .attr("account", account)
                .attr("amount", amount)
                .build(),
        );
    }

    // Sequential run.
    let mut engine =
        HamletEngine::new(reg.clone(), queries.clone(), EngineConfig::default()).unwrap();
    println!("{}", engine.explain());
    let mut results = Vec::new();
    let t0 = std::time::Instant::now();
    for e in &events {
        results.extend(engine.process(e));
    }
    results.extend(engine.flush());
    let sequential = t0.elapsed();

    let alerts: usize = results
        .iter()
        .filter(|r| r.value.as_count() > 0 && r.query == QueryId(1))
        .count();
    println!(
        "{} events → {} window results; {} account-windows with unreviewed \
         transfer runs (q1)",
        events.len(),
        results.len(),
        alerts
    );
    for r in results.iter().filter(|r| r.value.as_count() > 0).take(6) {
        println!(
            "  {} account={} window@{}: {:?}",
            r.query, r.group_key, r.window_start, r.value
        );
    }

    // Partition-parallel run over the same stream must agree.
    let par: ParallelReport = ParallelEngine::new(reg.clone(), queries, EngineConfig::default(), 4)
        .unwrap()
        .run(&events);
    let norm = |rs: &[WindowResult]| {
        let mut v: Vec<String> = rs
            .iter()
            .filter(|r| !matches!(r.value, AggValue::Count(0) | AggValue::Null))
            .map(|r| {
                format!(
                    "{:?}|{}|{}|{:?}",
                    r.query, r.group_key, r.window_start, r.value
                )
            })
            .collect();
        v.sort();
        v
    };
    assert_eq!(norm(&results), norm(&par.results));
    println!(
        "\nparallel (4 shards) verified identical; sequential took {sequential:?}, \
         workers routed {:?} events each",
        par.stats
            .iter()
            .map(|s| s.events_routed)
            .collect::<Vec<_>>()
    );
}
