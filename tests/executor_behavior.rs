//! Focused executor-behavior tests: pane-bounded bursts (Def. 10),
//! equivalence-attribute partitioning, EXPLAIN output, and the parallel
//! engine on generated workloads.

use hamlet_core::{EngineConfig, HamletEngine, ParallelEngine, SharingPolicy};
use hamlet_query::parse_query;
use hamlet_types::{AttrValue, Event, Ts, TypeRegistry};
use std::sync::Arc;

fn registry() -> Arc<TypeRegistry> {
    let mut reg = TypeRegistry::new();
    for t in ["A", "B", "C"] {
        reg.register(t, &["g", "v", "driver"]);
    }
    Arc::new(reg)
}

fn ev(reg: &TypeRegistry, name: &str, t: u64, g: i64, driver: i64) -> Event {
    Event::new(
        Ts(t),
        reg.type_id(name).expect("type registered"),
        vec![
            AttrValue::Int(g),
            AttrValue::Float(t as f64),
            AttrValue::Int(driver),
        ],
    )
}

/// Bursts are bounded by pane boundaries (Def. 10): a run of B events
/// crossing a pane boundary yields one optimizer decision per pane.
#[test]
fn bursts_split_at_pane_boundaries() {
    let reg = registry();
    // WITHIN 20 SLIDE 10 → pane = gcd(20, 10) = 10.
    let queries = vec![
        parse_query(
            &reg,
            1,
            "RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 20 SLIDE 10",
        )
        .unwrap(),
        parse_query(
            &reg,
            2,
            "RETURN COUNT(*) PATTERN SEQ(C, B+) WITHIN 20 SLIDE 10",
        )
        .unwrap(),
    ];
    let mut eng = HamletEngine::new(reg.clone(), queries, EngineConfig::default()).unwrap();
    // One window instance [0,20): a@1, c@2, then B events at 3..=15 — the
    // B run crosses the pane boundary at t=10.
    let mut events = vec![ev(&reg, "A", 1, 0, 0), ev(&reg, "C", 2, 0, 0)];
    for t in 3..=15u64 {
        events.push(ev(&reg, "B", t, 0, 0));
    }
    let mut out = Vec::new();
    for e in &events {
        out.extend(eng.process(e));
    }
    out.extend(eng.flush());
    let stats = eng.stats();
    // Window [0,20): bursts A, C, B(pane 0: t=3..9), B(pane 1: t=10..15).
    // Window [10,30): bursts B(pane1). Plus decisions for each.
    assert!(
        stats.decisions >= 5,
        "pane boundary forces an extra burst decision: {stats:?}"
    );
    assert!(!out.is_empty());
}

/// Equivalence attributes (`[driver]`, Fig. 1) partition trends: events of
/// different drivers never join the same trend.
#[test]
fn equivalence_attributes_partition_trends() {
    let reg = registry();
    let q = parse_query(
        &reg,
        1,
        "RETURN COUNT(*) PATTERN SEQ(A, B+) WHERE [driver] WITHIN 100",
    )
    .unwrap();
    let mut eng = HamletEngine::new(reg.clone(), vec![q], EngineConfig::default()).unwrap();
    // Driver 1: a@1, b@3. Driver 2: a@2, b@4. Without [driver] the count
    // would be 1+2+... cross matches; with it, each driver gets 1 trend.
    let events = vec![
        ev(&reg, "A", 1, 0, 1),
        ev(&reg, "A", 2, 0, 2),
        ev(&reg, "B", 3, 0, 1),
        ev(&reg, "B", 4, 0, 2),
    ];
    let mut out = Vec::new();
    for e in &events {
        out.extend(eng.process(e));
    }
    out.extend(eng.flush());
    assert_eq!(out.len(), 2, "one result per driver partition");
    for r in &out {
        assert_eq!(r.value.as_count(), 1, "driver-local trend only: {r:?}");
    }
}

/// EXPLAIN renders the merged template with query-set labels (Fig. 3(b)).
#[test]
fn explain_shows_shared_plan() {
    let reg = registry();
    let queries = vec![
        parse_query(&reg, 1, "RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 50").unwrap(),
        parse_query(&reg, 2, "RETURN COUNT(*) PATTERN SEQ(C, B+) WITHIN 50").unwrap(),
    ];
    let eng = HamletEngine::new(reg.clone(), queries, EngineConfig::default()).unwrap();
    let plan = eng.explain();
    assert!(plan.contains("1 share group"), "{plan}");
    assert!(plan.contains("sharable Kleene sub-pattern: B+"), "{plan}");
    assert!(plan.contains("B -> B [q1, q2]"), "{plan}");
    assert!(plan.contains("A -> B [q1]"), "{plan}");
    assert!(plan.contains("C -> B [q2]"), "{plan}");
}

/// The parallel engine agrees with sequential execution on a generated
/// ridesharing workload across policies.
#[test]
fn parallel_generated_workload_agrees() {
    let reg = hamlet_stream::ridesharing::registry();
    let cfg = hamlet_stream::GenConfig {
        events_per_min: 3_000,
        minutes: 1,
        mean_burst: 30.0,
        num_groups: 12,
        group_skew: 0.0,
        seed: 31,
        max_lateness: 0,
    };
    let events = hamlet_stream::ridesharing::generate(&reg, &cfg);
    let queries = hamlet_stream::ridesharing::workload_shared_kleene(&reg, 8, 30);
    for policy in [SharingPolicy::Dynamic, SharingPolicy::NeverShare] {
        let cfg = EngineConfig {
            policy,
            ..EngineConfig::default()
        };
        let seq = ParallelEngine::new(reg.clone(), queries.clone(), cfg.clone(), 1)
            .unwrap()
            .run(&events);
        let par = ParallelEngine::new(reg.clone(), queries.clone(), cfg, 3)
            .unwrap()
            .run(&events);
        let norm = |rs: &[hamlet_core::WindowResult]| {
            let mut v: Vec<String> = rs
                .iter()
                .filter(|r| {
                    !matches!(
                        r.value,
                        hamlet_core::AggValue::Count(0) | hamlet_core::AggValue::Null
                    )
                })
                .map(|r| {
                    format!(
                        "{:?}|{}|{}|{:?}",
                        r.query, r.group_key, r.window_start, r.value
                    )
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(norm(&seq.results), norm(&par.results), "{policy:?}");
    }
}

/// Regression (PR 3): two runs over the *same* generated stream produce
/// byte-identical output — same rows in the same order, per-event and at
/// flush. Before the watermark expiration index, expiry walked the
/// partition `HashMap`, so windows closed by one watermark advance came
/// out in hash-iteration order and only looked deterministic by luck.
#[test]
fn same_stream_twice_emits_byte_identical_output() {
    let reg = hamlet_stream::ridesharing::registry();
    let cfg = hamlet_stream::GenConfig {
        events_per_min: 2_000,
        minutes: 1,
        mean_burst: 15.0,
        // Many districts per window: one watermark advance expires many
        // partitions at once — the case hash order used to scramble.
        num_groups: 64,
        group_skew: 0.3,
        seed: 77,
        max_lateness: 0,
    };
    let events = hamlet_stream::ridesharing::generate(&reg, &cfg);
    let queries = hamlet_stream::ridesharing::workload_shared_kleene(&reg, 6, 20);
    let run = || {
        let mut eng =
            HamletEngine::new(reg.clone(), queries.clone(), EngineConfig::default()).unwrap();
        // Keep per-event boundaries visible: any reordering across
        // process() calls would shift rows between the inner vectors.
        let mut out: Vec<Vec<hamlet_core::WindowResult>> = Vec::new();
        for e in &events {
            out.push(eng.process(e));
        }
        out.push(eng.flush());
        out
    };
    let first = run();
    assert!(first.iter().any(|v| !v.is_empty()), "stream emits windows");
    assert_eq!(first, run(), "same stream, different output");
}

/// Regression (PR 3): a flush-heavy workload — OR-queries whose combiner
/// halves drain from `pending` at end of stream — is run-to-run
/// deterministic. Before PR 3 `flush` drained the pending `HashMap` in
/// iteration order.
#[test]
fn flush_heavy_or_workload_is_deterministic() {
    // Disjoint Kleene types (B+ vs D+) put the OR halves in *different*
    // share groups: a (key, window) where only one branch's group has a
    // run leaves that half stranded in `pending` until flush.
    let mut reg = TypeRegistry::new();
    for t in ["A", "B", "C", "D"] {
        reg.register(t, &["g", "v", "driver"]);
    }
    let reg = Arc::new(reg);
    let queries = vec![
        parse_query(
            &reg,
            1,
            "RETURN COUNT(*) PATTERN SEQ(A, B+) OR SEQ(C, D+) GROUP BY g WITHIN 10",
        )
        .unwrap(),
        parse_query(
            &reg,
            2,
            "RETURN COUNT(*) PATTERN SEQ(C, D+) OR SEQ(A, B+) GROUP BY g WITHIN 10",
        )
        .unwrap(),
    ];
    // A/B flow for every key; C/D only for even keys, so odd keys strand
    // one half per window in `pending`, across many keys and windows.
    let mut events = Vec::new();
    for t in 0..97u64 {
        let g = (t % 11) as i64;
        let name = match (t % 7, g % 2) {
            (0, _) => "A",
            (1 | 2, 0) => "C",
            (1 | 2, _) => "A",
            (3, 0) => "D",
            _ => "B",
        };
        events.push(ev(&reg, name, t, g, 0));
    }
    let run = || {
        let mut eng =
            HamletEngine::new(reg.clone(), queries.clone(), EngineConfig::default()).unwrap();
        let mut out = Vec::new();
        for e in &events {
            out.extend(eng.process(e));
        }
        let flushed = eng.flush();
        assert!(!flushed.is_empty(), "flush emits pending windows");
        out.extend(flushed);
        out
    };
    assert_eq!(run(), run(), "flush order depended on hash iteration");
}

/// Skewed (Zipf) partition keys: the hot partition dominates, and the
/// parallel engine still agrees with sequential execution under skew.
#[test]
fn skewed_partitions_agree_in_parallel() {
    let reg = hamlet_stream::ridesharing::registry();
    let cfg = hamlet_stream::GenConfig {
        events_per_min: 3_000,
        minutes: 1,
        mean_burst: 30.0,
        num_groups: 16,
        group_skew: 1.0,
        seed: 55,
        max_lateness: 0,
    };
    let events = hamlet_stream::ridesharing::generate(&reg, &cfg);
    // Hot-key skew materialized: district 0 holds a large share.
    let district_idx = 0usize;
    let hot = events
        .iter()
        .filter(|e| e.attr(district_idx) == Some(&AttrValue::Int(0)))
        .count();
    assert!(
        hot as f64 > 0.15 * events.len() as f64,
        "hot key fraction {hot}/{}",
        events.len()
    );
    let queries = hamlet_stream::ridesharing::workload_shared_kleene(&reg, 6, 30);
    let cfg = EngineConfig::default();
    let seq = ParallelEngine::new(reg.clone(), queries.clone(), cfg.clone(), 1)
        .unwrap()
        .run(&events);
    let par = ParallelEngine::new(reg.clone(), queries, cfg, 4)
        .unwrap()
        .run(&events);
    let norm = |rs: &[hamlet_core::WindowResult]| {
        let mut v: Vec<String> = rs
            .iter()
            .filter(|r| !matches!(r.value, hamlet_core::AggValue::Count(0)))
            .map(|r| {
                format!(
                    "{:?}|{}|{}|{:?}",
                    r.query, r.group_key, r.window_start, r.value
                )
            })
            .collect();
        v.sort();
        v
    };
    assert_eq!(norm(&seq.results), norm(&par.results));
}
