//! Smoke test: every `examples/` binary runs to completion.
//!
//! The examples are the public face of the API (each mirrors a doc
//! scenario); running them end-to-end in CI keeps the documented surface
//! honest. Each example is spawned via the same `cargo` that is running
//! this test, in the same profile, so the binaries are already compiled
//! by the time the test phase starts.

use std::process::Command;

const EXAMPLES: [&str; 6] = [
    "quickstart",
    "smart_home",
    "stock_trends",
    "ridesharing_dashboard",
    "fraud_alerts",
    "live_pipeline",
];

#[test]
fn all_examples_run_to_completion() {
    let cargo = env!("CARGO");
    let manifest = concat!(env!("CARGO_MANIFEST_DIR"), "/Cargo.toml");
    for example in EXAMPLES {
        let mut cmd = Command::new(cargo);
        cmd.args([
            "run",
            "-q",
            "--manifest-path",
            manifest,
            "--example",
            example,
        ]);
        if !cfg!(debug_assertions) {
            cmd.arg("--release");
        }
        let out = cmd
            .output()
            .unwrap_or_else(|e| panic!("spawn {example}: {e}"));
        assert!(
            out.status.success(),
            "example `{example}` failed with {}:\n--- stdout ---\n{}\n--- stderr ---\n{}",
            out.status,
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr),
        );
        assert!(
            !out.stdout.is_empty(),
            "example `{example}` printed nothing; expected a report"
        );
    }
}
