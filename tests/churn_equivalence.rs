//! Churn equivalence: adding and removing queries on a *live* engine
//! must produce exactly the results the churn contract promises — no
//! window lost, none duplicated, untouched share groups byte-identical
//! to never having churned. Proven across the stack:
//!
//! * the offline parallel path (`ParallelEngine::run_with_churn`) at 1
//!   and 4 workers against a single-engine reference that applies the
//!   same ops at the same stream positions, in canonical order;
//! * a proptest over churn positions × stream shapes;
//! * checkpoint/restore **mid-churn**: a blob taken after churn restores
//!   only into an engine at the same workload epoch (built with the
//!   post-churn query set, epoch declared via [`checkpoint_epoch`]) and
//!   then continues byte-identically; a cross-epoch restore is rejected
//!   with `WorkloadMismatch`.
//!
//! This is the acceptance property of the churn subsystem, the runtime
//! face of Def. 12: re-planning happens online, and correctness is
//! independent of *when* the workload changed.

use hamlet::prelude::*;
use hamlet_stream::ridesharing;
use proptest::prelude::*;
use std::sync::Arc;

/// 8-query pool: the first six are the initial workload, the tail is
/// for genuinely-new `Add`s (ids the engine has never seen).
fn pool() -> (Arc<TypeRegistry>, Vec<Query>) {
    let reg = ridesharing::registry();
    let queries = ridesharing::workload_shared_kleene(&reg, 8, 30);
    (reg, queries)
}

fn stream(reg: &Arc<TypeRegistry>, seed: u64, events_per_min: u64, groups: u64) -> Vec<Event> {
    ridesharing::generate(
        reg,
        &GenConfig {
            events_per_min,
            minutes: 1,
            mean_burst: 15.0,
            num_groups: groups,
            group_skew: 0.0,
            seed,
            max_lateness: 0,
        },
    )
}

/// Single-engine reference: process events in slice order, applying each
/// `(position, op)` after exactly `position` events, collecting per-event
/// output, the barrier drains, and the final flush. Canonical order.
fn churned_reference(
    reg: &Arc<TypeRegistry>,
    initial: &[Query],
    events: &[Event],
    ops: &[(usize, ChurnOp)],
) -> Vec<WindowResult> {
    let mut eng = HamletEngine::new(reg.clone(), initial.to_vec(), EngineConfig::default())
        .expect("engine builds");
    let mut out = Vec::new();
    let mut pos = 0usize;
    for (at, op) in ops {
        let at = (*at).min(events.len());
        for e in &events[pos..at] {
            out.extend(eng.process(e));
        }
        pos = at;
        let report = match op {
            ChurnOp::Add(q) => eng.add_query(q.clone()).expect("churn add applies"),
            ChurnOp::Remove(id) => eng.remove_query(*id).expect("churn remove applies"),
        };
        out.extend(report.drained);
    }
    for e in &events[pos..] {
        out.extend(eng.process(e));
    }
    out.extend(eng.flush());
    sort_results(&mut out);
    out
}

/// The parallel path's coordinated churn barrier at 1 and 4 workers
/// equals the single-engine reference, drained barrier results included,
/// for a schedule that exercises remove-from-shared-group, add-new-query,
/// and re-add-after-remove.
#[test]
fn parallel_churn_matches_single_engine_at_1_and_4_workers() {
    let (reg, pool) = pool();
    let initial: Vec<Query> = pool[..6].to_vec();
    let events = stream(&reg, 42, 3_000, 16);
    let n = events.len();
    let ops: Vec<(usize, ChurnOp)> = vec![
        (n / 4, ChurnOp::Remove(QueryId(2))),
        (n / 2, ChurnOp::Add(pool[6].clone())),
        (2 * n / 3, ChurnOp::Remove(QueryId(0))),
        (3 * n / 4, ChurnOp::Add(pool[2].clone())), // re-add after remove
    ];
    let gold = churned_reference(&reg, &initial, &events, &ops);
    assert!(!gold.is_empty(), "workload emits under churn");

    for workers in [1u32, 4] {
        let mut eng = ParallelEngine::new(
            reg.clone(),
            initial.clone(),
            EngineConfig::default(),
            workers,
        )
        .unwrap();
        let report = eng.run_with_churn(&events, &ops).unwrap();
        assert_eq!(
            report.results, gold,
            "{workers} workers: churned run diverged from the reference"
        );
    }
}

/// Churn barriers at the stream's very edges — before any event, between
/// adjacent events, and after the last — are just as valid as mid-stream
/// ones, and back-to-back ops at one position apply in sequence.
#[test]
fn churn_at_stream_edges_and_back_to_back() {
    let (reg, pool) = pool();
    let initial: Vec<Query> = pool[..6].to_vec();
    let events = stream(&reg, 9, 2_000, 8);
    let n = events.len();
    let ops: Vec<(usize, ChurnOp)> = vec![
        (0, ChurnOp::Remove(QueryId(5))),
        (n / 2, ChurnOp::Remove(QueryId(1))),
        (n / 2, ChurnOp::Add(pool[7].clone())), // same barrier, FIFO
        (n, ChurnOp::Add(pool[1].clone())),     // after the last event
    ];
    let gold = churned_reference(&reg, &initial, &events, &ops);
    for workers in [1u32, 4] {
        let mut eng = ParallelEngine::new(
            reg.clone(),
            initial.clone(),
            EngineConfig::default(),
            workers,
        )
        .unwrap();
        let report = eng.run_with_churn(&events, &ops).unwrap();
        assert_eq!(report.results, gold, "{workers} workers diverged");
    }
}

/// An invalid op *anywhere* in the schedule rejects the whole run before
/// any event is processed: the engine still produces the untouched
/// workload's output afterwards.
#[test]
fn invalid_schedule_rejects_upfront_and_leaves_engine_usable() {
    let (reg, pool) = pool();
    let initial: Vec<Query> = pool[..4].to_vec();
    let events = stream(&reg, 3, 1_000, 6);
    let mut eng =
        ParallelEngine::new(reg.clone(), initial.clone(), EngineConfig::default(), 4).unwrap();
    let gold = eng.run(&events);

    // Second op removes an id the first op already removed.
    let bad = vec![
        (0usize, ChurnOp::Remove(QueryId(1))),
        (events.len() / 2, ChurnOp::Remove(QueryId(1))),
    ];
    match eng.run_with_churn(&events, &bad) {
        Err(ChurnError::Unknown(id)) => assert_eq!(id, QueryId(1)),
        Err(other) => panic!("expected Unknown(1), got {other:?}"),
        Ok(_) => panic!("expected Unknown(1), got a successful run"),
    }
    // Duplicate add deep in the schedule is caught the same way.
    let dup = vec![
        (0usize, ChurnOp::Add(pool[6].clone())),
        (1usize, ChurnOp::Add(pool[6].clone())),
    ];
    match eng.run_with_churn(&events, &dup) {
        Err(ChurnError::Duplicate(id)) => assert_eq!(id, pool[6].id),
        Err(other) => panic!("expected Duplicate, got {other:?}"),
        Ok(_) => panic!("expected Duplicate, got a successful run"),
    }
    // The failed churns changed nothing: a plain run still matches.
    assert_eq!(eng.run(&events).results, gold.results);
}

/// Checkpoint taken mid-stream *after* churn: restoring demands the same
/// workload epoch. A fresh engine built with the post-churn query set
/// (epoch 0) is rejected with `WorkloadMismatch`; after declaring the
/// blob's epoch via [`checkpoint_epoch`] + `set_epoch`, restore succeeds
/// and the continuation is byte-identical to the uninterrupted churned
/// run — raw emission order, no normalization.
#[test]
fn mid_churn_checkpoint_restores_at_matching_epoch_only() {
    let (reg, pool) = pool();
    let initial: Vec<Query> = pool[..6].to_vec();
    let events = stream(&reg, 11, 2_000, 12);
    let n = events.len();
    let churn = |eng: &mut HamletEngine| {
        eng.remove_query(QueryId(3)).unwrap();
        eng.add_query(pool[6].clone()).unwrap();
    };
    let post_churn: Vec<Query> = initial
        .iter()
        .filter(|q| q.id != QueryId(3))
        .cloned()
        .chain(std::iter::once(pool[6].clone()))
        .collect();

    // Gold: churn at n/3, never interrupted. Record per-event output
    // after the cut point so the comparison is exact, not just the sum.
    let mut gold_eng =
        HamletEngine::new(reg.clone(), initial.clone(), EngineConfig::default()).unwrap();
    for e in &events[..n / 3] {
        let _ = gold_eng.process(e);
    }
    churn(&mut gold_eng);
    for e in &events[n / 3..n / 2] {
        let _ = gold_eng.process(e);
    }
    let mut gold_tail: Vec<Vec<WindowResult>> = Vec::new();
    for e in &events[n / 2..] {
        gold_tail.push(gold_eng.process(e));
    }
    let gold_flush = gold_eng.flush();

    // Victim: same run, checkpointed at n/2 (mid-stream, post-churn).
    let mut victim =
        HamletEngine::new(reg.clone(), initial.clone(), EngineConfig::default()).unwrap();
    for e in &events[..n / 3] {
        let _ = victim.process(e);
    }
    churn(&mut victim);
    assert_eq!(victim.epoch(), 2, "two churn ops, two epoch bumps");
    for e in &events[n / 3..n / 2] {
        let _ = victim.process(e);
    }
    let blob = victim.checkpoint();
    drop(victim); // the crash

    assert_eq!(checkpoint_epoch(&blob).unwrap(), 2);

    // Epoch 0 engine with the right query set: rejected, engine unharmed.
    let mut survivor =
        HamletEngine::new(reg.clone(), post_churn.clone(), EngineConfig::default()).unwrap();
    match survivor.restore(&blob) {
        Err(CheckpointError::WorkloadMismatch(_)) => {}
        other => panic!("cross-epoch restore must fail with WorkloadMismatch, got {other:?}"),
    }

    // Declare the blob's epoch: restore succeeds and continues exactly.
    survivor.set_epoch(checkpoint_epoch(&blob).unwrap());
    survivor.restore(&blob).unwrap();
    assert_eq!(
        survivor.checkpoint(),
        blob,
        "checkpoint/restore round trip is not the identity"
    );
    for (i, e) in events[n / 2..].iter().enumerate() {
        assert_eq!(
            survivor.process(e),
            gold_tail[i],
            "event {} diverged after mid-churn restore",
            n / 2 + i
        );
    }
    assert_eq!(survivor.flush(), gold_flush, "flush diverged");

    // And the other direction: a pre-churn (epoch 0) blob does not
    // restore into an engine that has since churned.
    let early = HamletEngine::new(reg.clone(), initial.clone(), EngineConfig::default()).unwrap();
    let early_blob = early.checkpoint();
    let mut churned =
        HamletEngine::new(reg.clone(), initial.clone(), EngineConfig::default()).unwrap();
    churn(&mut churned);
    assert!(matches!(
        churned.restore(&early_blob),
        Err(CheckpointError::WorkloadMismatch(_))
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random stream shape, random churn barrier positions: a remove of
    /// a random initial query and a later add of a never-seen query.
    /// The parallel path at 1 and 4 workers equals the single-engine
    /// reference in canonical order.
    #[test]
    fn random_churn_positions_and_streams_are_equivalent(
        seed in 0u64..10_000,
        mean_burst in 1.0f64..40.0,
        groups in 1u64..16,
        victim in 0u32..6,
        churn_permille in 0u64..=1_000,
    ) {
        let (reg, pool) = pool();
        let initial: Vec<Query> = pool[..6].to_vec();
        let events = ridesharing::generate(
            &reg,
            &GenConfig {
                events_per_min: 1_200,
                minutes: 1,
                mean_burst,
                num_groups: groups,
                group_skew: 0.0,
                seed,
                max_lateness: 0,
            },
        );
        let n = events.len();
        let first = (n as u64 * churn_permille / 1_000) as usize;
        let second = first + (n - first) / 2;
        let ops: Vec<(usize, ChurnOp)> = vec![
            (first, ChurnOp::Remove(QueryId(victim))),
            (second, ChurnOp::Add(pool[7].clone())),
        ];
        let gold = churned_reference(&reg, &initial, &events, &ops);
        for workers in [1u32, 4] {
            let mut eng = ParallelEngine::new(
                reg.clone(),
                initial.clone(),
                EngineConfig::default(),
                workers,
            )
            .unwrap();
            let report = eng.run_with_churn(&events, &ops).unwrap();
            prop_assert_eq!(
                &report.results,
                &gold,
                "{} workers, cut ({}, {}): churn changed the output",
                workers,
                first,
                second
            );
        }
    }
}
