//! Delta-checkpoint recovery: cut a chain of one base plus incremental
//! deltas at a fixed cadence (with periodic compaction back into a full
//! base), kill the run **mid-delta-interval**, restore from
//! base + ordered delta replay — and prove the survivor is
//! **byte-identical** to the uninterrupted run's state at the barrier
//! (the full checkpoint that run cuts there, wall-clock telemetry
//! included) and to a full-checkpoint restore, then continues to emit
//! exactly the uninterrupted run's suffix. Proven at every layer:
//!
//! * the single engine, through [`Snapshot`] + [`MemStore`];
//! * [`ParallelSession`] at 1 and 4 workers, whose `HMPC` container
//!   chains decompose into per-shard chains;
//! * the online pipeline (`checkpoint_store` / `checkpoint_every` /
//!   `resume_from`) at 1 and 4 workers, through an on-disk [`DirStore`];
//! * a proptest over stream shapes × cut cadences × compaction points.
//!
//! Plus the rejection pins: a chain with a missing link, a chain with no
//! base, and a chain whose records straddle a workload-churn epoch all
//! fail loudly with a typed [`CheckpointError`] before any state commits.

use hamlet::prelude::*;
use hamlet_stream::ridesharing;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn workload() -> (Arc<TypeRegistry>, Vec<Query>) {
    let reg = ridesharing::registry();
    let queries = ridesharing::workload_shared_kleene(&reg, 6, 30);
    (reg, queries)
}

fn stream(reg: &Arc<TypeRegistry>, seed: u64, events_per_min: u64, groups: u64) -> Vec<Event> {
    ridesharing::generate(
        reg,
        &GenConfig {
            events_per_min,
            minutes: 1,
            mean_burst: 15.0,
            num_groups: groups,
            group_skew: 0.0,
            seed,
            max_lateness: 0,
        },
    )
}

/// Offline reference: one engine, events in slice order, then flush.
fn offline(reg: &Arc<TypeRegistry>, queries: &[Query], events: &[Event]) -> Vec<WindowResult> {
    let mut eng = HamletEngine::new(reg.clone(), queries.to_vec(), EngineConfig::default())
        .expect("engine builds");
    let mut out = Vec::new();
    for e in events {
        out.extend(eng.process(e));
    }
    out.extend(eng.flush());
    out
}

/// Drives `eng` over `events`, cutting into `store` after every
/// `cadence` events — `Delta` requested, with every `compact_every`-th
/// cut requested `Full` (the compaction). Returns the emissions, the
/// stream position of the last cut, and the engine's **full** checkpoint
/// captured at that barrier — the byte-identity reference. (A reference
/// from a separate run would not do: checkpoints carry the engine's
/// wall-clock telemetry — the paper's §6.2 decision-time metric — so
/// only a blob cut by the same run at the same barrier can match
/// bit-for-bit.)
fn drive_with_cuts(
    eng: &mut HamletEngine,
    store: &dyn CheckpointStore,
    events: &[Event],
    cadence: usize,
    compact_every: usize,
) -> (Vec<WindowResult>, usize, Vec<u8>) {
    let mut out = Vec::new();
    let mut cuts = 0usize;
    let mut last_cut = 0usize;
    let mut full_at_cut = Vec::new();
    for (i, e) in events.iter().enumerate() {
        out.extend(eng.process(e));
        if (i + 1) % cadence == 0 {
            cuts += 1;
            let kind = if compact_every <= 1 || cuts.is_multiple_of(compact_every) {
                CutKind::Full
            } else {
                CutKind::Delta
            };
            store.append(&eng.cut(kind).expect("cut")).expect("append");
            last_cut = i + 1;
            full_at_cut = eng.checkpoint();
        }
    }
    (out, last_cut, full_at_cut)
}

/// Engine level: cadence cuts with compaction into a [`MemStore`], kill
/// mid-delta-interval, restore a fresh engine from the stored chain.
/// The survivor's full checkpoint is byte-identical to (a) the full
/// checkpoint the uninterrupted run cut at the same barrier and (b) an
/// engine restored from that full checkpoint — then both the per-event
/// suffix and the final flush match the uninterrupted run.
#[test]
fn engine_chain_restore_is_byte_identical_and_continues() {
    let (reg, queries) = workload();
    let events = stream(&reg, 42, 2_000, 12);
    let mk = || HamletEngine::new(reg.clone(), queries.clone(), EngineConfig::default()).unwrap();
    let cadence = 300;
    let compact_every = 3;
    assert!(
        !events.len().is_multiple_of(cadence),
        "the kill must land mid-delta-interval"
    );

    let store = MemStore::new();
    let mut victim = mk();
    let (_, p, full) = drive_with_cuts(&mut victim, &store, &events, cadence, compact_every);
    drop(victim); // the crash — everything after the last cut is lost

    let chain = store.load_chain().unwrap();
    assert!(!chain.is_empty() && !chain[0].is_delta());
    assert!(
        chain[1..].iter().all(Checkpoint::is_delta),
        "compaction must have garbage-collected earlier bases"
    );
    // The last base is the newest compaction cut — or the first cut
    // ever, which auto-promotes to a base regardless of the request.
    let total_cuts = p / cadence;
    let last_full = if total_cuts >= compact_every {
        (total_cuts / compact_every) * compact_every
    } else {
        1
    };
    assert_eq!(
        chain.len(),
        total_cuts - last_full + 1,
        "chain = the last compacted base plus the deltas cut after it"
    );

    let mut survivor = mk();
    survivor.restore_chain(&chain).unwrap();
    assert_eq!(
        survivor.checkpoint(),
        full,
        "chain restore is not byte-identical to the uninterrupted run's state at the cut"
    );
    let mut from_full = mk();
    from_full.restore(&full).unwrap();
    assert_eq!(
        survivor.checkpoint(),
        from_full.checkpoint(),
        "chain restore is not byte-identical to a full-checkpoint restore"
    );

    // Semantic continuation: an uninterrupted twin emits the same suffix
    // (results carry no wall-clock telemetry, so a fresh run is a valid
    // oracle here).
    let mut oracle = mk();
    for e in &events[..p] {
        let _ = oracle.process(e);
    }
    for (i, e) in events[p..].iter().enumerate() {
        assert_eq!(
            survivor.process(e),
            oracle.process(e),
            "event {} diverged after chain restore",
            p + i
        );
    }
    assert_eq!(survivor.flush(), oracle.flush(), "flush diverged");
}

/// Parallel layer at 1 and 4 workers: a [`ParallelSession`] cuts its
/// `HMPC` container chain at a fixed cadence; a second session restored
/// from the store mid-delta-interval processes the remainder in
/// lockstep with the session that never crashed — identical emissions,
/// identical flush, and byte-identical subsequent cuts.
#[test]
fn parallel_session_chain_restore_is_identical_at_1_and_4_workers() {
    let (reg, queries) = workload();
    let events = stream(&reg, 7, 3_000, 24);
    let cadence = 470;
    let compact_every = 2;
    assert!(!events.len().is_multiple_of(cadence));

    for workers in [1u32, 4] {
        let par = ParallelEngine::new(
            reg.clone(),
            queries.clone(),
            EngineConfig::default(),
            workers,
        )
        .unwrap();
        let gold = par.run(&events);

        let store = MemStore::new();
        let mut live = par.session();
        let mut emitted = Vec::new();
        let mut cuts = 0usize;
        let mut p = 0usize;
        while p + cadence <= events.len() {
            emitted.extend(live.process(&events[p..p + cadence]));
            p += cadence;
            cuts += 1;
            let kind = if cuts.is_multiple_of(compact_every) {
                CutKind::Full
            } else {
                CutKind::Delta
            };
            store.append(&live.cut(kind).unwrap()).unwrap();
        }

        // The crash: a fresh session rebuilt from the store, now at the
        // same stream position as `live`. Before feeding anything, both
        // must cut byte-identical full containers — the restored state
        // equals the live one bit-for-bit, wall-clock telemetry
        // included, because the chain carries it. (After processing
        // resumes, each run accrues its own decision-time nanos, so the
        // comparison has to happen at the barrier.)
        let mut survivor = par.session();
        survivor
            .restore_chain(&store.load_chain().unwrap())
            .unwrap();
        assert_eq!(
            survivor.cut(CutKind::Full).unwrap().as_bytes(),
            live.cut(CutKind::Full).unwrap().as_bytes(),
            "{workers} workers: restored session is not byte-identical"
        );
        let tail_live = live.process(&events[p..]);
        let tail_survivor = survivor.process(&events[p..]);
        assert_eq!(tail_survivor, tail_live, "{workers} workers: tail diverged");
        emitted.extend(tail_live);
        let flush_live = live.flush();
        assert_eq!(
            survivor.flush(),
            flush_live,
            "{workers} workers: flush diverged"
        );
        emitted.extend(flush_live);

        let mut all = emitted;
        sort_results(&mut all);
        let mut want = gold.results.clone();
        sort_results(&mut want);
        assert_eq!(all, want, "{workers} workers: cuts perturbed the output");
    }
}

/// Waits until a pipeline condition holds (bounded, so a wedged pipeline
/// fails the test instead of hanging CI).
fn wait_for<S: Sink>(handle: &PipelineHandle<S>, cond: impl Fn(&MetricsSnapshot) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if cond(&handle.metrics()) {
            return;
        }
        assert!(Instant::now() < deadline, "pipeline made no progress");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// A process-unique scratch directory for [`DirStore`] tests.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("hamlet-delta-ck-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Online pipeline at 1 and 4 workers, backed by an on-disk
/// [`DirStore`]: cadence cuts while the pipeline runs, kill
/// mid-delta-interval (the stream prefix ends between two cuts),
/// `resume_from` the directory in a "new process" — the union of what
/// the killed run emitted **before its last cut** and what the resumed
/// run emits equals the uninterrupted offline run.
#[test]
fn pipeline_dirstore_chain_resume_at_1_and_4_workers() {
    let (reg, queries) = workload();
    let events = stream(&reg, 11, 2_000, 12);
    let expected = offline(&reg, &queries, &events);
    let kill = events.len() - events.len() / 5 - 1;

    for workers in [1u32, 4] {
        let dir = scratch_dir(&format!("pipe{workers}"));
        let store = Arc::new(DirStore::open(&dir).unwrap());
        let handle = Pipeline::builder(reg.clone(), queries.clone())
            .workers(workers)
            .checkpoint_store(store.clone())
            .checkpoint_every(250)
            .compact_every(3)
            .spawn(ReplaySource::new(events[..kill].to_vec()), VecSink::new())
            .unwrap();
        wait_for(&handle, |m| m.source_done && m.queued() == 0);
        let report = handle.drain();
        assert!(!report.sink.results.is_empty());

        // A "new process" reopens the directory and resumes from the
        // chain; events after the cut cursor are replayed (at-least-once
        // across the crash).
        let reopened = DirStore::open(&dir).unwrap();
        let chain = reopened.load_chain().unwrap();
        assert!(!chain.is_empty() && !chain[0].is_delta());
        let tail = PipelineCheckpoint::from_bytes(chain[chain.len() - 1].as_bytes()).unwrap();
        let cursor = tail.events_pulled() as usize;
        assert!(
            cursor < kill && cursor.is_multiple_of(250),
            "the kill must land mid-delta-interval (cursor {cursor})"
        );
        let resumed = Pipeline::builder(reg.clone(), queries.clone())
            .workers(workers)
            .resume_from(
                &reopened,
                ReplaySource::new(events[cursor..].to_vec()),
                VecSink::new(),
            )
            .unwrap()
            .drain();
        assert_eq!(resumed.events, events.len() as u64, "counters continue");

        // Pre-cut emissions, reconstructed deterministically: a session
        // over the cut prefix emits exactly what the killed pipeline's
        // workers emitted before the barrier (same routing, no flush).
        let par = ParallelEngine::new(
            reg.clone(),
            queries.clone(),
            EngineConfig::default(),
            workers,
        )
        .unwrap();
        let mut pre_oracle = par.session();
        let mut all = pre_oracle.process(&events[..cursor]);
        all.extend(resumed.sink.results);
        sort_results(&mut all);
        let mut want = expected.clone();
        sort_results(&mut want);
        assert_eq!(
            all, want,
            "{workers} workers: pre-cut emissions plus resumed run must equal offline"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A chain with a missing link (a delta removed from the middle) is
/// rejected with [`CheckpointError::Corrupt`] before any state commits,
/// as is a chain that holds deltas but no base at all.
#[test]
fn truncated_chains_are_rejected() {
    let (reg, queries) = workload();
    let events = stream(&reg, 5, 1_200, 8);
    let mk = || HamletEngine::new(reg.clone(), queries.clone(), EngineConfig::default()).unwrap();
    let store = MemStore::new();
    let mut eng = mk();
    // No compaction: base + 3 deltas.
    let _ = drive_with_cuts(&mut eng, &store, &events, events.len() / 4, usize::MAX);
    let chain = store.load_chain().unwrap();
    assert_eq!(chain.len(), 4);

    let mut gapped = chain.clone();
    gapped.remove(2);
    let err = mk().restore_chain(&gapped).unwrap_err();
    assert!(
        matches!(err, CheckpointError::Corrupt(_)),
        "missing link must be Corrupt, got {err:?}"
    );

    let headless = chain[1..].to_vec();
    let err = mk().restore_chain(&headless).unwrap_err();
    assert!(
        matches!(err, CheckpointError::Corrupt(_)),
        "chain with no base must be Corrupt, got {err:?}"
    );

    let err = mk().restore_chain(&[]).unwrap_err();
    assert!(matches!(err, CheckpointError::Corrupt(_)));

    // The untampered chain still restores (the rejects committed no
    // state and the store is intact).
    mk().restore_chain(&chain).unwrap();
}

/// A chain whose delta was cut at a different workload epoch than its
/// base (the query set churned mid-chain) is rejected with
/// [`CheckpointError::WorkloadMismatch`] — both by the engine's
/// `restore_chain` and by the store's `append` linkage check.
#[test]
fn cross_epoch_chains_are_rejected() {
    let (reg, queries) = workload();
    let events = stream(&reg, 9, 1_200, 8);
    let mk = || HamletEngine::new(reg.clone(), queries.clone(), EngineConfig::default()).unwrap();

    // Engine A: a base at epoch 0.
    let mut a = mk();
    for e in &events {
        let _ = a.process(e);
    }
    let base = a.cut(CutKind::Full).unwrap();
    assert_eq!(base.epoch(), 0);

    // Engine B: churn first (add then remove a probe query, so the final
    // query set — and thus the workload fingerprint — matches A's), then
    // a base and a delta, all at epoch 2.
    let mut b = mk();
    let probe = parse_query(
        &reg,
        900,
        "RETURN COUNT(*) PATTERN SEQ(Request, Travel+) GROUP BY district WITHIN 60",
    )
    .unwrap();
    b.add_query(probe).unwrap();
    b.remove_query(QueryId(900)).unwrap();
    assert_eq!(b.epoch(), 2);
    for e in &events {
        let _ = b.process(e);
    }
    let _ = b.cut(CutKind::Full).unwrap(); // seq 1, matching A's base
    for e in &events[..10] {
        let _ = b.process(e);
    }
    let delta = b.cut(CutKind::Delta).unwrap();
    assert!(delta.is_delta(), "churn happened before the chain started");
    assert_eq!(delta.epoch(), 2);
    assert_eq!(delta.parent(), Some(base.seq()), "linkage is valid by seq");

    let err = mk()
        .restore_chain(&[base.clone(), delta.clone()])
        .unwrap_err();
    assert!(
        matches!(err, CheckpointError::WorkloadMismatch(_)),
        "cross-epoch chain must be WorkloadMismatch, got {err:?}"
    );

    // The store refuses to build such a chain in the first place.
    let store = MemStore::new();
    store.append(&base).unwrap();
    let err = store.append(&delta).unwrap_err();
    assert!(
        matches!(err, CheckpointError::WorkloadMismatch(_)),
        "store append across epochs must be WorkloadMismatch, got {err:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random stream shapes × random cut cadences × random compaction
    /// points: the engine-level chain restore is byte-identical to the
    /// uninterrupted run and continues identically, and a 4-worker
    /// [`ParallelSession`] restored from its container chain stays in
    /// lockstep with the session that never crashed.
    #[test]
    fn random_cadences_and_compaction_recover_identically(
        seed in 0u64..10_000,
        mean_burst in 1.0f64..40.0,
        groups in 1u64..16,
        cadence in 25usize..120,
        compact_every in 1usize..5,
    ) {
        let reg = ridesharing::registry();
        let queries = ridesharing::workload_shared_kleene(&reg, 4, 20);
        let events = ridesharing::generate(&reg, &GenConfig {
            events_per_min: 600,
            minutes: 1,
            mean_burst,
            num_groups: groups,
            group_skew: 0.0,
            seed,
            max_lateness: 0,
        });
        // The generator always yields several hundred events; clamping
        // keeps the test total even for degenerate shapes (the vendored
        // proptest shim has no `prop_assume`).
        let cadence = cadence.min(events.len().max(1));

        // Engine level: byte-identity against the full checkpoint the
        // run itself cut at the last barrier (separate runs differ in
        // wall-clock telemetry), semantic continuation against a fresh
        // oracle.
        let mk = || HamletEngine::new(
            reg.clone(), queries.clone(), EngineConfig::default()).unwrap();
        let store = MemStore::new();
        let mut victim = mk();
        let (_, p, full) = drive_with_cuts(&mut victim, &store, &events, cadence, compact_every);
        drop(victim);
        let chain = store.load_chain().unwrap();
        prop_assert!(!chain.is_empty());
        let mut survivor = mk();
        survivor.restore_chain(&chain).unwrap();
        prop_assert_eq!(
            survivor.checkpoint(), full,
            "seed {} cadence {} compact {}: chain restore not byte-identical",
            seed, cadence, compact_every
        );
        let mut oracle = mk();
        for e in &events[..p] {
            let _ = oracle.process(e);
        }
        let mut recovered = Vec::new();
        let mut expected = Vec::new();
        for e in &events[p..] {
            recovered.extend(survivor.process(e));
            expected.extend(oracle.process(e));
        }
        recovered.extend(survivor.flush());
        expected.extend(oracle.flush());
        prop_assert_eq!(&recovered, &expected, "seed {} cadence {}", seed, cadence);

        // Parallel container chain at 4 workers, in lockstep.
        let par = ParallelEngine::new(
            reg.clone(), queries.clone(), EngineConfig::default(), 4).unwrap();
        let store = MemStore::new();
        let mut live = par.session();
        let mut cuts = 0usize;
        let mut p = 0usize;
        while p + cadence <= events.len() {
            let _ = live.process(&events[p..p + cadence]);
            p += cadence;
            cuts += 1;
            let kind = if cuts.is_multiple_of(compact_every) {
                CutKind::Full
            } else {
                CutKind::Delta
            };
            store.append(&live.cut(kind).unwrap()).unwrap();
        }
        let mut survivor = par.session();
        survivor.restore_chain(&store.load_chain().unwrap()).unwrap();
        prop_assert_eq!(
            survivor.cut(CutKind::Full).unwrap().into_bytes(),
            live.cut(CutKind::Full).unwrap().into_bytes(),
            "seed {} cadence {}: restored session not byte-identical", seed, cadence
        );
        prop_assert_eq!(
            survivor.process(&events[p..]),
            live.process(&events[p..]),
            "seed {} cadence {}: parallel tail diverged", seed, cadence
        );
        prop_assert_eq!(
            survivor.flush(), live.flush(),
            "seed {} cadence {}: parallel flush diverged", seed, cadence
        );
    }
}
