//! Smoke test: the CLI's observability exporters end-to-end.
//!
//! Drives the `hamlet_cli` binary in pipeline mode with `--trace-out`,
//! `--prom-out`, and `--metrics-json`, then checks each artifact with
//! the same strictness a downstream tool would: the Chrome trace must
//! round-trip through a JSON parser (`hamlet_bench::json`) and contain
//! pipeline stage spans, the Prometheus text must carry the engine and
//! per-share-group families, and every `--metrics-json` line must be
//! valid JSON with group rows. Also checks that both exporter flags are
//! rejected outside pipeline mode.

use hamlet_bench::json::{self, Json};
use std::process::Command;

fn cli(extra: &[&str]) -> std::process::Output {
    let cargo = env!("CARGO");
    let manifest = concat!(env!("CARGO_MANIFEST_DIR"), "/Cargo.toml");
    let mut cmd = Command::new(cargo);
    cmd.args([
        "run",
        "-q",
        "--manifest-path",
        manifest,
        "--bin",
        "hamlet_cli",
    ]);
    if !cfg!(debug_assertions) {
        cmd.arg("--release");
    }
    cmd.arg("--");
    cmd.args(extra);
    cmd.output().expect("spawn hamlet_cli")
}

#[test]
fn exporters_write_parseable_artifacts() {
    let dir = std::env::temp_dir();
    let trace = dir.join(format!("hamlet-trace-{}.json", std::process::id()));
    let prom = dir.join(format!("hamlet-prom-{}.txt", std::process::id()));
    let out = cli(&[
        "pipeline",
        "--dataset",
        "ridesharing",
        "--rate",
        "3000",
        "--minutes",
        "1",
        "--queries",
        "6",
        "--workers",
        "2",
        "--eps",
        "0",
        "--metrics-json",
        "--trace-out",
        trace.to_str().unwrap(),
        "--prom-out",
        prom.to_str().unwrap(),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let trace_text = std::fs::read_to_string(&trace);
    let prom_text = std::fs::read_to_string(&prom);
    std::fs::remove_file(&trace).ok();
    std::fs::remove_file(&prom).ok();
    assert!(
        out.status.success(),
        "exporter run failed with {}:\n--- stdout ---\n{stdout}\n--- stderr ---\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr),
    );

    // Chrome trace: strict JSON, the trace_event envelope, and at least
    // the engine's batch-processing stage among the span names.
    let trace_text = trace_text.expect("--trace-out file exists");
    let doc = json::parse(&trace_text).expect("chrome trace parses as JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty(), "trace recorded spans");
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .collect();
    for stage in ["ingest", "process_batch"] {
        assert!(names.contains(&stage), "trace has {stage} spans: {names:?}");
    }
    for e in events {
        assert_eq!(
            e.get("ph").and_then(Json::as_str),
            Some("X"),
            "complete-event phase"
        );
        assert!(e.get("ts").and_then(Json::as_f64).is_some(), "ts field");
        assert!(e.get("dur").and_then(Json::as_f64).is_some(), "dur field");
    }

    // Prometheus text: engine families plus the per-share-group rows.
    let prom_text = prom_text.expect("--prom-out file exists");
    for needle in [
        "# TYPE hamlet_ingested_total counter",
        "# TYPE hamlet_results_total counter",
        "hamlet_group_events_routed_total{group=",
        "hamlet_group_shared{group=",
        "hamlet_latency_seconds_count",
    ] {
        assert!(
            prom_text.contains(needle),
            "prometheus export missing {needle:?}:\n{prom_text}"
        );
    }

    // --metrics-json: every line is valid JSON; the last snapshot has
    // per-group rows and the sparse latency histogram field.
    let lines: Vec<&str> = stdout.lines().filter(|l| l.starts_with('{')).collect();
    assert!(!lines.is_empty(), "metrics-json lines emitted:\n{stdout}");
    for line in &lines {
        json::parse(line).unwrap_or_else(|e| panic!("bad metrics line {line}: {e:?}"));
    }
    let last = json::parse(lines.last().expect("at least one line")).expect("parses");
    let groups = last
        .get("groups")
        .and_then(Json::as_arr)
        .expect("groups array");
    assert!(!groups.is_empty(), "final snapshot has share-group rows");
    for g in groups {
        assert!(g.get("events_routed").and_then(Json::as_f64).is_some());
        assert!(g.get("benefit").and_then(Json::as_f64).is_some());
    }
    assert!(
        last.get("latency")
            .and_then(|l| l.get("buckets_ns"))
            .and_then(Json::as_arr)
            .is_some(),
        "latency histogram buckets present"
    );
}

#[test]
fn exporter_flags_are_pipeline_only() {
    let out = cli(&["--trace-out", "/tmp/never-written.json"]);
    assert!(
        !out.status.success(),
        "offline mode must reject --trace-out"
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("pipeline-mode flag"),
        "error should say the flags are pipeline-only"
    );
}
