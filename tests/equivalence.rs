//! Cross-strategy equivalence: HAMLET under every sharing policy, the
//! independent GRETA implementation, and the brute-force two-step
//! enumerator must produce bit-identical aggregates on the same stream.
//!
//! This is the central correctness net of the reproduction: the paper's
//! Theorem 3.1 (Algorithm 1 returns correct counts) is checked here
//! against two independently-coded oracles, on hand-built and on
//! randomized streams.

use hamlet_baselines::{GretaEngine, TwoStepEngine};
use hamlet_core::{EngineConfig, HamletEngine, SharingPolicy, WindowResult};
use hamlet_query::{parse_query, Query};
use hamlet_types::{AttrValue, Event, Ts, TypeRegistry};
use proptest::prelude::*;
use std::sync::Arc;

fn registry() -> Arc<TypeRegistry> {
    let mut reg = TypeRegistry::new();
    for t in ["A", "B", "C", "D", "N"] {
        reg.register(t, &["g", "v"]);
    }
    Arc::new(reg)
}

fn ev(reg: &TypeRegistry, name: &str, t: u64, g: i64, v: f64) -> Event {
    Event::new(
        Ts(t),
        reg.type_id(name).expect("type registered"),
        vec![AttrValue::Int(g), AttrValue::Float(v)],
    )
}

fn normalize(mut rs: Vec<WindowResult>) -> Vec<(u32, String, u64, String)> {
    // Engines differ in which empty windows they materialize (shared groups
    // emit a row for every member; per-query engines only for queries whose
    // partition saw events). Zero/absent rows are semantically identical,
    // so drop them before comparing.
    rs.retain(|r| match r.value {
        hamlet_core::AggValue::Count(c) => c != 0,
        hamlet_core::AggValue::Float(f) => f != 0.0,
        hamlet_core::AggValue::Null => false,
    });
    rs.sort_by(|a, b| {
        (a.query, a.window_start, format!("{}", a.group_key)).cmp(&(
            b.query,
            b.window_start,
            format!("{}", b.group_key),
        ))
    });
    rs.into_iter()
        .map(|r| {
            (
                r.query.0,
                format!("{}", r.group_key),
                r.window_start.ticks(),
                format!("{:?}", r.value),
            )
        })
        .collect()
}

fn run_hamlet(
    reg: &Arc<TypeRegistry>,
    queries: &[Query],
    events: &[Event],
    policy: SharingPolicy,
) -> Vec<WindowResult> {
    let mut eng = HamletEngine::new(
        reg.clone(),
        queries.to_vec(),
        EngineConfig {
            policy,
            ..EngineConfig::default()
        },
    )
    .expect("engine builds");
    let mut out = Vec::new();
    for e in events {
        out.extend(eng.process(e));
    }
    out.extend(eng.flush());
    out
}

fn run_greta(reg: &Arc<TypeRegistry>, queries: &[Query], events: &[Event]) -> Vec<WindowResult> {
    let mut eng = GretaEngine::new(reg.clone(), queries.to_vec()).expect("engine builds");
    let mut out = Vec::new();
    for e in events {
        out.extend(eng.process(e));
    }
    out.extend(eng.flush());
    out
}

fn run_twostep(reg: &Arc<TypeRegistry>, queries: &[Query], events: &[Event]) -> Vec<WindowResult> {
    let mut eng = TwoStepEngine::new(reg.clone(), queries.to_vec(), None).expect("engine builds");
    let mut out = Vec::new();
    for e in events {
        out.extend(eng.process(e));
    }
    out.extend(eng.flush());
    assert_eq!(eng.truncated(), 0, "oracle must not truncate");
    out
}

/// Asserts all five engines agree on the stream.
fn assert_all_agree(reg: &Arc<TypeRegistry>, queries: &[Query], events: &[Event]) {
    let base = normalize(run_greta(reg, queries, events));
    let two = normalize(run_twostep(reg, queries, events));
    assert_eq!(base, two, "GRETA vs two-step oracle");
    for policy in [
        SharingPolicy::Dynamic,
        SharingPolicy::AlwaysShare,
        SharingPolicy::NeverShare,
    ] {
        let got = normalize(run_hamlet(reg, queries, events, policy));
        assert_eq!(base, got, "HAMLET {policy:?} vs GRETA");
    }
}

#[test]
fn figure3b_workload_equivalence() {
    let reg = registry();
    let queries = vec![
        parse_query(&reg, 1, "RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 100").unwrap(),
        parse_query(&reg, 2, "RETURN COUNT(*) PATTERN SEQ(C, B+) WITHIN 100").unwrap(),
    ];
    let events = vec![
        ev(&reg, "A", 1, 0, 1.0),
        ev(&reg, "A", 2, 0, 2.0),
        ev(&reg, "C", 3, 0, 3.0),
        ev(&reg, "B", 4, 0, 4.0),
        ev(&reg, "B", 5, 0, 5.0),
        ev(&reg, "B", 6, 0, 6.0),
        ev(&reg, "B", 7, 0, 7.0),
        ev(&reg, "A", 8, 0, 8.0),
        ev(&reg, "C", 9, 0, 9.0),
        ev(&reg, "B", 10, 0, 10.0),
        ev(&reg, "B", 11, 0, 11.0),
    ];
    assert_all_agree(&reg, &queries, &events);
}

#[test]
fn predicate_divergence_equivalence() {
    // Different thresholds per query → event-level snapshots in shared
    // mode (Def. 9).
    let reg = registry();
    let queries = vec![
        parse_query(
            &reg,
            1,
            "RETURN COUNT(*) PATTERN SEQ(A, B+) WHERE B.v < 6 WITHIN 100",
        )
        .unwrap(),
        parse_query(
            &reg,
            2,
            "RETURN COUNT(*) PATTERN SEQ(C, B+) WHERE B.v < 9 WITHIN 100",
        )
        .unwrap(),
    ];
    let events = vec![
        ev(&reg, "A", 1, 0, 0.0),
        ev(&reg, "C", 2, 0, 0.0),
        ev(&reg, "B", 3, 0, 5.0),
        ev(&reg, "B", 4, 0, 7.0), // q1 rejects, q2 accepts
        ev(&reg, "B", 5, 0, 2.0),
        ev(&reg, "B", 6, 0, 9.5), // both reject
        ev(&reg, "B", 7, 0, 8.0), // only q2
    ];
    assert_all_agree(&reg, &queries, &events);
}

#[test]
fn edge_predicate_equivalence() {
    // Rising-value constraint between consecutive B events.
    let reg = registry();
    let queries = vec![
        parse_query(
            &reg,
            1,
            "RETURN COUNT(*) PATTERN SEQ(A, B+) WHERE B.v > PREV.v WITHIN 100",
        )
        .unwrap(),
        parse_query(&reg, 2, "RETURN COUNT(*) PATTERN SEQ(C, B+) WITHIN 100").unwrap(),
    ];
    let events = vec![
        ev(&reg, "A", 1, 0, 0.0),
        ev(&reg, "C", 2, 0, 0.0),
        ev(&reg, "B", 3, 0, 3.0),
        ev(&reg, "B", 4, 0, 1.0),
        ev(&reg, "B", 5, 0, 4.0),
        ev(&reg, "B", 6, 0, 2.0),
        ev(&reg, "B", 7, 0, 5.0),
    ];
    assert_all_agree(&reg, &queries, &events);
}

#[test]
fn sum_avg_count_type_equivalence() {
    let reg = registry();
    let queries = vec![
        parse_query(&reg, 1, "RETURN SUM(B.v) PATTERN SEQ(A, B+) WITHIN 50").unwrap(),
        parse_query(&reg, 2, "RETURN AVG(B.v) PATTERN SEQ(C, B+) WITHIN 50").unwrap(),
        parse_query(&reg, 3, "RETURN COUNT(B) PATTERN SEQ(D, B+) WITHIN 50").unwrap(),
    ];
    let events = vec![
        ev(&reg, "A", 1, 0, 0.0),
        ev(&reg, "C", 2, 0, 0.0),
        ev(&reg, "D", 3, 0, 0.0),
        ev(&reg, "B", 4, 0, 1.5),
        ev(&reg, "B", 5, 0, 2.25),
        ev(&reg, "B", 6, 0, -3.0),
        ev(&reg, "B", 7, 0, 10.0),
    ];
    assert_all_agree(&reg, &queries, &events);
}

#[test]
fn min_max_equivalence() {
    let reg = registry();
    let queries = vec![
        parse_query(&reg, 1, "RETURN MIN(B.v) PATTERN SEQ(A, B+) WITHIN 50").unwrap(),
        parse_query(&reg, 2, "RETURN MAX(B.v) PATTERN SEQ(C, B+) WITHIN 50").unwrap(),
    ];
    let events = vec![
        ev(&reg, "A", 1, 0, 0.0),
        ev(&reg, "C", 2, 0, 0.0),
        ev(&reg, "B", 3, 0, 7.5),
        ev(&reg, "B", 4, 0, -2.0),
        ev(&reg, "B", 5, 0, 11.0),
    ];
    assert_all_agree(&reg, &queries, &events);
}

#[test]
fn group_by_and_sliding_window_equivalence() {
    let reg = registry();
    let queries = vec![
        parse_query(
            &reg,
            1,
            "RETURN COUNT(*) PATTERN SEQ(A, B+) GROUP BY g WITHIN 10 SLIDE 5",
        )
        .unwrap(),
        parse_query(
            &reg,
            2,
            "RETURN COUNT(*) PATTERN SEQ(C, B+) GROUP BY g WITHIN 10 SLIDE 5",
        )
        .unwrap(),
    ];
    let mut events = Vec::new();
    for t in 0..30u64 {
        let name = match t % 5 {
            0 => "A",
            1 => "C",
            _ => "B",
        };
        events.push(ev(&reg, name, t, (t % 2) as i64, t as f64));
    }
    assert_all_agree(&reg, &queries, &events);
}

#[test]
fn negation_equivalence() {
    let reg = registry();
    let queries = vec![
        parse_query(
            &reg,
            1,
            "RETURN COUNT(*) PATTERN SEQ(A, N? , B+) WITHIN 100"
                .replace("N? ,", "NOT N,")
                .as_str(),
        )
        .unwrap(),
        parse_query(&reg, 2, "RETURN COUNT(*) PATTERN SEQ(C, B+) WITHIN 100").unwrap(),
    ];
    let events = vec![
        ev(&reg, "A", 1, 0, 0.0),
        ev(&reg, "B", 2, 0, 0.0),
        ev(&reg, "N", 3, 0, 0.0),
        ev(&reg, "C", 4, 0, 0.0),
        ev(&reg, "A", 5, 0, 0.0),
        ev(&reg, "B", 6, 0, 0.0),
        ev(&reg, "B", 7, 0, 0.0),
    ];
    assert_all_agree(&reg, &queries, &events);
}

#[test]
fn nested_kleene_equivalence() {
    // (SEQ(A, B+))+ — Example 10's extra loops.
    let reg = registry();
    let queries = vec![
        parse_query(&reg, 1, "RETURN COUNT(*) PATTERN (SEQ(A, B+))+ WITHIN 100").unwrap(),
        parse_query(&reg, 2, "RETURN COUNT(*) PATTERN (SEQ(C, B+))+ WITHIN 100").unwrap(),
    ];
    let events = vec![
        ev(&reg, "A", 1, 0, 0.0),
        ev(&reg, "C", 2, 0, 0.0),
        ev(&reg, "B", 3, 0, 0.0),
        ev(&reg, "B", 4, 0, 0.0),
        ev(&reg, "A", 5, 0, 0.0),
        ev(&reg, "C", 6, 0, 0.0),
        ev(&reg, "B", 7, 0, 0.0),
    ];
    assert_all_agree(&reg, &queries, &events);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Randomized streams over {A, B, C} with random per-query thresholds:
    /// all strategies agree.
    #[test]
    fn random_streams_all_strategies_agree(
        types in proptest::collection::vec(0..3usize, 1..14),
        vals in proptest::collection::vec(0.0f64..10.0, 14),
        groups in proptest::collection::vec(0i64..2, 14),
        th1 in 0.0f64..10.0,
        th2 in 0.0f64..10.0,
        window in prop_oneof![Just(8u64), Just(16u64), Just(100u64)],
    ) {
        let reg = registry();
        let names = ["A", "B", "C"];
        let events: Vec<Event> = types
            .iter()
            .enumerate()
            .map(|(i, &ti)| ev(&reg, names[ti], i as u64, groups[i % groups.len()], vals[i % vals.len()]))
            .collect();
        let queries = vec![
            parse_query(&reg, 1, &format!(
                "RETURN COUNT(*) PATTERN SEQ(A, B+) WHERE B.v < {th1} GROUP BY g WITHIN {window}"
            )).unwrap(),
            parse_query(&reg, 2, &format!(
                "RETURN COUNT(*) PATTERN SEQ(C, B+) WHERE B.v < {th2} GROUP BY g WITHIN {window}"
            )).unwrap(),
        ];
        assert_all_agree(&reg, &queries, &events);
    }

    /// Pure-Kleene workloads (B is start, loop and end type at once).
    #[test]
    fn random_pure_kleene_agree(
        types in proptest::collection::vec(0..3usize, 1..12),
        th in 0.0f64..10.0,
    ) {
        let reg = registry();
        let names = ["A", "B", "C"];
        let events: Vec<Event> = types
            .iter()
            .enumerate()
            .map(|(i, &ti)| ev(&reg, names[ti], i as u64, 0, (i % 7) as f64))
            .collect();
        let queries = vec![
            parse_query(&reg, 1, "RETURN COUNT(*) PATTERN B+ WITHIN 100").unwrap(),
            parse_query(&reg, 2, &format!(
                "RETURN COUNT(*) PATTERN SEQ(A, B+) WHERE B.v < {th} WITHIN 100"
            )).unwrap(),
        ];
        assert_all_agree(&reg, &queries, &events);
    }
}

#[test]
fn three_position_pattern_equivalence() {
    // Kleene in the middle: SEQ(A, B+, C) — end type is C, so results
    // accumulate at C events.
    let reg = registry();
    let queries = vec![
        parse_query(&reg, 1, "RETURN COUNT(*) PATTERN SEQ(A, B+, C) WITHIN 100").unwrap(),
        parse_query(&reg, 2, "RETURN COUNT(*) PATTERN SEQ(D, B+, C) WITHIN 100").unwrap(),
    ];
    let events = vec![
        ev(&reg, "A", 1, 0, 0.0),
        ev(&reg, "D", 2, 0, 0.0),
        ev(&reg, "B", 3, 0, 0.0),
        ev(&reg, "B", 4, 0, 0.0),
        ev(&reg, "C", 5, 0, 0.0),
        ev(&reg, "B", 6, 0, 0.0),
        ev(&reg, "C", 7, 0, 0.0),
    ];
    assert_all_agree(&reg, &queries, &events);
}

#[test]
fn pure_kleene_three_queries_mixed_lengths() {
    // Pattern lengths 1–3 sharing B+ (the workload-2 shape of §6.1).
    let reg = registry();
    let queries = vec![
        parse_query(&reg, 1, "RETURN COUNT(*) PATTERN B+ WITHIN 100").unwrap(),
        parse_query(&reg, 2, "RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 100").unwrap(),
        parse_query(&reg, 3, "RETURN COUNT(*) PATTERN SEQ(C, B+, D) WITHIN 100").unwrap(),
    ];
    let events = vec![
        ev(&reg, "C", 1, 0, 0.0),
        ev(&reg, "A", 2, 0, 0.0),
        ev(&reg, "B", 3, 0, 0.0),
        ev(&reg, "B", 4, 0, 0.0),
        ev(&reg, "D", 5, 0, 0.0),
        ev(&reg, "B", 6, 0, 0.0),
        ev(&reg, "D", 7, 0, 0.0),
    ];
    assert_all_agree(&reg, &queries, &events);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Randomized streams over four types with mid-pattern Kleene and
    /// mixed predicates.
    #[test]
    fn random_three_position_agree(
        types in proptest::collection::vec(0..4usize, 1..13),
        th in 0.0f64..10.0,
    ) {
        let reg = registry();
        let names = ["A", "B", "C", "D"];
        let events: Vec<Event> = types
            .iter()
            .enumerate()
            .map(|(i, &ti)| ev(&reg, names[ti], i as u64, 0, (i % 9) as f64))
            .collect();
        let queries = vec![
            parse_query(&reg, 1, "RETURN COUNT(*) PATTERN SEQ(A, B+, C) WITHIN 100").unwrap(),
            parse_query(&reg, 2, &format!(
                "RETURN COUNT(*) PATTERN SEQ(D, B+) WHERE B.v < {th} WITHIN 100"
            )).unwrap(),
            parse_query(&reg, 3, "RETURN SUM(B.v) PATTERN SEQ(C, B+) WITHIN 100").unwrap(),
        ];
        assert_all_agree(&reg, &queries, &events);
    }

    /// Randomized edge-predicate streams: rising/falling constraints mixed
    /// with selection predicates.
    #[test]
    fn random_edge_predicates_agree(
        types in proptest::collection::vec(0..3usize, 1..12),
        rising in proptest::bool::ANY,
        th in 2.0f64..8.0,
    ) {
        let reg = registry();
        let names = ["A", "B", "C"];
        let events: Vec<Event> = types
            .iter()
            .enumerate()
            .map(|(i, &ti)| ev(&reg, names[ti], i as u64, 0, ((i * 5) % 11) as f64))
            .collect();
        let op = if rising { ">" } else { "<" };
        let queries = vec![
            parse_query(&reg, 1, &format!(
                "RETURN COUNT(*) PATTERN SEQ(A, B+) WHERE B.v {op} PREV.v WITHIN 100"
            )).unwrap(),
            parse_query(&reg, 2, &format!(
                "RETURN COUNT(*) PATTERN SEQ(C, B+) WHERE B.v < {th} WITHIN 100"
            )).unwrap(),
        ];
        assert_all_agree(&reg, &queries, &events);
    }
}

// ---------------------------------------------------------------------------
// Batched execution (PR 6): `process_batch` must be byte-identical to the
// per-event fold — not merely equivalent after normalization. Same results,
// same order, same checkpoints, on in-order and bounded-late streams, alone
// and behind the sharded parallel engine.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Folding `process` and calling `process_batch` over any chunking of
    /// the same stream produce identical output vectors (zero rows and
    /// emission order included), identical flushes, and identical
    /// checkpoints — with repeated ticks and bounded-late arrivals.
    #[test]
    fn batch_is_byte_identical_to_fold(
        types in proptest::collection::vec(0..3usize, 1..60),
        steps in proptest::collection::vec(0..2u64, 60),
        delays in proptest::collection::vec(0..3u64, 60),
        groups in proptest::collection::vec(0i64..3, 60),
        lateness in 0..3u64,
        batch_size in 1usize..20,
        window in prop_oneof![Just(8u64), Just(16u64)],
    ) {
        let reg = registry();
        let names = ["A", "B", "C"];
        let mut t = 0u64;
        let events: Vec<Event> = types
            .iter()
            .enumerate()
            .map(|(i, &ti)| {
                t += steps[i % steps.len()];
                let delay = if lateness == 0 { 0 } else { delays[i % delays.len()] % (lateness + 1) };
                ev(&reg, names[ti], t.saturating_sub(delay), groups[i % groups.len()], (i % 7) as f64)
            })
            .collect();
        let queries = vec![
            parse_query(&reg, 1, &format!(
                "RETURN COUNT(*) PATTERN SEQ(A, B+) WHERE B.v < 4 GROUP BY g WITHIN {window}"
            )).unwrap(),
            parse_query(&reg, 2, &format!(
                "RETURN COUNT(*) PATTERN SEQ(C, B+) GROUP BY g WITHIN {window}"
            )).unwrap(),
        ];
        let mk = || HamletEngine::new(reg.clone(), queries.clone(), EngineConfig::default()).unwrap();

        let mut fold_eng = mk();
        let mut fold_out = Vec::new();
        for e in &events {
            fold_out.extend(fold_eng.process(e));
        }

        let mut batch_eng = mk();
        let mut batch_out = Vec::new();
        for chunk in events.chunks(batch_size) {
            batch_out.extend(batch_eng.process_batch(chunk));
        }

        prop_assert_eq!(&batch_out, &fold_out);
        let batch_flush = batch_eng.flush();
        prop_assert_eq!(&batch_flush, &fold_eng.flush());

        // Checkpoint mid-batch-stream: freeze after an arbitrary prefix
        // of chunks, restore into a fresh engine, continue — the restored
        // engine re-serializes to the same bytes and the continued run is
        // byte-identical to the uninterrupted one.
        let cut = (batch_size * 2).min(events.len());
        let mut pre = mk();
        let mut resumed_out = Vec::new();
        for chunk in events[..cut].chunks(batch_size) {
            resumed_out.extend(pre.process_batch(chunk));
        }
        let blob = pre.checkpoint();
        let mut resumed = mk();
        resumed.restore(&blob).unwrap();
        prop_assert_eq!(resumed.checkpoint(), blob);
        for chunk in events[cut..].chunks(batch_size) {
            resumed_out.extend(resumed.process_batch(chunk));
        }
        resumed_out.extend(resumed.flush());
        let mut gold = batch_out;
        gold.extend(batch_flush);
        prop_assert_eq!(resumed_out, gold);
    }

    /// The sharded parallel engine (which feeds workers whole batches)
    /// returns identical reports for 1 and 4 workers across batch sizes.
    #[test]
    fn parallel_batching_is_inert(
        types in proptest::collection::vec(0..3usize, 1..40),
        groups in proptest::collection::vec(0i64..4, 40),
        batch_size in 1usize..30,
    ) {
        let reg = registry();
        let names = ["A", "B", "C"];
        let events: Vec<Event> = types
            .iter()
            .enumerate()
            .map(|(i, &ti)| ev(&reg, names[ti], i as u64, groups[i % groups.len()], (i % 5) as f64))
            .collect();
        let queries = vec![
            parse_query(&reg, 1, "RETURN COUNT(*) PATTERN SEQ(A, B+) GROUP BY g WITHIN 16").unwrap(),
            parse_query(&reg, 2, "RETURN COUNT(*) PATTERN SEQ(C, B+) GROUP BY g WITHIN 16").unwrap(),
        ];
        use hamlet_core::ParallelEngine;
        let run = |workers: u32, batch: usize| {
            ParallelEngine::new(reg.clone(), queries.clone(), EngineConfig::default(), workers)
                .unwrap()
                .with_batch_size(batch)
                .run(&events)
                .results
        };
        let base = run(1, 1);
        prop_assert_eq!(&run(1, batch_size), &base);
        prop_assert_eq!(&run(4, 1), &base);
        prop_assert_eq!(&run(4, batch_size), &base);
    }
}
