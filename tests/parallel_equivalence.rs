//! Parallel/single-threaded equivalence: `ParallelEngine` with any worker
//! count must produce *bit-identical* aggregates and window sets to a
//! plain `HamletEngine` run — HAMLET's partitions are independent (§2.2),
//! so sharding them across workers must not change a single result row.
//!
//! Exercised on the two generators whose workloads stress the sharing
//! machinery from both ends: ridesharing (one hot shared Kleene type,
//! Fig. 1) and smart-home (many groups, replicated sliding windows).

use hamlet::prelude::*;
use hamlet_stream::{ridesharing, smart_home, GenConfig};
use proptest::prelude::*;

/// Sorted full result set of a single-threaded run (the canonical report
/// order `ParallelReport.results` guarantees).
fn reference(
    reg: &std::sync::Arc<TypeRegistry>,
    queries: &[Query],
    events: &[Event],
) -> Vec<WindowResult> {
    let mut eng = HamletEngine::new(reg.clone(), queries.to_vec(), EngineConfig::default())
        .expect("engine builds");
    let mut out = Vec::new();
    for e in events {
        out.extend(eng.process(e));
    }
    out.extend(eng.flush());
    sort_results(&mut out);
    out
}

fn assert_workers_match(
    reg: &std::sync::Arc<TypeRegistry>,
    queries: &[Query],
    events: &[Event],
    label: &str,
) {
    let expected = reference(reg, queries, events);
    assert!(!expected.is_empty(), "{label}: workload produced results");
    for workers in [1u32, 2, 4, 8] {
        let report = ParallelEngine::new(
            reg.clone(),
            queries.to_vec(),
            EngineConfig::default(),
            workers,
        )
        .expect("engine builds")
        .run(events);
        // Bit-identical: same window set, same keys, same aggregates,
        // same (guaranteed) order — zero rows included, no normalization.
        assert_eq!(
            expected, report.results,
            "{label}: {workers} workers diverged from single-threaded run"
        );
    }
}

#[test]
fn ridesharing_workers_are_bit_identical() {
    let reg = ridesharing::registry();
    let queries = ridesharing::workload_shared_kleene(&reg, 6, 30);
    let cfg = GenConfig {
        events_per_min: 1_500,
        minutes: 1,
        mean_burst: 20.0,
        num_groups: 16,
        group_skew: 0.0,
        seed: 21,
        max_lateness: 0,
    };
    let events = ridesharing::generate(&reg, &cfg);
    assert_workers_match(&reg, &queries, &events, "ridesharing");
}

/// High partition cardinality: hundreds of live keys per window drive
/// the watermark expiration index (PR 3) — every watermark advance pops
/// a batch of windows across many partitions, and the merged parallel
/// output must still match the single-threaded run byte for byte at
/// every worker count.
#[test]
fn high_cardinality_workers_are_bit_identical() {
    let reg = ridesharing::registry();
    let queries = ridesharing::workload_shared_kleene(&reg, 5, 15);
    let cfg = GenConfig {
        events_per_min: 4_000,
        minutes: 1,
        mean_burst: 8.0,
        num_groups: 400,
        group_skew: 0.2,
        seed: 91,
        max_lateness: 0,
    };
    let events = ridesharing::generate(&reg, &cfg);
    assert_workers_match(&reg, &queries, &events, "high_cardinality");
}

#[test]
fn smart_home_workers_are_bit_identical() {
    let reg = smart_home::registry();
    let queries = smart_home::workload(&reg, 6, 60);
    let cfg = GenConfig {
        events_per_min: 1_500,
        minutes: 1,
        mean_burst: 30.0,
        num_groups: 12,
        group_skew: 0.0,
        seed: 33,
        max_lateness: 0,
    };
    let events = smart_home::generate(&reg, &cfg);
    assert_workers_match(&reg, &queries, &events, "smart_home");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Randomized stream shapes: burstiness, skew, and seed vary; every
    /// worker count must still reproduce the single-threaded results
    /// bit-for-bit on both generators.
    #[test]
    fn random_streams_shard_losslessly(
        seed in 0u64..1_000,
        mean_burst in 1.0f64..60.0,
        skew in 0.0f64..1.0,
        groups in 1u64..24,
    ) {
        let cfg = GenConfig {
            events_per_min: 800,
            minutes: 1,
            mean_burst,
            num_groups: groups,
            group_skew: skew,
            seed,
            max_lateness: 0,
        };
        let reg = ridesharing::registry();
        let queries = ridesharing::workload_shared_kleene(&reg, 4, 20);
        let events = ridesharing::generate(&reg, &cfg);
        let expected = reference(&reg, &queries, &events);
        for workers in [2u32, 5] {
            let report = ParallelEngine::new(
                reg.clone(),
                queries.clone(),
                EngineConfig::default(),
                workers,
            )
            .unwrap()
            .run(&events);
            prop_assert_eq!(&expected, &report.results, "{} workers", workers);
        }
    }
}
