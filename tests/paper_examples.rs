//! End-to-end checks of the paper's worked examples: the Fig. 4 stream,
//! Tables 3–5 snapshot values, the Fig. 6 split/merge walkthrough, and the
//! Fig. 1 ridesharing queries.

use hamlet_core::bitset::QSet;
use hamlet_core::run::{GroupRuntime, Run};
use hamlet_core::workload::analyze;
use hamlet_core::{EngineConfig, HamletEngine, SharingPolicy};
use hamlet_query::{parse_query, Pattern, Query, Window};
use hamlet_types::{AttrValue, Event, EventTypeId, TrendVal, Ts, TypeRegistry};
use std::sync::Arc;

const A: EventTypeId = EventTypeId(0);
const B: EventTypeId = EventTypeId(1);
const C: EventTypeId = EventTypeId(2);

fn abc_runtime() -> Arc<GroupRuntime> {
    let q1 = Arc::new(Query::count_star(
        1,
        Pattern::seq(vec![Pattern::Type(A), Pattern::plus(Pattern::Type(B))]),
        Window::tumbling(10_000),
    ));
    let q2 = Arc::new(Query::count_star(
        2,
        Pattern::seq(vec![Pattern::Type(C), Pattern::plus(Pattern::Type(B))]),
        Window::tumbling(10_000),
    ));
    let plan = analyze(&[q1, q2]).expect("queries analyze");
    assert_eq!(plan.groups.len(), 1, "q1, q2 are sharable (Def. 5)");
    GroupRuntime::new(&plan.groups[0])
}

fn ev(ty: EventTypeId, t: u64) -> Event {
    Event::new(Ts(t), ty, vec![])
}

/// The Fig. 4(b) stream: graphlets A1 (a1,a2), C2 (c1), B3 (b3..b6),
/// A4 (a7), C5 (c8), B6 (b9, b10). Checks the snapshot values of Table 4:
/// x = 2 for q1, 1 for q2; final counts follow Table 3's propagation.
#[test]
fn figure4b_tables_3_and_4() {
    let rt = abc_runtime();
    let tl = |t| rt.template.local(t).unwrap();
    let mut run = Run::new(rt.clone());
    let all = QSet::all(2);

    run.process_burst(tl(A), &[ev(A, 1), ev(A, 2)], &all);
    run.process_burst(tl(C), &[ev(C, 3)], &all);
    // Graphlet B3: four B events share one snapshot x.
    run.process_burst(tl(B), &[ev(B, 4), ev(B, 5), ev(B, 6), ev(B, 7)], &all);
    assert_eq!(run.num_snapshots(), 1, "only the graphlet snapshot x");

    // Table 3: counts within B3 are x, 2x, 4x, 8x → sum(B3) = 15x.
    // With x(q1) = sum(A1) = 2 and x(q2) = sum(C2) = 1 (Table 4):
    // fcount(q1) so far = 30, fcount(q2) = 15.
    run.process_burst(tl(A), &[ev(A, 8)], &all); // A4 — deactivates B3
    run.process_burst(tl(C), &[ev(C, 9)], &all); // C5

    // Graphlet B6 opens with snapshot y; Table 4: value(y, q1) =
    // x + sum(B3) + sum(A4) = 2 + 30 + 1 = 33? The paper counts
    // sum(A4,q1) = 2 because A4 = {a7} extends *all* trends… a7's count is
    // 1 (one new trend start), so y(q1) = 2 + 30 + 1 = 33 in our exact
    // semantics. The paper's Table 4 uses sum(A4,q1) = 2 with a1,a2,a7 in
    // scope; its arithmetic illustration differs from Eq. 2 on this cell —
    // we assert the Eq. 2-consistent value, cross-checked by brute force
    // below.
    run.process_burst(tl(B), &[ev(B, 10), ev(B, 11)], &all);
    assert_eq!(run.num_snapshots(), 2, "graphlet snapshots x and y");

    let out = run.finalize();
    // Exact per-query totals, independently verified by the two-step
    // enumerator in tests/equivalence.rs-style fashion:
    // q1: B3 contributes 15·x(q1)=30; y(q1) = 33; B6 contributes y + 2y =
    // 3·33 = 99 → 129.
    assert_eq!(out[0].raw.count, TrendVal(30 + 99));
    // q2: 15·1 = 15; y(q2) = 1 + 15 + 1 = 17; B6 → 3·17 = 51 → 66.
    assert_eq!(out[1].raw.count, TrendVal(15 + 51));
}

/// Fig. 6 walkthrough: share B3, split into non-shared B4/B5, merge into
/// B6 — counters move and totals stay exact.
#[test]
fn figure6_split_merge_walkthrough() {
    let rt = abc_runtime();
    let tl = |t| rt.template.local(t).unwrap();
    let all = QSet::all(2);
    let none = QSet::new();

    let mut run = Run::new(rt.clone());
    let mut reference = Run::new(rt.clone());

    // Pane 1: a, c, then a shared burst (Fig. 6(a)).
    let bursts: Vec<(usize, Vec<Event>, &QSet)> = vec![
        (tl(A), vec![ev(A, 1)], &all),
        (tl(C), vec![ev(C, 2)], &all),
        (tl(B), vec![ev(B, 3), ev(B, 4), ev(B, 5), ev(B, 6)], &all),
        // Pane 2: optimizer decides to split (Fig. 6(d)).
        (tl(B), vec![ev(B, 7), ev(B, 8)], &none),
        // Pane 3: merge again (Fig. 6(f)).
        (tl(B), vec![ev(B, 9), ev(B, 10)], &all),
    ];
    for (ty, events, share) in &bursts {
        run.process_burst(*ty, events, share);
        reference.process_burst(*ty, events, &none);
    }
    let stats = run.stats();
    assert!(stats.splits >= 1, "shared B3 was split");
    assert!(stats.merges >= 1, "solo B4/B5 merged into B6");
    assert!(stats.graphlet_snapshots >= 2, "x and the merge snapshot z");
    assert_eq!(run.finalize(), reference.finalize());
}

/// Fig. 1's three ridesharing queries parse, compile into one share group
/// (they all share Travel+ with identical grouping), and run.
#[test]
fn figure1_queries_end_to_end() {
    let mut reg = TypeRegistry::new();
    reg.register("Request", &["district", "driver", "rider", "kind"]);
    reg.register("Travel", &["district", "driver", "rider", "speed"]);
    reg.register("Pickup", &["district", "driver", "rider"]);
    reg.register("Dropoff", &["district", "driver", "rider"]);
    reg.register("Cancel", &["district", "driver", "rider"]);
    reg.register("Accept", &["district", "driver", "rider"]);
    let reg = Arc::new(reg);

    // q1: trips where the driver traveled but never picked up.
    let q1 = parse_query(
        &reg,
        1,
        "RETURN COUNT(*) PATTERN SEQ(Request, Travel+, NOT Pickup) \
         WHERE [driver, rider] GROUP BY district WITHIN 1800",
    )
    .unwrap();
    // q2: pool riders dropped off.
    let q2 = parse_query(
        &reg,
        2,
        "RETURN COUNT(*) PATTERN SEQ(Accept, Travel+, Dropoff) \
         WHERE [driver, rider] GROUP BY district WITHIN 1800",
    )
    .unwrap();
    // q3: cancellations in slow traffic.
    let q3 = parse_query(
        &reg,
        3,
        "RETURN COUNT(*) PATTERN SEQ(Request, Travel+, Cancel) \
         WHERE Travel.speed < 10 AND [driver, rider] \
         GROUP BY district WITHIN 1800",
    )
    .unwrap();
    // q1 and q3 share Request (duplicate start types are fine across
    // queries); all three share Travel+.
    let mut engine =
        HamletEngine::new(reg.clone(), vec![q1, q2, q3], EngineConfig::default()).unwrap();
    assert_eq!(
        engine.num_groups(),
        1,
        "Fig. 1 queries form one share group"
    );

    let mk = |name: &str, t: u64, speed: f64| {
        let ty = reg.type_id(name).unwrap();
        let mut e = hamlet_types::EventBuilder::new(&reg, ty, t)
            .attr("district", 7i64)
            .attr("driver", 1i64)
            .attr("rider", 2i64);
        if reg.attr_index(ty, "speed").is_some() {
            e = e.attr("speed", speed);
        }
        e.build()
    };
    let events = vec![
        mk("Request", 0, 0.0),
        mk("Accept", 10, 0.0),
        mk("Travel", 20, 8.0),
        mk("Travel", 40, 9.0),
        mk("Cancel", 60, 0.0),
        mk("Dropoff", 80, 0.0),
    ];
    let mut results = Vec::new();
    for e in &events {
        results.extend(engine.process(e));
    }
    results.extend(engine.flush());
    let get = |id: u32| {
        results
            .iter()
            .find(|r| r.query == hamlet_query::QueryId(id))
            .map(|r| r.value.as_count())
            .unwrap_or(0)
    };
    // q3 (cancel after slow travel): trends SEQ(Request, T+, Cancel) =
    // {t1}, {t2}, {t1,t2} → 3.
    assert_eq!(get(3), 3);
    // q2 (accept … dropoff): 3 travel subsets likewise.
    assert_eq!(get(2), 3);
    // q1 (no pickup): no Pickup occurred, all travel trends count: 3.
    assert_eq!(get(1), 3);
}

/// §6.2 reports ~90% of bursts shared on the stock workload; sanity-check
/// that the dynamic optimizer shares most uniform bursts and that static
/// sharing creates strictly more snapshots on divergent workloads.
#[test]
fn dynamic_shares_uniform_bursts_and_prunes_divergent_ones() {
    let reg = hamlet_stream::stock::registry();
    let cfg = hamlet_stream::GenConfig {
        events_per_min: 2_000,
        minutes: 2,
        mean_burst: 120.0,
        num_groups: 16,
        group_skew: 0.0,
        seed: 3,
        max_lateness: 0,
    };
    let events = hamlet_stream::stock::generate(&reg, &cfg);

    // Uniform workload: dynamic shares (almost) every Tick burst.
    let uniform = hamlet_stream::stock::workload_uniform(&reg, 10, 120);
    let mut eng = HamletEngine::new(reg.clone(), uniform, EngineConfig::default()).unwrap();
    for e in &events {
        eng.process(e);
    }
    eng.flush();
    let s = eng.stats();
    assert!(
        s.runs.shared_bursts as f64 >= 0.5 * (s.runs.shared_bursts + s.runs.solo_bursts) as f64,
        "uniform workload mostly shared: {s:?}"
    );

    // Divergent workload: static creates strictly more snapshots.
    let diverse = hamlet_stream::stock::workload_diverse(&reg, 30, 99);
    let run_policy = |policy| {
        let mut eng = HamletEngine::new(
            reg.clone(),
            diverse.clone(),
            EngineConfig {
                policy,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        for e in &events {
            eng.process(e);
        }
        eng.flush();
        eng.stats().runs.snapshots()
    };
    let dynamic_snaps = run_policy(SharingPolicy::Dynamic);
    let static_snaps = run_policy(SharingPolicy::AlwaysShare);
    assert!(
        dynamic_snaps < static_snaps,
        "dynamic ({dynamic_snaps}) < static ({static_snaps}) snapshots"
    );
}

/// AVG = SUM / COUNT sharing (Def. 5): an AVG query and a SUM query on the
/// same attribute land in one share group.
#[test]
fn avg_shares_with_sum() {
    let mut reg = TypeRegistry::new();
    reg.register("A", &[]);
    reg.register("B", &["v"]);
    reg.register("C", &[]);
    let reg = Arc::new(reg);
    let queries = vec![
        parse_query(&reg, 1, "RETURN SUM(B.v) PATTERN SEQ(A, B+) WITHIN 100").unwrap(),
        parse_query(&reg, 2, "RETURN AVG(B.v) PATTERN SEQ(C, B+) WITHIN 100").unwrap(),
    ];
    let engine = HamletEngine::new(reg, queries, EngineConfig::default()).unwrap();
    assert_eq!(engine.num_groups(), 1);
}

/// MIN/MAX never join shared-graphlet execution (lattice values are not
/// ring-linear); they still produce correct results via the solo path.
#[test]
fn min_max_stay_non_shared() {
    let mut reg = TypeRegistry::new();
    reg.register("A", &[]);
    reg.register("B", &["v"]);
    reg.register("C", &[]);
    let reg = Arc::new(reg);
    let queries = vec![
        parse_query(&reg, 1, "RETURN MIN(B.v) PATTERN SEQ(A, B+) WITHIN 100").unwrap(),
        parse_query(&reg, 2, "RETURN MIN(B.v) PATTERN SEQ(C, B+) WITHIN 100").unwrap(),
    ];
    let mut engine = HamletEngine::new(
        reg.clone(),
        queries,
        EngineConfig {
            policy: SharingPolicy::AlwaysShare,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let evs = vec![
        Event::new(Ts(1), reg.type_id("A").unwrap(), vec![]),
        Event::new(Ts(2), reg.type_id("C").unwrap(), vec![]),
        Event::new(
            Ts(3),
            reg.type_id("B").unwrap(),
            vec![AttrValue::Float(4.0)],
        ),
        Event::new(
            Ts(4),
            reg.type_id("B").unwrap(),
            vec![AttrValue::Float(2.0)],
        ),
    ];
    let mut results = Vec::new();
    for e in &evs {
        results.extend(engine.process(e));
    }
    results.extend(engine.flush());
    assert_eq!(engine.stats().runs.shared_bursts, 0, "MIN never shares");
    for r in &results {
        assert_eq!(r.value, hamlet_core::AggValue::Float(2.0));
    }
}

/// The EMA divergence estimator changes only *decisions*, never results:
/// exact-scan and EMA modes agree bit-exactly on a divergent workload.
#[test]
fn ema_divergence_mode_preserves_results() {
    use hamlet_core::executor::DivergenceMode;
    let reg = hamlet_stream::stock::registry();
    let cfg = hamlet_stream::GenConfig {
        events_per_min: 1_000,
        minutes: 2,
        mean_burst: 60.0,
        num_groups: 8,
        group_skew: 0.0,
        seed: 77,
        max_lateness: 0,
    };
    let events = hamlet_stream::stock::generate(&reg, &cfg);
    let queries = hamlet_stream::stock::workload_diverse(&reg, 16, 42);
    let run_mode = |divergence| {
        let mut eng = HamletEngine::new(
            reg.clone(),
            queries.clone(),
            EngineConfig {
                divergence,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let mut out = Vec::new();
        for e in &events {
            out.extend(eng.process(e));
        }
        out.extend(eng.flush());
        out.sort_by_key(|r| (r.query, r.window_start, format!("{}", r.group_key)));
        out
    };
    let exact = run_mode(DivergenceMode::Exact);
    let ema = run_mode(DivergenceMode::Ema { alpha: 0.3 });
    assert_eq!(exact, ema);
}
