//! Smoke test: the CLI's `--churn-script` path end-to-end.
//!
//! Drives the `hamlet_cli` binary in pipeline mode with a temp script
//! that removes, re-adds, and adds a genuinely new query, and asserts
//! the run completes with the expected workload epoch in the summary.
//! Also checks the two documented rejection paths: a malformed script
//! line and using the flag outside pipeline mode both exit non-zero
//! with an error that names the problem.

use std::process::Command;

fn cli(extra: &[&str]) -> std::process::Output {
    let cargo = env!("CARGO");
    let manifest = concat!(env!("CARGO_MANIFEST_DIR"), "/Cargo.toml");
    let mut cmd = Command::new(cargo);
    cmd.args([
        "run",
        "-q",
        "--manifest-path",
        manifest,
        "--bin",
        "hamlet_cli",
    ]);
    if !cfg!(debug_assertions) {
        cmd.arg("--release");
    }
    cmd.arg("--");
    cmd.args(extra);
    cmd.output().expect("spawn hamlet_cli")
}

#[test]
fn churn_script_runs_and_reports_final_epoch() {
    let dir = std::env::temp_dir();
    let script = dir.join(format!("hamlet-churn-{}.txt", std::process::id()));
    // Three ops → final epoch 3. Query 10 is beyond --queries 6, so the
    // pool over-generates and the add registers a never-seen query.
    std::fs::write(
        &script,
        "# retire one of the initial queries, then grow the workload\n\
         10 remove 3\n\
         \n\
         20 add 3\n\
         30 add 10\n",
    )
    .unwrap();
    let out = cli(&[
        "pipeline",
        "--dataset",
        "ridesharing",
        "--rate",
        "3000",
        "--minutes",
        "1",
        "--queries",
        "6",
        "--workers",
        "2",
        "--eps",
        "0",
        "--churn-script",
        script.to_str().unwrap(),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    std::fs::remove_file(&script).ok();
    assert!(
        out.status.success(),
        "churn run failed with {}:\n--- stdout ---\n{stdout}\n--- stderr ---\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr),
    );
    assert!(
        stdout.contains("workload epoch 3 (0 scheduled churn op(s) rejected)"),
        "summary should report epoch 3 with no rejections:\n{stdout}"
    );
}

#[test]
fn malformed_script_and_offline_mode_are_rejected() {
    let dir = std::env::temp_dir();
    let script = dir.join(format!("hamlet-churn-bad-{}.txt", std::process::id()));
    std::fs::write(&script, "10 frobnicate 3\n").unwrap();
    let out = cli(&["pipeline", "--churn-script", script.to_str().unwrap()]);
    assert!(!out.status.success(), "malformed script must be rejected");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("line 1"),
        "error should cite the offending line:\n{stderr}"
    );
    std::fs::write(&script, "10 remove 0\n").unwrap();
    let out = cli(&["--churn-script", script.to_str().unwrap()]);
    std::fs::remove_file(&script).ok();
    assert!(!out.status.success(), "offline mode must reject the flag");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("pipeline-mode flag"),
        "error should say the flag is pipeline-only"
    );
}
