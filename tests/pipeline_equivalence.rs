//! Online/offline equivalence: feeding a stream through the live
//! pipeline (`hamlet-pipeline`) and draining must be **byte-identical**
//! to the offline reference `HamletEngine::process` + `flush` over the
//! same events — for 1 and 4 workers, and for out-of-order delivery
//! whenever the stream's lateness stays within the reorder stage's
//! watermark slack.
//!
//! This is the acceptance property of the online runtime: the pipeline
//! adds sources, backpressure, reordering, and graceful shutdown, and
//! none of it may change a single result row.

use hamlet::prelude::*;
use hamlet_stream::{bounded_delay_shuffle, max_observed_lateness, ridesharing, smart_home};
use proptest::prelude::*;
use std::sync::Arc;

/// Offline reference: one engine, events in slice order, then flush.
/// Raw emission order — no normalization.
fn offline(reg: &Arc<TypeRegistry>, queries: &[Query], events: &[Event]) -> Vec<WindowResult> {
    let mut eng = HamletEngine::new(
        reg.clone(),
        queries.to_vec(),
        hamlet_core::EngineConfig::default(),
    )
    .expect("engine builds");
    let mut out = Vec::new();
    for e in events {
        out.extend(eng.process(e));
    }
    out.extend(eng.flush());
    out
}

/// Runs `events` through a live pipeline and drains it.
fn online(
    reg: &Arc<TypeRegistry>,
    queries: &[Query],
    events: &[Event],
    workers: u32,
    slack: u64,
) -> hamlet_pipeline::PipelineReport<VecSink> {
    Pipeline::builder(reg.clone(), queries.to_vec())
        .workers(workers)
        .watermark(BoundedLateness::new(slack))
        .spawn(ReplaySource::new(events.to_vec()), VecSink::new())
        .expect("pipeline spawns")
        .drain()
}

/// In-order equivalence at 1 and 4 workers. One worker must match the
/// offline run in *raw emission order*; four workers interleave shard
/// outputs, so both sides are compared in the canonical
/// `(window_start, query, key)` order — zero rows included.
fn assert_online_matches_offline(
    reg: &Arc<TypeRegistry>,
    queries: &[Query],
    events: &[Event],
    label: &str,
) {
    let expected_raw = offline(reg, queries, events);
    assert!(!expected_raw.is_empty(), "{label}: workload yields results");

    let report = online(reg, queries, events, 1, 0);
    assert_eq!(
        report.sink.results, expected_raw,
        "{label}: 1 worker diverged from offline process+flush"
    );
    assert_eq!(report.late, 0, "{label}: in-order stream dropped events");

    let mut expected = expected_raw;
    sort_results(&mut expected);
    let report = online(reg, queries, events, 4, 0);
    let mut got = report.sink.results;
    sort_results(&mut got);
    assert_eq!(
        got, expected,
        "{label}: 4 workers diverged from offline process+flush"
    );
    assert_eq!(report.late, 0);
}

#[test]
fn ridesharing_online_is_offline() {
    let reg = ridesharing::registry();
    let queries = ridesharing::workload_shared_kleene(&reg, 6, 30);
    let cfg = GenConfig {
        events_per_min: 2_000,
        minutes: 1,
        mean_burst: 20.0,
        num_groups: 16,
        group_skew: 0.0,
        seed: 21,
        max_lateness: 0,
    };
    let events = ridesharing::generate(&reg, &cfg);
    assert_online_matches_offline(&reg, &queries, &events, "ridesharing");
}

#[test]
fn smart_home_online_is_offline() {
    let reg = smart_home::registry();
    let queries = smart_home::workload(&reg, 6, 60);
    let cfg = GenConfig {
        events_per_min: 1_500,
        minutes: 1,
        mean_burst: 30.0,
        num_groups: 12,
        group_skew: 0.0,
        seed: 33,
        max_lateness: 0,
    };
    let events = smart_home::generate(&reg, &cfg);
    assert_online_matches_offline(&reg, &queries, &events, "smart_home");
}

/// Out-of-order delivery within the watermark slack is invisible: the
/// reorder stage reconstructs the in-order stream exactly, so the
/// drained output matches the in-order run byte for byte and nothing is
/// dead-lettered.
#[test]
fn bounded_lateness_within_slack_is_invisible() {
    let reg = ridesharing::registry();
    let queries = ridesharing::workload_shared_kleene(&reg, 6, 30);
    let cfg = GenConfig {
        events_per_min: 2_000,
        minutes: 1,
        mean_burst: 15.0,
        num_groups: 8,
        group_skew: 0.2,
        seed: 77,
        max_lateness: 0,
    };
    let in_order = ridesharing::generate(&reg, &cfg);
    let expected = offline(&reg, &queries, &in_order);
    for lateness in [1u64, 3, 7] {
        let mut shuffled = in_order.clone();
        bounded_delay_shuffle(&mut shuffled, lateness, 123);
        assert!(max_observed_lateness(&shuffled) <= lateness);
        for workers in [1u32, 4] {
            // slack == the stream's lateness bound: exact reconstruction.
            let report = online(&reg, &queries, &shuffled, workers, lateness);
            assert_eq!(report.late, 0, "lateness {lateness}: nothing is late");
            let mut got = report.sink.results;
            sort_results(&mut got);
            let mut want = expected.clone();
            sort_results(&mut want);
            assert_eq!(
                got, want,
                "lateness {lateness}, {workers} workers: OOO run diverged from in-order run"
            );
        }
        // Extra slack beyond the bound changes nothing either.
        let report = online(&reg, &queries, &shuffled, 1, lateness + 10);
        assert_eq!(report.sink.results, expected, "slack > bound still exact");
    }
}

/// With slack *below* the stream's lateness, the pipeline degrades
/// gracefully: late events are counted and dropped, every window still
/// emits exactly once, and the engine's own late guard never fires
/// (the reorder stage already filtered).
#[test]
fn lateness_beyond_slack_drops_but_never_duplicates() {
    let reg = ridesharing::registry();
    let queries = ridesharing::workload_shared_kleene(&reg, 5, 30);
    let cfg = GenConfig {
        events_per_min: 3_000,
        minutes: 1,
        mean_burst: 10.0,
        num_groups: 8,
        group_skew: 0.0,
        seed: 5,
        max_lateness: 10,
    };
    let events = ridesharing::generate(&reg, &cfg); // shuffled by config
    assert!(max_observed_lateness(&events) > 2);
    let report = online(&reg, &queries, &events, 2, 2);
    assert!(report.late > 0, "under-slacked run must drop late events");
    assert_eq!(report.released + report.late, report.events);
    assert_eq!(report.merged_stats().late_skips, 0);
    let mut seen = std::collections::BTreeSet::new();
    for r in &report.sink.results {
        assert!(
            seen.insert((r.query, format!("{}", r.group_key), r.window_start)),
            "duplicate window emission: {r:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Randomized stream shapes and lateness bounds: the online drained
    /// output must equal the offline run of the in-order stream whenever
    /// slack ≥ lateness, at 1 and 4 workers.
    #[test]
    fn random_streams_online_equals_offline(
        seed in 0u64..1_000,
        mean_burst in 1.0f64..40.0,
        groups in 1u64..16,
        lateness in 0u64..6,
    ) {
        let cfg = GenConfig {
            events_per_min: 600,
            minutes: 1,
            mean_burst,
            num_groups: groups,
            group_skew: 0.0,
            seed,
            max_lateness: 0,
        };
        let reg = ridesharing::registry();
        let queries = ridesharing::workload_shared_kleene(&reg, 4, 20);
        let in_order = ridesharing::generate(&reg, &cfg);
        let mut expected = offline(&reg, &queries, &in_order);
        sort_results(&mut expected);
        let mut delivered = in_order.clone();
        bounded_delay_shuffle(&mut delivered, lateness, seed ^ 0xF00D);
        for workers in [1u32, 4] {
            let report = online(&reg, &queries, &delivered, workers, lateness);
            prop_assert_eq!(report.late, 0);
            let mut got = report.sink.results;
            sort_results(&mut got);
            prop_assert_eq!(&got, &expected, "seed {} workers {}", seed, workers);
        }
    }
}
