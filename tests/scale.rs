//! Larger-scale end-to-end checks on generated workloads: the engines stay
//! in agreement at realistic stream sizes, windows roll correctly over
//! multi-minute streams, and the dynamic optimizer actually exercises both
//! shared and solo execution on divergent workloads.

use hamlet_baselines::GretaEngine;
use hamlet_core::executor::DivergenceMode;
use hamlet_core::{AggValue, EngineConfig, HamletEngine, SharingPolicy, WindowResult};
use hamlet_stream::{ridesharing, smart_home, stock, GenConfig};

fn norm(mut rs: Vec<WindowResult>) -> Vec<String> {
    rs.retain(|r| !matches!(r.value, AggValue::Count(0) | AggValue::Null));
    let mut v: Vec<String> = rs
        .iter()
        .map(|r| {
            format!(
                "{:?}|{}|{}|{:?}",
                r.query, r.group_key, r.window_start, r.value
            )
        })
        .collect();
    v.sort();
    v
}

fn drive_hamlet(
    reg: &std::sync::Arc<hamlet_types::TypeRegistry>,
    queries: Vec<hamlet_query::Query>,
    events: &[hamlet_types::Event],
    policy: SharingPolicy,
    divergence: DivergenceMode,
) -> (Vec<WindowResult>, hamlet_core::EngineStats) {
    let mut eng = HamletEngine::new(
        reg.clone(),
        queries,
        EngineConfig {
            policy,
            divergence,
            ..EngineConfig::default()
        },
    )
    .expect("engine builds");
    let mut out = Vec::new();
    for e in events {
        out.extend(eng.process(e));
    }
    out.extend(eng.flush());
    (out, *eng.stats())
}

// Slow tier: 10K events through four engines is the most expensive
// agreement check; run with `cargo test -- --ignored` (fast in --release).
#[test]
#[ignore = "slow tier: 10K-event four-engine agreement; run with `cargo test -- --ignored`"]
fn ridesharing_10k_events_all_policies_and_greta_agree() {
    let reg = ridesharing::registry();
    let cfg = GenConfig {
        events_per_min: 5_000,
        minutes: 2,
        mean_burst: 40.0,
        num_groups: 4,
        group_skew: 0.0,
        seed: 71,
        max_lateness: 0,
    };
    let events = ridesharing::generate(&reg, &cfg);
    assert_eq!(events.len(), 10_000);
    let queries = ridesharing::workload_shared_kleene(&reg, 12, 30);

    let (dynamic, stats) = drive_hamlet(
        &reg,
        queries.clone(),
        &events,
        SharingPolicy::Dynamic,
        DivergenceMode::Exact,
    );
    assert!(stats.runs.shared_bursts > 0, "sharing exercised: {stats:?}");
    assert!(stats.windows_emitted > 0);

    let (always, _) = drive_hamlet(
        &reg,
        queries.clone(),
        &events,
        SharingPolicy::AlwaysShare,
        DivergenceMode::Exact,
    );
    let (never, _) = drive_hamlet(
        &reg,
        queries.clone(),
        &events,
        SharingPolicy::NeverShare,
        DivergenceMode::Exact,
    );
    let mut greta = GretaEngine::new(reg.clone(), queries).unwrap();
    let mut gout = Vec::new();
    for e in &events {
        gout.extend(greta.process(e));
    }
    gout.extend(greta.flush());

    let base = norm(dynamic);
    assert!(!base.is_empty());
    assert_eq!(base, norm(always), "dynamic vs always-share");
    assert_eq!(base, norm(never), "dynamic vs never-share");
    assert_eq!(base, norm(gout), "dynamic vs GRETA");
}

#[test]
fn stock_diverse_workload_with_ema_agrees_with_exact() {
    let reg = stock::registry();
    let cfg = GenConfig {
        events_per_min: 2_000,
        minutes: 3,
        mean_burst: 120.0,
        num_groups: 16,
        group_skew: 0.0,
        seed: 5,
        max_lateness: 0,
    };
    let events = stock::generate(&reg, &cfg);
    let queries = stock::workload_diverse(&reg, 40, 2024);

    let (exact, se) = drive_hamlet(
        &reg,
        queries.clone(),
        &events,
        SharingPolicy::Dynamic,
        DivergenceMode::Exact,
    );
    let (ema, sm) = drive_hamlet(
        &reg,
        queries.clone(),
        &events,
        SharingPolicy::Dynamic,
        DivergenceMode::Ema { alpha: 0.4 },
    );
    let (never, _) = drive_hamlet(
        &reg,
        queries,
        &events,
        SharingPolicy::NeverShare,
        DivergenceMode::Exact,
    );
    assert_eq!(norm(exact.clone()), norm(ema), "exact vs EMA results");
    assert_eq!(norm(exact), norm(never), "dynamic vs never results");
    // Both modes took real decisions and mixed shared/solo bursts.
    assert!(
        se.runs.shared_bursts > 0 && se.runs.solo_bursts > 0,
        "{se:?}"
    );
    assert!(sm.decisions > 0);
}

#[test]
fn smart_home_sliding_windows_roll_over_long_stream() {
    let reg = smart_home::registry();
    let cfg = GenConfig {
        events_per_min: 6_000,
        minutes: 3,
        mean_burst: 60.0,
        num_groups: 10,
        group_skew: 0.0,
        seed: 9,
        max_lateness: 0,
    };
    let events = smart_home::generate(&reg, &cfg);
    let queries = smart_home::workload(&reg, 8, 60);
    let (results, stats) = drive_hamlet(
        &reg,
        queries,
        &events,
        SharingPolicy::Dynamic,
        DivergenceMode::Exact,
    );
    // 3 minutes of stream with 60 s tumbling windows → results from at
    // least 2 fully-closed window generations plus the flush.
    let mut starts: Vec<u64> = results.iter().map(|r| r.window_start.ticks()).collect();
    starts.sort_unstable();
    starts.dedup();
    assert!(starts.len() >= 3, "window generations: {starts:?}");
    assert!(stats.windows_emitted as usize >= starts.len());
    // Every window start is aligned to the pane/window grid.
    assert!(starts.iter().all(|s| s % 60 == 0));
}
