//! Recovery equivalence: kill a run at an arbitrary point, restore from
//! its checkpoint, continue — the output must be **byte-identical** to a
//! run that never stopped. Proven at every layer of the stack:
//!
//! * the single engine (`HamletEngine::checkpoint`/`restore`), in raw
//!   emission order, including the round-trip identity
//!   `checkpoint(restore(blob)) == blob`;
//! * the offline parallel path (`ParallelEngine::run_to_checkpoint` /
//!   `resume`) at 1 and 4 workers, in canonical order;
//! * the online pipeline (`PipelineHandle::checkpoint` /
//!   `PipelineBuilder::resume`) at 1 and 4 workers, for in-order *and*
//!   bounded-late delivery — the reorder buffer and source cursor travel
//!   inside the checkpoint;
//! * a proptest over stream shapes and checkpoint positions.
//!
//! This is the acceptance property of the checkpoint subsystem: recovery
//! may never lose a window, emit one twice, or change a single row.

use hamlet::prelude::*;
use hamlet_stream::{bounded_delay_shuffle, max_observed_lateness, ridesharing};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn workload() -> (Arc<TypeRegistry>, Vec<Query>) {
    let reg = ridesharing::registry();
    let queries = ridesharing::workload_shared_kleene(&reg, 6, 30);
    (reg, queries)
}

fn stream(reg: &Arc<TypeRegistry>, seed: u64, events_per_min: u64, groups: u64) -> Vec<Event> {
    ridesharing::generate(
        reg,
        &GenConfig {
            events_per_min,
            minutes: 1,
            mean_burst: 15.0,
            num_groups: groups,
            group_skew: 0.0,
            seed,
            max_lateness: 0,
        },
    )
}

/// Offline reference: one engine, events in slice order, then flush.
/// Raw emission order — no normalization.
fn offline(reg: &Arc<TypeRegistry>, queries: &[Query], events: &[Event]) -> Vec<WindowResult> {
    let mut eng = HamletEngine::new(reg.clone(), queries.to_vec(), EngineConfig::default())
        .expect("engine builds");
    let mut out = Vec::new();
    for e in events {
        out.extend(eng.process(e));
    }
    out.extend(eng.flush());
    out
}

/// Single engine: process a prefix, checkpoint, **drop the engine**
/// (the crash), restore into a fresh one, continue — per-event output
/// and the final flush are byte-identical to the uninterrupted run, in
/// raw emission order; and the restored engine's own checkpoint equals
/// the original blob.
#[test]
fn engine_kill_restore_continue_is_byte_identical() {
    let (reg, queries) = workload();
    let events = stream(&reg, 42, 2_000, 12);
    let mk = || HamletEngine::new(reg.clone(), queries.clone(), EngineConfig::default()).unwrap();

    let mut gold_engine = mk();
    let mut gold: Vec<Vec<WindowResult>> = Vec::new();
    for e in &events {
        gold.push(gold_engine.process(e));
    }
    let gold_flush = gold_engine.flush();
    assert!(
        gold.iter().any(|r| !r.is_empty()),
        "workload emits mid-stream"
    );

    for cut in [0, events.len() / 3, events.len() - 1, events.len()] {
        let mut victim = mk();
        for e in &events[..cut] {
            let _ = victim.process(e);
        }
        let blob = victim.checkpoint();
        drop(victim); // the crash

        let mut survivor = mk();
        survivor.restore(&blob).unwrap();
        assert_eq!(
            survivor.checkpoint(),
            blob,
            "cut {cut}: checkpoint/restore round trip is not the identity"
        );
        for (i, e) in events[cut..].iter().enumerate() {
            assert_eq!(
                survivor.process(e),
                gold[cut + i],
                "cut {cut}: event {} diverged after restore",
                cut + i
            );
        }
        assert_eq!(survivor.flush(), gold_flush, "cut {cut}: flush diverged");
    }
}

/// Offline parallel path at 1 and 4 workers: a coordinated per-shard
/// checkpoint at an arbitrary barrier, resumed (through the serialized
/// container, as a crash-recovery path would), equals one uninterrupted
/// run in canonical order — zero rows included.
#[test]
fn parallel_checkpoint_resume_is_identical_at_1_and_4_workers() {
    let (reg, queries) = workload();
    let events = stream(&reg, 7, 3_000, 24);
    for workers in [1u32, 4] {
        let eng = ParallelEngine::new(
            reg.clone(),
            queries.clone(),
            EngineConfig::default(),
            workers,
        )
        .unwrap();
        let gold = eng.run(&events);
        assert!(!gold.results.is_empty());
        for cut in [0, events.len() / 2, events.len()] {
            let pre = eng.run_to_checkpoint(&events[..cut]);
            let container = pre.checkpoint.to_bytes();
            let restored = ParallelCheckpoint::from_bytes(&container).unwrap();
            let post = eng.resume(&restored, &events[cut..]).unwrap();
            let mut all = pre.report.results.clone();
            all.extend(post.results);
            sort_results(&mut all);
            assert_eq!(
                all, gold.results,
                "{workers} workers, cut {cut}: recovery changed the output"
            );
        }
    }
}

/// Waits until a pipeline condition holds (bounded, so a wedged pipeline
/// fails the test instead of hanging CI).
fn wait_for<S: Sink>(handle: &PipelineHandle<S>, cond: impl Fn(&MetricsSnapshot) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if cond(&handle.metrics()) {
            return;
        }
        assert!(Instant::now() < deadline, "pipeline made no progress");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Online pipeline, in-order stream, deterministic barrier: run a
/// prefix to completion, checkpoint, resume with the remainder — the
/// union of pre- and post-barrier sink contents equals the offline run
/// (raw order at 1 worker, canonical at 4).
#[test]
fn pipeline_checkpoint_resume_in_order_1_and_4_workers() {
    let (reg, queries) = workload();
    let events = stream(&reg, 11, 2_000, 12);
    let expected_raw = offline(&reg, &queries, &events);
    let cut = events.len() / 2;
    for workers in [1u32, 4] {
        let handle = Pipeline::builder(reg.clone(), queries.clone())
            .workers(workers)
            .spawn(ReplaySource::new(events[..cut].to_vec()), VecSink::new())
            .unwrap();
        wait_for(&handle, |m| m.source_done && m.queued() == 0);
        let frozen = handle.checkpoint();
        assert_eq!(frozen.checkpoint.events_pulled(), cut as u64);
        assert!(frozen.checkpoint.engine_bytes() > 0);

        // Persist, reload, resume in a "new process".
        let container = frozen.checkpoint.to_bytes();
        let restored = PipelineCheckpoint::from_bytes(&container).unwrap();
        let cursor = restored.events_pulled() as usize;
        let report = Pipeline::builder(reg.clone(), queries.clone())
            .workers(workers)
            .resume(
                &restored,
                ReplaySource::new(events[cursor..].to_vec()),
                frozen.sink,
            )
            .unwrap()
            .drain();
        assert_eq!(report.events, events.len() as u64, "counters continue");
        if workers == 1 {
            assert_eq!(
                report.sink.results, expected_raw,
                "1 worker: recovery changed output or order"
            );
        } else {
            let mut got = report.sink.results;
            sort_results(&mut got);
            let mut want = expected_raw.clone();
            sort_results(&mut want);
            assert_eq!(got, want, "{workers} workers: recovery changed output");
        }
    }
}

/// Online pipeline under bounded-late delivery, checkpointed **live,
/// mid-flight** (the barrier lands wherever it lands — possibly with
/// events frozen in the reorder buffer): resuming with the remainder of
/// the shuffled stream still reproduces the in-order offline run
/// exactly, with nothing dropped and nothing duplicated.
#[test]
fn pipeline_checkpoint_resume_bounded_late_mid_flight() {
    let (reg, queries) = workload();
    let in_order = stream(&reg, 23, 4_000, 16);
    let lateness = 5u64;
    let mut delivered = in_order.clone();
    bounded_delay_shuffle(&mut delivered, lateness, 99);
    assert!(max_observed_lateness(&delivered) > 0, "stream is shuffled");
    let mut expected = offline(&reg, &queries, &in_order);
    sort_results(&mut expected);

    for workers in [1u32, 4] {
        // Pace the source so the checkpoint reliably lands mid-stream:
        // at 5k ev/s the ~4k-event stream takes ~800ms, and the barrier
        // fires ~40ms in — whole-second scheduling margin, so a stalled
        // CI runner cannot turn this into an end-of-stream checkpoint.
        let paced = RateLimitedSource::new(ReplaySource::new(delivered.clone()), 5_000.0);
        let handle = Pipeline::builder(reg.clone(), queries.clone())
            .workers(workers)
            .watermark(BoundedLateness::new(lateness))
            .spawn(paced, VecSink::new())
            .unwrap();
        wait_for(&handle, |m| m.ingested > 200);
        let frozen = handle.checkpoint();
        let cursor = frozen.checkpoint.events_pulled() as usize;
        assert!(
            cursor < delivered.len(),
            "{workers} workers: barrier should land mid-stream (cursor {cursor})"
        );

        let report = Pipeline::builder(reg.clone(), queries.clone())
            .workers(workers)
            .watermark(BoundedLateness::new(lateness))
            .resume(
                &frozen.checkpoint,
                ReplaySource::new(delivered[cursor..].to_vec()),
                frozen.sink,
            )
            .unwrap()
            .drain();
        assert_eq!(report.late, 0, "lateness within slack drops nothing");
        assert_eq!(report.events, delivered.len() as u64);
        let mut got = report.sink.results;
        sort_results(&mut got);
        assert_eq!(
            got, expected,
            "{workers} workers: bounded-late recovery diverged (cursor {cursor})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random stream shapes × random checkpoint positions: engine-level
    /// kill-restore-continue is byte-identical, and the 2-worker
    /// parallel path agrees canonically.
    #[test]
    fn random_streams_and_cuts_recover_identically(
        seed in 0u64..10_000,
        mean_burst in 1.0f64..40.0,
        groups in 1u64..16,
        cut_permille in 0u64..=1_000,
    ) {
        let reg = ridesharing::registry();
        let queries = ridesharing::workload_shared_kleene(&reg, 4, 20);
        let events = ridesharing::generate(&reg, &GenConfig {
            events_per_min: 600,
            minutes: 1,
            mean_burst,
            num_groups: groups,
            group_skew: 0.0,
            seed,
            max_lateness: 0,
        });
        let cut = (events.len() as u64 * cut_permille / 1_000) as usize;

        // Engine level, raw order.
        let mk = || HamletEngine::new(
            reg.clone(), queries.clone(), EngineConfig::default()).unwrap();
        let mut victim = mk();
        for e in &events[..cut] {
            let _ = victim.process(e);
        }
        let blob = victim.checkpoint();
        drop(victim);
        let mut survivor = mk();
        survivor.restore(&blob).unwrap();
        prop_assert_eq!(&survivor.checkpoint(), &blob, "round trip, cut {}", cut);
        let mut recovered = Vec::new();
        for e in &events[cut..] {
            recovered.extend(survivor.process(e));
        }
        recovered.extend(survivor.flush());
        let mut gold_suffix = mk();
        let mut expected_suffix = Vec::new();
        for (i, e) in events.iter().enumerate() {
            let out = gold_suffix.process(e);
            if i >= cut {
                expected_suffix.extend(out);
            }
        }
        expected_suffix.extend(gold_suffix.flush());
        prop_assert_eq!(&recovered, &expected_suffix, "seed {} cut {}", seed, cut);

        // Parallel, canonical order.
        let par = ParallelEngine::new(
            reg.clone(), queries.clone(), EngineConfig::default(), 2).unwrap();
        let gold_par = par.run(&events);
        let pre = par.run_to_checkpoint(&events[..cut]);
        let post = par.resume(&pre.checkpoint, &events[cut..]).unwrap();
        let mut all = pre.report.results.clone();
        all.extend(post.results);
        sort_results(&mut all);
        prop_assert_eq!(&all, &gold_par.results, "parallel seed {} cut {}", seed, cut);
    }
}
