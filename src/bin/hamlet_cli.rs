//! `hamlet-cli` — run a generated workload over a synthetic stream and
//! report aggregates, sharing statistics, and the compiled plan.
//!
//! ```text
//! cargo run --release --bin hamlet-cli -- \
//!     --dataset ridesharing --rate 10000 --minutes 2 --queries 10 \
//!     --policy dynamic --window 60 --explain
//! ```
//!
//! Datasets: ridesharing | nyc | smarthome | stock (stock uses the
//! diverse predicate-heavy workload of Figs. 12–13; the others use the
//! shared-Kleene workload of Fig. 9).

use hamlet::prelude::*;
use hamlet_stream::{nyc_taxi, ridesharing, smart_home, stock};
use std::sync::Arc;
use std::time::Instant;

struct Args {
    dataset: String,
    rate: u64,
    minutes: u64,
    queries: usize,
    window: u64,
    policy: SharingPolicy,
    mean_burst: f64,
    groups: u64,
    skew: f64,
    seed: u64,
    explain: bool,
    show_results: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        dataset: "ridesharing".into(),
        rate: 10_000,
        minutes: 1,
        queries: 10,
        window: 60,
        policy: SharingPolicy::Dynamic,
        mean_burst: 40.0,
        groups: 8,
        skew: 0.0,
        seed: 7,
        explain: false,
        show_results: 5,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match a.as_str() {
            "--dataset" => args.dataset = val("--dataset")?,
            "--rate" => args.rate = val("--rate")?.parse().map_err(|e| format!("{e}"))?,
            "--minutes" => args.minutes = val("--minutes")?.parse().map_err(|e| format!("{e}"))?,
            "--queries" => args.queries = val("--queries")?.parse().map_err(|e| format!("{e}"))?,
            "--window" => args.window = val("--window")?.parse().map_err(|e| format!("{e}"))?,
            "--burst" => args.mean_burst = val("--burst")?.parse().map_err(|e| format!("{e}"))?,
            "--groups" => args.groups = val("--groups")?.parse().map_err(|e| format!("{e}"))?,
            "--skew" => args.skew = val("--skew")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = val("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--show" => args.show_results = val("--show")?.parse().map_err(|e| format!("{e}"))?,
            "--policy" => {
                args.policy = match val("--policy")?.as_str() {
                    "dynamic" => SharingPolicy::Dynamic,
                    "static" => SharingPolicy::AlwaysShare,
                    "noshare" => SharingPolicy::NeverShare,
                    other => return Err(format!("unknown policy {other}")),
                }
            }
            "--explain" => args.explain = true,
            "--help" | "-h" => {
                println!(
                    "usage: hamlet-cli [--dataset ridesharing|nyc|smarthome|stock] \
                     [--rate N] [--minutes N] [--queries K] [--window SECS] \
                     [--policy dynamic|static|noshare] [--burst B] [--groups G] \
                     [--skew Z] [--seed S] [--show N] [--explain]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e} (try --help)");
            std::process::exit(2);
        }
    };
    let gen = GenConfig {
        events_per_min: args.rate,
        minutes: args.minutes,
        mean_burst: args.mean_burst,
        num_groups: args.groups,
        group_skew: args.skew,
        seed: args.seed,
    };
    let (reg, events, queries): (Arc<TypeRegistry>, Vec<Event>, Vec<Query>) =
        match args.dataset.as_str() {
            "ridesharing" => {
                let reg = ridesharing::registry();
                let ev = ridesharing::generate(&reg, &gen);
                let qs = ridesharing::workload_shared_kleene(&reg, args.queries, args.window);
                (reg, ev, qs)
            }
            "nyc" => {
                let reg = nyc_taxi::registry();
                let ev = nyc_taxi::generate(&reg, &gen);
                let qs = nyc_taxi::workload(&reg, args.queries, args.window);
                (reg, ev, qs)
            }
            "smarthome" => {
                let reg = smart_home::registry();
                let ev = smart_home::generate(&reg, &gen);
                let qs = smart_home::workload(&reg, args.queries, args.window);
                (reg, ev, qs)
            }
            "stock" => {
                let reg = stock::registry();
                let ev = stock::generate(&reg, &gen);
                let qs = stock::workload_diverse(&reg, args.queries, args.seed);
                (reg, ev, qs)
            }
            other => {
                eprintln!("unknown dataset {other}");
                std::process::exit(2);
            }
        };

    println!(
        "dataset={} events={} queries={} policy={:?}",
        args.dataset,
        events.len(),
        queries.len(),
        args.policy
    );
    let mut engine = match HamletEngine::new(
        reg.clone(),
        queries,
        EngineConfig {
            policy: args.policy,
            ..EngineConfig::default()
        },
    ) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("engine error: {e}");
            std::process::exit(1);
        }
    };
    if args.explain {
        println!("\n{}", engine.explain());
    }

    let t0 = Instant::now();
    let mut results = Vec::new();
    for e in &events {
        results.extend(engine.process(e));
    }
    results.extend(engine.flush());
    let wall = t0.elapsed();

    let stats = engine.stats();
    println!(
        "\nprocessed in {wall:?} ({:.0} events/s), {} window results",
        events.len() as f64 / wall.as_secs_f64(),
        results.len()
    );
    println!(
        "latency avg {:?} · peak state {} KB · {} snapshots · \
         {} shared / {} solo bursts · {} merges · {} splits · \
         decisions {:?} ({:.2}% of wall)",
        engine.latency().avg(),
        engine.peak_memory() / 1024,
        stats.runs.snapshots(),
        stats.runs.shared_bursts,
        stats.runs.solo_bursts,
        stats.runs.merges,
        stats.runs.splits,
        stats.decision_time,
        100.0 * stats.decision_time.as_secs_f64() / wall.as_secs_f64().max(1e-9),
    );
    if args.show_results > 0 {
        println!("\nsample results:");
        for r in results.iter().take(args.show_results) {
            println!(
                "  {} key={} window@{}: {:?}",
                r.query, r.group_key, r.window_start, r.value
            );
        }
    }
}
