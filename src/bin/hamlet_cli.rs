//! `hamlet-cli` — run a generated workload over a synthetic stream and
//! report aggregates, sharing statistics, and the compiled plan.
//!
//! ```text
//! # Offline run (default mode):
//! cargo run --release --bin hamlet-cli -- \
//!     --dataset ridesharing --rate 10000 --minutes 2 --queries 10 \
//!     --policy dynamic --window 60 --explain
//!
//! # Live pipeline: paced source, out-of-order injection, live metrics:
//! cargo run --release --bin hamlet-cli -- pipeline \
//!     --dataset ridesharing --rate 60000 --queries 10 --window 30 \
//!     --workers 4 --eps 50000 --max-lateness 5 --slack 5 --metrics-ms 250
//!
//! # Keep a live pipeline durable with periodic delta checkpoints,
//! # then kill it and resume from the chain on disk:
//! cargo run --release --bin hamlet-cli -- pipeline \
//!     --dataset ridesharing --rate 60000 --checkpoint-every 10000 \
//!     --state /tmp/hamlet-ck
//! cargo run --release --bin hamlet-cli -- pipeline \
//!     --dataset ridesharing --rate 60000 --resume --state /tmp/hamlet-ck
//!
//! # One-shot: cut a full checkpoint after ~50k events and stop:
//! cargo run --release --bin hamlet-cli -- pipeline \
//!     --dataset ridesharing --rate 60000 --checkpoint-after 50000 \
//!     --state /tmp/hamlet-ck
//! ```
//!
//! Datasets: ridesharing | nyc | smarthome | stock (stock uses the
//! diverse predicate-heavy workload of Figs. 12–13; the others use the
//! shared-Kleene workload of Fig. 9).
//!
//! Pipeline-mode flags: `--workers N` (shard workers), `--eps F` (offered
//! wall-clock rate, 0 = unpaced), `--max-lateness T` (shuffle the
//! generated stream so events trail the stream maximum by up to `T`
//! ticks), `--slack T` (reorder-stage watermark slack; events later than
//! this are dead-lettered), `--metrics-ms M` (live metrics print
//! interval, 0 = quiet), `--metrics-json` (emit each metrics snapshot as
//! one JSON line for tooling, including per-share-group counters and
//! the latency histogram buckets), `--prom-out FILE` (write the final
//! metrics snapshot as a Prometheus text-format scrape), `--trace-out
//! FILE` (record stage spans and write a Chrome `trace_event` JSON file
//! — open in `chrome://tracing` or Perfetto), `--state DIR` (a
//! [`DirStore`] checkpoint directory holding one base + delta chain;
//! required by every checkpoint flag), `--checkpoint-every N` (while
//! the pipeline runs, cut an incremental **delta** checkpoint into the
//! store every N released events; every `--compact-every`th cut is
//! promoted to a full base, compacting the chain), `--checkpoint-after
//! N` (one-shot: cut a full checkpoint once N events have been
//! ingested, then stop the source and drain), `--resume` (restore from
//! the newest base + delta chain in `--state` and continue the same
//! generated stream to completion — the stream is regenerated
//! deterministically from the seed, so the chain's source cursor
//! repositions it exactly), `--churn-script FILE` (apply timestamped
//! add/remove ops to the live workload).
//!
//! A churn script holds one op per line — `<ts> add <query-id>` or
//! `<ts> remove <query-id>`, with blank lines and `#` comments ignored —
//! applied when the pipeline watermark first reaches `<ts>`. Query ids
//! index the dataset's generated workload: ids below `--queries` name
//! the initial queries (remove them, then re-add them later), and ids at
//! or above it draw additional queries from the same generator, so
//! `120 add 10` grows a `--queries 10` workload at t=120:
//!
//! ```text
//! # drop query 3 two minutes in, bring in a fresh one at three
//! 120 remove 3
//! 180 add 10
//! ```

use hamlet::prelude::*;
use hamlet_stream::{nyc_taxi, ridesharing, smart_home, stock};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    pipeline: bool,
    dataset: String,
    rate: u64,
    minutes: u64,
    queries: usize,
    window: u64,
    policy: SharingPolicy,
    mean_burst: f64,
    groups: u64,
    skew: f64,
    seed: u64,
    explain: bool,
    show_results: usize,
    // Pipeline mode.
    workers: u32,
    eps: f64,
    slack: u64,
    max_lateness: u64,
    metrics_ms: u64,
    metrics_json: bool,
    trace_out: Option<String>,
    prom_out: Option<String>,
    checkpoint_after: u64,
    checkpoint_every: u64,
    compact_every: u64,
    state: Option<String>,
    resume: bool,
    churn_script: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        pipeline: false,
        dataset: "ridesharing".into(),
        rate: 10_000,
        minutes: 1,
        queries: 10,
        window: 60,
        policy: SharingPolicy::Dynamic,
        mean_burst: 40.0,
        groups: 8,
        skew: 0.0,
        seed: 7,
        explain: false,
        show_results: 5,
        workers: 1,
        eps: 0.0,
        slack: 0,
        max_lateness: 0,
        metrics_ms: 250,
        metrics_json: false,
        trace_out: None,
        prom_out: None,
        checkpoint_after: 0,
        checkpoint_every: 0,
        compact_every: 0,
        state: None,
        resume: false,
        churn_script: None,
    };
    let mut it = std::env::args().skip(1).peekable();
    if it.peek().map(String::as_str) == Some("pipeline") {
        args.pipeline = true;
        it.next();
    }
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match a.as_str() {
            "--dataset" => args.dataset = val("--dataset")?,
            "--rate" => args.rate = val("--rate")?.parse().map_err(|e| format!("{e}"))?,
            "--minutes" => args.minutes = val("--minutes")?.parse().map_err(|e| format!("{e}"))?,
            "--queries" => args.queries = val("--queries")?.parse().map_err(|e| format!("{e}"))?,
            "--window" => args.window = val("--window")?.parse().map_err(|e| format!("{e}"))?,
            "--burst" => args.mean_burst = val("--burst")?.parse().map_err(|e| format!("{e}"))?,
            "--groups" => args.groups = val("--groups")?.parse().map_err(|e| format!("{e}"))?,
            "--skew" => args.skew = val("--skew")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = val("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--show" => args.show_results = val("--show")?.parse().map_err(|e| format!("{e}"))?,
            "--workers" => args.workers = val("--workers")?.parse().map_err(|e| format!("{e}"))?,
            "--eps" => args.eps = val("--eps")?.parse().map_err(|e| format!("{e}"))?,
            "--slack" => args.slack = val("--slack")?.parse().map_err(|e| format!("{e}"))?,
            "--max-lateness" => {
                args.max_lateness = val("--max-lateness")?.parse().map_err(|e| format!("{e}"))?
            }
            "--metrics-ms" => {
                args.metrics_ms = val("--metrics-ms")?.parse().map_err(|e| format!("{e}"))?
            }
            "--metrics-json" => args.metrics_json = true,
            "--trace-out" => args.trace_out = Some(val("--trace-out")?),
            "--prom-out" => args.prom_out = Some(val("--prom-out")?),
            "--checkpoint-after" => {
                args.checkpoint_after = val("--checkpoint-after")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--checkpoint-every" => {
                args.checkpoint_every = val("--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--compact-every" => {
                args.compact_every = val("--compact-every")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--state" => args.state = Some(val("--state")?),
            "--resume" => args.resume = true,
            "--churn-script" => args.churn_script = Some(val("--churn-script")?),
            "--policy" => {
                args.policy = match val("--policy")?.as_str() {
                    "dynamic" => SharingPolicy::Dynamic,
                    "static" => SharingPolicy::AlwaysShare,
                    "noshare" => SharingPolicy::NeverShare,
                    other => return Err(format!("unknown policy {other}")),
                }
            }
            "--explain" => args.explain = true,
            "--help" | "-h" => {
                println!(
                    "usage: hamlet-cli [pipeline] [--dataset ridesharing|nyc|smarthome|stock] \
                     [--rate N] [--minutes N] [--queries K] [--window SECS] \
                     [--policy dynamic|static|noshare] [--burst B] [--groups G] \
                     [--skew Z] [--seed S] [--show N] [--explain]\n\
                     pipeline mode: [--workers W] [--eps OFFERED_RATE] [--slack TICKS] \
                     [--max-lateness TICKS] [--metrics-ms MS] [--metrics-json] \
                     [--trace-out FILE (Chrome trace_event JSON)] \
                     [--prom-out FILE (Prometheus text format)] \
                     [--state DIR (checkpoint chain directory)] \
                     [--checkpoint-every N [--compact-every K]] \
                     [--checkpoint-after N] [--resume] \
                     [--churn-script FILE (lines: `<ts> add|remove <query-id>`)]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e} (try --help)");
            std::process::exit(2);
        }
    };
    // A churn script references workload queries by id; ids at or above
    // `--queries` draw extra queries from the same deterministic
    // generator, so the pool is sized to the largest id the script adds.
    if !args.pipeline && (args.trace_out.is_some() || args.prom_out.is_some()) {
        eprintln!("error: --trace-out/--prom-out are pipeline-mode flags");
        std::process::exit(2);
    }
    let script: Vec<(u64, bool, u32)> = match &args.churn_script {
        Some(path) => {
            if !args.pipeline {
                eprintln!("error: --churn-script is a pipeline-mode flag");
                std::process::exit(2);
            }
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("error: read {path}: {e}");
                std::process::exit(2);
            });
            parse_churn_script(&text).unwrap_or_else(|e| {
                eprintln!("error: {path}: {e}");
                std::process::exit(2);
            })
        }
        None => Vec::new(),
    };
    let pool_size = script
        .iter()
        .filter(|(_, add, _)| *add)
        .map(|&(_, _, id)| id as usize + 1)
        .max()
        .unwrap_or(0)
        .max(args.queries);

    let gen = GenConfig {
        events_per_min: args.rate,
        minutes: args.minutes,
        mean_burst: args.mean_burst,
        num_groups: args.groups,
        group_skew: args.skew,
        seed: args.seed,
        max_lateness: if args.pipeline { args.max_lateness } else { 0 },
    };
    let (reg, events, pool): (Arc<TypeRegistry>, Vec<Event>, Vec<Query>) =
        match args.dataset.as_str() {
            "ridesharing" => {
                let reg = ridesharing::registry();
                let ev = ridesharing::generate(&reg, &gen);
                let qs = ridesharing::workload_shared_kleene(&reg, pool_size, args.window);
                (reg, ev, qs)
            }
            "nyc" => {
                let reg = nyc_taxi::registry();
                let ev = nyc_taxi::generate(&reg, &gen);
                let qs = nyc_taxi::workload(&reg, pool_size, args.window);
                (reg, ev, qs)
            }
            "smarthome" => {
                let reg = smart_home::registry();
                let ev = smart_home::generate(&reg, &gen);
                let qs = smart_home::workload(&reg, pool_size, args.window);
                (reg, ev, qs)
            }
            "stock" => {
                let reg = stock::registry();
                let ev = stock::generate(&reg, &gen);
                let qs = stock::workload_diverse(&reg, pool_size, args.seed);
                (reg, ev, qs)
            }
            other => {
                eprintln!("unknown dataset {other}");
                std::process::exit(2);
            }
        };
    let queries: Vec<Query> = pool[..args.queries].to_vec();
    let schedule: Vec<(Ts, ChurnOp)> = script
        .iter()
        .map(|&(ts, add, id)| {
            let op = if add {
                ChurnOp::Add(pool[id as usize].clone())
            } else {
                ChurnOp::Remove(QueryId(id))
            };
            (Ts(ts), op)
        })
        .collect();

    if args.pipeline {
        run_pipeline(&args, reg, events, queries, schedule);
    } else {
        run_offline(&args, reg, events, queries);
    }
}

/// Parses a churn script: one `<ts> add|remove <query-id>` per line;
/// blank lines and `#` comments are ignored. Each op fires when the
/// pipeline watermark first reaches its timestamp.
fn parse_churn_script(text: &str) -> Result<Vec<(u64, bool, u32)>, String> {
    let mut out = Vec::new();
    for (n, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(ts), Some(op), Some(id), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "line {}: expected `<ts> add|remove <query-id>`, got {line:?}",
                n + 1
            ));
        };
        let ts: u64 = ts
            .parse()
            .map_err(|e| format!("line {}: bad timestamp {ts:?}: {e}", n + 1))?;
        let id: u32 = id
            .parse()
            .map_err(|e| format!("line {}: bad query id {id:?}: {e}", n + 1))?;
        let add = match op {
            "add" => true,
            "remove" => false,
            other => {
                return Err(format!(
                    "line {}: unknown op {other:?} (want add or remove)",
                    n + 1
                ))
            }
        };
        out.push((ts, add, id));
    }
    Ok(out)
}

/// One [`MetricsSnapshot`] as a single JSON line for tooling — the same
/// hand-rolled, non-finite-guarded formatting as `BENCH.json`
/// (`hamlet_bench::json::num`), so a stalled pipeline (0-duration rates)
/// can never emit invalid JSON. Includes the sparse latency histogram
/// (`[upper_bound_ns, count]` pairs) and one row per share group.
fn metrics_json_line(m: &MetricsSnapshot) -> String {
    use hamlet_bench::json::num;
    let depths: Vec<String> = m.worker_depths.iter().map(|d| d.to_string()).collect();
    let buckets: Vec<String> = m
        .latency_buckets
        .iter()
        .map(|(le, n)| format!("[{le},{n}]"))
        .collect();
    let groups: Vec<String> = m.groups.iter().map(group_json).collect();
    format!(
        "{{\"elapsed\":{},\"ingested\":{},\"late\":{},\"released\":{},\"results\":{},\
         \"watermark\":{},\"source_done\":{},\"reorder_depth\":{},\"worker_depths\":[{}],\
         \"sink_depth\":{},\"ingest_eps\":{},\"latency\":{{\"count\":{},\"avg\":{},\
         \"p50\":{},\"p99\":{},\"max\":{},\"buckets_ns\":[{}]}},\"dropped_spans\":{},\
         \"checkpoints\":{},\"checkpoint_bytes\":{},\"checkpoint_failures\":{},\
         \"groups\":[{}]}}",
        num(m.elapsed.as_secs_f64()),
        m.ingested,
        m.late,
        m.released,
        m.results,
        m.watermark
            .map(|w| w.ticks().to_string())
            .unwrap_or_else(|| "null".into()),
        m.source_done,
        m.reorder_depth,
        depths.join(","),
        m.sink_depth,
        num(m.ingest_eps()),
        m.latency.count,
        num(m.latency.avg.as_secs_f64()),
        num(m.latency.p50.as_secs_f64()),
        num(m.latency.p99.as_secs_f64()),
        num(m.latency.max.as_secs_f64()),
        buckets.join(","),
        m.dropped_spans,
        m.checkpoints,
        m.checkpoint_bytes,
        m.checkpoint_failures,
        groups.join(","),
    )
}

/// One share group's counters as a JSON object (see [`GroupMetrics`]).
fn group_json(g: &GroupMetrics) -> String {
    use hamlet_bench::json::num;
    format!(
        "{{\"group\":{:?},\"shared\":{},\"benefit\":{},\"events_routed\":{},\
         \"runs_created\":{},\"runs_expired\":{},\"shared_bursts\":{},\"solo_bursts\":{},\
         \"graphlet_snapshots\":{},\"event_snapshots\":{},\"results\":{}}}",
        g.sig_label(),
        g.shared,
        num(g.benefit),
        g.events_routed,
        g.runs_created,
        g.runs_expired,
        g.shared_bursts,
        g.solo_bursts,
        g.graphlet_snapshots,
        g.event_snapshots,
        g.results_emitted,
    )
}

/// Writes an exporter artifact, failing loudly: an observability file
/// the user asked for silently missing is worse than a hard exit.
fn write_export(path: &str, what: &str, body: &str) {
    if let Err(e) = std::fs::write(path, body) {
        eprintln!("error: write {what} {path}: {e}");
        std::process::exit(1);
    }
    println!("{what} written to {path}");
}

/// Live mode: feed the stream through the online pipeline, printing
/// metrics snapshots while it runs, then drain (or checkpoint) and
/// summarize.
fn run_pipeline(
    args: &Args,
    reg: Arc<TypeRegistry>,
    events: Vec<Event>,
    queries: Vec<Query>,
    schedule: Vec<(Ts, ChurnOp)>,
) {
    if (args.checkpoint_after > 0 || args.checkpoint_every > 0 || args.resume)
        && args.state.is_none()
    {
        eprintln!("error: --checkpoint-after/--checkpoint-every/--resume need --state DIR");
        std::process::exit(2);
    }
    if args.checkpoint_after > 0 && args.resume {
        eprintln!("error: --checkpoint-after and --resume are mutually exclusive");
        std::process::exit(2);
    }
    // `--state DIR` is a DirStore: one file per chain record, written
    // atomically, compacted whenever a full base lands.
    let store: Option<Arc<DirStore>> = args.state.as_deref().map(|dir| match DirStore::open(dir) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("error: open checkpoint store {dir}: {e}");
            std::process::exit(2);
        }
    });

    // Resume: read the newest base + delta chain and reposition the
    // (deterministic, regenerated) stream at the tip record's source
    // cursor; the events the cut froze in the reorder buffer travel
    // inside the chain itself.
    let cursor = if args.resume {
        let st = store.as_ref().expect("validated above");
        let chain = st.load_chain().unwrap_or_else(|e| {
            eprintln!("error: load checkpoint chain: {e}");
            std::process::exit(2);
        });
        let Some(tip) = chain.last() else {
            eprintln!(
                "error: {} holds no checkpoint records — nothing to resume",
                st.path().display()
            );
            std::process::exit(2);
        };
        let tip_ck = PipelineCheckpoint::from_bytes(tip.as_bytes()).unwrap_or_else(|e| {
            eprintln!("error: decode chain tip: {e}");
            std::process::exit(2);
        });
        println!(
            "restoring from {}: {} record(s) (base seq {} + {} delta(s)), tip seq {} at event {}",
            st.path().display(),
            chain.len(),
            chain[0].seq(),
            chain.len() - 1,
            tip.seq(),
            tip_ck.events_pulled(),
        );
        tip_ck.events_pulled() as usize
    } else {
        0
    };
    if cursor > events.len() {
        eprintln!(
            "error: checkpoint cursor {cursor} beyond the generated stream \
             ({} events) — different --rate/--minutes/--seed than the original run?",
            events.len()
        );
        std::process::exit(2);
    }
    let feed = events[cursor..].to_vec();

    println!(
        "pipeline: dataset={} events={} queries={} workers={} offered_eps={} \
         max_lateness={} slack={}{}",
        args.dataset,
        events.len(),
        queries.len(),
        args.workers,
        if args.eps > 0.0 {
            format!("{:.0}", args.eps)
        } else {
            "unpaced".into()
        },
        args.max_lateness,
        args.slack,
        if args.resume {
            format!(" (resumed at event {cursor})")
        } else {
            String::new()
        },
    );
    // Capped dead-letter log: a slack/lateness mismatch can make a large
    // fraction of the stream late, and per-event stderr writes on the
    // ingest thread would throttle the very pipeline being measured. The
    // full count is in every metrics line and the drain summary.
    let mut dead_logged = 0u32;
    let churned = !schedule.is_empty();
    // Span ring size per lane when --trace-out is active: ~3 MB per lane
    // at 48 bytes per span, and long runs keep the most recent window
    // (drop-oldest; the drop count lands in the trace metadata and in
    // `dropped_spans` of every metrics line).
    const TRACE_CAPACITY: usize = 65_536;
    let mut builder = Pipeline::builder(reg, queries)
        .trace(if args.trace_out.is_some() {
            TRACE_CAPACITY
        } else {
            0
        })
        .engine_config(EngineConfig {
            policy: args.policy,
            ..EngineConfig::default()
        })
        .workers(args.workers)
        .churn_at(schedule)
        .watermark(BoundedLateness::new(args.slack))
        .on_late(move |e| {
            if dead_logged < 3 {
                dead_logged += 1;
                eprintln!(
                    "dead-letter: late event at t={} (further drops counted silently)",
                    e.time
                );
            }
        });
    // Any run with a store keeps it attached: cadence cuts
    // (`--checkpoint-every`), one-shot cuts (`--checkpoint-after`), and
    // resumed runs that keep checkpointing all append to the same chain.
    if let Some(st) = &store {
        builder = builder.checkpoint_store(st.clone() as Arc<dyn CheckpointStore>);
        if args.checkpoint_every > 0 {
            builder = builder.checkpoint_every(args.checkpoint_every);
        }
        if args.compact_every > 0 {
            builder = builder.compact_every(args.compact_every);
        }
    }
    let replay = ReplaySource::new(feed);
    let spawn = match (args.resume, args.eps > 0.0) {
        (true, true) => builder
            .resume_from(
                store.as_deref().expect("validated above"),
                RateLimitedSource::new(replay, args.eps),
                VecSink::new(),
            )
            .map_err(|e| format!("{e}")),
        (true, false) => builder
            .resume_from(
                store.as_deref().expect("validated above"),
                replay,
                VecSink::new(),
            )
            .map_err(|e| format!("{e}")),
        (false, true) => builder
            .spawn(RateLimitedSource::new(replay, args.eps), VecSink::new())
            .map_err(|e| format!("{e}")),
        (false, false) => builder
            .spawn(replay, VecSink::new())
            .map_err(|e| format!("{e}")),
    };
    let mut handle = match spawn {
        Ok(h) => h,
        Err(e) => {
            eprintln!("engine error: {e}");
            std::process::exit(1);
        }
    };
    // Live view until the source is exhausted and the queues are empty —
    // or the checkpoint threshold is crossed.
    let mut cut_taken = false;
    loop {
        let m = handle.metrics();
        if args.metrics_json {
            println!("{}", metrics_json_line(&m));
        } else if args.metrics_ms > 0 {
            println!(
                "[{:>7.2}s] in={} out={} late={} wm={} queues: reorder={} workers={:?} sink={} \
                 | latency p50={:?} p99={:?}",
                m.elapsed.as_secs_f64(),
                m.ingested,
                m.results,
                m.late,
                m.watermark.map(|w| w.ticks()).unwrap_or(0),
                m.reorder_depth,
                m.worker_depths,
                m.sink_depth,
                m.latency.p50,
                m.latency.p99,
            );
        }
        // Take the checkpoint at the threshold — or at end-of-stream if
        // the stream ran out first: the user asked for a checkpoint, so
        // never exit "successfully" without writing one.
        let stream_over = m.source_done && m.queued() == 0;
        if args.checkpoint_after > 0
            && !cut_taken
            && (m.ingested >= args.checkpoint_after || stream_over)
        {
            if m.ingested < args.checkpoint_after {
                eprintln!(
                    "warning: stream ended after {} events, before --checkpoint-after {}; \
                     checkpointing the end-of-stream state instead",
                    m.ingested, args.checkpoint_after
                );
            }
            cut_taken = true;
            let st = store.as_ref().expect("validated above");
            // Prefer a live full cut at the next source barrier: the
            // coordinated cut appends to the store itself and chains
            // onto any `--checkpoint-every` cadence cuts already taken.
            match handle.cut(CutKind::Full) {
                Ok(ck) => {
                    let pc = match PipelineCheckpoint::from_bytes(ck.as_bytes()) {
                        Ok(pc) => pc,
                        Err(e) => {
                            eprintln!("error: decode own cut: {e}");
                            std::process::exit(1);
                        }
                    };
                    println!(
                        "\ncheckpointed to {} (record seq {}, {} bytes, {} buffered events) \
                         after {} events; stopping the source",
                        st.path().display(),
                        ck.seq(),
                        ck.len(),
                        pc.buffered_len(),
                        pc.events_pulled(),
                    );
                    println!(
                        "resume with: hamlet-cli pipeline ... --resume --state {}",
                        st.path().display()
                    );
                    // The drain path below prints the final summary.
                    handle.stop();
                }
                Err(_) => {
                    // The source already ended — no barrier left to cut
                    // at. Freeze the quiesced pipeline the legacy way
                    // and append the container to the store as a base.
                    // Exporters snapshot first: `checkpoint` consumes
                    // the handle.
                    if let Some(p) = &args.prom_out {
                        write_export(p, "prometheus metrics", &handle.export_prometheus());
                    }
                    if let Some(p) = &args.trace_out {
                        write_export(p, "chrome trace", &handle.export_chrome_trace());
                    }
                    let frozen = handle.checkpoint();
                    let ck = match Checkpoint::from_bytes(frozen.checkpoint.to_bytes()) {
                        Ok(c) => c,
                        Err(e) => {
                            eprintln!("error: package end-of-stream checkpoint: {e}");
                            std::process::exit(1);
                        }
                    };
                    if let Err(e) = st.append(&ck) {
                        eprintln!("error: append to {}: {e}", st.path().display());
                        std::process::exit(1);
                    }
                    println!(
                        "\ncheckpointed to {} after {} events: {} bytes ({} engine state, \
                         {} buffered events), barrier pause {:?}, {} results already emitted",
                        st.path().display(),
                        frozen.checkpoint.events_pulled(),
                        ck.len(),
                        frozen.checkpoint.engine_bytes(),
                        frozen.checkpoint.buffered_len(),
                        frozen.pause,
                        frozen.sink.results.len(),
                    );
                    println!(
                        "resume with: hamlet-cli pipeline ... --resume --state {}",
                        st.path().display()
                    );
                    return;
                }
            }
        }
        if stream_over {
            break;
        }
        std::thread::sleep(Duration::from_millis(args.metrics_ms.clamp(20, 2_000)));
    }
    let final_metrics = handle.metrics();
    // Exporters snapshot before the drain tears the pipeline down: the
    // prom text is the final scrape, the trace holds the whole run (or
    // its most recent TRACE_CAPACITY spans per lane).
    if let Some(p) = &args.prom_out {
        write_export(p, "prometheus metrics", &handle.export_prometheus());
    }
    if let Some(p) = &args.trace_out {
        write_export(p, "chrome trace", &handle.export_chrome_trace());
    }
    let report = handle.drain();
    println!(
        "\ndrained in {:?}: {} events ({:.0} ev/s), {} late, {} results",
        report.wall,
        report.events,
        report.throughput_eps(),
        report.late,
        report.results,
    );
    if let Some(st) = &store {
        println!(
            "checkpoint store {}: {} cut(s), {} bytes written, {} failure(s)",
            st.path().display(),
            final_metrics.checkpoints,
            final_metrics.checkpoint_bytes,
            final_metrics.checkpoint_failures,
        );
    }
    println!(
        "end-to-end latency avg {:?} p50 {:?} p99 {:?} max {:?} · engine latency avg {:?} · \
         peak state {} KB · late skips {}",
        report.latency.avg(),
        report.latency.p50(),
        report.latency.p99(),
        report.latency.max(),
        report.engine_latency.avg(),
        report.peak_mem.iter().sum::<usize>() / 1024,
        report.merged_stats().late_skips,
    );
    if churned {
        println!(
            "workload epoch {} ({} scheduled churn op(s) rejected)",
            final_metrics.epoch, final_metrics.churns_rejected,
        );
    }
    if args.show_results > 0 {
        println!("\nsample results:");
        for r in report.sink.results.iter().take(args.show_results) {
            println!(
                "  {} key={} window@{}: {:?}",
                r.query, r.group_key, r.window_start, r.value
            );
        }
    }
}

/// Offline mode: the original slice-at-a-time run.
fn run_offline(args: &Args, reg: Arc<TypeRegistry>, events: Vec<Event>, queries: Vec<Query>) {
    println!(
        "dataset={} events={} queries={} policy={:?}",
        args.dataset,
        events.len(),
        queries.len(),
        args.policy
    );
    let mut engine = match HamletEngine::new(
        reg.clone(),
        queries,
        EngineConfig {
            policy: args.policy,
            ..EngineConfig::default()
        },
    ) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("engine error: {e}");
            std::process::exit(1);
        }
    };
    if args.explain {
        println!("\n{}", engine.explain());
    }

    // hamlet-lint: allow(wallclock) -- CLI throughput measurement for --metrics output
    let t0 = Instant::now();
    let mut results = Vec::new();
    for e in &events {
        results.extend(engine.process(e));
    }
    results.extend(engine.flush());
    let wall = t0.elapsed();

    let stats = engine.stats();
    println!(
        "\nprocessed in {wall:?} ({:.0} events/s), {} window results",
        events.len() as f64 / wall.as_secs_f64(),
        results.len()
    );
    println!(
        "latency avg {:?} · peak state {} KB · {} snapshots · \
         {} shared / {} solo bursts · {} merges · {} splits · \
         decisions {:?} ({:.2}% of wall)",
        engine.latency().avg(),
        engine.peak_memory() / 1024,
        stats.runs.snapshots(),
        stats.runs.shared_bursts,
        stats.runs.solo_bursts,
        stats.runs.merges,
        stats.runs.splits,
        stats.decision_time,
        100.0 * stats.decision_time.as_secs_f64() / wall.as_secs_f64().max(1e-9),
    );
    if args.show_results > 0 {
        println!("\nsample results:");
        for r in results.iter().take(args.show_results) {
            println!(
                "  {} key={} window@{}: {:?}",
                r.query, r.group_key, r.window_start, r.value
            );
        }
    }
}
