//! # hamlet
//!
//! Facade crate for the HAMLET workspace — a from-scratch Rust
//! reproduction of *"To Share, or not to Share Online Event Trend
//! Aggregation Over Bursty Event Streams"* (SIGMOD 2021).
//!
//! HAMLET evaluates workloads of Kleene-pattern **event trend aggregation
//! queries** over high-rate streams. It aggregates trends *online* (never
//! constructing them) and decides **at runtime, per burst of events**,
//! whether queries should share computation — splitting and merging shared
//! graphlets as stream conditions change.
//!
//! ## Quick start
//!
//! ```
//! use hamlet::prelude::*;
//! use std::sync::Arc;
//!
//! // 1. Describe the stream's event types.
//! let mut reg = TypeRegistry::new();
//! reg.register("Request", &["district"]);
//! reg.register("Travel", &["district", "speed"]);
//! let reg = Arc::new(reg);
//!
//! // 2. Write queries in the SASE-style language of the paper (Fig. 1).
//! let q = parse_query(
//!     &reg,
//!     1,
//!     "RETURN COUNT(*) PATTERN SEQ(Request, Travel+) \
//!      GROUP BY district WITHIN 300",
//! )
//! .unwrap();
//!
//! // 3. Feed events, collect per-window aggregates.
//! let mut engine = HamletEngine::new(reg.clone(), vec![q], EngineConfig::default()).unwrap();
//! let travel = reg.type_id("Travel").unwrap();
//! let request = reg.type_id("Request").unwrap();
//! engine.process(&EventBuilder::new(&reg, request, 0).attr("district", 7i64).build());
//! engine.process(&EventBuilder::new(&reg, travel, 5).attr("district", 7i64).build());
//! let results = engine.flush();
//! assert_eq!(results[0].value.as_count(), 1);
//! ```
//!
//! ## Crates
//!
//! * [`hamlet_types`] — events, schemas, time, ring arithmetic.
//! * [`hamlet_query`] — Kleene patterns, predicates, windows, parser.
//! * [`hamlet_core`] — the HAMLET engine: templates, graphlets, snapshots,
//!   dynamic sharing optimizer, executor.
//! * [`hamlet_stream`] — bursty generators for the paper's four data sets.
//! * [`hamlet_pipeline`] — the online streaming runtime: sources,
//!   backpressure, out-of-order ingestion, live metrics, graceful drains.
//! * [`hamlet_baselines`] — GRETA, SHARON-style, and two-step baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hamlet_baselines;
pub use hamlet_core;
pub use hamlet_pipeline;
pub use hamlet_query;
pub use hamlet_stream;
pub use hamlet_types;

/// Convenient single-import surface.
pub mod prelude {
    pub use hamlet_baselines::{GretaEngine, SharonEngine, TwoStepEngine};
    pub use hamlet_core::{
        checkpoint_epoch, sort_results, AggValue, Checkpoint, CheckpointError, CheckpointKind,
        CheckpointStore, ChurnError, ChurnOp, ChurnReport, CutKind, DirStore, EngineConfig,
        GroupMetrics, HamletEngine, MemStore, ParallelCheckpoint, ParallelEngine, ParallelReport,
        ParallelSession, SharingPolicy, Snapshot, WindowResult,
    };
    pub use hamlet_pipeline::{
        BoundedLateness, CountingSink, MetricsSnapshot, NullSink, Pipeline, PipelineCheckpoint,
        PipelineChurnError, PipelineHandle, PipelineReport, RateLimitedSource, ReplaySource, Sink,
        Source, VecSink, WatermarkPolicy,
    };
    pub use hamlet_query::{parse_pattern, parse_query, AggFunc, Pattern, Query, QueryId, Window};
    pub use hamlet_stream::GenConfig;
    pub use hamlet_types::{
        AttrValue, Event, EventBuilder, EventTypeId, GroupKey, TrendVal, Ts, TypeRegistry,
    };
}
