//! Query predicates (`WHERE` clause).
//!
//! Two classes matter to HAMLET's sharing machinery (§3.3):
//!
//! * **Selection predicates** filter a single event (`T.speed < 10`). When
//!   the queries sharing a graphlet disagree on whether an event qualifies,
//!   the executor introduces an *event-level snapshot* (Def. 9).
//! * **Edge predicates** constrain two *adjacent* events in a trend
//!   (`S.price > PREV.price`). Per-query disagreement on an edge likewise
//!   forces an event-level snapshot.
//!
//! Attribute-equivalence constraints like `[driver, rider]` in Fig. 1 are
//! handled upstream by partitioning the stream on those attributes (§2.2),
//! see [`crate::query::Query::partition_attrs`].

use hamlet_types::{AttrValue, Event, EventTypeId};
use std::cmp::Ordering;
use std::fmt;

/// Comparison operator.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// Applies the operator to an ordering result.
    #[inline]
    pub fn eval(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
        };
        f.write_str(s)
    }
}

/// `TYPE.attr OP constant` — filters events of one type.
#[derive(Clone, Debug, PartialEq)]
pub struct SelectionPredicate {
    /// Event type the predicate applies to.
    pub ty: EventTypeId,
    /// Attribute slot within that type's schema.
    pub attr: usize,
    /// Comparison operator.
    pub op: CmpOp,
    /// Constant to compare against.
    pub value: AttrValue,
}

impl SelectionPredicate {
    /// True iff `e` satisfies the predicate. Events of other types are
    /// unaffected (vacuously true).
    #[inline]
    pub fn matches(&self, e: &Event) -> bool {
        if e.ty != self.ty {
            return true;
        }
        match e.attr(self.attr) {
            Some(v) => self.op.eval(v.total_cmp(&self.value)),
            None => false,
        }
    }
}

/// A [`SelectionPredicate`] pre-resolved for tight per-event loops.
///
/// [`AttrValue::total_cmp`] dispatches on both operands' variants for every
/// event. The constant side is fixed at query-compile time, so this form
/// lifts its variant out once: the common Int-vs-Int and Float-vs-Float
/// comparisons become a primitive compare with no enum dispatch, and only
/// mixed-variant or string comparisons fall back to `total_cmp`. The
/// outcome is identical to [`SelectionPredicate::matches`] by construction
/// (both fast arms are exactly the matching `total_cmp` arms).
#[derive(Clone, Debug)]
pub struct CompiledSelection {
    ty: EventTypeId,
    attr: usize,
    op: CmpOp,
    fast: FastConst,
    value: AttrValue,
}

/// The constant operand with its variant pre-matched.
#[derive(Clone, Debug)]
enum FastConst {
    Int(i64),
    Float(f64),
    Other,
}

impl CompiledSelection {
    /// Compiles a selection predicate.
    pub fn new(p: &SelectionPredicate) -> CompiledSelection {
        let fast = match p.value {
            AttrValue::Int(k) => FastConst::Int(k),
            AttrValue::Float(k) => FastConst::Float(k),
            _ => FastConst::Other,
        };
        CompiledSelection {
            ty: p.ty,
            attr: p.attr,
            op: p.op,
            fast,
            value: p.value.clone(),
        }
    }

    /// True iff `e` satisfies the predicate; equal to
    /// [`SelectionPredicate::matches`] on every input.
    #[inline]
    pub fn matches(&self, e: &Event) -> bool {
        if e.ty != self.ty {
            return true;
        }
        let Some(v) = e.attr(self.attr) else {
            return false;
        };
        match (&self.fast, v) {
            (FastConst::Int(k), AttrValue::Int(x)) => self.op.eval(x.cmp(k)),
            (FastConst::Float(k), AttrValue::Float(x)) => self.op.eval(x.total_cmp(k)),
            _ => self.op.eval(v.total_cmp(&self.value)),
        }
    }
}

impl From<&SelectionPredicate> for CompiledSelection {
    fn from(p: &SelectionPredicate) -> CompiledSelection {
        CompiledSelection::new(p)
    }
}

/// `TYPE.attr OP PREV.attr` — constrains adjacent events in a trend where
/// the *current* event has type [`EdgePredicate::ty`].
///
/// Both events are typically of the same Kleene type (e.g. consecutive stock
/// quotes with rising price), but the predicate is evaluated on any edge
/// whose head has the given type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgePredicate {
    /// Type of the current (head) event.
    pub ty: EventTypeId,
    /// Attribute slot of the current event.
    pub cur_attr: usize,
    /// Comparison operator (applied as `cur OP prev`).
    pub op: CmpOp,
    /// Attribute slot of the predecessor event. Only evaluated when the
    /// predecessor also has type [`EdgePredicate::ty`]; cross-type edges are
    /// unconstrained (they connect different pattern positions).
    pub prev_attr: usize,
}

impl EdgePredicate {
    /// True iff the edge `prev → cur` satisfies the predicate.
    #[inline]
    pub fn matches(&self, prev: &Event, cur: &Event) -> bool {
        if cur.ty != self.ty || prev.ty != self.ty {
            return true;
        }
        match (cur.attr(self.cur_attr), prev.attr(self.prev_attr)) {
            (Some(c), Some(p)) => self.op.eval(c.total_cmp(p)),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamlet_types::Ts;

    const T: EventTypeId = EventTypeId(3);
    const U: EventTypeId = EventTypeId(4);

    fn ev(ty: EventTypeId, v: f64) -> Event {
        Event::new(Ts(0), ty, vec![AttrValue::Float(v)])
    }

    #[test]
    fn cmp_op_eval() {
        use Ordering::*;
        assert!(CmpOp::Lt.eval(Less) && !CmpOp::Lt.eval(Equal));
        assert!(CmpOp::Le.eval(Less) && CmpOp::Le.eval(Equal) && !CmpOp::Le.eval(Greater));
        assert!(CmpOp::Gt.eval(Greater) && !CmpOp::Gt.eval(Equal));
        assert!(CmpOp::Ge.eval(Equal) && !CmpOp::Ge.eval(Less));
        assert!(CmpOp::Eq.eval(Equal) && !CmpOp::Eq.eval(Less));
        assert!(CmpOp::Ne.eval(Less) && !CmpOp::Ne.eval(Equal));
    }

    #[test]
    fn selection_filters_only_its_type() {
        let p = SelectionPredicate {
            ty: T,
            attr: 0,
            op: CmpOp::Lt,
            value: AttrValue::Float(10.0),
        };
        assert!(p.matches(&ev(T, 5.0)));
        assert!(!p.matches(&ev(T, 15.0)));
        // Other types pass vacuously.
        assert!(p.matches(&ev(U, 15.0)));
    }

    #[test]
    fn selection_missing_attr_fails() {
        let p = SelectionPredicate {
            ty: T,
            attr: 7,
            op: CmpOp::Eq,
            value: AttrValue::Int(1),
        };
        assert!(!p.matches(&ev(T, 1.0)));
    }

    #[test]
    fn compiled_selection_matches_reference() {
        // Every (op, constant-variant, event-variant) combination must
        // agree with the uncompiled predicate, including the fast Int/Int
        // and Float/Float arms and the mixed / string fallbacks.
        let consts = [
            AttrValue::Int(3),
            AttrValue::Float(3.0),
            AttrValue::Float(f64::NAN),
            AttrValue::from("m"),
        ];
        let vals = [
            AttrValue::Int(2),
            AttrValue::Int(3),
            AttrValue::Int(4),
            AttrValue::Float(2.5),
            AttrValue::Float(3.0),
            AttrValue::Float(f64::NAN),
            AttrValue::from("a"),
            AttrValue::from("z"),
        ];
        let ops = [
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
            CmpOp::Eq,
            CmpOp::Ne,
        ];
        for c in &consts {
            for op in ops {
                let p = SelectionPredicate {
                    ty: T,
                    attr: 0,
                    op,
                    value: c.clone(),
                };
                let f = CompiledSelection::new(&p);
                for v in &vals {
                    let e = Event::new(Ts(0), T, vec![v.clone()]);
                    assert_eq!(
                        p.matches(&e),
                        f.matches(&e),
                        "op {op:?} const {c:?} val {v:?}"
                    );
                }
                // Other type: vacuous for both. Missing attr: false for both.
                let other = Event::new(Ts(0), U, vec![]);
                assert_eq!(p.matches(&other), f.matches(&other));
                let missing = Event::new(Ts(0), T, vec![]);
                assert_eq!(p.matches(&missing), f.matches(&missing));
            }
        }
    }

    #[test]
    fn edge_predicate_same_type_only() {
        let p = EdgePredicate {
            ty: T,
            cur_attr: 0,
            op: CmpOp::Gt,
            prev_attr: 0,
        };
        assert!(p.matches(&ev(T, 1.0), &ev(T, 2.0)));
        assert!(!p.matches(&ev(T, 2.0), &ev(T, 1.0)));
        // Cross-type edges unconstrained.
        assert!(p.matches(&ev(U, 9.0), &ev(T, 1.0)));
        assert!(p.matches(&ev(T, 9.0), &ev(U, 1.0)));
    }
}
