//! # hamlet-query
//!
//! The query model of HAMLET (SIGMOD 2021): Kleene patterns (Def. 1), event
//! trend aggregation queries (Def. 2) with predicates, grouping, sliding
//! windows and aggregation functions, plus a SASE-style text parser for the
//! query language used throughout the paper (Fig. 1).
//!
//! ```
//! use hamlet_types::TypeRegistry;
//! use hamlet_query::parse_query;
//!
//! let mut reg = TypeRegistry::new();
//! reg.register("R", &["district"]);
//! reg.register("T", &["district", "speed"]);
//! let q = parse_query(
//!     &mut reg,
//!     0,
//!     "RETURN COUNT(*) PATTERN SEQ(R, T+) WHERE T.speed < 10 \
//!      GROUP BY district WITHIN 300 SLIDE 300",
//! )
//! .unwrap();
//! assert_eq!(q.window.within, 300);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod parser;
pub mod pattern;
pub mod predicate;
pub mod query;
pub mod render;
pub mod window;

pub use aggregate::AggFunc;
pub use parser::{parse_pattern, parse_query, ParseError};
pub use pattern::{Pattern, PatternError};
pub use predicate::{CmpOp, CompiledSelection, EdgePredicate, SelectionPredicate};
pub use query::{Query, QueryId};
pub use render::to_sase;
pub use window::Window;
