//! SASE-style query text parser (the language of Fig. 1).
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! query   := RETURN agg PATTERN pattern [WHERE cond (AND cond)*]
//!            [GROUP BY ident (, ident)*] WITHIN int [SLIDE int]
//! agg     := COUNT(*) | COUNT(Type) | SUM(Type.attr) | AVG(Type.attr)
//!          | MIN(Type.attr) | MAX(Type.attr)
//! pattern := unit ((OR | AND) unit)*
//! unit    := SEQ(pattern, …) | NOT unit | Type['+'] | '(' pattern ')' ['+']
//! cond    := Type.attr op literal          -- selection predicate
//!          | Type.attr op PREV.attr        -- edge predicate
//!          | '[' ident (, ident)* ']'      -- equivalence attributes
//! op      := < | <= | > | >= | = | !=
//! ```
//!
//! Event types must be pre-registered in the [`TypeRegistry`] so attribute
//! names can be resolved to schema slots.

use crate::aggregate::AggFunc;
use crate::pattern::Pattern;
use crate::predicate::{CmpOp, EdgePredicate, SelectionPredicate};
use crate::query::{Query, QueryId};
use crate::window::Window;
use hamlet_types::{AttrValue, EventTypeId, TypeRegistry};
use std::fmt;
use std::sync::Arc;

/// Parse failure with a human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError(msg.into()))
}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Dot,
    Plus,
    Star,
    Op(CmpOp),
}

fn tokenize(input: &str) -> Result<Vec<Tok>, ParseError> {
    let mut toks = Vec::new();
    let mut it = input.chars().peekable();
    while let Some(&c) = it.peek() {
        match c {
            c if c.is_whitespace() => {
                it.next();
            }
            '(' => {
                it.next();
                toks.push(Tok::LParen);
            }
            ')' => {
                it.next();
                toks.push(Tok::RParen);
            }
            '[' => {
                it.next();
                toks.push(Tok::LBracket);
            }
            ']' => {
                it.next();
                toks.push(Tok::RBracket);
            }
            ',' => {
                it.next();
                toks.push(Tok::Comma);
            }
            '.' => {
                it.next();
                toks.push(Tok::Dot);
            }
            '+' => {
                it.next();
                toks.push(Tok::Plus);
            }
            '*' => {
                it.next();
                toks.push(Tok::Star);
            }
            '<' => {
                it.next();
                if it.peek() == Some(&'=') {
                    it.next();
                    toks.push(Tok::Op(CmpOp::Le));
                } else {
                    toks.push(Tok::Op(CmpOp::Lt));
                }
            }
            '>' => {
                it.next();
                if it.peek() == Some(&'=') {
                    it.next();
                    toks.push(Tok::Op(CmpOp::Ge));
                } else {
                    toks.push(Tok::Op(CmpOp::Gt));
                }
            }
            '=' => {
                it.next();
                toks.push(Tok::Op(CmpOp::Eq));
            }
            '!' => {
                it.next();
                if it.peek() == Some(&'=') {
                    it.next();
                    toks.push(Tok::Op(CmpOp::Ne));
                } else {
                    return err("stray '!'");
                }
            }
            '\'' | '"' => {
                let quote = c;
                it.next();
                let mut s = String::new();
                loop {
                    match it.next() {
                        Some(ch) if ch == quote => break,
                        Some(ch) => s.push(ch),
                        None => return err("unterminated string literal"),
                    }
                }
                toks.push(Tok::Str(s));
            }
            c if c.is_ascii_digit() || c == '-' => {
                let mut s = String::new();
                s.push(c);
                it.next();
                let mut is_float = false;
                while let Some(&d) = it.peek() {
                    if d.is_ascii_digit() {
                        s.push(d);
                        it.next();
                    } else if d == '.' {
                        // Lookahead: `3.5` is a float, but we never emit
                        // `Type.attr` starting with a digit, so '.' after
                        // digits is part of the number.
                        is_float = true;
                        s.push(d);
                        it.next();
                    } else {
                        break;
                    }
                }
                if is_float {
                    match s.parse::<f64>() {
                        Ok(v) => toks.push(Tok::Float(v)),
                        Err(_) => return err(format!("bad float literal {s:?}")),
                    }
                } else {
                    match s.parse::<i64>() {
                        Ok(v) => toks.push(Tok::Int(v)),
                        Err(_) => return err(format!("bad int literal {s:?}")),
                    }
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = it.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        s.push(d);
                        it.next();
                    } else {
                        break;
                    }
                }
                toks.push(Tok::Ident(s));
            }
            other => return err(format!("unexpected character {other:?}")),
        }
    }
    Ok(toks)
}

struct P<'a> {
    toks: Vec<Tok>,
    pos: usize,
    reg: &'a TypeRegistry,
}

impl<'a> P<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            err(format!("expected keyword {kw}, found {:?}", self.peek()))
        }
    }

    fn expect(&mut self, t: Tok) -> Result<(), ParseError> {
        match self.next() {
            Some(got) if got == t => Ok(()),
            got => err(format!("expected {t:?}, found {got:?}")),
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            got => err(format!("expected identifier, found {got:?}")),
        }
    }

    fn type_id(&mut self) -> Result<EventTypeId, ParseError> {
        let name = self.ident()?;
        self.reg
            .type_id(&name)
            .ok_or_else(|| ParseError(format!("unknown event type {name:?}")))
    }

    fn type_attr(&mut self) -> Result<(EventTypeId, usize), ParseError> {
        let ty = self.type_id()?;
        self.expect(Tok::Dot)?;
        let attr = self.ident()?;
        let idx = self.reg.attr_index(ty, &attr).ok_or_else(|| {
            ParseError(format!(
                "type {:?} has no attribute {attr:?}",
                self.reg.name(ty)
            ))
        })?;
        Ok((ty, idx))
    }

    fn agg(&mut self) -> Result<AggFunc, ParseError> {
        let name = self.ident()?.to_ascii_uppercase();
        self.expect(Tok::LParen)?;
        let f = match name.as_str() {
            "COUNT" => {
                if matches!(self.peek(), Some(Tok::Star)) {
                    self.next();
                    AggFunc::CountStar
                } else {
                    AggFunc::CountType(self.type_id()?)
                }
            }
            "SUM" => {
                let (t, a) = self.type_attr()?;
                AggFunc::Sum(t, a)
            }
            "AVG" => {
                let (t, a) = self.type_attr()?;
                AggFunc::Avg(t, a)
            }
            "MIN" => {
                let (t, a) = self.type_attr()?;
                AggFunc::Min(t, a)
            }
            "MAX" => {
                let (t, a) = self.type_attr()?;
                AggFunc::Max(t, a)
            }
            other => return err(format!("unknown aggregate {other}")),
        };
        self.expect(Tok::RParen)?;
        Ok(f)
    }

    fn pattern(&mut self) -> Result<Pattern, ParseError> {
        let mut left = self.pattern_unit()?;
        loop {
            if self.eat_kw("OR") {
                let right = self.pattern_unit()?;
                left = Pattern::Or(Box::new(left), Box::new(right));
            } else if self.peek_kw("AND") && !self.at_clause_boundary_ahead() {
                self.next();
                let right = self.pattern_unit()?;
                left = Pattern::And(Box::new(left), Box::new(right));
            } else {
                break;
            }
        }
        Ok(left)
    }

    /// `AND` is also the WHERE-clause connective; inside the PATTERN clause
    /// it always connects two pattern units, so no real ambiguity arises —
    /// this hook exists for clarity and future clause keywords.
    fn at_clause_boundary_ahead(&self) -> bool {
        false
    }

    fn pattern_unit(&mut self) -> Result<Pattern, ParseError> {
        if self.eat_kw("SEQ") {
            self.expect(Tok::LParen)?;
            let mut parts = Vec::new();
            loop {
                parts.push(self.pattern()?);
                match self.next() {
                    Some(Tok::Comma) => continue,
                    Some(Tok::RParen) => break,
                    got => return err(format!("expected ',' or ')' in SEQ, found {got:?}")),
                }
            }
            return Ok(Pattern::Seq(parts));
        }
        if self.eat_kw("NOT") {
            let inner = self.pattern_unit()?;
            return Ok(Pattern::Not(Box::new(inner)));
        }
        if matches!(self.peek(), Some(Tok::LParen)) {
            self.next();
            let inner = self.pattern()?;
            self.expect(Tok::RParen)?;
            if matches!(self.peek(), Some(Tok::Plus)) {
                self.next();
                return Ok(Pattern::plus(inner));
            }
            return Ok(inner);
        }
        let ty = self.type_id()?;
        if matches!(self.peek(), Some(Tok::Plus)) {
            self.next();
            Ok(Pattern::plus(Pattern::Type(ty)))
        } else {
            Ok(Pattern::Type(ty))
        }
    }

    fn literal(&mut self) -> Result<AttrValue, ParseError> {
        match self.next() {
            Some(Tok::Int(i)) => Ok(AttrValue::Int(i)),
            Some(Tok::Float(f)) => Ok(AttrValue::Float(f)),
            Some(Tok::Str(s)) => Ok(AttrValue::from(s.as_str())),
            got => err(format!("expected literal, found {got:?}")),
        }
    }
}

/// Parses just a pattern expression (used by tests and workload builders).
pub fn parse_pattern(reg: &TypeRegistry, text: &str) -> Result<Pattern, ParseError> {
    let toks = tokenize(text)?;
    let mut p = P { toks, pos: 0, reg };
    let pat = p.pattern()?;
    if p.peek().is_some() {
        return err(format!("trailing input after pattern: {:?}", p.peek()));
    }
    Ok(pat)
}

/// Parses a full query.
pub fn parse_query(reg: &TypeRegistry, id: u32, text: &str) -> Result<Query, ParseError> {
    let toks = tokenize(text)?;
    let mut p = P { toks, pos: 0, reg };

    p.expect_kw("RETURN")?;
    let agg = p.agg()?;
    p.expect_kw("PATTERN")?;
    let pattern = p.pattern()?;

    let mut selections = Vec::new();
    let mut edges = Vec::new();
    let mut equiv: Vec<Arc<str>> = Vec::new();
    if p.eat_kw("WHERE") {
        loop {
            if matches!(p.peek(), Some(Tok::LBracket)) {
                p.next();
                loop {
                    let a = p.ident()?;
                    equiv.push(Arc::from(a.as_str()));
                    match p.next() {
                        Some(Tok::Comma) => continue,
                        Some(Tok::RBracket) => break,
                        got => return err(format!("expected ',' or ']', found {got:?}")),
                    }
                }
            } else {
                let (ty, attr) = p.type_attr()?;
                let op = match p.next() {
                    Some(Tok::Op(op)) => op,
                    got => return err(format!("expected comparison operator, found {got:?}")),
                };
                if p.peek_kw("PREV") {
                    p.next();
                    p.expect(Tok::Dot)?;
                    let pattr = p.ident()?;
                    let prev_attr = p.reg.attr_index(ty, &pattr).ok_or_else(|| {
                        ParseError(format!(
                            "type {:?} has no attribute {pattr:?}",
                            p.reg.name(ty)
                        ))
                    })?;
                    edges.push(EdgePredicate {
                        ty,
                        cur_attr: attr,
                        op,
                        prev_attr,
                    });
                } else {
                    let value = p.literal()?;
                    selections.push(SelectionPredicate {
                        ty,
                        attr,
                        op,
                        value,
                    });
                }
            }
            if !p.eat_kw("AND") {
                break;
            }
        }
    }

    let mut group_by: Vec<Arc<str>> = Vec::new();
    if p.eat_kw("GROUP") {
        p.expect_kw("BY")?;
        loop {
            let a = p.ident()?;
            group_by.push(Arc::from(a.as_str()));
            if !matches!(p.peek(), Some(Tok::Comma)) {
                break;
            }
            p.next();
        }
    }

    p.expect_kw("WITHIN")?;
    let within = match p.next() {
        Some(Tok::Int(i)) if i > 0 => i as u64,
        got => return err(format!("expected positive window size, found {got:?}")),
    };
    let slide = if p.eat_kw("SLIDE") {
        match p.next() {
            Some(Tok::Int(i)) if i > 0 => i as u64,
            got => return err(format!("expected positive slide, found {got:?}")),
        }
    } else {
        within
    };
    if p.peek().is_some() {
        return err(format!("trailing input: {:?}", p.peek()));
    }

    Query::new(
        QueryId(id),
        pattern,
        agg,
        selections,
        edges,
        group_by,
        equiv,
        Window::new(within, slide),
    )
    .map_err(|e| ParseError(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> TypeRegistry {
        let mut reg = TypeRegistry::new();
        reg.register("Request", &["district", "driver", "rider", "kind"]);
        reg.register("Travel", &["district", "driver", "rider", "speed"]);
        reg.register("Pickup", &["district", "driver", "rider"]);
        reg.register("Dropoff", &["district", "driver", "rider"]);
        reg.register("Cancel", &["district", "driver", "rider"]);
        reg
    }

    #[test]
    fn parse_fig1_q1_shape() {
        let reg = registry();
        let q = parse_query(
            &reg,
            1,
            "RETURN COUNT(*) PATTERN SEQ(Request, Travel+, NOT Pickup) \
             WHERE [driver, rider] GROUP BY district WITHIN 1800 SLIDE 1800",
        )
        .unwrap();
        assert_eq!(q.id, QueryId(1));
        assert_eq!(q.agg, AggFunc::CountStar);
        assert_eq!(q.equiv.len(), 2);
        assert_eq!(q.group_by.len(), 1);
        let travel = reg.type_id("Travel").unwrap();
        assert!(q.pattern.kleene_types().contains(&travel));
        let pickup = reg.type_id("Pickup").unwrap();
        assert!(q.pattern.negated_types().contains(&pickup));
    }

    #[test]
    fn parse_predicates() {
        let reg = registry();
        let q = parse_query(
            &reg,
            2,
            "RETURN AVG(Travel.speed) PATTERN SEQ(Request, Travel+) \
             WHERE Travel.speed < 10 AND Travel.speed > PREV.speed \
             AND Request.kind = 'Pool' WITHIN 600",
        )
        .unwrap();
        assert_eq!(q.selections.len(), 2);
        assert_eq!(q.edges.len(), 1);
        assert_eq!(q.window, Window::tumbling(600));
        assert!(matches!(q.agg, AggFunc::Avg(_, _)));
    }

    #[test]
    fn parse_nested_kleene() {
        let reg = registry();
        let p = parse_pattern(&reg, "(SEQ(Request, Travel+))+").unwrap();
        assert!(matches!(p, Pattern::Kleene(_)));
        let travel = reg.type_id("Travel").unwrap();
        assert!(p.kleene_types().contains(&travel));
    }

    #[test]
    fn parse_or_and_patterns() {
        let reg = registry();
        let p = parse_pattern(&reg, "SEQ(Request, Travel+) OR Cancel").unwrap();
        assert!(matches!(p, Pattern::Or(_, _)));
        let p = parse_pattern(&reg, "Pickup AND Dropoff").unwrap();
        assert!(matches!(p, Pattern::And(_, _)));
    }

    #[test]
    fn parse_aggregates() {
        let reg = registry();
        for (txt, check) in [
            ("COUNT(*)", AggFunc::CountStar),
            (
                "COUNT(Travel)",
                AggFunc::CountType(reg.type_id("Travel").unwrap()),
            ),
            (
                "SUM(Travel.speed)",
                AggFunc::Sum(reg.type_id("Travel").unwrap(), 3),
            ),
            (
                "MIN(Travel.speed)",
                AggFunc::Min(reg.type_id("Travel").unwrap(), 3),
            ),
            (
                "MAX(Travel.speed)",
                AggFunc::Max(reg.type_id("Travel").unwrap(), 3),
            ),
        ] {
            let q = parse_query(
                &reg,
                0,
                &format!("RETURN {txt} PATTERN SEQ(Request, Travel+) WITHIN 60"),
            )
            .unwrap();
            assert_eq!(q.agg, check, "aggregate {txt}");
        }
    }

    #[test]
    fn errors_are_reported() {
        let reg = registry();
        assert!(parse_query(&reg, 0, "PATTERN SEQ(Request) WITHIN 10").is_err());
        assert!(parse_query(&reg, 0, "RETURN COUNT(*) PATTERN SEQ(Nope+) WITHIN 10").is_err());
        assert!(parse_query(
            &reg,
            0,
            "RETURN COUNT(*) PATTERN SEQ(Request, Travel+) WITHIN 0"
        )
        .is_err());
        assert!(parse_query(
            &reg,
            0,
            "RETURN COUNT(*) PATTERN SEQ(Request, Travel+) WHERE Travel.nope < 1 WITHIN 10"
        )
        .is_err());
        assert!(parse_pattern(&reg, "SEQ(Request, Travel+) bogus").is_err());
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn float_and_string_literals() {
        let reg = registry();
        let q = parse_query(
            &reg,
            0,
            "RETURN COUNT(*) PATTERN Travel+ WHERE Travel.speed <= 9.5 WITHIN 60",
        )
        .unwrap();
        assert_eq!(q.selections[0].value, AttrValue::Float(9.5));
    }

    #[test]
    fn default_slide_equals_within() {
        let reg = registry();
        let q = parse_query(&reg, 0, "RETURN COUNT(*) PATTERN Travel+ WITHIN 42").unwrap();
        assert!(q.window.is_tumbling());
        assert_eq!(q.window.within, 42);
    }
}
