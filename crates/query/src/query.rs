//! Event trend aggregation queries (Def. 2).

use crate::aggregate::AggFunc;
use crate::pattern::{Pattern, PatternError};
use crate::predicate::{EdgePredicate, SelectionPredicate};
use crate::window::Window;
use hamlet_types::{Event, EventTypeId, GroupKey, TypeRegistry};
use std::fmt;
use std::sync::Arc;

/// Dense workload-local query identifier.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u32);

impl QueryId {
    /// Index form for direct vector addressing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// An event trend aggregation query: the five clauses of Def. 2.
#[derive(Clone, Debug)]
pub struct Query {
    /// Workload-local identifier.
    pub id: QueryId,
    /// The Kleene pattern (`PATTERN` clause).
    pub pattern: Pattern,
    /// Aggregation function (`RETURN` clause).
    pub agg: AggFunc,
    /// Selection predicates (`WHERE`, single-event).
    pub selections: Vec<SelectionPredicate>,
    /// Edge predicates (`WHERE`, adjacent-pair).
    pub edges: Vec<EdgePredicate>,
    /// Grouping attribute names (`GROUP BY`); results are computed per
    /// distinct value combination.
    pub group_by: Vec<Arc<str>>,
    /// Equivalence attributes (`[driver, rider]` in Fig. 1): all events in a
    /// trend must agree on them. Implemented by stream partitioning, like
    /// grouping.
    pub equiv: Vec<Arc<str>>,
    /// Sliding window (`WITHIN` / `SLIDE`).
    pub window: Window,
}

impl Query {
    /// Creates a query, validating the pattern.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: QueryId,
        pattern: Pattern,
        agg: AggFunc,
        selections: Vec<SelectionPredicate>,
        edges: Vec<EdgePredicate>,
        group_by: Vec<Arc<str>>,
        equiv: Vec<Arc<str>>,
        window: Window,
    ) -> Result<Self, PatternError> {
        pattern.validate()?;
        Ok(Query {
            id,
            pattern,
            agg,
            selections,
            edges,
            group_by,
            equiv,
            window,
        })
    }

    /// Minimal constructor for tests and examples: `COUNT(*)`, no
    /// predicates, no grouping.
    pub fn count_star(id: u32, pattern: Pattern, window: Window) -> Self {
        Query::new(
            QueryId(id),
            pattern,
            AggFunc::CountStar,
            vec![],
            vec![],
            vec![],
            vec![],
            window,
        )
        .expect("invalid pattern")
    }

    /// The attributes the stream must be partitioned on for this query:
    /// group-by plus equivalence attributes, deduplicated, in stable order.
    pub fn partition_attrs(&self) -> Vec<Arc<str>> {
        let mut out: Vec<Arc<str>> = Vec::new();
        for a in self.group_by.iter().chain(self.equiv.iter()) {
            if !out.iter().any(|x| x == a) {
                out.push(a.clone());
            }
        }
        out
    }

    /// Extracts this query's partition key from an event (missing
    /// attributes contribute `Int(0)`, so events lacking the attribute all
    /// land in one partition rather than being dropped).
    pub fn partition_key(&self, reg: &TypeRegistry, e: &Event) -> GroupKey {
        let attrs = self.partition_attrs();
        GroupKey(
            attrs
                .iter()
                .map(|name| {
                    reg.attr_index(e.ty, name)
                        .and_then(|i| e.attr(i).cloned())
                        .unwrap_or(hamlet_types::AttrValue::Int(0))
                })
                .collect(),
        )
    }

    /// True iff `e`'s type is relevant to this query (appears positively in
    /// the pattern).
    pub fn involves(&self, ty: EventTypeId) -> bool {
        let neg = self.pattern.negated_types();
        self.pattern.event_types().contains(&ty) && !neg.contains(&ty)
    }

    /// Evaluates all selection predicates on `e`.
    pub fn selects(&self, e: &Event) -> bool {
        self.selections.iter().all(|p| p.matches(e))
    }

    /// Evaluates all edge predicates on the adjacent pair `prev → cur`.
    pub fn edge_holds(&self, prev: &Event, cur: &Event) -> bool {
        self.edges.iter().all(|p| p.matches(prev, cur))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;
    use hamlet_types::{AttrValue, EventBuilder, Ts};

    fn registry() -> (TypeRegistry, EventTypeId, EventTypeId) {
        let mut reg = TypeRegistry::new();
        let a = reg.register("A", &["district", "v"]);
        let b = reg.register("B", &["district", "v"]);
        (reg, a, b)
    }

    fn base_query(a: EventTypeId, b: EventTypeId) -> Query {
        Query::count_star(
            0,
            Pattern::seq(vec![Pattern::Type(a), Pattern::plus(Pattern::Type(b))]),
            Window::tumbling(100),
        )
    }

    #[test]
    fn partition_attrs_dedup() {
        let (_, a, b) = registry();
        let mut q = base_query(a, b);
        q.group_by = vec![Arc::from("district")];
        q.equiv = vec![Arc::from("district"), Arc::from("v")];
        let attrs = q.partition_attrs();
        assert_eq!(attrs.len(), 2);
        assert_eq!(&*attrs[0], "district");
        assert_eq!(&*attrs[1], "v");
    }

    #[test]
    fn partition_key_extraction() {
        let (reg, a, b) = registry();
        let mut q = base_query(a, b);
        q.group_by = vec![Arc::from("district")];
        let e = EventBuilder::new(&reg, b, Ts(1))
            .attr("district", 7i64)
            .build();
        assert_eq!(q.partition_key(&reg, &e), GroupKey(vec![AttrValue::Int(7)]));
    }

    #[test]
    fn involves_positive_types_only() {
        let (mut reg, a, b) = registry();
        let c = reg.register("C", &[]);
        let p = Pattern::seq(vec![
            Pattern::Type(a),
            Pattern::Not(Box::new(Pattern::Type(c))),
            Pattern::plus(Pattern::Type(b)),
        ]);
        let q = Query::count_star(1, p, Window::tumbling(10));
        assert!(q.involves(a));
        assert!(q.involves(b));
        assert!(!q.involves(c));
    }

    #[test]
    fn selection_and_edge_evaluation() {
        let (reg, a, b) = registry();
        let mut q = base_query(a, b);
        q.selections.push(SelectionPredicate {
            ty: b,
            attr: 1,
            op: CmpOp::Lt,
            value: AttrValue::Int(10),
        });
        q.edges.push(EdgePredicate {
            ty: b,
            cur_attr: 1,
            op: CmpOp::Gt,
            prev_attr: 1,
        });
        let lo = EventBuilder::new(&reg, b, Ts(1)).attr("v", 3i64).build();
        let hi = EventBuilder::new(&reg, b, Ts(2)).attr("v", 50i64).build();
        let mid = EventBuilder::new(&reg, b, Ts(3)).attr("v", 5i64).build();
        assert!(q.selects(&lo));
        assert!(!q.selects(&hi));
        assert!(q.edge_holds(&lo, &mid)); // 5 > 3
        assert!(!q.edge_holds(&mid, &lo)); // 3 > 5 fails
    }
}
