//! Rendering queries back to the SASE-style text language — the inverse of
//! [`crate::parser`], used by EXPLAIN output and round-trip tests.

use crate::aggregate::AggFunc;
use crate::query::Query;
use hamlet_types::{AttrValue, TypeRegistry};
use std::fmt::Write;

fn attr_name(reg: &TypeRegistry, ty: hamlet_types::EventTypeId, idx: usize) -> String {
    reg.info(ty)
        .attrs
        .get(idx)
        .map(|a| a.to_string())
        .unwrap_or_else(|| format!("attr{idx}"))
}

fn literal(v: &AttrValue) -> String {
    match v {
        AttrValue::Int(i) => i.to_string(),
        AttrValue::Float(f) => {
            // Keep a decimal point so re-parsing yields a Float again.
            if f.fract() == 0.0 && f.is_finite() {
                format!("{f:.1}")
            } else {
                f.to_string()
            }
        }
        AttrValue::Str(s) => format!("'{s}'"),
    }
}

/// Renders a full query in the language of Fig. 1. The output re-parses to
/// an equivalent query (`parse_query(reg, q.id.0, &to_sase(q, reg))`).
pub fn to_sase(q: &Query, reg: &TypeRegistry) -> String {
    let mut out = String::new();
    let agg = match &q.agg {
        AggFunc::CountStar => "COUNT(*)".to_string(),
        AggFunc::CountType(t) => format!("COUNT({})", reg.name(*t)),
        AggFunc::Sum(t, a) => format!("SUM({}.{})", reg.name(*t), attr_name(reg, *t, *a)),
        AggFunc::Avg(t, a) => format!("AVG({}.{})", reg.name(*t), attr_name(reg, *t, *a)),
        AggFunc::Min(t, a) => format!("MIN({}.{})", reg.name(*t), attr_name(reg, *t, *a)),
        AggFunc::Max(t, a) => format!("MAX({}.{})", reg.name(*t), attr_name(reg, *t, *a)),
    };
    let name = |t: hamlet_types::EventTypeId| reg.name(t).to_string();
    let _ = write!(
        out,
        "RETURN {agg} PATTERN {}",
        q.pattern.display_with(&name)
    );

    let mut conds: Vec<String> = Vec::new();
    for s in &q.selections {
        conds.push(format!(
            "{}.{} {} {}",
            reg.name(s.ty),
            attr_name(reg, s.ty, s.attr),
            s.op,
            literal(&s.value)
        ));
    }
    for e in &q.edges {
        conds.push(format!(
            "{}.{} {} PREV.{}",
            reg.name(e.ty),
            attr_name(reg, e.ty, e.cur_attr),
            e.op,
            attr_name(reg, e.ty, e.prev_attr)
        ));
    }
    if !q.equiv.is_empty() {
        conds.push(format!(
            "[{}]",
            q.equiv
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    if !conds.is_empty() {
        let _ = write!(out, " WHERE {}", conds.join(" AND "));
    }
    if !q.group_by.is_empty() {
        let _ = write!(
            out,
            " GROUP BY {}",
            q.group_by
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    let _ = write!(out, " WITHIN {}", q.window.within);
    if !q.window.is_tumbling() {
        let _ = write!(out, " SLIDE {}", q.window.slide);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn registry() -> TypeRegistry {
        let mut reg = TypeRegistry::new();
        reg.register("Request", &["district", "driver", "kind"]);
        reg.register("Travel", &["district", "driver", "speed"]);
        reg.register("Pickup", &["district", "driver"]);
        reg
    }

    fn round_trip(reg: &TypeRegistry, text: &str) {
        let q = parse_query(reg, 3, text).expect(text);
        let rendered = to_sase(&q, reg);
        let back =
            parse_query(reg, 3, &rendered).unwrap_or_else(|e| panic!("{text} → {rendered}: {e}"));
        assert_eq!(back.pattern, q.pattern, "{rendered}");
        assert_eq!(back.agg, q.agg, "{rendered}");
        assert_eq!(back.selections, q.selections, "{rendered}");
        assert_eq!(back.edges, q.edges, "{rendered}");
        assert_eq!(back.group_by, q.group_by, "{rendered}");
        assert_eq!(back.equiv, q.equiv, "{rendered}");
        assert_eq!(back.window, q.window, "{rendered}");
    }

    #[test]
    fn round_trips_representative_queries() {
        let reg = registry();
        for text in [
            "RETURN COUNT(*) PATTERN SEQ(Request, Travel+) WITHIN 300",
            "RETURN COUNT(*) PATTERN SEQ(Request, Travel+, NOT Pickup) \
             WHERE [driver] GROUP BY district WITHIN 1800",
            "RETURN AVG(Travel.speed) PATTERN SEQ(Request, Travel+) \
             WHERE Travel.speed < 10.5 AND Travel.speed > PREV.speed \
             GROUP BY district WITHIN 600 SLIDE 300",
            "RETURN MAX(Travel.speed) PATTERN Travel+ WITHIN 60",
            "RETURN COUNT(Travel) PATTERN (SEQ(Request, Travel+))+ WITHIN 60",
            "RETURN COUNT(*) PATTERN SEQ(Request, Travel+) \
             WHERE Request.kind = 'Pool' WITHIN 120",
        ] {
            round_trip(&reg, text);
        }
    }

    #[test]
    fn integer_literal_stays_integer() {
        let reg = registry();
        let q = parse_query(
            &reg,
            0,
            "RETURN COUNT(*) PATTERN Travel+ WHERE Travel.speed != 7 WITHIN 10",
        )
        .unwrap();
        let rendered = to_sase(&q, &reg);
        assert!(rendered.contains("!= 7"), "{rendered}");
        round_trip(&reg, &rendered);
    }
}
