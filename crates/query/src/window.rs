//! Sliding windows (`WITHIN w SLIDE s`, Def. 2).

use hamlet_types::Ts;

/// A sliding time window. `within` is the window length in ticks; `slide`
/// the distance between consecutive window starts. `slide == within` yields
/// tumbling windows.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Window {
    /// Window length in ticks.
    pub within: u64,
    /// Slide in ticks.
    pub slide: u64,
}

impl Window {
    /// Creates a window; panics on zero length/slide (meaningless and would
    /// divide by zero downstream).
    pub fn new(within: u64, slide: u64) -> Self {
        assert!(within > 0 && slide > 0, "window/slide must be positive");
        assert!(
            slide <= within,
            "slide larger than window would drop events"
        );
        Window { within, slide }
    }

    /// A tumbling window of length `within`.
    pub fn tumbling(within: u64) -> Self {
        Window::new(within, within)
    }

    /// True for tumbling windows.
    pub fn is_tumbling(&self) -> bool {
        self.within == self.slide
    }

    /// Start times of all window instances containing time `t`: starts
    /// `w₀ ≤ t` with `t < w₀ + within`, aligned to multiples of `slide`.
    pub fn instances_containing(&self, t: Ts) -> impl Iterator<Item = Ts> + '_ {
        let t = t.ticks();
        let last_start = (t / self.slide) * self.slide;
        let lo = t.saturating_sub(self.within - 1);
        // first aligned start ≥ lo
        let first_start = lo.div_ceil(self.slide) * self.slide;
        // Step in u64 rather than `step_by(slide as usize)`: a slide
        // above u32::MAX would silently truncate on 32-bit targets.
        let slide = self.slide;
        let seed = (first_start <= last_start).then_some(first_start);
        std::iter::successors(seed, move |&s| {
            s.checked_add(slide).filter(|&n| n <= last_start)
        })
        .map(Ts)
    }

    /// Number of overlapping instances covering any given instant.
    pub fn overlap_factor(&self) -> u64 {
        self.within.div_ceil(self.slide)
    }

    /// End (exclusive) of the window instance starting at `start`,
    /// saturating at `Ts(u64::MAX)` so starts near the top of the tick
    /// range cannot wrap (see [`hamlet_types::time::window_end`]).
    pub fn end_of(&self, start: Ts) -> Ts {
        Ts(hamlet_types::time::window_end(start.ticks(), self.within))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tumbling_instances() {
        let w = Window::tumbling(10);
        assert!(w.is_tumbling());
        let got: Vec<_> = w.instances_containing(Ts(25)).collect();
        assert_eq!(got, vec![Ts(20)]);
        let got: Vec<_> = w.instances_containing(Ts(0)).collect();
        assert_eq!(got, vec![Ts(0)]);
    }

    #[test]
    fn sliding_instances() {
        // WITHIN 10 SLIDE 5 → every instant is in 2 instances.
        let w = Window::new(10, 5);
        assert_eq!(w.overlap_factor(), 2);
        let got: Vec<_> = w.instances_containing(Ts(12)).collect();
        assert_eq!(got, vec![Ts(5), Ts(10)]);
        let got: Vec<_> = w.instances_containing(Ts(4)).collect();
        assert_eq!(got, vec![Ts(0)]);
        let got: Vec<_> = w.instances_containing(Ts(9)).collect();
        assert_eq!(got, vec![Ts(0), Ts(5)]);
    }

    #[test]
    fn window_end() {
        let w = Window::new(15, 5);
        assert_eq!(w.end_of(Ts(5)), Ts(20));
        assert_eq!(w.overlap_factor(), 3);
        // Near the top of the tick range the end saturates instead of
        // wrapping around zero.
        assert_eq!(w.end_of(Ts(u64::MAX - 3)), Ts(u64::MAX));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_rejected() {
        let _ = Window::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "drop events")]
    fn slide_exceeding_window_rejected() {
        let _ = Window::new(5, 10);
    }
}
