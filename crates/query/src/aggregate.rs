//! Aggregation functions over event trends (§2.1).
//!
//! HAMLET computes distributive (`COUNT`, `SUM`, `MIN`, `MAX`) and algebraic
//! (`AVG`) functions incrementally. `COUNT(*)` counts trends per group;
//! `COUNT(E)` counts events of type `E` across all trends; `SUM`/`AVG`/
//! `MIN`/`MAX` fold an attribute of `E` across all trends.

use hamlet_types::EventTypeId;
use std::fmt;

/// One aggregation function of the `RETURN` clause.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)` — number of trends per group.
    CountStar,
    /// `COUNT(E)` — number of `E` events summed over all trends.
    CountType(EventTypeId),
    /// `SUM(E.attr)` — sum of `attr` over all `E` events in all trends.
    Sum(EventTypeId, usize),
    /// `AVG(E.attr)` = `SUM(E.attr) / COUNT(E)`.
    Avg(EventTypeId, usize),
    /// `MIN(E.attr)` over all `E` events in all trends.
    Min(EventTypeId, usize),
    /// `MAX(E.attr)` over all `E` events in all trends.
    Max(EventTypeId, usize),
}

impl AggFunc {
    /// True iff the function propagates *linearly* through the trend graph
    /// (count/sum pairs). Linear functions can be encoded in snapshot
    /// expressions and therefore shared (§3.3); `MIN`/`MAX` cannot.
    pub fn is_linear(&self) -> bool {
        !matches!(self, AggFunc::Min(..) | AggFunc::Max(..))
    }

    /// Two functions are *sharable* (Def. 5) when their graph propagation is
    /// identical. `COUNT(*)` is computed by every strategy; `SUM`, `COUNT(E)`
    /// and `AVG` all reduce to (count, sum-like) pairs over the same type and
    /// attribute; `MIN`/`MAX` share only with the identical function.
    pub fn sharable_with(&self, other: &AggFunc) -> bool {
        use AggFunc::*;
        match (self, other) {
            (CountStar, CountStar) => true,
            // COUNT(E), SUM(E.a), AVG(E.a) share a propagation skeleton when
            // they talk about the same type (AVG = SUM / COUNT, §3.1).
            (CountType(a), CountType(b)) => a == b,
            (Sum(t1, a1), Sum(t2, a2))
            | (Avg(t1, a1), Avg(t2, a2))
            | (Sum(t1, a1), Avg(t2, a2))
            | (Avg(t1, a1), Sum(t2, a2)) => t1 == t2 && a1 == a2,
            (CountType(a), Sum(t, _))
            | (CountType(a), Avg(t, _))
            | (Sum(t, _), CountType(a))
            | (Avg(t, _), CountType(a)) => a == t,
            (Min(t1, a1), Min(t2, a2)) | (Max(t1, a1), Max(t2, a2)) => t1 == t2 && a1 == a2,
            _ => false,
        }
    }

    /// The event type whose attribute this function folds, if any.
    pub fn target_type(&self) -> Option<EventTypeId> {
        match self {
            AggFunc::CountStar => None,
            AggFunc::CountType(t)
            | AggFunc::Sum(t, _)
            | AggFunc::Avg(t, _)
            | AggFunc::Min(t, _)
            | AggFunc::Max(t, _) => Some(*t),
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggFunc::CountStar => write!(f, "COUNT(*)"),
            AggFunc::CountType(t) => write!(f, "COUNT({t:?})"),
            AggFunc::Sum(t, a) => write!(f, "SUM({t:?}.{a})"),
            AggFunc::Avg(t, a) => write!(f, "AVG({t:?}.{a})"),
            AggFunc::Min(t, a) => write!(f, "MIN({t:?}.{a})"),
            AggFunc::Max(t, a) => write!(f, "MAX({t:?}.{a})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const E: EventTypeId = EventTypeId(0);
    const F: EventTypeId = EventTypeId(1);

    #[test]
    fn linearity() {
        assert!(AggFunc::CountStar.is_linear());
        assert!(AggFunc::Sum(E, 0).is_linear());
        assert!(AggFunc::Avg(E, 0).is_linear());
        assert!(!AggFunc::Min(E, 0).is_linear());
        assert!(!AggFunc::Max(E, 0).is_linear());
    }

    #[test]
    fn sharability_matrix() {
        use AggFunc::*;
        assert!(CountStar.sharable_with(&CountStar));
        assert!(!CountStar.sharable_with(&CountType(E)));
        assert!(Sum(E, 0).sharable_with(&Avg(E, 0)));
        assert!(Avg(E, 0).sharable_with(&Sum(E, 0)));
        assert!(CountType(E).sharable_with(&Avg(E, 1)));
        assert!(!Sum(E, 0).sharable_with(&Sum(E, 1)));
        assert!(!Sum(E, 0).sharable_with(&Sum(F, 0)));
        assert!(Min(E, 0).sharable_with(&Min(E, 0)));
        assert!(!Min(E, 0).sharable_with(&Max(E, 0)));
        assert!(!Min(E, 0).sharable_with(&Sum(E, 0)));
    }

    #[test]
    fn target_types() {
        assert_eq!(AggFunc::CountStar.target_type(), None);
        assert_eq!(AggFunc::Max(F, 2).target_type(), Some(F));
    }
}
