//! Kleene patterns (paper Def. 1) and their structural analysis.

use hamlet_types::EventTypeId;
use std::collections::BTreeSet;
use std::fmt;

/// A pattern per Def. 1: `E`, `P+`, `NOT P`, `SEQ(P1, P2, …)`, `P1 ∨ P2`,
/// `P1 ∧ P2`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Pattern {
    /// A single event type.
    Type(EventTypeId),
    /// Kleene plus: one or more consecutive matches of the inner pattern.
    Kleene(Box<Pattern>),
    /// Event sequence: components match in time order.
    Seq(Vec<Pattern>),
    /// Disjunction: a trend matches either branch (§5).
    Or(Box<Pattern>, Box<Pattern>),
    /// Conjunction: a pair of trends, one per branch (§5).
    And(Box<Pattern>, Box<Pattern>),
    /// Negation: no match of the inner pattern may occur at this position
    /// (only meaningful inside a `Seq`, §5).
    Not(Box<Pattern>),
}

/// Structural validation errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PatternError {
    /// The same event type occurs at two positions. The merged template
    /// identifies automaton states with event types (§3.1), so each type may
    /// appear once per query — the paper's assumption (3) in §3.
    DuplicateType(EventTypeId),
    /// A SEQ with no components.
    EmptySeq,
    /// `NOT` used outside a `SEQ` (it constrains a gap between two
    /// positive components, §5).
    MisplacedNot,
    /// A pattern with no positive component (e.g. `SEQ(NOT A)`).
    NoPositiveComponent,
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternError::DuplicateType(t) => {
                write!(f, "event type {t:?} appears more than once in the pattern")
            }
            PatternError::EmptySeq => write!(f, "SEQ requires at least one component"),
            PatternError::MisplacedNot => write!(f, "NOT may only appear inside SEQ"),
            PatternError::NoPositiveComponent => {
                write!(f, "pattern has no positive component")
            }
        }
    }
}

impl std::error::Error for PatternError {}

impl Pattern {
    /// Convenience constructor for `SEQ(…)`.
    pub fn seq(parts: Vec<Pattern>) -> Pattern {
        Pattern::Seq(parts)
    }

    /// Convenience constructor for `P+`.
    pub fn plus(inner: Pattern) -> Pattern {
        Pattern::Kleene(Box::new(inner))
    }

    /// True iff the pattern contains a Kleene plus (making it a *Kleene
    /// pattern*, Def. 1).
    pub fn is_kleene(&self) -> bool {
        match self {
            Pattern::Type(_) => false,
            Pattern::Kleene(_) => true,
            Pattern::Seq(ps) => ps.iter().any(Pattern::is_kleene),
            Pattern::Or(a, b) | Pattern::And(a, b) => a.is_kleene() || b.is_kleene(),
            Pattern::Not(p) => p.is_kleene(),
        }
    }

    /// All event types referenced, including under `NOT`.
    pub fn event_types(&self) -> BTreeSet<EventTypeId> {
        let mut set = BTreeSet::new();
        self.collect_types(&mut set);
        set
    }

    fn collect_types(&self, out: &mut BTreeSet<EventTypeId>) {
        match self {
            Pattern::Type(t) => {
                out.insert(*t);
            }
            Pattern::Kleene(p) | Pattern::Not(p) => p.collect_types(out),
            Pattern::Seq(ps) => ps.iter().for_each(|p| p.collect_types(out)),
            Pattern::Or(a, b) | Pattern::And(a, b) => {
                a.collect_types(out);
                b.collect_types(out);
            }
        }
    }

    /// Event types that appear directly under a Kleene plus (`E+`). These
    /// are the *sharable Kleene sub-patterns* of Def. 4.
    pub fn kleene_types(&self) -> BTreeSet<EventTypeId> {
        let mut set = BTreeSet::new();
        self.collect_kleene(&mut set);
        set
    }

    fn collect_kleene(&self, out: &mut BTreeSet<EventTypeId>) {
        match self {
            Pattern::Type(_) => {}
            Pattern::Kleene(p) => {
                // `E+` contributes E; `(SEQ(A, B+))+` contributes B via the
                // inner walk, and every type inside an outer Kleene also
                // self-loops in the template — but Def. 4 concerns `E+`
                // sub-patterns, so only direct `Type` children count here.
                if let Pattern::Type(t) = &**p {
                    out.insert(*t);
                }
                p.collect_kleene(out);
            }
            Pattern::Seq(ps) => ps.iter().for_each(|p| p.collect_kleene(out)),
            Pattern::Or(a, b) | Pattern::And(a, b) => {
                a.collect_kleene(out);
                b.collect_kleene(out);
            }
            Pattern::Not(p) => p.collect_kleene(out),
        }
    }

    /// Types that occur under a `NOT`.
    pub fn negated_types(&self) -> BTreeSet<EventTypeId> {
        let mut set = BTreeSet::new();
        self.collect_negated(&mut set, false);
        set
    }

    fn collect_negated(&self, out: &mut BTreeSet<EventTypeId>, under_not: bool) {
        match self {
            Pattern::Type(t) => {
                if under_not {
                    out.insert(*t);
                }
            }
            Pattern::Kleene(p) => p.collect_negated(out, under_not),
            Pattern::Seq(ps) => ps.iter().for_each(|p| p.collect_negated(out, under_not)),
            Pattern::Or(a, b) | Pattern::And(a, b) => {
                a.collect_negated(out, under_not);
                b.collect_negated(out, under_not);
            }
            Pattern::Not(p) => p.collect_negated(out, true),
        }
    }

    /// Validates the structural rules the execution layer relies on.
    pub fn validate(&self) -> Result<(), PatternError> {
        // No duplicate positive types (merged template states = types).
        let mut seen = BTreeSet::new();
        self.check_duplicates(&mut seen)?;
        self.check_structure(false)?;
        if self
            .event_types()
            .difference(&self.negated_types())
            .next()
            .is_none()
        {
            return Err(PatternError::NoPositiveComponent);
        }
        Ok(())
    }

    fn check_duplicates(&self, seen: &mut BTreeSet<EventTypeId>) -> Result<(), PatternError> {
        match self {
            Pattern::Type(t) => {
                if !seen.insert(*t) {
                    return Err(PatternError::DuplicateType(*t));
                }
                Ok(())
            }
            Pattern::Kleene(p) | Pattern::Not(p) => p.check_duplicates(seen),
            Pattern::Seq(ps) => {
                if ps.is_empty() {
                    return Err(PatternError::EmptySeq);
                }
                ps.iter().try_for_each(|p| p.check_duplicates(seen))
            }
            Pattern::Or(a, b) | Pattern::And(a, b) => {
                // Branches are alternative (or independent) patterns: a type
                // may appear in both branches; duplicates are only checked
                // within each branch.
                let mut left = seen.clone();
                a.check_duplicates(&mut left)?;
                b.check_duplicates(&mut seen.clone())
            }
        }
    }

    fn check_structure(&self, inside_seq: bool) -> Result<(), PatternError> {
        match self {
            Pattern::Type(_) => Ok(()),
            Pattern::Kleene(p) => p.check_structure(false),
            Pattern::Seq(ps) => {
                if ps.is_empty() {
                    return Err(PatternError::EmptySeq);
                }
                ps.iter().try_for_each(|p| p.check_structure(true))
            }
            Pattern::Or(a, b) | Pattern::And(a, b) => {
                a.check_structure(false)?;
                b.check_structure(false)
            }
            Pattern::Not(p) => {
                if !inside_seq {
                    return Err(PatternError::MisplacedNot);
                }
                p.check_structure(false)
            }
        }
    }

    /// Renders the pattern with type names resolved through `f`.
    pub fn display_with<'a>(&'a self, f: &'a dyn Fn(EventTypeId) -> String) -> PatternDisplay<'a> {
        PatternDisplay { p: self, f }
    }
}

/// Helper returned by [`Pattern::display_with`].
pub struct PatternDisplay<'a> {
    p: &'a Pattern,
    f: &'a dyn Fn(EventTypeId) -> String,
}

impl fmt::Display for PatternDisplay<'_> {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(
            p: &Pattern,
            f: &dyn Fn(EventTypeId) -> String,
            out: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            match p {
                Pattern::Type(t) => write!(out, "{}", f(*t)),
                Pattern::Kleene(inner) => {
                    if matches!(**inner, Pattern::Type(_)) {
                        go(inner, f, out)?;
                        write!(out, "+")
                    } else {
                        write!(out, "(")?;
                        go(inner, f, out)?;
                        write!(out, ")+")
                    }
                }
                Pattern::Seq(ps) => {
                    write!(out, "SEQ(")?;
                    for (i, q) in ps.iter().enumerate() {
                        if i > 0 {
                            write!(out, ", ")?;
                        }
                        go(q, f, out)?;
                    }
                    write!(out, ")")
                }
                Pattern::Or(a, b) => {
                    write!(out, "(")?;
                    go(a, f, out)?;
                    write!(out, " OR ")?;
                    go(b, f, out)?;
                    write!(out, ")")
                }
                Pattern::And(a, b) => {
                    write!(out, "(")?;
                    go(a, f, out)?;
                    write!(out, " AND ")?;
                    go(b, f, out)?;
                    write!(out, ")")
                }
                Pattern::Not(inner) => {
                    write!(out, "NOT ")?;
                    go(inner, f, out)
                }
            }
        }
        go(self.p, self.f, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: EventTypeId = EventTypeId(0);
    const B: EventTypeId = EventTypeId(1);
    const C: EventTypeId = EventTypeId(2);

    fn seq_a_bplus() -> Pattern {
        Pattern::seq(vec![Pattern::Type(A), Pattern::plus(Pattern::Type(B))])
    }

    #[test]
    fn kleene_detection() {
        assert!(seq_a_bplus().is_kleene());
        assert!(!Pattern::Type(A).is_kleene());
        assert!(Pattern::plus(Pattern::Type(A)).is_kleene());
        assert!(Pattern::Or(
            Box::new(Pattern::Type(A)),
            Box::new(Pattern::plus(Pattern::Type(B)))
        )
        .is_kleene());
    }

    #[test]
    fn event_and_kleene_types() {
        let p = seq_a_bplus();
        assert_eq!(p.event_types(), [A, B].into_iter().collect());
        assert_eq!(p.kleene_types(), [B].into_iter().collect());
    }

    #[test]
    fn nested_kleene_types() {
        // (SEQ(A, B+))+ — Kleene sub-pattern is B+ (Example 10).
        let p = Pattern::plus(seq_a_bplus());
        assert_eq!(p.kleene_types(), [B].into_iter().collect());
        assert!(p.validate().is_ok());
    }

    #[test]
    fn negated_types_tracked() {
        let p = Pattern::seq(vec![
            Pattern::Type(A),
            Pattern::Not(Box::new(Pattern::Type(C))),
            Pattern::plus(Pattern::Type(B)),
        ]);
        assert_eq!(p.negated_types(), [C].into_iter().collect());
        assert!(p.validate().is_ok());
    }

    #[test]
    fn duplicate_type_rejected() {
        let p = Pattern::seq(vec![Pattern::Type(A), Pattern::Type(A)]);
        assert_eq!(p.validate(), Err(PatternError::DuplicateType(A)));
    }

    #[test]
    fn empty_seq_rejected() {
        assert_eq!(Pattern::Seq(vec![]).validate(), Err(PatternError::EmptySeq));
    }

    #[test]
    fn top_level_not_rejected() {
        let p = Pattern::Not(Box::new(Pattern::Type(A)));
        assert_eq!(p.validate(), Err(PatternError::MisplacedNot));
    }

    #[test]
    fn all_negative_rejected() {
        let p = Pattern::seq(vec![Pattern::Not(Box::new(Pattern::Type(A)))]);
        assert_eq!(p.validate(), Err(PatternError::NoPositiveComponent));
    }

    #[test]
    fn display_round_trip_shape() {
        let p = Pattern::plus(seq_a_bplus());
        let name = |t: EventTypeId| ["A", "B", "C"][t.idx()].to_string();
        assert_eq!(format!("{}", p.display_with(&name)), "(SEQ(A, B+))+");
    }
}
