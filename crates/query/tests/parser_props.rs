//! Property tests for the query layer: pattern display/parse round trips,
//! window instance coverage, and predicate evaluation consistency.

use hamlet_query::{parse_pattern, CmpOp, Pattern, SelectionPredicate, Window};
use hamlet_types::{AttrValue, Event, EventTypeId, Ts, TypeRegistry};
use proptest::prelude::*;

const NAMES: [&str; 5] = ["Alpha", "Beta", "Gamma", "Delta", "Epsilon"];

fn registry() -> TypeRegistry {
    let mut reg = TypeRegistry::new();
    for n in NAMES {
        reg.register(n, &["v"]);
    }
    reg
}

/// Random *valid* patterns: SEQ chains over distinct types with one
/// optional Kleene and optional negation, plus OR/AND composition of
/// type-disjoint branches.
fn pattern() -> impl Strategy<Value = Pattern> {
    // A permutation prefix of the five types.
    (1usize..=4, any::<u8>(), any::<bool>()).prop_map(|(len, pick, kleene_first)| {
        let ids: Vec<EventTypeId> = (0..5).map(|i| EventTypeId(i as u16)).collect();
        let mut order: Vec<EventTypeId> = ids.clone();
        // Cheap deterministic shuffle from `pick`.
        order.rotate_left((pick as usize) % 5);
        let chain: Vec<EventTypeId> = order.into_iter().take(len).collect();
        let kleene_at = if kleene_first { 0 } else { len - 1 };
        let parts: Vec<Pattern> = chain
            .iter()
            .enumerate()
            .map(|(i, t)| {
                if i == kleene_at {
                    Pattern::plus(Pattern::Type(*t))
                } else {
                    Pattern::Type(*t)
                }
            })
            .collect();
        if parts.len() == 1 {
            parts.into_iter().next().expect("one part")
        } else {
            Pattern::Seq(parts)
        }
    })
}

proptest! {
    /// Rendering a pattern with `display_with` and re-parsing it yields
    /// the same AST.
    #[test]
    fn pattern_display_parse_round_trip(p in pattern()) {
        let reg = registry();
        let name = |t: EventTypeId| NAMES[t.idx()].to_string();
        let text = format!("{}", p.display_with(&name));
        let back = parse_pattern(&reg, &text).expect("rendered pattern parses");
        prop_assert_eq!(back, p);
    }

    /// Round trip survives OR composition of branches.
    #[test]
    fn or_display_parse_round_trip(a in pattern(), b in pattern()) {
        let reg = registry();
        let p = Pattern::Or(Box::new(a), Box::new(b));
        let name = |t: EventTypeId| NAMES[t.idx()].to_string();
        let text = format!("{}", p.display_with(&name));
        let back = parse_pattern(&reg, &text).expect("rendered OR parses");
        prop_assert_eq!(back, p);
    }

    /// Every window instance containing `t` indeed contains it, instances
    /// are aligned to the slide, and their count equals the overlap
    /// factor once `t ≥ within`.
    #[test]
    fn window_instances_cover_correctly(
        within in 1u64..500,
        slide_frac in 1u64..500,
        t in 0u64..10_000,
    ) {
        let slide = slide_frac.min(within);
        let w = Window::new(within, slide);
        let instances: Vec<Ts> = w.instances_containing(Ts(t)).collect();
        prop_assert!(!instances.is_empty());
        for s in &instances {
            prop_assert!(s.ticks() <= t && t < s.ticks() + within);
            prop_assert_eq!(s.ticks() % slide, 0);
        }
        // Consecutive instances step by exactly `slide`.
        for pair in instances.windows(2) {
            prop_assert_eq!(pair[1].ticks() - pair[0].ticks(), slide);
        }
        if t >= within {
            // When slide ∤ within, instants alternate between ⌊within/slide⌋
            // and ⌈within/slide⌉ covering instances.
            let lo = within / slide;
            let hi = w.overlap_factor();
            let got = instances.len() as u64;
            prop_assert!(got == hi || got == lo.max(1), "got {} not in [{}, {}]", got, lo.max(1), hi);
        }
        // And no instance outside the returned range contains t.
        if let Some(first) = instances.first() {
            if first.ticks() >= slide {
                let prev = first.ticks() - slide;
                prop_assert!(!(prev <= t && t < prev + within));
            }
        }
    }

    /// Selection predicates are consistent with the raw comparison on the
    /// attribute value.
    #[test]
    fn selection_matches_raw_compare(v in -1000i64..1000, bound in -1000i64..1000) {
        let p = SelectionPredicate {
            ty: EventTypeId(0),
            attr: 0,
            op: CmpOp::Lt,
            value: AttrValue::Int(bound),
        };
        let e = Event::new(Ts(0), EventTypeId(0), vec![AttrValue::Int(v)]);
        prop_assert_eq!(p.matches(&e), v < bound);
    }
}

#[test]
fn kleene_round_trip_nested() {
    let reg = registry();
    for text in [
        "(SEQ(Alpha, Beta+))+",
        "SEQ(Alpha, NOT Gamma, Beta+)",
        "SEQ(Alpha, Beta+, NOT Gamma)",
        "Alpha AND SEQ(Beta, Gamma+)",
    ] {
        let p = parse_pattern(&reg, text).expect(text);
        let name = |t: EventTypeId| NAMES[t.idx()].to_string();
        let rendered = format!("{}", p.display_with(&name));
        let back = parse_pattern(&reg, &rendered).expect("re-parse");
        assert_eq!(back, p, "{text} → {rendered}");
    }
}
