//! Comment/string-aware source cleaning and tokenization.
//!
//! The analyzer never parses Rust properly; it works on a *cleaned*
//! view of each file where comments are removed and string/char
//! literal contents are blanked (delimiters kept), so that pattern
//! matching on tokens cannot be fooled by `"Instant::now"` inside a
//! string or `.unwrap()` inside a doc comment. Plain `//` comments and
//! string literal contents are captured on the side: comments feed the
//! allow-annotation parser, strings feed the magic-constant check.

/// A cleaned source file.
pub struct Clean {
    /// Source lines with comments removed and literal contents blanked.
    pub lines: Vec<String>,
    /// Plain `//` comment bodies by 1-based line. Doc comments (`///`,
    /// `//!`) are *not* captured: annotations must be plain comments,
    /// which lets docs describe the annotation grammar without
    /// tripping the parser.
    pub comments: Vec<(usize, String)>,
    /// String literal contents by 1-based start line.
    pub strings: Vec<(usize, String)>,
}

/// Strips comments and blanks literal contents, tracking line numbers.
pub fn clean(src: &str) -> Clean {
    let c: Vec<char> = src.chars().collect();
    let n = c.len();
    let mut out = Clean {
        lines: Vec::new(),
        comments: Vec::new(),
        strings: Vec::new(),
    };
    let mut cur = String::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < n {
        let ch = c[i];
        match ch {
            '\n' => {
                out.lines.push(std::mem::take(&mut cur));
                line += 1;
                i += 1;
            }
            '/' if i + 1 < n && c[i + 1] == '/' => {
                let mut j = i + 2;
                let doc = j < n && (c[j] == '/' || c[j] == '!');
                let start = j;
                while j < n && c[j] != '\n' {
                    j += 1;
                }
                if !doc {
                    out.comments.push((line, c[start..j].iter().collect()));
                }
                cur.push(' ');
                i = j;
            }
            '/' if i + 1 < n && c[i + 1] == '*' => {
                let mut depth = 1u32;
                let mut j = i + 2;
                while j < n && depth > 0 {
                    if c[j] == '\n' {
                        out.lines.push(std::mem::take(&mut cur));
                        line += 1;
                        j += 1;
                    } else if c[j] == '/' && j + 1 < n && c[j + 1] == '*' {
                        depth += 1;
                        j += 2;
                    } else if c[j] == '*' && j + 1 < n && c[j + 1] == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                cur.push(' ');
                i = j;
            }
            '"' => {
                i = eat_string(&c, i + 1, 0, &mut cur, &mut line, &mut out);
            }
            'r' | 'b' if !prev_is_ident(&cur) => {
                // Possible raw/byte string or byte char prefix.
                let mut j = i + 1;
                if j < n && ch == 'b' && c[j] == 'r' {
                    j += 1;
                }
                let raw = ch == 'r' || (j > i + 1);
                let mut hashes = 0usize;
                if raw {
                    while j < n && c[j] == '#' {
                        hashes += 1;
                        j += 1;
                    }
                }
                if j < n && c[j] == '"' && (raw || ch == 'b') {
                    cur.push(ch);
                    if raw {
                        i = eat_raw_string(&c, j + 1, hashes, &mut cur, &mut line, &mut out);
                    } else {
                        i = eat_string(&c, j + 1, 0, &mut cur, &mut line, &mut out);
                    }
                } else if ch == 'b' && i + 1 < n && c[i + 1] == '\'' {
                    cur.push(' ');
                    i = eat_char(&c, i + 2);
                } else {
                    cur.push(ch);
                    i += 1;
                }
            }
            '\'' => {
                if i + 1 < n && c[i + 1] == '\\' {
                    cur.push(' ');
                    i = eat_char(&c, i + 2);
                } else if i + 2 < n && c[i + 2] == '\'' {
                    cur.push(' ');
                    i += 3;
                } else {
                    // Lifetime: keep the quote so `&'a HashMap` still
                    // tokenizes with the lifetime marker visible.
                    cur.push('\'');
                    i += 1;
                }
            }
            _ => {
                cur.push(ch);
                i += 1;
            }
        }
    }
    out.lines.push(cur);
    out
}

fn prev_is_ident(cur: &str) -> bool {
    cur.chars()
        .next_back()
        .is_some_and(|p| p.is_alphanumeric() || p == '_')
}

/// Consumes a (possibly multi-line) normal string body starting just
/// past the opening quote; records the content, blanks it in the clean
/// line, and returns the index just past the closing quote.
fn eat_string(
    c: &[char],
    mut j: usize,
    _hashes: usize,
    cur: &mut String,
    line: &mut usize,
    out: &mut Clean,
) -> usize {
    cur.push('"');
    let start_line = *line;
    let mut body = String::new();
    while j < c.len() {
        match c[j] {
            '\\' if j + 1 < c.len() => {
                body.push(c[j]);
                body.push(c[j + 1]);
                // A line-continuation escape still ends a source line.
                if c[j + 1] == '\n' {
                    out.lines.push(std::mem::take(cur));
                    *line += 1;
                }
                j += 2;
            }
            '"' => {
                cur.push('"');
                out.strings.push((start_line, body));
                return j + 1;
            }
            '\n' => {
                body.push('\n');
                out.lines.push(std::mem::take(cur));
                *line += 1;
                j += 1;
            }
            other => {
                body.push(other);
                j += 1;
            }
        }
    }
    out.strings.push((start_line, body));
    j
}

/// Same as [`eat_string`] for raw strings: no escapes, terminated by a
/// quote followed by `hashes` hash marks.
fn eat_raw_string(
    c: &[char],
    mut j: usize,
    hashes: usize,
    cur: &mut String,
    line: &mut usize,
    out: &mut Clean,
) -> usize {
    cur.push('"');
    let start_line = *line;
    let mut body = String::new();
    while j < c.len() {
        if c[j] == '"' {
            let mut k = 0usize;
            while k < hashes && j + 1 + k < c.len() && c[j + 1 + k] == '#' {
                k += 1;
            }
            if k == hashes {
                cur.push('"');
                out.strings.push((start_line, body));
                return j + 1 + hashes;
            }
        }
        if c[j] == '\n' {
            body.push('\n');
            out.lines.push(std::mem::take(cur));
            *line += 1;
        } else {
            body.push(c[j]);
        }
        j += 1;
    }
    out.strings.push((start_line, body));
    j
}

/// Consumes the rest of a char literal (cursor just past `'` or `'\`),
/// returning the index past the closing quote.
fn eat_char(c: &[char], mut j: usize) -> usize {
    let mut budget = 12usize; // longest form: '\u{10FFFF}'
    while j < c.len() && budget > 0 {
        if c[j] == '\'' {
            return j + 1;
        }
        j += 1;
        budget -= 1;
    }
    j
}

/// One lexical token of cleaned source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier, keyword, or number.
    Word(String),
    /// Any single non-whitespace punctuation character.
    P(char),
}

/// A token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token itself.
    pub t: Tok,
    /// 1-based source line the token starts on.
    pub line: usize,
}

impl Token {
    /// The word text, if this token is a word.
    pub fn word(&self) -> Option<&str> {
        match &self.t {
            Tok::Word(w) => Some(w),
            Tok::P(_) => None,
        }
    }

    /// True iff this token is the punctuation `c`.
    pub fn is_p(&self, c: char) -> bool {
        self.t == Tok::P(c)
    }

    /// True iff this token is the word `w`.
    pub fn is_word(&self, w: &str) -> bool {
        self.word() == Some(w)
    }
}

/// Tokenizes cleaned lines into words and punctuation.
pub fn tokens(cl: &Clean) -> Vec<Token> {
    let mut v = Vec::new();
    for (ln, l) in cl.lines.iter().enumerate() {
        let line = ln + 1;
        let mut chars = l.chars().peekable();
        while let Some(ch) = chars.next() {
            if ch.is_alphanumeric() || ch == '_' {
                let mut w = String::new();
                w.push(ch);
                while let Some(&c2) = chars.peek() {
                    if c2.is_alphanumeric() || c2 == '_' {
                        w.push(c2);
                        chars.next();
                    } else {
                        break;
                    }
                }
                v.push(Token {
                    t: Tok::Word(w),
                    line,
                });
            } else if !ch.is_whitespace() {
                v.push(Token {
                    t: Tok::P(ch),
                    line,
                });
            }
        }
    }
    v
}
