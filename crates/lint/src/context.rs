//! Structural context over the token stream: `#[cfg(test)]` regions,
//! `fn`/`impl` spans, and `hamlet-lint: allow(...)` annotations.

use crate::scan::{Clean, Token};
use crate::{Finding, RULES};
use std::collections::{BTreeMap, BTreeSet};

/// Token-index ranges (inclusive start, exclusive end) of code gated
/// behind `#[cfg(test)]` or `#[test]`.
pub fn test_regions(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if let Some(after_attr) = match_test_attr(toks, i) {
            // Skip any further stacked attributes.
            let mut j = after_attr;
            while j + 1 < toks.len() && toks[j].is_p('#') && toks[j + 1].is_p('[') {
                j = match_bracket(toks, j + 1);
            }
            // An item keyword means the gate covers a braced item whose
            // signature may legitimately contain `,` (fn params,
            // generics); otherwise stay conservative and treat `,` as a
            // terminator (enum variant, struct field).
            let itemish = toks.get(j).and_then(|t| t.word()).is_some_and(|w| {
                matches!(
                    w,
                    "pub"
                        | "fn"
                        | "mod"
                        | "impl"
                        | "struct"
                        | "enum"
                        | "trait"
                        | "union"
                        | "async"
                        | "unsafe"
                        | "extern"
                        | "const"
                        | "static"
                )
            });
            // Find the gated item's body: the first `{` before any
            // terminator that would end an item without a body
            // (`;` for `use`; `,` only in non-item position).
            let mut open = None;
            let mut paren = 0i64;
            while j < toks.len() {
                if toks[j].is_p('(') {
                    paren += 1;
                } else if toks[j].is_p(')') {
                    paren -= 1;
                } else if toks[j].is_p('{') {
                    open = Some(j);
                    break;
                } else if toks[j].is_p(';') || (toks[j].is_p(',') && !itemish && paren == 0) {
                    break;
                }
                j += 1;
            }
            if let Some(o) = open {
                let close = match_brace(toks, o);
                regions.push((i, close));
                i = close;
                continue;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    regions
}

/// If tokens at `i` start a `#[test]`/`#[cfg(test)]`-style attribute,
/// returns the index just past its closing `]`.
fn match_test_attr(toks: &[Token], i: usize) -> Option<usize> {
    if !toks.get(i)?.is_p('#') || !toks.get(i + 1)?.is_p('[') {
        return None;
    }
    // #[test]
    if toks.get(i + 2)?.is_word("test") && toks.get(i + 3)?.is_p(']') {
        return Some(i + 4);
    }
    // #[cfg(test)]
    if toks.get(i + 2)?.is_word("cfg")
        && toks.get(i + 3)?.is_p('(')
        && toks.get(i + 4)?.is_word("test")
        && toks.get(i + 5)?.is_p(')')
        && toks.get(i + 6)?.is_p(']')
    {
        return Some(i + 7);
    }
    None
}

/// Index just past the bracket group opened at `open` (which must be
/// `[`), for skipping attribute bodies.
fn match_bracket(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    let mut j = open;
    while j < toks.len() {
        if toks[j].is_p('[') {
            depth += 1;
        } else if toks[j].is_p(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    toks.len()
}

/// Index just past the brace block opened at `open` (which must be `{`).
pub fn match_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    let mut j = open;
    while j < toks.len() {
        if toks[j].is_p('{') {
            depth += 1;
        } else if toks[j].is_p('}') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    toks.len()
}

/// True iff token index `i` falls in any of the (sorted) regions.
pub fn in_regions(regions: &[(usize, usize)], i: usize) -> bool {
    regions.iter().any(|&(s, e)| i >= s && i < e)
}

/// A function item found in the token stream.
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// Token range of the parameter list (inside the parens).
    pub params: (usize, usize),
    /// Token range of the body (inside the braces); empty for
    /// body-less declarations.
    pub body: (usize, usize),
    /// Index into the impl-span list of the smallest enclosing `impl`
    /// block, if any.
    pub impl_idx: Option<usize>,
}

/// Finds `fn` items and groups them by enclosing `impl` block.
pub fn fn_spans(toks: &[Token]) -> Vec<FnSpan> {
    // Collect impl block body spans first.
    let mut impls: Vec<(usize, usize)> = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_word("impl") {
            continue;
        }
        // Skip `impl` in type position (`-> impl Trait`, `&impl T`,
        // `(impl T`, `, impl T`, `<impl T`, `= impl T`).
        if i > 0 {
            let prev = &toks[i - 1];
            if ['>', '-', '(', ',', '&', '<', '=']
                .iter()
                .any(|&c| prev.is_p(c))
                || prev.is_word("dyn")
            {
                continue;
            }
        }
        let mut j = i + 1;
        while j < toks.len() && !toks[j].is_p('{') && !toks[j].is_p(';') {
            j += 1;
        }
        if j < toks.len() && toks[j].is_p('{') {
            impls.push((j, match_brace(toks, j)));
        }
    }

    let mut fns = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_word("fn") {
            continue;
        }
        let Some(name) = toks.get(i + 1).and_then(|t| t.word()) else {
            continue; // `fn(` pointer type
        };
        // Parameter list: first `(` after the name (generics may
        // intervene; they contain no parens).
        let mut j = i + 2;
        while j < toks.len() && !toks[j].is_p('(') && !toks[j].is_p('{') && !toks[j].is_p(';') {
            j += 1;
        }
        if j >= toks.len() || !toks[j].is_p('(') {
            continue;
        }
        let pstart = j + 1;
        let mut depth = 0i64;
        while j < toks.len() {
            if toks[j].is_p('(') {
                depth += 1;
            } else if toks[j].is_p(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        let pend = j;
        // Body: first `{` at paren depth 0 before a `;`.
        let mut k = j + 1;
        let mut body = (0usize, 0usize);
        while k < toks.len() {
            if toks[k].is_p('{') {
                body = (k + 1, match_brace(toks, k).saturating_sub(1));
                break;
            }
            if toks[k].is_p(';') {
                break;
            }
            k += 1;
        }
        let impl_idx = impls
            .iter()
            .enumerate()
            .filter(|(_, &(s, e))| s < i && i < e)
            .min_by_key(|(_, &(s, e))| e - s)
            .map(|(ix, _)| ix);
        fns.push(FnSpan {
            name: name.to_string(),
            line: toks[i].line,
            params: (pstart, pend),
            body,
            impl_idx,
        });
    }
    fns
}

/// Parsed allow-annotations: line -> set of rule names allowed on that
/// line and the next. Malformed annotations become findings.
pub fn annotations(
    rel: &str,
    clean: &Clean,
    findings: &mut Vec<Finding>,
) -> BTreeMap<usize, BTreeSet<String>> {
    let mut map: BTreeMap<usize, BTreeSet<String>> = BTreeMap::new();
    for (line, text) in &clean.comments {
        let Some(pos) = text.find("hamlet-lint") else {
            continue;
        };
        let bad = |findings: &mut Vec<Finding>, why: &str| {
            findings.push(Finding {
                rule: "bad-annotation",
                file: rel.to_string(),
                line: *line,
                message: format!(
                    "{why}; the grammar is `hamlet-lint: allow(<rule>[, <rule>]) -- <reason>`"
                ),
            });
        };
        let rest = text[pos + "hamlet-lint".len()..].trim_start();
        let Some(rest) = rest.strip_prefix(':') else {
            bad(findings, "missing `:` after `hamlet-lint`");
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            bad(findings, "expected `allow(`");
            continue;
        };
        let Some(close) = rest.find(')') else {
            bad(findings, "unclosed `allow(`");
            continue;
        };
        let mut rules = BTreeSet::new();
        let mut ok = true;
        for r in rest[..close].split(',') {
            let r = r.trim();
            if RULES.contains(&r) {
                rules.insert(r.to_string());
            } else {
                bad(findings, &format!("unknown rule `{r}` in allow list"));
                ok = false;
            }
        }
        let tail = rest[close + 1..].trim_start();
        let reason_ok = tail
            .strip_prefix("--")
            .map(str::trim)
            .is_some_and(|r| !r.is_empty());
        if !reason_ok {
            bad(findings, "missing `-- <reason>` after the allow list");
            ok = false;
        }
        if ok {
            map.entry(*line).or_default().extend(rules);
        }
    }
    map
}

/// True iff `rule` is allowed at `line` (annotation on the same line or
/// the line directly above).
pub fn allowed(map: &BTreeMap<usize, BTreeSet<String>>, rule: &str, line: usize) -> bool {
    [line, line.saturating_sub(1)]
        .iter()
        .any(|l| map.get(l).is_some_and(|s| s.contains(rule)))
}
