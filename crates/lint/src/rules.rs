//! The rule implementations (L1–L6).

use crate::context::{allowed, in_regions, FnSpan};
use crate::scan::Token;
use crate::{Class, FileCx, Finding};
use std::collections::BTreeSet;

/// L1 rule name.
pub const UNORDERED_ITER: &str = "unordered-iter";
/// L2 rule name.
pub const CODEC_SYMMETRY: &str = "codec-symmetry";
/// L3 rule name.
pub const WALLCLOCK: &str = "wallclock";
/// L4 rule name.
pub const PANIC_HYGIENE: &str = "panic-hygiene";
/// L5 rule name.
pub const TRUNCATING_CAST: &str = "truncating-cast";
/// L6 rule name.
pub const FORBID_UNSAFE: &str = "forbid-unsafe";

fn push(cx: &FileCx, out: &mut Vec<Finding>, rule: &'static str, line: usize, message: String) {
    if !allowed(&cx.allows, rule, line) {
        out.push(Finding {
            rule,
            file: cx.rel.clone(),
            line,
            message,
        });
    }
}

// ---------------------------------------------------------------- L1 --

/// Adapter methods whose result observes `HashMap`/`HashSet` order.
const ITERATING: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// L1: iteration over a `HashMap`/`HashSet` must be wrapped in a
/// canonical sort (detected as a `sort*` call or a `BTreeMap`/`BTreeSet`
/// collect in the same or the next two statements) or carry an
/// `allow(unordered-iter)` annotation with a reason.
pub fn unordered_iter(cx: &FileCx, out: &mut Vec<Finding>) {
    let toks = &cx.toks;
    let declared = hash_container_names(toks);
    if declared.is_empty() {
        return;
    }
    let mut candidates: Vec<(usize, String)> = Vec::new(); // (tok idx, what)

    for i in 0..toks.len() {
        if in_regions(&cx.test_regions, i) {
            continue;
        }
        // recv.iterating_method(
        if let Some(m) = toks[i].word() {
            if ITERATING.contains(&m)
                && i >= 2
                && toks[i - 1].is_p('.')
                && toks.get(i + 1).is_some_and(|t| t.is_p('('))
            {
                if let Some(recv) = toks[i - 2].word() {
                    if declared.contains(recv) {
                        candidates.push((i, format!("`{recv}.{m}()`")));
                    }
                }
            }
        }
        // for-header: `for <pat> in <expr> {` where a declared map/set is
        // consumed without a method call on it (`&map`, `take(.. map)`).
        if toks[i].is_word("for") {
            let mut j = i + 1;
            while j < toks.len() && !toks[j].is_word("in") && !toks[j].is_p('{') {
                j += 1;
            }
            if j >= toks.len() || !toks[j].is_word("in") {
                continue;
            }
            let mut k = j + 1;
            while k < toks.len() && !toks[k].is_p('{') {
                if let Some(w) = toks[k].word() {
                    if declared.contains(w) && !toks.get(k + 1).is_some_and(|t| t.is_p('.')) {
                        candidates.push((k, format!("`for .. in .. {w}`")));
                    }
                }
                k += 1;
            }
        }
    }

    for (idx, what) in candidates {
        if sorted_nearby(toks, idx) {
            continue;
        }
        push(
            cx,
            out,
            UNORDERED_ITER,
            toks[idx].line,
            format!(
                "{what} iterates a HashMap/HashSet in arbitrary order; sort canonically \
                 before anything order-sensitive, or annotate why order cannot matter"
            ),
        );
    }
}

/// Names declared in this file with a `HashMap`/`HashSet` top-level type
/// (fields, params, and locals; `Vec<HashMap<..>>` etc. do not count).
fn hash_container_names(toks: &[Token]) -> BTreeSet<String> {
    let mut set = BTreeSet::new();
    for i in 0..toks.len() {
        let Some(name) = toks[i].word() else { continue };
        // `name: [&|&'a |mut ]Hash{Map,Set}<` and `name: std::collections::Hash..`
        if toks.get(i + 1).is_some_and(|t| t.is_p(':'))
            && !toks.get(i + 2).is_some_and(|t| t.is_p(':'))
        {
            let mut j = i + 2;
            let mut budget = 8usize;
            while budget > 0 {
                match toks.get(j) {
                    Some(t) if t.is_p('&') || t.is_p('\'') => j += 1,
                    Some(t) if t.is_word("mut") || t.is_word("std") || t.is_word("collections") => {
                        j += 1
                    }
                    Some(t) if t.is_p(':') => j += 1,
                    Some(t) if t.word() == Some("HashMap") || t.word() == Some("HashSet") => {
                        set.insert(name.to_string());
                        break;
                    }
                    _ => break,
                }
                budget -= 1;
            }
        }
        // `name = [std::collections::]Hash{Map,Set}::...`
        if toks.get(i + 1).is_some_and(|t| t.is_p('=')) {
            let mut j = i + 2;
            let mut budget = 8usize;
            while budget > 0 {
                match toks.get(j) {
                    Some(t) if t.is_word("std") || t.is_word("collections") || t.is_p(':') => {
                        j += 1
                    }
                    Some(t) if t.word() == Some("HashMap") || t.word() == Some("HashSet") => {
                        if toks.get(j + 1).is_some_and(|t| t.is_p(':')) {
                            set.insert(name.to_string());
                        }
                        break;
                    }
                    _ => break,
                }
                budget -= 1;
            }
        }
    }
    set
}

/// True iff order is canonicalized near `idx` (a `sort*` call or a
/// BTree collect): in the statement containing `idx`, one of the next
/// two statements, or — for the collect-sort-iterate idiom — a bounded
/// token window just *before* the iteration.
fn sorted_nearby(toks: &[Token], idx: usize) -> bool {
    // Look-behind: `let v: Vec<_> = map.iter().collect(); v.sort(); for .. in v`
    // puts the sort ahead of the flagged loop header.
    for t in &toks[idx.saturating_sub(120)..idx] {
        if let Some(w) = t.word() {
            if w.starts_with("sort") || w == "BTreeMap" || w == "BTreeSet" {
                return true;
            }
        }
    }
    let mut start = idx;
    while start > 0 {
        let t = &toks[start - 1];
        if t.is_p(';') || t.is_p('{') || t.is_p('}') {
            break;
        }
        start -= 1;
    }
    let mut semis = 0usize;
    let mut j = start;
    let end = (idx + 120).min(toks.len());
    while j < end && semis < 3 {
        if toks[j].is_p(';') {
            semis += 1;
        }
        if let Some(w) = toks[j].word() {
            if w.starts_with("sort") || w == "BTreeMap" || w == "BTreeSet" {
                return true;
            }
        }
        j += 1;
    }
    false
}

// ---------------------------------------------------------------- L2 --

/// Encode/decode fn-name pairs checked for positional codec symmetry.
const PAIRS: &[(&str, &str)] = &[
    ("encode", "decode"),
    ("to_bytes", "from_bytes"),
    ("checkpoint", "restore"),
    ("container_header", "read_container"),
    ("encode_delta", "decode_delta"),
    ("write_delta_frame", "read_delta_frame"),
];

/// Positional class of one codec call. `Len` unifies `usize`/`seq_len`,
/// `Raw` unifies `raw`/`magic`, `Nested` unifies sub-struct
/// `encode`/`decode` calls (and the container header helpers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Fixed(&'static str),
    Len,
    Raw,
    Opt,
    Nested,
}

impl Slot {
    fn name(self) -> &'static str {
        match self {
            Slot::Fixed(s) => s,
            Slot::Len => "usize/seq_len",
            Slot::Raw => "raw/magic",
            Slot::Opt => "some",
            Slot::Nested => "nested encode/decode",
        }
    }
}

fn codec_class(method: &str, decode_side: bool) -> Option<Slot> {
    Some(match method {
        "u8" => Slot::Fixed("u8"),
        "u16" => Slot::Fixed("u16"),
        "u32" => Slot::Fixed("u32"),
        "u64" => Slot::Fixed("u64"),
        "i64" => Slot::Fixed("i64"),
        "f64" => Slot::Fixed("f64"),
        "bool" => Slot::Fixed("bool"),
        "duration" => Slot::Fixed("duration"),
        "str" => Slot::Fixed("str"),
        "bytes" => Slot::Fixed("bytes"),
        "attr_value" => Slot::Fixed("attr_value"),
        "group_key" => Slot::Fixed("group_key"),
        "event" => Slot::Fixed("event"),
        "usize" => Slot::Len,
        "seq_len" if decode_side => Slot::Len,
        "raw" if !decode_side => Slot::Raw,
        "magic" if decode_side => Slot::Raw,
        "some" => Slot::Opt,
        _ => return None,
    })
}

/// L2: every encode path's codec-call sequence must positionally match
/// its paired decode path. Runs of `some` collapse to one slot (the
/// `Option` encode writes the tag in both match arms).
pub fn codec_symmetry(cx: &FileCx, out: &mut Vec<Finding>) {
    let fns = &cx.fn_spans;
    for &(ename, dname) in PAIRS {
        // Group by enclosing impl (or file level for free fns).
        let mut scopes: Vec<Option<usize>> = fns.iter().map(|f| f.impl_idx).collect();
        scopes.sort_unstable();
        scopes.dedup();
        for scope in scopes {
            let find = |n: &str| {
                fns.iter()
                    .find(|f| f.impl_idx == scope && f.name == n && f.body.1 > f.body.0)
            };
            let (Some(ef), Some(df)) = (find(ename), find(dname)) else {
                continue;
            };
            if in_regions(&cx.test_regions, ef.body.0) || in_regions(&cx.test_regions, df.body.0) {
                continue;
            }
            if allowed(&cx.allows, CODEC_SYMMETRY, ef.line)
                || allowed(&cx.allows, CODEC_SYMMETRY, df.line)
            {
                continue;
            }
            let enc = codec_calls(cx, ef, false);
            let dec = codec_calls(cx, df, true);
            compare_sequences(cx, out, ef, df, &enc, &dec);
        }
    }
}

/// Extracts the (collapsed) codec-call sequence of one fn body.
fn codec_calls(cx: &FileCx, f: &FnSpan, decode_side: bool) -> Vec<(Slot, usize)> {
    let toks = &cx.toks;
    let mut recvs: BTreeSet<String> = BTreeSet::new();
    let want = if decode_side { "Dec" } else { "Enc" };
    // Receivers from the parameter list: `name: &mut [crate::checkpoint::]Enc`.
    let (ps, pe) = f.params;
    for i in ps..pe {
        let Some(name) = toks[i].word() else { continue };
        if !toks.get(i + 1).is_some_and(|t| t.is_p(':')) {
            continue;
        }
        for t in &toks[(i + 2).min(pe)..(i + 12).min(pe)] {
            if t.is_p(',') {
                break;
            }
            if t.is_word(want) {
                recvs.insert(name.to_string());
                break;
            }
        }
    }
    // Receivers from locals: `let [mut] x = [..]Enc::new(..)` or
    // `let [mut] x = container_header(..)`.
    let (bs, be) = f.body;
    for i in bs..be {
        if !toks[i].is_word("let") {
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_word("mut")) {
            j += 1;
        }
        let Some(name) = toks.get(j).and_then(|t| t.word()) else {
            continue;
        };
        let name = name.to_string();
        for k in j + 1..(j + 14).min(be) {
            if toks[k].is_p(';') {
                break;
            }
            let hit = toks[k].is_word(want)
                && toks.get(k + 1).is_some_and(|t| t.is_p(':'))
                && toks.get(k + 3).is_some_and(|t| t.is_word("new"));
            let header = !decode_side && toks[k].is_word("container_header");
            if hit || header {
                recvs.insert(name.clone());
                break;
            }
        }
    }

    let mut seq: Vec<(Slot, usize)> = Vec::new();
    for i in bs..be {
        let Some(w) = toks[i].word() else { continue };
        let line = toks[i].line;
        // recv.method(
        if i >= 2 && toks[i - 1].is_p('.') && toks.get(i + 1).is_some_and(|t| t.is_p('(')) {
            if let Some(recv) = toks[i - 2].word() {
                if recvs.contains(recv) {
                    if let Some(c) = codec_class(w, decode_side) {
                        seq.push((c, line));
                        continue;
                    }
                }
            }
        }
        // Nested sub-struct calls: `x.encode(&mut e)` / `T::decode(&mut d, ..)`,
        // plus the shared container helpers.
        let nested = if decode_side {
            (w == "decode" || w == "read_container" || w == "read_container_any")
                && toks.get(i + 1).is_some_and(|t| t.is_p('('))
                && args_mention(toks, i + 1, &recvs)
        } else {
            (w == "encode" && i >= 1 && toks[i - 1].is_p('.') || w == "container_header")
                && toks.get(i + 1).is_some_and(|t| t.is_p('('))
                && (w == "container_header" || args_mention(toks, i + 1, &recvs))
        };
        if nested {
            seq.push((Slot::Nested, line));
        }
    }
    // Collapse runs of `some`: the encode side writes the Option tag
    // once per match arm, the decode side reads it once.
    seq.dedup_by(|a, b| a.0 == Slot::Opt && b.0 == Slot::Opt);
    seq
}

fn args_mention(toks: &[Token], open: usize, recvs: &BTreeSet<String>) -> bool {
    let mut depth = 0i64;
    let mut j = open;
    while j < toks.len() {
        if toks[j].is_p('(') {
            depth += 1;
        } else if toks[j].is_p(')') {
            depth -= 1;
            if depth == 0 {
                return false;
            }
        } else if let Some(w) = toks[j].word() {
            if recvs.contains(w) {
                return true;
            }
        }
        j += 1;
    }
    false
}

fn compare_sequences(
    cx: &FileCx,
    out: &mut Vec<Finding>,
    ef: &FnSpan,
    df: &FnSpan,
    enc: &[(Slot, usize)],
    dec: &[(Slot, usize)],
) {
    let n = enc.len().min(dec.len());
    for k in 0..n {
        if enc[k].0 != dec[k].0 {
            push(
                cx,
                out,
                CODEC_SYMMETRY,
                df.line,
                format!(
                    "`{}` (line {}) and `{}` (line {}) diverge at codec position {}: \
                     encode writes `{}` (line {}) but decode reads `{}` (line {})",
                    ef.name,
                    ef.line,
                    df.name,
                    df.line,
                    k + 1,
                    enc[k].0.name(),
                    enc[k].1,
                    dec[k].0.name(),
                    dec[k].1,
                ),
            );
            return;
        }
    }
    if enc.len() != dec.len() {
        let (side, extra) = if enc.len() > dec.len() {
            ("encode", &enc[n..])
        } else {
            ("decode", &dec[n..])
        };
        push(
            cx,
            out,
            CODEC_SYMMETRY,
            df.line,
            format!(
                "`{}` (line {}) writes {} codec values but `{}` (line {}) reads {}: \
                 the {} side has {} unmatched call(s) starting with `{}` at line {}",
                ef.name,
                ef.line,
                enc.len(),
                df.name,
                df.line,
                dec.len(),
                side,
                extra.len(),
                extra[0].0.name(),
                extra[0].1,
            ),
        );
    }
}

/// L2b: every `*MAGIC*`/`*VERSION*` const must be reflected in
/// `docs/checkpoint-format.md` (the magic string literally, the version
/// as `v<n>`), so codec changes cannot silently skip the format doc.
pub fn codec_docs(cx: &FileCx, docs: Option<&str>, out: &mut Vec<Finding>) {
    let toks = &cx.toks;
    for i in 0..toks.len() {
        if !toks[i].is_word("const") || in_regions(&cx.test_regions, i) {
            continue;
        }
        let Some(name) = toks.get(i + 1).and_then(|t| t.word()) else {
            continue;
        };
        let line = toks[i].line;
        let is_magic = name.contains("MAGIC");
        let is_version = name.contains("VERSION");
        if !is_magic && !is_version {
            continue;
        }
        let Some(docs) = docs else {
            push(
                cx,
                out,
                CODEC_SYMMETRY,
                line,
                format!("`{name}` declared but docs/checkpoint-format.md is missing"),
            );
            continue;
        };
        if is_magic {
            let lit = cx
                .clean_strings
                .iter()
                .find(|(l, _)| *l == line)
                .map(|(_, s)| s.clone());
            if let Some(lit) = lit {
                if !lit.is_empty() && !docs.contains(&lit) {
                    push(
                        cx,
                        out,
                        CODEC_SYMMETRY,
                        line,
                        format!(
                            "magic `{name}` = \"{lit}\" is not documented in \
                             docs/checkpoint-format.md"
                        ),
                    );
                }
            }
        }
        if is_version {
            // First numeric token after `=`.
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_p('=') && !toks[j].is_p(';') {
                j += 1;
            }
            let mut ver = None;
            while j < toks.len() && !toks[j].is_p(';') {
                if let Some(w) = toks[j].word() {
                    if w.chars().all(|c| c.is_ascii_digit()) {
                        ver = Some(w.to_string());
                        break;
                    }
                }
                j += 1;
            }
            if let Some(v) = ver {
                // Accept either spelling: `v3` or `version 3`.
                if !docs.contains(&format!("v{v}")) && !docs.contains(&format!("version {v}")) {
                    push(
                        cx,
                        out,
                        CODEC_SYMMETRY,
                        line,
                        format!(
                            "`{name}` = {v} has no `v{v}` (or `version {v}`) entry in \
                             docs/checkpoint-format.md — document the format change \
                             (layout + version history)"
                        ),
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------- L3 --

/// L3: wall-clock reads stay out of core logic. Only `metrics.rs`,
/// `stats.rs`, and bench code may touch the clock freely; anywhere else
/// needs an annotation explaining why the value never reaches output.
pub fn wallclock(cx: &FileCx, out: &mut Vec<Finding>) {
    let toks = &cx.toks;
    for i in 0..toks.len() {
        if in_regions(&cx.test_regions, i) {
            continue;
        }
        // Flag the *read* (`::now`), not mentions of the type: imports,
        // signatures, and stored stamps are not where time leaks in.
        let clock_read = |ty: &str| {
            toks[i].is_word(ty)
                && toks.get(i + 1).is_some_and(|t| t.is_p(':'))
                && toks.get(i + 2).is_some_and(|t| t.is_p(':'))
                && toks.get(i + 3).is_some_and(|t| t.is_word("now"))
        };
        let hit = clock_read("Instant") || clock_read("SystemTime");
        if hit {
            push(
                cx,
                out,
                WALLCLOCK,
                toks[i].line,
                "wall-clock read outside metrics/stats/bench code; if the value can \
                 never influence emitted bytes, annotate with the reason"
                    .to_string(),
            );
        }
    }
}

// ---------------------------------------------------------------- L4 --

/// L4: no `unwrap()`/`expect()` on worker/emission paths (the core
/// engine and the pipeline runtime). Propagate a `Result`, or annotate
/// with why the panic is unreachable or is deliberate poisoning.
pub fn panic_hygiene(cx: &FileCx, out: &mut Vec<Finding>) {
    let toks = &cx.toks;
    for i in 0..toks.len() {
        if in_regions(&cx.test_regions, i) {
            continue;
        }
        let Some(w) = toks[i].word() else { continue };
        if (w == "unwrap" || w == "expect")
            && i >= 1
            && toks[i - 1].is_p('.')
            && toks.get(i + 1).is_some_and(|t| t.is_p('('))
        {
            push(
                cx,
                out,
                PANIC_HYGIENE,
                toks[i].line,
                format!(
                    "`.{w}()` on a worker/emission path can take down a shard; return a \
                     Result (ChurnError-style) or annotate why it cannot fire"
                ),
            );
        }
    }
}

// ---------------------------------------------------------------- L5 --

const NARROWING: &[&str] = &["u32", "u16", "u8", "i32", "usize"];
const TIME_MARKERS: &[&str] = &[
    "Ts",
    "ts",
    "window",
    "window_end",
    "window_start",
    "watermark",
    "lateness",
    "slide",
    "pane",
];

/// L5: a bare narrowing `as` cast in a statement doing timestamp/window
/// arithmetic silently truncates at scale; use checked/saturating
/// conversion or annotate why the domain fits.
pub fn truncating_cast(cx: &FileCx, out: &mut Vec<Finding>) {
    let toks = &cx.toks;
    let mut start = 0usize;
    for i in 0..=toks.len() {
        let boundary =
            i == toks.len() || toks[i].is_p(';') || toks[i].is_p('{') || toks[i].is_p('}');
        if !boundary {
            continue;
        }
        let seg_start = start;
        let seg = &toks[seg_start..i];
        start = i + 1;
        if seg.is_empty() || in_regions(&cx.test_regions, seg_start) {
            continue;
        }
        let has_marker = seg
            .iter()
            .any(|t| t.word().is_some_and(|w| TIME_MARKERS.contains(&w)));
        if !has_marker {
            continue;
        }
        for k in 0..seg.len().saturating_sub(1) {
            if seg[k].is_word("as") {
                if let Some(ty) = seg[k + 1].word() {
                    if NARROWING.contains(&ty) {
                        push(
                            cx,
                            out,
                            TRUNCATING_CAST,
                            seg[k].line,
                            format!(
                                "bare `as {ty}` in timestamp/window arithmetic can truncate; \
                                 use try_from/saturating conversion or annotate why it fits"
                            ),
                        );
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------- L6 --

/// L6: every non-compat library crate root must `#![forbid(unsafe_code)]`.
pub fn forbid_unsafe(cx: &FileCx, out: &mut Vec<Finding>) {
    let toks = &cx.toks;
    for i in 0..toks.len() {
        if toks[i].is_p('#')
            && toks.get(i + 1).is_some_and(|t| t.is_p('!'))
            && toks.get(i + 2).is_some_and(|t| t.is_p('['))
            && toks.get(i + 3).is_some_and(|t| t.is_word("forbid"))
            && toks.get(i + 4).is_some_and(|t| t.is_p('('))
            && toks.get(i + 5).is_some_and(|t| t.is_word("unsafe_code"))
        {
            return;
        }
    }
    out.push(Finding {
        rule: FORBID_UNSAFE,
        file: cx.rel.clone(),
        line: 1,
        message: "library crate root lacks `#![forbid(unsafe_code)]` (required for every \
                  non-compat crate; the only sanctioned unsafe is the test-only allocator \
                  in crates/core/tests/alloc_lean.rs)"
            .to_string(),
    });
}

/// Dispatches every rule enabled for this file.
pub fn check(cx: &FileCx, cls: &Class, docs: Option<&str>, out: &mut Vec<Finding>) {
    if cls.l1 {
        unordered_iter(cx, out);
    }
    if cls.l2 {
        codec_symmetry(cx, out);
        codec_docs(cx, docs, out);
    }
    if cls.l3 {
        wallclock(cx, out);
    }
    if cls.l4 {
        panic_hygiene(cx, out);
    }
    if cls.l5 {
        truncating_cast(cx, out);
    }
    if cls.forbid_required {
        forbid_unsafe(cx, out);
    }
}
