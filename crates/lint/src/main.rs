//! CLI for `hamlet-lint`.
//!
//! ```text
//! hamlet-lint [--json] [--root <dir>]      # lint the workspace (exit 1 on findings)
//! hamlet-lint [--json] --fixture <file>    # lint one file with all rules forced on
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut fixture: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--root" => root = args.next().map(PathBuf::from),
            "--fixture" => fixture = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                eprintln!("usage: hamlet-lint [--json] [--root <dir> | --fixture <file>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("hamlet-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let result = match fixture {
        Some(f) => hamlet_lint::check_fixture(&f),
        None => {
            let root = root.unwrap_or_else(|| PathBuf::from("."));
            hamlet_lint::run(&root)
        }
    };
    let findings = match result {
        Ok(f) => f,
        Err(e) => {
            eprintln!("hamlet-lint: io error: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        let objs: Vec<String> = findings.iter().map(|f| f.to_json()).collect();
        println!("[{}]", objs.join(",\n "));
    } else {
        for f in &findings {
            println!("{f}");
        }
        if findings.is_empty() {
            eprintln!("hamlet-lint: clean");
        } else {
            eprintln!("hamlet-lint: {} finding(s)", findings.len());
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
