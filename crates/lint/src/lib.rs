//! `hamlet-lint`: the HAMLET workspace's repo-specific static-analysis
//! pass.
//!
//! The engine's headline guarantee is byte-identical output across
//! single-thread, sharded, checkpointed, and churned runs. That
//! guarantee has been broken repeatedly by the same two bug classes —
//! unordered `HashMap` iteration reaching an emission path, and the
//! hand-rolled checkpoint codec drifting out of encode/decode symmetry
//! as fields are added. This crate enforces those invariants (plus a
//! few neighbors) mechanically, as named, allowlistable rules:
//!
//! | rule | name | what it enforces |
//! |------|------|------------------|
//! | L1 | `unordered-iter`   | no `HashMap`/`HashSet` iteration outside tests without a canonical sort or an allow |
//! | L2 | `codec-symmetry`   | paired encode/decode fns make positionally matching codec calls; magic/version consts appear in `docs/checkpoint-format.md` |
//! | L3 | `wallclock`        | `Instant::now`/`SystemTime` confined to `metrics.rs`/`stats.rs`/`crates/obs`/bench code |
//! | L4 | `panic-hygiene`    | no `unwrap()`/`expect()` on worker/emission paths (core + pipeline) |
//! | L5 | `truncating-cast`  | no bare narrowing `as` casts in timestamp/window arithmetic |
//! | L6 | `forbid-unsafe`    | every non-compat library crate root carries `#![forbid(unsafe_code)]` |
//!
//! A finding is suppressed by a plain comment on the same line or the
//! line above:
//!
//! ```text
//! // hamlet-lint: allow(unordered-iter) -- order-insensitive fold into a max
//! ```
//!
//! The reason is mandatory; a malformed annotation is itself a finding
//! (`bad-annotation`). Doc comments are not scanned for annotations,
//! so documentation can quote the grammar freely.
//!
//! The analyzer is comment/string-aware but deliberately not a Rust
//! parser: it pattern-matches a cleaned token stream (see
//! [`scan`]). That makes it fast, dependency-free, and predictable —
//! and means it is a *tripwire*, not a proof: receivers are resolved by
//! per-file type-ascription heuristics, and `docs/static-analysis.md`
//! records the known blind spots.

#![forbid(unsafe_code)]

pub mod context;
pub mod rules;
pub mod scan;

use context::FnSpan;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// Every known rule name (annotation grammar validates against this).
pub const RULES: &[&str] = &[
    rules::UNORDERED_ITER,
    rules::CODEC_SYMMETRY,
    rules::WALLCLOCK,
    rules::PANIC_HYGIENE,
    rules::TRUNCATING_CAST,
    rules::FORBID_UNSAFE,
];

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule name (one of [`RULES`] or `bad-annotation`).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

impl Finding {
    /// The finding as one machine-readable JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rule\":{},\"file\":{},\"line\":{},\"message\":{}}}",
            json_str(self.rule),
            json_str(&self.file),
            self.line,
            json_str(&self.message)
        )
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Which rules apply to a file, derived from its workspace-relative
/// path (see `docs/static-analysis.md` for the scope table).
#[derive(Debug, Clone, Copy, Default)]
pub struct Class {
    /// Test/bench/example code: every rule skips the whole file
    /// (only annotation well-formedness is still checked).
    pub test_file: bool,
    /// L1 applies.
    pub l1: bool,
    /// L2 applies.
    pub l2: bool,
    /// L3 applies.
    pub l3: bool,
    /// L4 applies.
    pub l4: bool,
    /// L5 applies.
    pub l5: bool,
    /// L6: this file is a library crate root that must forbid unsafe.
    pub forbid_required: bool,
}

/// Library source roots: determinism rules (L1/L5) and the wall-clock
/// rule apply here. Bench and compat crates are out of scope (bench
/// measures wall-clock by definition; compat shims mirror external
/// APIs).
const LIB_SRC: &[&str] = &[
    "crates/types/src/",
    "crates/query/src/",
    "crates/stream/src/",
    "crates/core/src/",
    "crates/pipeline/src/",
    "crates/baselines/src/",
    "crates/obs/src/",
    "src/",
];

/// Classifies a workspace-relative path (always `/`-separated).
pub fn classify(rel: &str) -> Class {
    let test_file = rel.starts_with("tests/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.starts_with("examples/");
    let lib_src = LIB_SRC.iter().any(|p| rel.starts_with(p));
    // Wall-clock measurement homes: the metrics/stats modules own
    // latency/gauge sampling, and the observability crate's whole job
    // is timestamping spans; everything else must justify the read.
    let l3_allowed = rel.ends_with("/metrics.rs")
        || rel.ends_with("/stats.rs")
        || rel.starts_with("crates/obs/src/")
        || rel.starts_with("crates/bench/")
        || rel.starts_with("crates/lint/");
    // Worker/emission paths: the engine core and the online pipeline.
    let l4_scope = rel.starts_with("crates/core/src/") || rel.starts_with("crates/pipeline/src/");
    let forbid_required = !test_file
        && (rel == "src/lib.rs"
            || (rel.starts_with("crates/")
                && rel.ends_with("/src/lib.rs")
                && !rel.starts_with("crates/compat/")));
    Class {
        test_file,
        l1: lib_src && !test_file,
        l2: !test_file,
        l3: lib_src && !test_file && !l3_allowed,
        l4: l4_scope && !test_file,
        l5: lib_src && !test_file,
        forbid_required,
    }
}

/// Per-file analysis context shared by the rules.
pub struct FileCx {
    /// Workspace-relative path.
    pub rel: String,
    /// Token stream of the cleaned source.
    pub toks: Vec<scan::Token>,
    /// `#[cfg(test)]`/`#[test]` token regions.
    pub test_regions: Vec<(usize, usize)>,
    /// Allow-annotations by line.
    pub allows: BTreeMap<usize, BTreeSet<String>>,
    /// Function spans (for L2 pairing).
    pub fn_spans: Vec<FnSpan>,
    /// String literal contents by start line (for magic constants).
    pub clean_strings: Vec<(usize, String)>,
}

/// Runs every applicable rule over one source text.
///
/// `rel` determines rule applicability via [`classify`]; `docs` is the
/// content of `docs/checkpoint-format.md`, if present.
pub fn check_source(rel: &str, src: &str, docs: Option<&str>) -> Vec<Finding> {
    let cls = classify(rel);
    check_source_with(rel, src, docs, &cls)
}

/// [`check_source`] with an explicit classification (fixture tests use
/// this to force rules on).
pub fn check_source_with(rel: &str, src: &str, docs: Option<&str>, cls: &Class) -> Vec<Finding> {
    let clean = scan::clean(src);
    let toks = scan::tokens(&clean);
    let mut findings = Vec::new();
    let allows = context::annotations(rel, &clean, &mut findings);
    if cls.test_file {
        // Only annotation well-formedness applies to test code.
        return findings;
    }
    let cx = FileCx {
        rel: rel.to_string(),
        test_regions: context::test_regions(&toks),
        fn_spans: context::fn_spans(&toks),
        allows,
        clean_strings: clean.strings.clone(),
        toks,
    };
    rules::check(&cx, cls, docs, &mut findings);
    findings
}

/// Analyzes one standalone fixture file with every rule forced on
/// (L6 only when the file is named `lib.rs`). A sibling
/// `<stem>.docs.md` stands in for `docs/checkpoint-format.md`; absent
/// that, the doc text is treated as empty.
pub fn check_fixture(path: &Path) -> std::io::Result<Vec<Finding>> {
    let src = std::fs::read_to_string(path)?;
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    let docs = std::fs::read_to_string(path.with_extension("docs.md")).unwrap_or_default();
    let cls = Class {
        test_file: false,
        l1: true,
        l2: true,
        l3: true,
        l4: true,
        l5: true,
        forbid_required: name == "lib.rs",
    };
    Ok(check_source_with(&name, &src, Some(&docs), &cls))
}

/// Directories the workspace walk never descends into.
const SKIP_DIRS: &[&str] = &["target", ".git", "proptest-regressions"];
/// Workspace-relative prefixes excluded from the walk entirely:
/// compat shims mirror external crates, and the lint fixture corpus is
/// seeded violations by design.
const SKIP_PREFIXES: &[&str] = &["crates/compat/", "crates/lint/tests/"];

/// Walks the workspace at `root` and returns all findings, sorted by
/// (file, line, rule). Deterministic: the walk order is sorted.
pub fn run(root: &Path) -> std::io::Result<Vec<Finding>> {
    let docs = std::fs::read_to_string(root.join("docs/checkpoint-format.md")).ok();
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))?;
        findings.extend(check_source(rel, &src, docs.as_deref()));
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(findings)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .to_string_lossy()
            .replace('\\', "/");
        if p.is_dir() {
            let base = p
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if SKIP_DIRS.contains(&base.as_str())
                || SKIP_PREFIXES
                    .iter()
                    .any(|s| format!("{rel}/").starts_with(s))
            {
                continue;
            }
            walk(root, &p, out)?;
        } else if rel.ends_with(".rs") && !SKIP_PREFIXES.iter().any(|s| rel.starts_with(s)) {
            out.push(rel);
        }
    }
    Ok(())
}
