//! The workspace itself must lint clean: every historical finding is
//! either fixed or carries a reasoned allow-annotation. A regression
//! here means new code re-introduced a pattern the rules exist to stop
//! (unordered emission, codec drift, wall-clock in core, bare panics on
//! worker paths).

use std::path::PathBuf;

#[test]
fn the_workspace_has_no_findings() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    assert!(
        root.join("Cargo.toml").exists(),
        "expected the workspace root at {root:?}"
    );
    let findings = hamlet_lint::run(&root).expect("walk workspace");
    assert!(
        findings.is_empty(),
        "hamlet-lint found {} issue(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
