//! Fixture-based self-tests: every rule must fire on its seeded
//! violation and stay quiet on the allowed/fixed counterpart, both
//! through the library API and through the installed binary's exit
//! code.

use std::path::PathBuf;
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Rules reported for one fixture, deduplicated.
fn rules_for(name: &str) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = hamlet_lint::check_fixture(&fixture(name))
        .expect("fixture readable")
        .iter()
        .map(|f| f.rule)
        .collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

#[test]
fn l1_catches_the_unordered_emission_bug_pattern() {
    // The PR-3 regression shape: HashMap iteration feeding an emission
    // path. This is the pattern the rule exists for.
    assert_eq!(rules_for("l1_violation.rs"), ["unordered-iter"]);
    assert_eq!(rules_for("l1_allowed.rs"), [] as [&str; 0]);
}

#[test]
fn l2_catches_codec_asymmetry() {
    let findings = hamlet_lint::check_fixture(&fixture("l2_violation.rs")).unwrap();
    assert_eq!(
        findings.iter().map(|f| f.rule).collect::<Vec<_>>(),
        ["codec-symmetry"]
    );
    assert!(
        findings[0].message.contains("diverge"),
        "message should name the divergence: {}",
        findings[0].message
    );
    assert_eq!(rules_for("l2_allowed.rs"), [] as [&str; 0]);
}

#[test]
fn l3_catches_wallclock_reads() {
    let findings = hamlet_lint::check_fixture(&fixture("l3_violation.rs")).unwrap();
    assert_eq!(
        findings.len(),
        2,
        "Instant::now and SystemTime: {findings:?}"
    );
    assert!(findings.iter().all(|f| f.rule == "wallclock"));
    assert_eq!(rules_for("l3_allowed.rs"), [] as [&str; 0]);
}

#[test]
fn l4_catches_unwrap_and_expect() {
    let findings = hamlet_lint::check_fixture(&fixture("l4_violation.rs")).unwrap();
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings.iter().all(|f| f.rule == "panic-hygiene"));
    assert_eq!(rules_for("l4_allowed.rs"), [] as [&str; 0]);
}

#[test]
fn l5_catches_truncating_time_casts() {
    assert_eq!(rules_for("l5_violation.rs"), ["truncating-cast"]);
    assert_eq!(rules_for("l5_allowed.rs"), [] as [&str; 0]);
}

#[test]
fn l6_requires_forbid_unsafe_on_lib_roots() {
    assert_eq!(rules_for("l6_violation/lib.rs"), ["forbid-unsafe"]);
    assert_eq!(rules_for("l6_allowed/lib.rs"), [] as [&str; 0]);
}

#[test]
fn malformed_annotations_are_findings() {
    let findings = hamlet_lint::check_fixture(&fixture("bad_annotation.rs")).unwrap();
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings.iter().all(|f| f.rule == "bad-annotation"));
}

#[test]
fn binary_exits_nonzero_on_each_seeded_violation() {
    for name in [
        "l1_violation.rs",
        "l2_violation.rs",
        "l3_violation.rs",
        "l4_violation.rs",
        "l5_violation.rs",
        "l6_violation/lib.rs",
        "bad_annotation.rs",
    ] {
        let status = Command::new(env!("CARGO_BIN_EXE_hamlet-lint"))
            .arg("--fixture")
            .arg(fixture(name))
            .status()
            .expect("run hamlet-lint");
        assert_eq!(status.code(), Some(1), "{name} should exit 1");
    }
}

#[test]
fn binary_exits_zero_on_each_allowed_fixture() {
    for name in [
        "l1_allowed.rs",
        "l2_allowed.rs",
        "l3_allowed.rs",
        "l4_allowed.rs",
        "l5_allowed.rs",
        "l6_allowed/lib.rs",
    ] {
        let status = Command::new(env!("CARGO_BIN_EXE_hamlet-lint"))
            .arg("--fixture")
            .arg(fixture(name))
            .status()
            .expect("run hamlet-lint");
        assert_eq!(status.code(), Some(0), "{name} should exit 0");
    }
}

#[test]
fn json_output_is_machine_readable() {
    let out = Command::new(env!("CARGO_BIN_EXE_hamlet-lint"))
        .args(["--json", "--fixture"])
        .arg(fixture("l1_violation.rs"))
        .output()
        .expect("run hamlet-lint");
    let text = String::from_utf8(out.stdout).expect("utf8");
    let trimmed = text.trim();
    assert!(trimmed.starts_with('[') && trimmed.ends_with(']'), "{text}");
    assert!(trimmed.contains("\"rule\":\"unordered-iter\""), "{text}");
    assert!(trimmed.contains("\"line\":"), "{text}");
}
