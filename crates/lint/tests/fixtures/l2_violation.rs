// L2 fixture: encode writes (u32, u64) but decode reads (u64, u32) —
// the pair diverges at codec position 0. Must be flagged.
pub struct Thing {
    a: u32,
    b: u64,
}

impl Thing {
    pub fn encode(&self, e: &mut Enc) {
        e.u32(self.a);
        e.u64(self.b);
    }

    pub fn decode(d: &mut Dec<'_>) -> Result<Thing, CodecError> {
        Ok(Thing {
            a: d.u64()?,
            b: d.u32()?,
        })
    }
}
