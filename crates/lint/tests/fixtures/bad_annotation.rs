// Annotation-grammar fixture: a missing reason and an unknown rule are
// each a `bad-annotation` finding.

// hamlet-lint: allow(unordered-iter)
pub fn f() {}

// hamlet-lint: allow(no-such-rule) -- the rule name is wrong
pub fn g() {}
