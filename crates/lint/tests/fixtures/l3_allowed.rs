// L3 fixture: the same reads, each carrying a justified allow. Must be
// clean.
use std::time::{Instant, SystemTime};

pub fn stamp() -> Instant {
    // hamlet-lint: allow(wallclock) -- latency stamp; feeds metrics only
    Instant::now()
}

pub fn wall() -> SystemTime {
    // hamlet-lint: allow(wallclock) -- log timestamp; never reaches emitted bytes
    SystemTime::now()
}
