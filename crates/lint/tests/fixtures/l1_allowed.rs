// L1 fixture: both sanctioned shapes — a canonical sort next to the
// iteration, and an annotated order-insensitive fold. Must be clean.
use std::collections::HashMap;

pub struct Emitter {
    partitions: HashMap<u64, Vec<u64>>,
}

impl Emitter {
    pub fn emit_expired(&mut self, wm: u64, out: &mut Vec<(u64, u64)>) {
        let mut parts: Vec<_> = self.partitions.iter_mut().collect();
        parts.sort_by_key(|(k, _)| **k);
        for (key, runs) in parts {
            runs.retain(|&end| end > wm);
            out.push((*key, runs.len() as u64));
        }
    }

    pub fn total(&self) -> usize {
        // hamlet-lint: allow(unordered-iter) -- commutative sum
        self.partitions.values().map(Vec::len).sum()
    }
}
