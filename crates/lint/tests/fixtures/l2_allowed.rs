// L2 fixture: a positionally symmetric pair, plus magic/version consts
// that the sibling `l2_allowed.docs.md` documents. Must be clean.
pub const CKPT_MAGIC: [u8; 4] = *b"HMXX";
pub const CKPT_VERSION: u16 = 7;

pub struct Thing {
    a: u32,
    b: u64,
    tag: Option<u8>,
}

impl Thing {
    pub fn encode(&self, e: &mut Enc) {
        e.raw(&CKPT_MAGIC);
        e.u16(CKPT_VERSION);
        e.u32(self.a);
        e.u64(self.b);
        match self.tag {
            None => e.some(false),
            Some(t) => {
                e.some(true);
                e.u8(t);
            }
        }
    }

    pub fn decode(d: &mut Dec<'_>) -> Result<Thing, CodecError> {
        d.magic(&CKPT_MAGIC)?;
        let v = d.u16()?;
        let a = d.u32()?;
        let b = d.u64()?;
        let tag = if d.some()? { Some(d.u8()?) } else { None };
        let _ = v;
        Ok(Thing { a, b, tag })
    }
}
