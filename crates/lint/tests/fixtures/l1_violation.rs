// L1 fixture: the PR-3 bug shape — results pushed straight out of
// HashMap iteration order on an emission path. Must be flagged.
use std::collections::HashMap;

pub struct Emitter {
    partitions: HashMap<u64, Vec<u64>>,
}

impl Emitter {
    pub fn emit_expired(&mut self, wm: u64, out: &mut Vec<(u64, u64)>) {
        for (key, runs) in self.partitions.iter_mut() {
            runs.retain(|&end| end > wm);
            out.push((*key, runs.len() as u64));
        }
    }
}
