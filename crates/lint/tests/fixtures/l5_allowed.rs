// L5 fixture: the same cast, annotated with why it fits; a narrowing
// cast away from time arithmetic is out of scope. Must be clean.
pub fn pane_index(window_start: u64, ts: u64, pane: u64) -> u32 {
    // hamlet-lint: allow(truncating-cast) -- pane count is bounded by within/pane <= u32::MAX by construction
    ((ts - window_start) / pane) as u32
}

pub fn small(len: u64) -> u32 {
    len as u32
}
