//! L6 fixture: a library crate root without `#![forbid(unsafe_code)]`.
//! Must be flagged.

pub fn noop() {}
