// L3 fixture: wall-clock reads in core-scoped code. Must be flagged.
use std::time::{Instant, SystemTime};

pub fn stamp() -> Instant {
    Instant::now()
}

pub fn wall() -> SystemTime {
    SystemTime::now()
}
