// L4 fixture: unwrap/expect on a worker-path file. Must be flagged
// twice.
pub fn emit(xs: &[u64]) -> u64 {
    let first = *xs.first().unwrap();
    let last = *xs.last().expect("non-empty");
    first + last
}
