// L5 fixture: a bare narrowing cast inside window arithmetic. Must be
// flagged.
pub fn pane_index(window_start: u64, ts: u64, pane: u64) -> u32 {
    ((ts - window_start) / pane) as u32
}
