//! L6 fixture: the forbid attribute is present. Must be clean.

#![forbid(unsafe_code)]

pub fn noop() {}
