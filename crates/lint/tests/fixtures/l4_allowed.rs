// L4 fixture: the expect carries a justified allow and the unwrap is
// gone. Must be clean.
pub fn emit(xs: &[u64]) -> u64 {
    let first = xs.first().copied().unwrap_or(0);
    // hamlet-lint: allow(panic-hygiene) -- caller guarantees a non-empty batch; a violation must stop the worker
    let last = *xs.last().expect("non-empty");
    first + last
}
