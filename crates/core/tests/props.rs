//! Property-based tests of the core algebra: linear snapshot expressions,
//! the per-event propagation map, bitsets, and the benefit model.
//!
//! The correctness of shared execution rests on two algebraic facts:
//! evaluation is a *ring homomorphism* from expressions to per-query
//! values (`eval(a + b) = eval(a) + eval(b)`), and the per-event
//! propagation map commutes with evaluation. Both are asserted here on
//! randomized inputs.

use hamlet_core::agg::NodeVal;
use hamlet_core::bitset::QSet;
use hamlet_core::expr::LinearExpr;
use hamlet_core::optimizer::{benefit, nonshared_cost, shared_cost, CostFactors};
use hamlet_core::snapshot::SnapTable;
use hamlet_types::TrendVal;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn nodeval() -> impl Strategy<Value = NodeVal> {
    (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(c, s, n)| NodeVal {
        count: TrendVal(c),
        sum: TrendVal(s),
        cnt: TrendVal(n),
    })
}

/// A random expression over snapshots 0..4 built from sums and propagation
/// steps, plus a 2-member snapshot table.
fn expr() -> impl Strategy<Value = LinearExpr> {
    let leaf = prop_oneof![
        (0u32..4).prop_map(LinearExpr::snapshot),
        nodeval().prop_map(LinearExpr::constant),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.plus(&b)),
            (inner, any::<u64>(), any::<bool>()).prop_map(|(e, w, t)| e.propagate(TrendVal(w), t)),
        ]
    })
}

fn table() -> impl Strategy<Value = SnapTable> {
    proptest::collection::vec((nodeval(), nodeval()), 4).prop_map(|rows| {
        let mut t = SnapTable::new(2);
        for (a, b) in rows {
            t.create(vec![a, b]);
        }
        t
    })
}

proptest! {
    /// eval is additive: eval(a + b) = eval(a) + eval(b).
    #[test]
    fn eval_is_additive(a in expr(), b in expr(), t in table()) {
        let sum = a.clone().plus(&b);
        for q in 0..2 {
            let lhs = t.eval(&sum, q);
            let rhs = t.eval(&a, q).plus(t.eval(&b, q));
            prop_assert_eq!(lhs, rhs);
        }
    }

    /// eval commutes with the per-event propagation map: evaluating a
    /// propagated expression equals propagating the evaluated value.
    #[test]
    fn eval_commutes_with_propagate(
        e in expr(),
        w in any::<u64>(),
        is_target in any::<bool>(),
        t in table(),
    ) {
        let sym = e.clone().propagate(TrendVal(w), is_target);
        for q in 0..2 {
            let lhs = t.eval(&sym, q);
            let rhs = NodeVal::propagate(t.eval(&e, q), false, TrendVal(w), is_target);
            prop_assert_eq!(lhs, rhs);
        }
    }

    /// Expression addition is commutative and associative under eval.
    #[test]
    fn expr_addition_laws(a in expr(), b in expr(), c in expr(), t in table()) {
        let ab = a.clone().plus(&b);
        let ba = b.clone().plus(&a);
        let ab_c = ab.clone().plus(&c);
        let a_bc = a.clone().plus(&b.clone().plus(&c));
        for q in 0..2 {
            prop_assert_eq!(t.eval(&ab, q), t.eval(&ba, q));
            prop_assert_eq!(t.eval(&ab_c, q), t.eval(&a_bc, q));
        }
    }

    /// Terms stay sorted, unique, and free of all-zero coefficients.
    #[test]
    fn expr_normal_form(a in expr(), b in expr()) {
        let e = a.plus(&b);
        for w in e.terms.windows(2) {
            prop_assert!(w[0].snap < w[1].snap);
        }
        for term in &e.terms {
            prop_assert!(
                !(term.a.is_zero() && term.b_sum.is_zero() && term.b_cnt.is_zero())
            );
        }
    }

    /// QSet agrees with a BTreeSet model under inserts/removes.
    #[test]
    fn qset_models_a_set(ops in proptest::collection::vec((0usize..150, any::<bool>()), 0..60)) {
        let mut qs = QSet::new();
        let mut model = BTreeSet::new();
        for (i, insert) in ops {
            if insert {
                qs.insert(i);
                model.insert(i);
            } else {
                qs.remove(i);
                model.remove(&i);
            }
        }
        prop_assert_eq!(qs.len(), model.len());
        prop_assert_eq!(qs.iter().collect::<Vec<_>>(), model.iter().copied().collect::<Vec<_>>());
        for i in 0..150 {
            prop_assert_eq!(qs.contains(i), model.contains(&i));
        }
    }

    /// QSet union/subset/intersect agree with the set model.
    #[test]
    fn qset_set_algebra(
        xs in proptest::collection::btree_set(0usize..100, 0..20),
        ys in proptest::collection::btree_set(0usize..100, 0..20),
    ) {
        let a: QSet = xs.iter().copied().collect();
        let b: QSet = ys.iter().copied().collect();
        let mut u = a.clone();
        u.union_with(&b);
        let model_union: BTreeSet<usize> = xs.union(&ys).copied().collect();
        prop_assert_eq!(u.iter().collect::<Vec<_>>(), model_union.iter().copied().collect::<Vec<_>>());
        prop_assert_eq!(a.is_subset(&u), true);
        prop_assert_eq!(b.is_subset(&u), true);
        prop_assert_eq!(a.intersects(&b), xs.intersection(&ys).next().is_some());
    }

    /// Benefit = NonShared − Shared identically (Def. 12), and the benefit
    /// is monotone in k for snapshot-free sharing.
    #[test]
    fn benefit_model_identities(
        b in 1.0f64..1e4,
        n in 0.0f64..1e6,
        g in 0.0f64..1e5,
        sp in 0.0f64..64.0,
        p in 1.0f64..8.0,
        k in 2.0f64..100.0,
        sc in 0.0f64..1e3,
    ) {
        let f = CostFactors { b, n, g, sp, p };
        let lhs = benefit(k, sc, &f);
        let rhs = nonshared_cost(k, &f) - shared_cost(k, sc, &f);
        prop_assert!((lhs - rhs).abs() <= 1e-6 * lhs.abs().max(1.0));
        // Marginal benefit of one more query (Def. 12 algebra): one more
        // query saves one non-shared pass `b·(log₂g + n)` and costs one
        // more share of snapshot upkeep `sc·g·p`. Benefit is monotone in k
        // exactly when the saved pass outweighs the upkeep — not
        // unconditionally (tiny bursts over a huge graphlet reverse it).
        let marginal = benefit(k + 1.0, sc, &f) - benefit(k, sc, &f);
        let expected = b * (g.max(1.0).log2() + n) - sc * g * p;
        // `marginal` is a difference of values up to ~1e12, so the
        // tolerance must scale with the cost magnitude, not with
        // `expected` (which legitimately passes through 0).
        let tol = 1e-9 * nonshared_cost(k + 1.0, &f).abs().max(shared_cost(k + 1.0, sc, &f).abs()).max(1.0);
        prop_assert!(
            (marginal - expected).abs() <= tol,
            "marginal {} expected {}", marginal, expected
        );
        if expected >= tol {
            prop_assert!(benefit(k + 1.0, sc, &f) + tol >= benefit(k, sc, &f));
        }
    }
}
