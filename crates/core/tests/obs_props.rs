//! Determinism of the per-share-group observability registry.
//!
//! The registry's contract is that its counters describe the *logical
//! stream*, not the execution strategy: the same workload over the
//! same events must report identical per-group numbers whether the run
//! is repeated, sharded across 1 or 4 workers, or snapshotted in a
//! different shard order. Fixed cases pin the cheap invariants;
//! a proptest sweeps randomized stream shapes (type mix, burst
//! lengths, key skew, time gaps) through the whole-vs-sharded
//! comparison.

use hamlet_core::executor::{EngineConfig, HamletEngine};
use hamlet_core::parallel::ParallelEngine;
use hamlet_query::{parse_query, Query};
use hamlet_types::{Event, EventBuilder, TypeRegistry};
use proptest::prelude::*;
use std::sync::Arc;

/// A three-type registry and a workload whose queries overlap enough
/// to form shared groups (two same-pattern queries on different
/// windows, one distinct pattern).
fn setup() -> (Arc<TypeRegistry>, Vec<Query>) {
    let mut reg = TypeRegistry::new();
    reg.register("A", &["g"]);
    reg.register("B", &["g"]);
    reg.register("C", &["g"]);
    let reg = Arc::new(reg);
    let q = |id, text: &str| parse_query(&reg, id, text).expect("query parses");
    let queries = vec![
        q(0, "RETURN COUNT(*) PATTERN SEQ(A, B+) GROUP BY g WITHIN 40"),
        q(1, "RETURN COUNT(*) PATTERN SEQ(A, B+) GROUP BY g WITHIN 60"),
        q(2, "RETURN COUNT(*) PATTERN SEQ(C, B+) GROUP BY g WITHIN 50"),
    ];
    (reg, queries)
}

/// Materializes a stream shape — `(type index, key, time gap)` triples
/// — into events with monotonically non-decreasing times.
fn materialize(reg: &Arc<TypeRegistry>, shape: &[(usize, i64, u64)]) -> Vec<Event> {
    let types = [
        reg.type_id("A").expect("registered"),
        reg.type_id("B").expect("registered"),
        reg.type_id("C").expect("registered"),
    ];
    let mut t = 0u64;
    shape
        .iter()
        .map(|&(ty, key, gap)| {
            t += gap;
            EventBuilder::new(reg, types[ty % 3], t)
                .attr("g", key)
                .build()
        })
        .collect()
}

/// A burst-ish stream shape: mostly B-runs broken up by A/C arrivals,
/// a handful of keys, small time gaps with occasional jumps.
fn shape() -> impl Strategy<Value = Vec<(usize, i64, u64)>> {
    proptest::collection::vec(
        (
            // Biased toward B (the Kleene-plus body) so multi-event
            // bursts actually form: 0..6 folded as 0→A, 5→C, rest→B.
            (0usize..6).prop_map(|r| match r {
                0 => 0,
                5 => 2,
                _ => 1,
            }),
            0i64..4,
            // Mostly dense arrivals with occasional window-sized jumps.
            (0u64..15).prop_map(|g| if g < 12 { g % 3 } else { 5 + 4 * g }),
        ),
        0..250,
    )
}

#[test]
fn group_metrics_identical_across_repeated_runs() {
    let (reg, queries) = setup();
    let shape: Vec<(usize, i64, u64)> = (0..400)
        .map(|i| {
            (
                if i % 7 == 0 { 0 } else { 1 },
                (i % 3) as i64,
                (i % 2) as u64,
            )
        })
        .collect();
    let events = materialize(&reg, &shape);
    let run = || {
        let mut eng = HamletEngine::new(reg.clone(), queries.clone(), EngineConfig::default())
            .expect("engine builds");
        eng.process_batch(&events);
        eng.flush();
        eng.group_metrics().to_vec()
    };
    let first = run();
    assert!(!first.is_empty(), "workload forms share groups");
    assert!(
        first.iter().any(|m| m.events_routed > 0),
        "stream reached the groups"
    );
    assert_eq!(first, run(), "repeated runs must report identical counters");
}

#[test]
fn group_metrics_identical_one_vs_four_workers() {
    let (reg, queries) = setup();
    let shape: Vec<(usize, i64, u64)> = (0..600)
        .map(|i| {
            (
                if i % 11 == 0 { 2 } else { 1 },
                (i % 4) as i64,
                u64::from(i % 3 == 0),
            )
        })
        .collect();
    let events = materialize(&reg, &shape);
    let merged = |workers: u32| {
        let eng = ParallelEngine::new(
            reg.clone(),
            queries.clone(),
            EngineConfig::default(),
            workers,
        )
        .expect("parallel engine builds");
        eng.run(&events).merged_group_metrics()
    };
    let one = merged(1);
    let four = merged(4);
    assert!(one.iter().any(|m| m.events_routed > 0));
    assert_eq!(one, four, "group counters must be worker-count invariant");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whole-engine and 3-way-sharded runs of a random stream shape
    /// agree group-for-group, and the sharded merge preserves totals.
    #[test]
    fn registry_merge_is_shard_invariant(shape in shape()) {
        let (reg, queries) = setup();
        let events = materialize(&reg, &shape);

        let mut whole =
            HamletEngine::new(reg.clone(), queries.clone(), EngineConfig::default())
                .expect("engine builds");
        whole.process_batch(&events);
        whole.flush();
        let solo = whole.group_metrics().to_vec();

        let sharded = ParallelEngine::new(reg, queries, EngineConfig::default(), 3)
            .expect("parallel engine builds")
            .run(&events)
            .merged_group_metrics();

        // The single engine's snapshot is already canonical modulo
        // ordering: compare signature-by-signature.
        prop_assert_eq!(solo.len(), sharded.len());
        let mut solo_sorted = solo;
        solo_sorted.sort_by(|a, b| a.sig.cmp(&b.sig));
        for (s, m) in solo_sorted.iter().zip(&sharded) {
            prop_assert_eq!(&s.sig, &m.sig);
            prop_assert_eq!(s.shared, m.shared);
            prop_assert_eq!(s.events_routed, m.events_routed);
            prop_assert_eq!(s.runs_created, m.runs_created);
            prop_assert_eq!(s.runs_expired, m.runs_expired);
            prop_assert_eq!(s.shared_bursts, m.shared_bursts);
            prop_assert_eq!(s.solo_bursts, m.solo_bursts);
            prop_assert_eq!(s.graphlet_snapshots, m.graphlet_snapshots);
            prop_assert_eq!(s.event_snapshots, m.event_snapshots);
            prop_assert_eq!(s.results_emitted, m.results_emitted);
        }
    }
}
