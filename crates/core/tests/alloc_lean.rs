//! Allocation-count regression test for the batched hot path.
//!
//! The PR-6 batching work removed the per-event `Event`/`GroupKey`/`Arc`
//! clone churn from the engine core: burst storage is drawn from a
//! recycling arena and every per-batch buffer is reused. This test pins
//! that property with a counting global allocator so the churn cannot
//! silently return: a warmed engine must process a 1024-event batch with
//! fewer than one allocation per 8 events, while the preserved
//! per-event reference path (which clones every event into its burst)
//! allocates at least once per event.
//!
//! Lives in its own integration binary on purpose: a process-global
//! allocation counter would be polluted by concurrently running tests in
//! a shared binary. Debug-only — release codegen is free to fold
//! allocations differently, and tier-1 CI runs the debug profile.

// The counting global allocator IS the point of this test; wrapping the
// system allocator requires implementing the unsafe GlobalAlloc trait.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

#[cfg(debug_assertions)]
#[test]
fn batched_hot_path_is_allocation_lean() {
    use hamlet_core::executor::{EngineConfig, HamletEngine};
    use hamlet_query::{Pattern, Query, Window};
    use hamlet_types::{EventBuilder, TypeRegistry};
    use std::sync::Arc;

    let mut reg = TypeRegistry::new();
    let a = reg.register("A", &["g", "v"]);
    let b = reg.register("B", &["g", "v"]);
    let reg = Arc::new(reg);
    let mk = || {
        let pat = Pattern::seq(vec![Pattern::Type(a), Pattern::plus(Pattern::Type(b))]);
        // One huge tumbling window: a single run, no expiry — the
        // measured loop is pure burst-append work.
        let q = Query::count_star(1, pat, Window::new(1_000_000, 1_000_000));
        HamletEngine::new(
            reg.clone(),
            vec![q],
            EngineConfig {
                mem_sample_every: 0,
                track_latency: false,
                ..EngineConfig::default()
            },
        )
        .unwrap()
    };
    let n: u64 = 1024;
    let ev = |ty, t: u64| {
        EventBuilder::new(&reg, ty, t)
            .attr("g", 0i64)
            .attr("v", 0.0)
            .build()
    };
    // Warm-up: a full B burst, flushed into the arena by the type switch
    // to A — afterwards the pool holds `n` recycled attribute buffers and
    // every scratch vector has its steady-state capacity.
    let warm: Vec<_> = (0..n).map(|t| ev(b, t)).collect();
    let measured: Vec<_> = (0..n).map(|t| ev(b, n + 1 + t)).collect();

    let mut eng = mk();
    eng.process_batch(&warm);
    eng.process_batch(std::slice::from_ref(&ev(a, n)));
    let before = ALLOCS.load(Ordering::Relaxed);
    eng.process_batch(&measured);
    let batched = ALLOCS.load(Ordering::Relaxed) - before;

    // The preserved per-event reference path on the identical stream:
    // one clone of every event into its burst, at minimum.
    let mut reference = mk();
    for e in &warm {
        reference.process_reference(e);
    }
    reference.process_reference(&ev(a, n));
    let before = ALLOCS.load(Ordering::Relaxed);
    for e in &measured {
        reference.process_reference(e);
    }
    let per_event = ALLOCS.load(Ordering::Relaxed) - before;

    assert!(
        batched < n / 8,
        "batched path allocated {batched} times for {n} events (budget {})",
        n / 8
    );
    assert!(
        per_event >= n,
        "reference path allocated only {per_event} times for {n} events — \
         the comparison baseline changed, revisit this test"
    );
    // Both paths agree on what they computed, allocation strategy aside.
    assert_eq!(eng.flush(), reference.flush());
}
