//! The snapshot table `S` (Algorithm 1).
//!
//! A snapshot is a variable whose value is an intermediate trend aggregate
//! *per query* (Def. 8 / Def. 9). Values are fixed at creation time and
//! never change, so linear expressions over snapshots can be evaluated
//! lazily at any later point (end-of-type accumulation, graphlet close,
//! split) and still agree.

use crate::agg::NodeVal;
use crate::expr::{LinearExpr, SnapId};

/// Run-local table mapping `(snapshot, member query)` to a value
/// (paper: "hash table of snapshots S"). Member queries are indexed densely
/// within the run's share group.
#[derive(Clone, Debug, Default)]
pub struct SnapTable {
    k: usize,
    vals: Vec<NodeVal>, // row-major: [snap * k + q]
}

impl SnapTable {
    /// Creates a table for `k` member queries.
    pub fn new(k: usize) -> Self {
        SnapTable {
            k,
            vals: Vec::new(),
        }
    }

    /// Number of snapshots created so far (`s` in Table 2).
    pub fn len(&self) -> usize {
        self.vals.len().checked_div(self.k).unwrap_or(0)
    }

    /// True iff no snapshot has been created.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Creates a snapshot from its per-query values (`values.len() == k`).
    pub fn create(&mut self, values: Vec<NodeVal>) -> SnapId {
        assert_eq!(values.len(), self.k, "snapshot arity mismatch");
        let id = self.len() as SnapId;
        self.vals.extend(values);
        id
    }

    /// Value of snapshot `x` for member query `q`.
    #[inline]
    pub fn value(&self, x: SnapId, q: usize) -> NodeVal {
        self.vals[x as usize * self.k + q]
    }

    /// Evaluates a linear expression for member query `q`.
    #[inline]
    pub fn eval(&self, e: &LinearExpr, q: usize) -> NodeVal {
        e.eval(|x| self.value(x, q))
    }

    /// Approximate footprint in bytes (memory metric, §6.1).
    pub fn mem_bytes(&self) -> usize {
        std::mem::size_of::<SnapTable>() + self.vals.len() * std::mem::size_of::<NodeVal>()
    }

    /// Serializes the table (checkpoint codec): arity then the row-major
    /// value array. Snapshot values are immutable, so this is the entire
    /// state.
    pub(crate) fn encode(&self, e: &mut crate::checkpoint::Enc) {
        e.usize(self.k);
        e.usize(self.vals.len());
        for v in &self.vals {
            v.encode(e);
        }
    }

    /// Mirror of [`encode`](Self::encode). `expect_k` is the run's
    /// member count: a blob carrying a different arity is corrupt and
    /// must fail here, not index out of bounds at the first
    /// [`value`](Self::value) lookup.
    pub(crate) fn decode(
        d: &mut crate::checkpoint::Dec<'_>,
        expect_k: usize,
    ) -> Result<SnapTable, crate::checkpoint::CheckpointError> {
        let k = d.usize()?;
        if k != expect_k {
            return Err(crate::checkpoint::CheckpointError::Corrupt(format!(
                "snapshot table arity {k}, run has {expect_k} members"
            )));
        }
        let n = d.seq_len()?;
        if k > 0 && n % k != 0 {
            return Err(crate::checkpoint::CheckpointError::Corrupt(format!(
                "snapshot table of {n} values is not a multiple of arity {k}"
            )));
        }
        let mut vals = Vec::with_capacity(n);
        for _ in 0..n {
            vals.push(NodeVal::decode(d)?);
        }
        Ok(SnapTable { k, vals })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamlet_types::TrendVal as T;

    fn cv(c: u64) -> NodeVal {
        NodeVal {
            count: T(c),
            sum: T::ZERO,
            cnt: T::ZERO,
        }
    }

    #[test]
    fn create_and_lookup() {
        let mut s = SnapTable::new(2);
        assert!(s.is_empty());
        let x = s.create(vec![cv(2), cv(1)]);
        let y = s.create(vec![cv(34), cv(19)]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.value(x, 0), cv(2));
        assert_eq!(s.value(x, 1), cv(1));
        assert_eq!(s.value(y, 0), cv(34));
        assert!(s.mem_bytes() > 0);
    }

    #[test]
    fn eval_resolves_per_query() {
        // Paper Table 4: snapshot x has value 2 for q1, 1 for q2; the shared
        // expression 8x then resolves to 16 / 8.
        let mut s = SnapTable::new(2);
        let x = s.create(vec![cv(2), cv(1)]);
        let mut e = LinearExpr::snapshot(x);
        for _ in 0..3 {
            let d = e.clone();
            e.add_assign(&d); // double
        }
        assert_eq!(s.eval(&e, 0).count, T(16));
        assert_eq!(s.eval(&e, 1).count, T(8));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn wrong_arity_panics() {
        let mut s = SnapTable::new(3);
        s.create(vec![cv(1)]);
    }
}
