//! Small bitset over run-local query indices.
//!
//! A shared graphlet is owned by a subset of the queries in a share group
//! (§4.3 chooses that subset per burst). Workloads reach hundreds of
//! queries (§3.3), so the set is a growable word-array bitset.

use std::fmt;

/// Set of run-local query indices.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct QSet {
    words: Vec<u64>,
}

impl QSet {
    /// Empty set.
    pub fn new() -> Self {
        QSet::default()
    }

    /// Set containing `0..k`.
    pub fn all(k: usize) -> Self {
        let mut s = QSet::new();
        for i in 0..k {
            s.insert(i);
        }
        s
    }

    /// Inserts index `i`; returns true if newly inserted.
    pub fn insert(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes index `i`.
    pub fn remove(&mut self, i: usize) {
        let (w, b) = (i / 64, i % 64);
        if w < self.words.len() {
            self.words[w] &= !(1 << b);
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        self.words.get(w).is_some_and(|x| x & (1 << b) != 0)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates member indices in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// True iff `self ⊆ other`.
    pub fn is_subset(&self, other: &QSet) -> bool {
        self.words.iter().enumerate().all(|(i, &w)| {
            let o = other.words.get(i).copied().unwrap_or(0);
            w & !o == 0
        })
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &QSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (i, &w) in other.words.iter().enumerate() {
            self.words[i] |= w;
        }
    }

    /// True iff the sets intersect.
    pub fn intersects(&self, other: &QSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(a, b)| a & b != 0)
    }

    /// Serializes the word array verbatim (checkpoint codec). Words are
    /// not trimmed: `QSet` equality compares the raw vectors, so a
    /// restored set must reproduce them bit-for-bit.
    pub(crate) fn encode(&self, e: &mut crate::checkpoint::Enc) {
        e.usize(self.words.len());
        for &w in &self.words {
            e.u64(w);
        }
    }

    /// Mirror of [`encode`](Self::encode).
    pub(crate) fn decode(
        d: &mut crate::checkpoint::Dec<'_>,
    ) -> Result<QSet, crate::checkpoint::CheckpointError> {
        let n = d.seq_len()?;
        let mut words = Vec::with_capacity(n);
        for _ in 0..n {
            words.push(d.u64()?);
        }
        Ok(QSet { words })
    }
}

impl fmt::Debug for QSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for QSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = QSet::new();
        for i in iter {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = QSet::new();
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.insert(100));
        assert!(s.contains(3) && s.contains(100) && !s.contains(4));
        assert_eq!(s.len(), 2);
        s.remove(3);
        assert!(!s.contains(3));
        assert_eq!(s.len(), 1);
        s.remove(999); // no-op
    }

    #[test]
    fn all_and_iter() {
        let s = QSet::all(5);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        assert!(!s.is_empty());
        assert!(QSet::new().is_empty());
    }

    #[test]
    fn subset_union_intersect() {
        let a: QSet = [1, 2].into_iter().collect();
        let b: QSet = [1, 2, 70].into_iter().collect();
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.intersects(&b));
        let c: QSet = [65].into_iter().collect();
        assert!(!a.intersects(&c));
        let mut u = a.clone();
        u.union_with(&c);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 65]);
    }
}
