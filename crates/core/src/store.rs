//! The unified snapshot API: one [`Snapshot`] trait for every layer
//! that can checkpoint itself, a typed [`Checkpoint`] handle that peeks
//! chain metadata (kind, epoch, version, fingerprint, chain position)
//! without a full decode, and a [`CheckpointStore`] abstraction
//! ([`MemStore`], [`DirStore`]) managing base+delta chains and
//! compaction GC.
//!
//! A *chain* is one base record (a full snapshot) followed by zero or
//! more contiguous delta records, each carrying only the state touched
//! since its parent. Restoring a chain is byte-identical to restoring a
//! single full checkpoint taken at the same cut — and to never having
//! stopped at all (`tests/delta_checkpoint.rs`). Byte layouts live in
//! `docs/checkpoint-format.md`.
//!
//! # Kill, restore, continue — through a store
//!
//! ```
//! use hamlet_core::{CheckpointStore, CutKind, EngineConfig, HamletEngine, MemStore, Snapshot};
//! use hamlet_query::parse_query;
//! use hamlet_types::{EventBuilder, TypeRegistry};
//! use std::sync::Arc;
//!
//! let mut reg = TypeRegistry::new();
//! let a = reg.register("A", &[]);
//! let b = reg.register("B", &[]);
//! let reg = Arc::new(reg);
//! let q = parse_query(&reg, 1, "RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 10").unwrap();
//! let mk = || HamletEngine::new(reg.clone(), vec![q.clone()], EngineConfig::default()).unwrap();
//! let ev = |ty, t| EventBuilder::new(&reg, ty, t).build();
//!
//! // A reference engine that never stops.
//! let mut oracle = mk();
//!
//! // The "production" engine cuts a chain into a store as it runs:
//! // a full base first, then cheap deltas.
//! let store = MemStore::new();
//! let mut eng = mk();
//! for (ty, t) in [(a, 0), (b, 1)] {
//!     eng.process(&ev(ty, t));
//!     oracle.process(&ev(ty, t));
//! }
//! store.append(&eng.cut(CutKind::Full).unwrap()).unwrap();
//! eng.process(&ev(b, 2));
//! oracle.process(&ev(b, 2));
//! let delta = eng.cut(CutKind::Delta).unwrap();
//! assert!(delta.is_delta());
//! store.append(&delta).unwrap();
//! drop(eng); // kill -9
//!
//! // Revive from the store: base + delta replay...
//! let mut revived = mk();
//! revived.restore_chain(&store.load_chain().unwrap()).unwrap();
//! // ...and the stream continues exactly where it left off.
//! assert_eq!(revived.process(&ev(b, 3)), oracle.process(&ev(b, 3)));
//! assert_eq!(revived.flush(), oracle.flush());
//! ```

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::checkpoint::{
    read_delta_frame, CheckpointError, Dec, DELTA_MAGIC, ENGINE_MAGIC, ENGINE_VERSION,
    ENGINE_VERSION_V2, ENGINE_VERSION_V3,
};
use crate::executor::HamletEngine;

/// What kind of chain record to ask a [`Snapshot::cut`] for. `Delta`
/// is a *request*: a layer that cannot prove a sound delta (first cut,
/// post-churn, post-legacy-restore) silently promotes it to a full
/// base — check [`Checkpoint::is_delta`] on the result for the truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CutKind {
    /// Snapshot everything: starts a new chain.
    Full,
    /// Snapshot only what changed since the previous cut.
    Delta,
}

/// What a [`Checkpoint`] actually holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointKind {
    /// A complete snapshot (a bare engine blob, a base chain record, or
    /// a container whose shards hold either).
    Full,
    /// An incremental record, meaningful only on top of its parent.
    Delta,
}

/// A typed handle on one checkpoint record: the raw bytes plus the
/// metadata every store and resume path needs — kind, format version,
/// workload epoch, chain position, fingerprint — peeked from the frame
/// headers without decoding the state payload.
///
/// For the container formats (`HMPC`/`HMPL`), chain metadata is taken
/// from the first shard's record: coordinated cuts stamp every shard
/// with the same kind, seq, and epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    bytes: Vec<u8>,
    kind: CheckpointKind,
    version: u16,
    epoch: u64,
    seq: u64,
    parent: Option<u64>,
    fingerprint: Vec<u8>,
}

/// Chain metadata peeked from a record's frame headers.
type PeekedMeta = (CheckpointKind, u16, u64, u64, Option<u64>, Vec<u8>);

/// Peeks `(kind, version, epoch, seq, parent, fingerprint)` from any
/// known record format, recursing through frames and containers.
fn peek_meta(bytes: &[u8]) -> Result<PeekedMeta, CheckpointError> {
    if bytes.len() < 4 {
        return Err(CheckpointError::BadMagic);
    }
    let magic: [u8; 4] = [bytes[0], bytes[1], bytes[2], bytes[3]];
    if magic == ENGINE_MAGIC {
        // Bare engine blob = a full snapshot at chain seq 0.
        let mut d = Dec::new(bytes);
        d.magic(&ENGINE_MAGIC)?;
        let v = d.u16()?;
        let epoch = match v {
            ENGINE_VERSION | ENGINE_VERSION_V3 => d.u64()?,
            ENGINE_VERSION_V2 => 0,
            other => return Err(CheckpointError::BadVersion(other)),
        };
        let fp = d.bytes()?;
        return Ok((CheckpointKind::Full, v, epoch, 0, None, fp));
    }
    if magic == DELTA_MAGIC {
        let f = read_delta_frame(bytes)?;
        if f.base {
            // The payload is a full engine blob; its fingerprint is the
            // chain's.
            let (_, v, _, _, _, fp) = peek_meta(&f.payload)?;
            return Ok((CheckpointKind::Full, v, f.epoch, f.seq, None, fp));
        }
        // Delta payloads open with the workload fingerprint.
        let mut d = Dec::new(&f.payload);
        let fp = d.bytes()?;
        return Ok((
            CheckpointKind::Delta,
            crate::checkpoint::DELTA_VERSION,
            f.epoch,
            f.seq,
            Some(f.parent),
            fp,
        ));
    }
    // The two container formats share one header shape: magic, version,
    // worker count, per-shard blobs (`HMPL` is defined by the pipeline
    // crate, but its layout is specified alongside ours in
    // docs/checkpoint-format.md, so peeking it here is sound).
    if &magic == b"HMPC" || &magic == b"HMPL" {
        let mut d = Dec::new(bytes);
        d.magic(&magic)?;
        let container_version = d.u16()?;
        let workers = d.u32()?;
        let n = d.seq_len()?;
        if workers == 0 || n == 0 {
            return Err(CheckpointError::Corrupt(
                "container checkpoint with no shards".into(),
            ));
        }
        let first = d.bytes()?;
        let (kind, _, epoch, seq, parent, fp) = peek_meta(&first)?;
        return Ok((kind, container_version, epoch, seq, parent, fp));
    }
    Err(CheckpointError::BadMagic)
}

impl Checkpoint {
    /// Wraps raw record bytes, peeking and validating the frame
    /// metadata (magic, version, chain position) without decoding the
    /// state payload. Accepts every format this workspace writes: bare
    /// engine blobs (`HMEN`), chain records (`HMDL`), and the parallel
    /// and pipeline containers (`HMPC`/`HMPL`).
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Checkpoint, CheckpointError> {
        let (kind, version, epoch, seq, parent, fingerprint) = peek_meta(&bytes)?;
        Ok(Checkpoint {
            bytes,
            kind,
            version,
            epoch,
            seq,
            parent,
            fingerprint,
        })
    }

    /// What this record holds: a full snapshot or an incremental delta.
    pub fn kind(&self) -> CheckpointKind {
        self.kind
    }

    /// True when this record is an incremental delta, meaningful only
    /// on top of the chain ending at [`parent`](Self::parent).
    pub fn is_delta(&self) -> bool {
        self.kind == CheckpointKind::Delta
    }

    /// The outermost frame's format version.
    pub fn version(&self) -> u16 {
        self.version
    }

    /// The workload epoch the record was cut at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Chain sequence number (0 for legacy bare blobs, which predate
    /// chains).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The chain seq this delta applies on top of; `None` for full
    /// records, which start a chain.
    pub fn parent(&self) -> Option<u64> {
        self.parent
    }

    /// The workload fingerprint stamped into the record (for
    /// containers: the first shard's).
    pub fn fingerprint(&self) -> &[u8] {
        &self.fingerprint
    }

    /// The raw record bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Unwraps into the raw record bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Size of the record in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when the record is empty (never, for a valid record).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// The one checkpoint surface every layer implements — the engine
/// ([`HamletEngine`]), the parallel session
/// ([`crate::parallel::ParallelSession`]), and the live pipeline
/// (`hamlet_pipeline::PipelineHandle`). `cut` emits the next record of
/// the layer's chain; `restore_chain` replays an ordered chain (as
/// loaded by [`CheckpointStore::load_chain`]) into a freshly built
/// layer over the same workload.
pub trait Snapshot {
    /// Cuts the next chain record. A `Delta` request is promoted to a
    /// full base whenever a sound delta cannot be proven (first cut,
    /// after runtime churn, after a legacy full restore).
    fn cut(&mut self, kind: CutKind) -> Result<Checkpoint, CheckpointError>;

    /// Restores state from an ordered chain: the last full record in
    /// the slice and its contiguous deltas. Validates linkage, epoch
    /// uniformity, and workload fingerprints before committing any
    /// state.
    fn restore_chain(&mut self, chain: &[Checkpoint]) -> Result<(), CheckpointError>;
}

impl Snapshot for HamletEngine {
    fn cut(&mut self, kind: CutKind) -> Result<Checkpoint, CheckpointError> {
        Checkpoint::from_bytes(self.cut_record(kind))
    }

    fn restore_chain(&mut self, chain: &[Checkpoint]) -> Result<(), CheckpointError> {
        let records: Vec<&[u8]> = chain.iter().map(|c| c.as_bytes()).collect();
        self.restore_chain_bytes(&records)
    }
}

/// Durable home for a checkpoint chain. Implementations keep exactly
/// one live chain: appending a full record starts a new chain and may
/// garbage-collect the old one (compaction).
pub trait CheckpointStore: Send + Sync {
    /// Appends one record, validating chain linkage: a delta must
    /// extend the stored chain's tip (`parent()` == tip `seq()`); a
    /// full record always starts a new chain.
    fn append(&self, ck: &Checkpoint) -> Result<(), CheckpointError>;

    /// Loads the live chain in replay order — the most recent full
    /// record first, then its contiguous deltas. Empty if nothing was
    /// ever appended.
    fn load_chain(&self) -> Result<Vec<Checkpoint>, CheckpointError>;
}

/// An in-memory [`CheckpointStore`], for tests, benches, and processes
/// that only want crash-consistency within their own lifetime.
#[derive(Debug, Default)]
pub struct MemStore {
    chain: Mutex<Vec<Checkpoint>>,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> MemStore {
        MemStore::default()
    }
}

fn lock_err<T>(_: T) -> CheckpointError {
    CheckpointError::Io("checkpoint store mutex poisoned".into())
}

impl CheckpointStore for MemStore {
    fn append(&self, ck: &Checkpoint) -> Result<(), CheckpointError> {
        let mut chain = self.chain.lock().map_err(lock_err)?;
        if ck.is_delta() {
            let Some(tip) = chain.last() else {
                return Err(CheckpointError::Corrupt(
                    "delta record appended to an empty store (no base to extend)".into(),
                ));
            };
            if ck.parent() != Some(tip.seq()) {
                return Err(CheckpointError::Corrupt(format!(
                    "delta seq {} expects parent seq {:?} but the stored tip is seq {}",
                    ck.seq(),
                    ck.parent(),
                    tip.seq()
                )));
            }
            if ck.epoch() != tip.epoch() {
                return Err(CheckpointError::WorkloadMismatch(format!(
                    "delta cut at workload epoch {} appended to a chain at epoch {}",
                    ck.epoch(),
                    tip.epoch()
                )));
            }
        } else {
            // A full record starts a new chain; the old one is
            // compacted away.
            chain.clear();
        }
        chain.push(ck.clone());
        Ok(())
    }

    fn load_chain(&self) -> Result<Vec<Checkpoint>, CheckpointError> {
        Ok(self.chain.lock().map_err(lock_err)?.clone())
    }
}

/// A directory-backed [`CheckpointStore`]: one file per record, named
/// `ck-<seq padded to 20>-<base|delta>.hmck`, written via a temp file +
/// `sync_all` + atomic rename so a crash mid-append never leaves a
/// torn record in the chain. Appending a base garbage-collects every
/// earlier record (compaction); `load_chain` reads from the newest
/// base and ignores stray temp files and foreign names.
#[derive(Debug)]
pub struct DirStore {
    dir: PathBuf,
}

/// `(seq, is_base)` parsed from a `DirStore` record file name, or
/// `None` for foreign/temp files.
fn parse_record_name(name: &str) -> Option<(u64, bool)> {
    let rest = name.strip_prefix("ck-")?;
    let rest = rest.strip_suffix(".hmck")?;
    let (seq, kind) = rest.split_once('-')?;
    if seq.len() != 20 || !seq.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let seq: u64 = seq.parse().ok()?;
    let base = match kind {
        "base" => true,
        "delta" => false,
        _ => return None,
    };
    Some((seq, base))
}

fn io_err(op: &str, path: &Path, e: std::io::Error) -> CheckpointError {
    CheckpointError::Io(format!("{op} {}: {e}", path.display()))
}

impl DirStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<DirStore, CheckpointError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| io_err("create", &dir, e))?;
        Ok(DirStore { dir })
    }

    /// The directory this store writes into.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// Sorted `(seq, is_base)` listing of the record files on disk.
    fn listing(&self) -> Result<Vec<(u64, bool)>, CheckpointError> {
        let mut out = Vec::new();
        let rd = std::fs::read_dir(&self.dir).map_err(|e| io_err("read", &self.dir, e))?;
        for entry in rd {
            let entry = entry.map_err(|e| io_err("read", &self.dir, e))?;
            if let Some(parsed) = entry.file_name().to_str().and_then(parse_record_name) {
                out.push(parsed);
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    fn record_path(&self, seq: u64, base: bool) -> PathBuf {
        let kind = if base { "base" } else { "delta" };
        self.dir.join(format!("ck-{seq:020}-{kind}.hmck"))
    }
}

impl CheckpointStore for DirStore {
    fn append(&self, ck: &Checkpoint) -> Result<(), CheckpointError> {
        let listing = self.listing()?;
        let base = !ck.is_delta();
        if ck.is_delta() {
            let Some(&(tip_seq, _)) = listing.last() else {
                return Err(CheckpointError::Corrupt(
                    "delta record appended to an empty store (no base to extend)".into(),
                ));
            };
            if ck.parent() != Some(tip_seq) {
                return Err(CheckpointError::Corrupt(format!(
                    "delta seq {} expects parent seq {:?} but the stored tip is seq {tip_seq}",
                    ck.seq(),
                    ck.parent(),
                )));
            }
        }
        let final_path = self.record_path(ck.seq(), base);
        let tmp_path = self.dir.join(format!(".tmp-ck-{:020}", ck.seq()));
        {
            let mut f =
                std::fs::File::create(&tmp_path).map_err(|e| io_err("create", &tmp_path, e))?;
            f.write_all(ck.as_bytes())
                .map_err(|e| io_err("write", &tmp_path, e))?;
            f.sync_all().map_err(|e| io_err("sync", &tmp_path, e))?;
        }
        std::fs::rename(&tmp_path, &final_path).map_err(|e| io_err("rename", &tmp_path, e))?;
        if base {
            // Compaction GC: the new base obsoletes everything before
            // it. Best-effort — a leftover file is skipped by
            // load_chain's last-base rule anyway.
            for (seq, old_base) in listing {
                if seq < ck.seq() {
                    let _ = std::fs::remove_file(self.record_path(seq, old_base));
                }
            }
        }
        Ok(())
    }

    fn load_chain(&self) -> Result<Vec<Checkpoint>, CheckpointError> {
        let listing = self.listing()?;
        let Some(base_idx) = listing.iter().rposition(|&(_, base)| base) else {
            if listing.is_empty() {
                return Ok(Vec::new());
            }
            return Err(CheckpointError::Corrupt(
                "checkpoint directory holds deltas but no base record".into(),
            ));
        };
        let mut chain = Vec::with_capacity(listing.len() - base_idx);
        for &(seq, base) in &listing[base_idx..] {
            let path = self.record_path(seq, base);
            let bytes = std::fs::read(&path).map_err(|e| io_err("read", &path, e))?;
            let ck = Checkpoint::from_bytes(bytes)?;
            if ck.seq() != seq || ck.is_delta() == base {
                return Err(CheckpointError::Corrupt(format!(
                    "record file {} disagrees with its frame header (seq {}, delta {})",
                    path.display(),
                    ck.seq(),
                    ck.is_delta()
                )));
            }
            if let Some(prev) = chain.last() {
                let prev: &Checkpoint = prev;
                if ck.parent() != Some(prev.seq()) {
                    return Err(CheckpointError::Corrupt(format!(
                        "broken chain on disk: seq {} expects parent {:?} after seq {}",
                        ck.seq(),
                        ck.parent(),
                        prev.seq()
                    )));
                }
            }
            chain.push(ck);
        }
        Ok(chain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::EngineConfig;
    use hamlet_query::parse_query;
    use hamlet_types::{Event, TypeRegistry};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn setup() -> (Arc<TypeRegistry>, Vec<hamlet_query::Query>) {
        let mut reg = TypeRegistry::new();
        reg.register("A", &["g"]);
        reg.register("B", &["g"]);
        let reg = Arc::new(reg);
        let q1 = parse_query(
            &reg,
            1,
            "RETURN COUNT(*) PATTERN SEQ(A, B+) GROUP BY g WITHIN 20 SLIDE 10",
        )
        .expect("parse");
        let q2 = parse_query(
            &reg,
            2,
            "RETURN COUNT(*) PATTERN SEQ(B, A+) GROUP BY g WITHIN 20 SLIDE 10",
        )
        .expect("parse");
        (reg, vec![q1, q2])
    }

    fn events(_reg: &TypeRegistry, n: u64) -> Vec<Event> {
        (0..n)
            .map(|i| {
                let ty = hamlet_types::EventTypeId((i % 2) as u16);
                Event::new(
                    hamlet_types::Ts(i),
                    ty,
                    vec![hamlet_types::AttrValue::Int((i % 3) as i64)],
                )
            })
            .collect()
    }

    fn engine(reg: &Arc<TypeRegistry>, qs: &[hamlet_query::Query]) -> HamletEngine {
        HamletEngine::new(reg.clone(), qs.to_vec(), EngineConfig::default()).expect("build")
    }

    #[test]
    fn chain_restore_matches_full_and_uninterrupted() {
        let (reg, qs) = setup();
        let evs = events(&reg, 60);
        let mut oracle = engine(&reg, &qs);
        let mut cutter = engine(&reg, &qs);
        let store = MemStore::new();
        let mut oracle_out = Vec::new();
        let mut cutter_out = Vec::new();
        for (i, e) in evs.iter().enumerate() {
            oracle_out.extend(oracle.process(e));
            cutter_out.extend(cutter.process(e));
            if (i + 1) % 10 == 0 {
                let ck = cutter.cut(CutKind::Delta).expect("cut");
                assert_eq!(ck.is_delta(), i + 1 > 10, "first cut promotes to base");
                store.append(&ck).expect("append");
            }
        }
        let mut revived = engine(&reg, &qs);
        revived
            .restore_chain(&store.load_chain().expect("load"))
            .expect("restore");
        // Chain restore is byte-identical to the cutter at the cut:
        // both describe the same state, so their full checkpoints agree.
        assert_eq!(revived.checkpoint(), cutter.checkpoint());
        // ...and to a plain full restore of that state.
        let mut full = engine(&reg, &qs);
        full.restore(&cutter.checkpoint()).expect("full restore");
        assert_eq!(full.checkpoint(), revived.checkpoint());
        // The uninterrupted engine and the cutter agree on all output.
        assert_eq!(oracle_out, cutter_out);
        assert_eq!(oracle.flush(), revived.flush());
    }

    #[test]
    fn delta_records_stay_small() {
        let (reg, qs) = setup();
        let evs = events(&reg, 400);
        let mut eng = engine(&reg, &qs);
        let mut full_len = 0usize;
        let mut delta_len = usize::MAX;
        for (i, e) in evs.iter().enumerate() {
            eng.process(e);
            if (i + 1) % 100 == 0 {
                let ck = eng.cut(CutKind::Delta).expect("cut");
                if ck.is_delta() {
                    delta_len = delta_len.min(ck.len());
                } else {
                    full_len = ck.len();
                }
            }
        }
        assert!(delta_len < usize::MAX, "no delta was ever cut");
        assert!(full_len > 0, "no base was ever cut");
    }

    #[test]
    fn cross_epoch_delta_rejected() {
        let (reg, qs) = setup();
        let evs = events(&reg, 30);
        let mut eng = engine(&reg, &qs);
        for e in &evs {
            eng.process(e);
        }
        let base = eng.cut(CutKind::Full).expect("base");
        for e in &evs {
            eng.process(e);
        }
        let delta = eng.cut(CutKind::Delta).expect("delta");
        assert!(delta.is_delta());
        // Hand-build a chain whose delta claims a different epoch.
        let f = read_delta_frame(delta.as_bytes()).expect("frame");
        let forged = crate::checkpoint::write_delta_frame(false, f.seq, f.parent, 7, &f.payload);
        let forged = Checkpoint::from_bytes(forged).expect("peek");
        let mut fresh = engine(&reg, &qs);
        let err = fresh.restore_chain(&[base, forged]);
        assert!(matches!(err, Err(CheckpointError::WorkloadMismatch(_))));
    }

    #[test]
    fn truncated_chain_rejected() {
        let (reg, qs) = setup();
        let evs = events(&reg, 90);
        let mut eng = engine(&reg, &qs);
        let mut records = Vec::new();
        for (i, e) in evs.iter().enumerate() {
            eng.process(e);
            if (i + 1) % 15 == 0 {
                records.push(eng.cut(CutKind::Delta).expect("cut"));
            }
        }
        assert!(records.len() >= 4);
        // Drop a middle delta: linkage must break loudly.
        let truncated: Vec<Checkpoint> =
            vec![records[0].clone(), records[1].clone(), records[3].clone()];
        let mut fresh = engine(&reg, &qs);
        let err = fresh.restore_chain(&truncated);
        assert!(matches!(err, Err(CheckpointError::Corrupt(_))));
        // A chain with no base at all is also rejected.
        let mut fresh = engine(&reg, &qs);
        let err = fresh.restore_chain(&records[1..]);
        assert!(matches!(err, Err(CheckpointError::Corrupt(_))));
    }

    #[test]
    fn mem_store_validates_appends() {
        let (reg, qs) = setup();
        let mut eng = engine(&reg, &qs);
        for e in events(&reg, 20) {
            eng.process(&e);
        }
        let store = MemStore::new();
        let base = eng.cut(CutKind::Full).expect("base");
        for e in events(&reg, 20) {
            eng.process(&e);
        }
        let delta = eng.cut(CutKind::Delta).expect("delta");
        // Delta into an empty store: no base to extend.
        assert!(matches!(
            store.append(&delta),
            Err(CheckpointError::Corrupt(_))
        ));
        store.append(&base).expect("append base");
        store.append(&delta).expect("append delta");
        // Appending the same delta twice breaks linkage.
        assert!(matches!(
            store.append(&delta),
            Err(CheckpointError::Corrupt(_))
        ));
        assert_eq!(store.load_chain().expect("load").len(), 2);
        // A new full cut compacts the chain back to one record.
        let full = eng.cut(CutKind::Full).expect("full");
        store.append(&full).expect("append full");
        let chain = store.load_chain().expect("load");
        assert_eq!(chain.len(), 1);
        assert!(!chain[0].is_delta());
    }

    /// A unique-per-test temp dir without wall-clock naming (the
    /// workspace lint forbids `SystemTime` outside metrics/bench).
    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "hamlet-store-{}-{}-{n}-{tag}",
            std::process::id(),
            std::thread::current()
                .name()
                .unwrap_or("t")
                .replace("::", "-"),
        ))
    }

    #[test]
    fn dir_store_round_trips_and_compacts() {
        let (reg, qs) = setup();
        let dir = temp_dir("roundtrip");
        let store = DirStore::open(&dir).expect("open");
        let mut eng = engine(&reg, &qs);
        let evs = events(&reg, 80);
        for (i, e) in evs.iter().enumerate() {
            eng.process(e);
            if (i + 1) % 20 == 0 {
                store
                    .append(&eng.cut(CutKind::Delta).expect("cut"))
                    .expect("append");
            }
        }
        // Re-open fresh (a new process would) and restore.
        let store2 = DirStore::open(&dir).expect("reopen");
        let chain = store2.load_chain().expect("load");
        assert_eq!(chain.len(), 4);
        assert!(!chain[0].is_delta());
        assert!(chain[1..].iter().all(Checkpoint::is_delta));
        let mut revived = engine(&reg, &qs);
        revived.restore_chain(&chain).expect("restore");
        assert_eq!(revived.checkpoint(), eng.checkpoint());
        // A full cut compacts the directory down to one base file.
        store2
            .append(&eng.cut(CutKind::Full).expect("full"))
            .expect("append");
        let chain = store2.load_chain().expect("load");
        assert_eq!(chain.len(), 1);
        assert_eq!(store2.listing().expect("listing").len(), 1);
        // A stray temp file (a crash mid-append) is invisible.
        std::fs::write(dir.join(".tmp-ck-garbage"), b"torn").expect("write");
        assert_eq!(store2.load_chain().expect("load").len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_peeks_without_decode() {
        let (reg, qs) = setup();
        let mut eng = engine(&reg, &qs);
        for e in events(&reg, 25) {
            eng.process(&e);
        }
        // Legacy bare blob: full, seq 0, no parent.
        let bare = Checkpoint::from_bytes(eng.checkpoint()).expect("peek");
        assert_eq!(bare.kind(), CheckpointKind::Full);
        assert_eq!(bare.seq(), 0);
        assert_eq!(bare.parent(), None);
        assert_eq!(bare.epoch(), 0);
        assert_eq!(bare.version(), ENGINE_VERSION);
        // Chain records carry seq/parent.
        let base = eng.cut(CutKind::Full).expect("base");
        assert_eq!(base.seq(), 1);
        assert_eq!(base.parent(), None);
        for e in events(&reg, 5) {
            eng.process(&e);
        }
        let delta = eng.cut(CutKind::Delta).expect("delta");
        assert!(delta.is_delta());
        assert_eq!(delta.seq(), 2);
        assert_eq!(delta.parent(), Some(1));
        assert_eq!(delta.fingerprint(), base.fingerprint());
        // (At this toy scale every partition is dirty, so the delta is
        // not materially smaller; fig_checkpoint gates size at 10⁴ keys.)
        assert!(Checkpoint::from_bytes(b"nope".to_vec()).is_err());
    }
}
