//! Checkpoint/restore: a versioned, hand-rolled binary codec for engine
//! state.
//!
//! The engine's value lives entirely in run-local state — snapshot
//! tables, graphlet runs, per-partition aggregates, the monotone
//! watermark. A crash loses every open window unless that state is
//! durable, so [`HamletEngine::checkpoint`](crate::HamletEngine::checkpoint)
//! serializes it into a self-describing byte blob and
//! [`HamletEngine::restore`](crate::HamletEngine::restore) rebuilds a
//! freshly constructed engine from it.
//!
//! # Guarantees
//!
//! * **Round-trip identity**: `restore(checkpoint())` reproduces the
//!   engine state exactly — continuing the stream after a restore emits
//!   byte-identical results, in identical order, to never having
//!   checkpointed (`tests/checkpoint_equivalence.rs`). Encoding is
//!   deterministic (hash maps are serialized in their canonical total
//!   order), so `checkpoint → restore → checkpoint` is byte-identical
//!   too.
//! * **Versioned**: every blob starts with a magic tag and a format
//!   version; a mismatch is a clean [`CheckpointError`], never a
//!   mis-decode.
//! * **Workload-fingerprinted**: a checkpoint taken under one compiled
//!   workload (share groups, member counts, windows, sharding) refuses
//!   to restore into an engine compiled from a different one.
//!
//! The codec is deliberately dependency-free (the build environment has
//! no crates.io route, so there is no serde): fixed-width little-endian
//! integers, `f64` as IEEE-754 bits, length-prefixed sequences and
//! UTF-8 strings. Wall-clock artifacts (`Instant` arrival stamps) are
//! not serialized — they reset across a restore, which can only affect
//! latency *metrics*, never results.

use hamlet_types::{AttrValue, Event, GroupKey, Ts};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Magic tag opening every engine checkpoint blob.
pub const ENGINE_MAGIC: [u8; 4] = *b"HMEN";
/// Engine checkpoint format version. v2 added the count-only burst tail
/// (`burst_extra`) to each run's pending-burst record; v3 added the
/// workload *epoch* (runtime query churn generation) to the header; v4
/// appended the per-share-group observability counters at the tail.
/// v2/v3 blobs still restore — v2 into engines at epoch 0 (the only
/// epoch v2 could describe), v3 with the per-group counters zeroed
/// (see `docs/checkpoint-format.md`).
pub const ENGINE_VERSION: u16 = 4;

/// The v3 engine format version (epoch header, no per-group
/// observability tail), still accepted by
/// [`crate::HamletEngine::restore`].
pub const ENGINE_VERSION_V3: u16 = 3;

/// The v2 engine format version, still accepted by
/// [`crate::HamletEngine::restore`] for blobs written before the
/// workload epoch existed.
pub const ENGINE_VERSION_V2: u16 = 2;

/// Magic tag opening every delta-chain record (`HMDL`): a *base* (a
/// full engine blob re-framed as the root of a chain) or an
/// incremental *delta* (only the partitions, pending halves, and
/// counters touched since the previous cut). See
/// `docs/checkpoint-format.md` for the layout and the chain rules.
pub const DELTA_MAGIC: [u8; 4] = *b"HMDL";
/// Delta-chain record format version.
pub const DELTA_VERSION: u16 = 1;

/// Kind byte of an `HMDL` frame carrying a full base snapshot.
pub const DELTA_KIND_BASE: u8 = 0;
/// Kind byte of an `HMDL` frame carrying an incremental delta.
pub const DELTA_KIND_DELTA: u8 = 1;

/// Parsed `HMDL` frame: the chain metadata a store or a
/// [`Checkpoint`](crate::Checkpoint) handle needs without decoding the
/// payload, plus the payload itself (a full engine blob for a base, a
/// delta body for a delta).
pub struct DeltaFrame {
    /// True for a base record (kind 0), false for a delta (kind 1).
    pub base: bool,
    /// Chain sequence number of this record (monotone per engine).
    pub seq: u64,
    /// Sequence number of the predecessor record (0 before the first).
    pub parent: u64,
    /// Workload epoch the record was cut at.
    pub epoch: u64,
    /// Record payload, opaque at the frame level.
    pub payload: Vec<u8>,
}

/// Frames one delta-chain record: magic, version, kind, chain position
/// (`seq`/`parent`), epoch, then the length-prefixed payload.
pub fn write_delta_frame(base: bool, seq: u64, parent: u64, epoch: u64, payload: &[u8]) -> Vec<u8> {
    let mut e = Enc::new();
    e.raw(&DELTA_MAGIC);
    e.u16(DELTA_VERSION);
    e.u8(if base {
        DELTA_KIND_BASE
    } else {
        DELTA_KIND_DELTA
    });
    e.u64(seq);
    e.u64(parent);
    e.u64(epoch);
    e.bytes(payload);
    e.finish()
}

/// Mirror of [`write_delta_frame`]: parses and validates the frame,
/// returning the chain metadata and the payload.
pub fn read_delta_frame(bytes: &[u8]) -> Result<DeltaFrame, CheckpointError> {
    let mut d = Dec::new(bytes);
    d.magic(&DELTA_MAGIC)?;
    let v = d.u16()?;
    if v != DELTA_VERSION {
        return Err(CheckpointError::BadVersion(v));
    }
    let base = match d.u8()? {
        DELTA_KIND_BASE => true,
        DELTA_KIND_DELTA => false,
        k => return Err(CheckpointError::Corrupt(format!("delta record kind {k}"))),
    };
    let seq = d.u64()?;
    let parent = d.u64()?;
    let epoch = d.u64()?;
    let payload = d.bytes()?;
    d.expect_end()?;
    Ok(DeltaFrame {
        base,
        seq,
        parent,
        epoch,
        payload,
    })
}

/// Errors surfaced while decoding or validating a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The blob does not start with the expected magic tag.
    BadMagic,
    /// The blob's format version is not one this build understands.
    BadVersion(u16),
    /// The blob ended before the decoder was done.
    UnexpectedEof,
    /// The blob decoded to something structurally invalid.
    Corrupt(String),
    /// The checkpoint's workload fingerprint does not match the engine
    /// it is being restored into.
    WorkloadMismatch(String),
    /// A checkpoint store failed to read or write the underlying
    /// medium (only produced by store implementations, never by the
    /// codec itself).
    Io(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::UnexpectedEof => write!(f, "checkpoint truncated"),
            CheckpointError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
            CheckpointError::WorkloadMismatch(m) => {
                write!(f, "checkpoint does not match this workload: {m}")
            }
            CheckpointError::Io(m) => write!(f, "checkpoint store io error: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Writes the shared checkpoint-*container* header — magic, version,
/// worker count, per-shard blob list — used by both the parallel and
/// pipeline containers. The caller appends any container-specific
/// fields to the returned encoder before `finish()`.
pub fn container_header(magic: &[u8; 4], version: u16, workers: u32, blobs: &[Vec<u8>]) -> Enc {
    let mut e = Enc::new();
    e.raw(magic);
    e.u16(version);
    e.u32(workers);
    e.usize(blobs.len());
    for b in blobs {
        e.bytes(b);
    }
    e
}

/// Mirror of [`container_header`]: checks the magic and version, reads
/// the worker count and per-shard blobs (validating the count matches),
/// and leaves the decoder positioned at the caller's extra fields.
pub fn read_container(
    d: &mut Dec<'_>,
    magic: &[u8; 4],
    version: u16,
) -> Result<(u32, Vec<Vec<u8>>), CheckpointError> {
    d.magic(magic)?;
    let v = d.u16()?;
    if v != version {
        return Err(CheckpointError::BadVersion(v));
    }
    let workers = d.u32()?;
    let n = d.seq_len()?;
    if n != workers as usize {
        return Err(CheckpointError::Corrupt(format!(
            "{n} shard blobs for {workers} workers"
        )));
    }
    let mut blobs = Vec::with_capacity(n);
    for _ in 0..n {
        blobs.push(d.bytes()?);
    }
    Ok((workers, blobs))
}

/// Like [`read_container`] but accepting any of several format
/// versions; returns which one the blob carries so the caller can
/// branch on tail fields added by later versions.
pub fn read_container_any(
    d: &mut Dec<'_>,
    magic: &[u8; 4],
    accepted: &[u16],
) -> Result<(u16, u32, Vec<Vec<u8>>), CheckpointError> {
    d.magic(magic)?;
    let v = d.u16()?;
    if !accepted.contains(&v) {
        return Err(CheckpointError::BadVersion(v));
    }
    let workers = d.u32()?;
    let n = d.seq_len()?;
    if n != workers as usize {
        return Err(CheckpointError::Corrupt(format!(
            "{n} shard blobs for {workers} workers"
        )));
    }
    let mut blobs = Vec::with_capacity(n);
    for _ in 0..n {
        blobs.push(d.bytes()?);
    }
    Ok((v, workers, blobs))
}

/// Binary encoder: appends fixed-width little-endian primitives and
/// length-prefixed composites to a growable buffer.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// New empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// Finishes encoding and hands back the blob.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True iff nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Raw bytes, verbatim.
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// One byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `usize` as a `u64` (the format is 64-bit everywhere).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Two's-complement `i64`.
    pub fn i64(&mut self, v: i64) {
        self.u64(v as u64);
    }

    /// IEEE-754 bits of an `f64` (bit-exact, `NaN`s included).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Boolean as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// `Duration` as whole nanoseconds (saturating at `u64::MAX` ≈ 584
    /// years — far beyond any run this engine measures).
    pub fn duration(&mut self, d: Duration) {
        self.u64(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.raw(s.as_bytes());
    }

    /// Length-prefixed byte blob.
    pub fn bytes(&mut self, b: &[u8]) {
        self.usize(b.len());
        self.raw(b);
    }

    /// `Option` presence tag; the caller encodes the payload when `true`.
    pub fn some(&mut self, present: bool) {
        self.bool(present);
    }

    /// One attribute value (tagged union).
    pub fn attr_value(&mut self, v: &AttrValue) {
        match v {
            AttrValue::Int(i) => {
                self.u8(0);
                self.i64(*i);
            }
            AttrValue::Float(f) => {
                self.u8(1);
                self.f64(*f);
            }
            AttrValue::Str(s) => {
                self.u8(2);
                self.str(s);
            }
        }
    }

    /// A group-by partition key.
    pub fn group_key(&mut self, k: &GroupKey) {
        self.usize(k.0.len());
        for v in &k.0 {
            self.attr_value(v);
        }
    }

    /// One stream event (time, type, attributes).
    pub fn event(&mut self, e: &Event) {
        self.u64(e.time.ticks());
        self.u16(e.ty.0);
        self.usize(e.attrs.len());
        for a in &e.attrs {
            self.attr_value(a);
        }
    }
}

/// Binary decoder over a checkpoint blob; the mirror of [`Enc`].
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Starts decoding a blob.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless every byte was consumed — trailing garbage means the
    /// blob was not produced by this format.
    pub fn expect_end(&self) -> Result<(), CheckpointError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CheckpointError::Corrupt(format!(
                "{} trailing byte(s)",
                self.remaining()
            )))
        }
    }

    /// Consumes and checks a 4-byte magic tag.
    pub fn magic(&mut self, expected: &[u8; 4]) -> Result<(), CheckpointError> {
        if self.take(4).map_err(|_| CheckpointError::BadMagic)? == expected {
            Ok(())
        } else {
            Err(CheckpointError::BadMagic)
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.remaining() < n {
            return Err(CheckpointError::UnexpectedEof);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// One byte.
    pub fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    /// Little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, CheckpointError> {
        let b = self
            .take(2)?
            .try_into()
            .map_err(|_| CheckpointError::UnexpectedEof)?;
        Ok(u16::from_le_bytes(b))
    }

    /// Little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CheckpointError> {
        let b = self
            .take(4)?
            .try_into()
            .map_err(|_| CheckpointError::UnexpectedEof)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CheckpointError> {
        let b = self
            .take(8)?
            .try_into()
            .map_err(|_| CheckpointError::UnexpectedEof)?;
        Ok(u64::from_le_bytes(b))
    }

    /// `usize` (bounded by the blob length to refuse absurd
    /// length prefixes before any allocation).
    pub fn usize(&mut self) -> Result<usize, CheckpointError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| CheckpointError::Corrupt(format!("length {v} overflows")))
    }

    /// A sequence length, sanity-bounded by the bytes that remain (every
    /// element costs at least one byte).
    pub fn seq_len(&mut self) -> Result<usize, CheckpointError> {
        let n = self.usize()?;
        if n > self.remaining() {
            return Err(CheckpointError::Corrupt(format!(
                "sequence of {n} elements in {} remaining bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Two's-complement `i64`.
    pub fn i64(&mut self) -> Result<i64, CheckpointError> {
        Ok(self.u64()? as i64)
    }

    /// `f64` from IEEE-754 bits.
    pub fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Boolean (rejects anything but 0/1).
    pub fn bool(&mut self) -> Result<bool, CheckpointError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CheckpointError::Corrupt(format!("bool byte {b}"))),
        }
    }

    /// `Duration` from whole nanoseconds.
    pub fn duration(&mut self) -> Result<Duration, CheckpointError> {
        Ok(Duration::from_nanos(self.u64()?))
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CheckpointError> {
        let n = self.seq_len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| CheckpointError::Corrupt(format!("invalid utf-8: {e}")))
    }

    /// Length-prefixed byte blob.
    pub fn bytes(&mut self) -> Result<Vec<u8>, CheckpointError> {
        let n = self.seq_len()?;
        Ok(self.take(n)?.to_vec())
    }

    /// `Option` presence tag.
    pub fn some(&mut self) -> Result<bool, CheckpointError> {
        self.bool()
    }

    /// One attribute value.
    pub fn attr_value(&mut self) -> Result<AttrValue, CheckpointError> {
        match self.u8()? {
            0 => Ok(AttrValue::Int(self.i64()?)),
            1 => Ok(AttrValue::Float(self.f64()?)),
            2 => Ok(AttrValue::Str(Arc::from(self.str()?.as_str()))),
            t => Err(CheckpointError::Corrupt(format!("attr tag {t}"))),
        }
    }

    /// A group-by partition key.
    pub fn group_key(&mut self) -> Result<GroupKey, CheckpointError> {
        let n = self.seq_len()?;
        let mut vals = Vec::with_capacity(n);
        for _ in 0..n {
            vals.push(self.attr_value()?);
        }
        Ok(GroupKey(vals))
    }

    /// One stream event.
    pub fn event(&mut self) -> Result<Event, CheckpointError> {
        let time = Ts(self.u64()?);
        let ty = hamlet_types::EventTypeId(self.u16()?);
        let n = self.seq_len()?;
        let mut attrs = Vec::with_capacity(n);
        for _ in 0..n {
            attrs.push(self.attr_value()?);
        }
        Ok(Event { time, ty, attrs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trip() {
        let mut e = Enc::new();
        e.u8(7);
        e.u16(65_000);
        e.u32(123_456);
        e.u64(u64::MAX - 1);
        e.i64(-42);
        e.f64(-2.5);
        e.f64(f64::NAN);
        e.bool(true);
        e.duration(Duration::from_micros(1234));
        e.str("héllo");
        e.bytes(&[1, 2, 3]);
        let blob = e.finish();
        let mut d = Dec::new(&blob);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u16().unwrap(), 65_000);
        assert_eq!(d.u32().unwrap(), 123_456);
        assert_eq!(d.u64().unwrap(), u64::MAX - 1);
        assert_eq!(d.i64().unwrap(), -42);
        assert_eq!(d.f64().unwrap(), -2.5);
        assert!(d.f64().unwrap().is_nan());
        assert!(d.bool().unwrap());
        assert_eq!(d.duration().unwrap(), Duration::from_micros(1234));
        assert_eq!(d.str().unwrap(), "héllo");
        assert_eq!(d.bytes().unwrap(), vec![1, 2, 3]);
        d.expect_end().unwrap();
    }

    #[test]
    fn values_and_events_round_trip() {
        let key = GroupKey(vec![
            AttrValue::Int(-3),
            AttrValue::Float(1.5),
            AttrValue::Str(Arc::from("d1")),
        ]);
        let ev = Event::new(Ts(99), hamlet_types::EventTypeId(4), key.0.clone());
        let mut e = Enc::new();
        e.group_key(&key);
        e.event(&ev);
        let blob = e.finish();
        let mut d = Dec::new(&blob);
        assert_eq!(d.group_key().unwrap(), key);
        assert_eq!(d.event().unwrap(), ev);
        d.expect_end().unwrap();
    }

    #[test]
    fn truncation_is_a_clean_error() {
        let mut e = Enc::new();
        e.u64(5);
        let blob = e.finish();
        let mut d = Dec::new(&blob[..4]);
        assert_eq!(d.u64(), Err(CheckpointError::UnexpectedEof));
    }

    #[test]
    fn absurd_lengths_are_rejected_before_allocation() {
        let mut e = Enc::new();
        e.u64(u64::MAX); // length prefix far beyond the blob
        let blob = e.finish();
        let mut d = Dec::new(&blob);
        assert!(matches!(d.seq_len(), Err(CheckpointError::Corrupt(_))));
        let mut d = Dec::new(&blob);
        assert!(d.str().is_err());
    }

    #[test]
    fn bad_bool_and_tags_are_corrupt() {
        let mut d = Dec::new(&[9]);
        assert!(matches!(d.bool(), Err(CheckpointError::Corrupt(_))));
        let mut d = Dec::new(&[9]);
        assert!(matches!(d.attr_value(), Err(CheckpointError::Corrupt(_))));
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut e = Enc::new();
        e.u8(1);
        e.u8(2);
        let blob = e.finish();
        let mut d = Dec::new(&blob);
        let _ = d.u8().unwrap();
        assert!(matches!(d.expect_end(), Err(CheckpointError::Corrupt(_))));
    }

    #[test]
    fn errors_display() {
        for e in [
            CheckpointError::BadMagic,
            CheckpointError::BadVersion(9),
            CheckpointError::UnexpectedEof,
            CheckpointError::Corrupt("x".into()),
            CheckpointError::WorkloadMismatch("y".into()),
        ] {
            assert!(!format!("{e}").is_empty());
        }
    }
}
