//! Linear snapshot expressions.
//!
//! Within a shared graphlet, the intermediate aggregate of an event is not a
//! number (it differs per query) but a *linear form* over snapshot
//! variables: `c + Σᵢ aᵢ·xᵢ` (§3.3, "hash table of snapshot coefficients";
//! e.g. `count(b6) = 4x + z` in Fig. 5(c)).
//!
//! Because the propagated state also carries `sum`/`cnt` dimensions
//! ([`crate::agg::NodeVal`]), each term tracks three coefficients: `a`
//! multiplies the snapshot's own (count, sum, cnt) vector, while `b_sum` /
//! `b_cnt` capture the count→sum / count→cnt flow introduced by target-type
//! events (the `w·count` term of [`crate::agg::NodeVal::propagate`]).
//!
//! Terms are kept in a sorted small vector: expressions typically hold a
//! handful of snapshots (`s` in the paper's cost model), and merging two
//! sorted vectors is cheaper than hashing at that size.

use crate::agg::NodeVal;
use hamlet_types::TrendVal;

/// Identifier of a snapshot variable within one run.
pub type SnapId = u32;

/// One `coef · snapshot` term.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Term {
    /// Snapshot variable.
    pub snap: SnapId,
    /// Coefficient on the snapshot's full (count, sum, cnt) vector.
    pub a: TrendVal,
    /// Extra count→sum coefficient (from `w · count` contributions).
    pub b_sum: TrendVal,
    /// Extra count→cnt coefficient (from target-type count contributions).
    pub b_cnt: TrendVal,
}

/// True iff every snapshot id in `sub` also appears in `sup` (both sorted).
fn is_id_subset(sub: &[Term], sup: &[Term]) -> bool {
    let mut i = 0;
    'outer: for t in sub {
        while i < sup.len() {
            match sup[i].snap.cmp(&t.snap) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// A linear form `const + Σ term` over snapshot variables.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LinearExpr {
    /// Constant part.
    pub c: NodeVal,
    /// Snapshot terms, sorted by `snap`, no zero-coefficient entries.
    pub terms: Vec<Term>,
}

impl LinearExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        LinearExpr::default()
    }

    /// A constant expression.
    pub fn constant(c: NodeVal) -> Self {
        LinearExpr {
            c,
            terms: Vec::new(),
        }
    }

    /// The expression `1 · x` for snapshot `x`.
    pub fn snapshot(x: SnapId) -> Self {
        LinearExpr {
            c: NodeVal::ZERO,
            terms: vec![Term {
                snap: x,
                a: TrendVal::ONE,
                b_sum: TrendVal::ZERO,
                b_cnt: TrendVal::ZERO,
            }],
        }
    }

    /// Number of snapshot terms (the paper's `s` per expression).
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Adds the term `1 · x` in place — equivalent to
    /// `add_assign(&LinearExpr::snapshot(x))` but without materialising
    /// the one-term expression. The hot uniform-burst path calls this
    /// once per event.
    pub fn add_snapshot(&mut self, x: SnapId) {
        self.add_snapshot_scaled(x, TrendVal::ONE);
    }

    /// Adds the term `coef · x` in place.
    pub fn add_snapshot_scaled(&mut self, x: SnapId, coef: TrendVal) {
        if coef.is_zero() {
            return;
        }
        match self.terms.binary_search_by(|t| t.snap.cmp(&x)) {
            Ok(i) => {
                let t = &mut self.terms[i];
                t.a += coef;
                if t.a.is_zero() && t.b_sum.is_zero() && t.b_cnt.is_zero() {
                    self.terms.remove(i);
                }
            }
            Err(i) => self.terms.insert(
                i,
                Term {
                    snap: x,
                    a: coef,
                    b_sum: TrendVal::ZERO,
                    b_cnt: TrendVal::ZERO,
                },
            ),
        }
    }

    /// Multiplies the whole expression by the ring scalar `m`. Terms whose
    /// coefficients all wrap to zero are dropped (the sorted-no-zero
    /// invariant).
    pub fn scale(&mut self, m: TrendVal) {
        self.c.scale(m);
        if m.is_zero() {
            self.terms.clear();
            return;
        }
        for t in &mut self.terms {
            t.a = m * t.a;
            t.b_sum = m * t.b_sum;
            t.b_cnt = m * t.b_cnt;
        }
        self.terms
            .retain(|t| !(t.a.is_zero() && t.b_sum.is_zero() && t.b_cnt.is_zero()));
    }

    /// True iff the expression is identically zero.
    pub fn is_zero(&self) -> bool {
        self.c.is_zero() && self.terms.is_empty()
    }

    /// Adds `other` into `self` (merge of sorted term lists).
    pub fn add_assign(&mut self, other: &LinearExpr) {
        self.c.add(other.c);
        if other.terms.is_empty() {
            return;
        }
        if self.terms.is_empty() {
            self.terms = other.terms.clone();
            return;
        }
        // In-place fast path: every incoming snapshot id is already
        // present. This is the steady state of a graphlet's running sum
        // (each event's expression references the same graphlet and unit
        // snapshots), where the general merge below would allocate a new
        // term vector per event.
        if is_id_subset(&other.terms, &self.terms) {
            let mut i = 0;
            let mut any_zero = false;
            for r in &other.terms {
                while self.terms[i].snap != r.snap {
                    i += 1;
                }
                let t = &mut self.terms[i];
                t.a += r.a;
                t.b_sum += r.b_sum;
                t.b_cnt += r.b_cnt;
                any_zero |= t.a.is_zero() && t.b_sum.is_zero() && t.b_cnt.is_zero();
            }
            if any_zero {
                self.terms
                    .retain(|t| !(t.a.is_zero() && t.b_sum.is_zero() && t.b_cnt.is_zero()));
            }
            return;
        }
        let mut merged = Vec::with_capacity(self.terms.len() + other.terms.len());
        let (mut i, mut j) = (0, 0);
        while i < self.terms.len() && j < other.terms.len() {
            let (l, r) = (self.terms[i], other.terms[j]);
            match l.snap.cmp(&r.snap) {
                std::cmp::Ordering::Less => {
                    merged.push(l);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(r);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    let t = Term {
                        snap: l.snap,
                        a: l.a + r.a,
                        b_sum: l.b_sum + r.b_sum,
                        b_cnt: l.b_cnt + r.b_cnt,
                    };
                    if !(t.a.is_zero() && t.b_sum.is_zero() && t.b_cnt.is_zero()) {
                        merged.push(t);
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&self.terms[i..]);
        merged.extend_from_slice(&other.terms[j..]);
        self.terms = merged;
    }

    /// Component-wise sum.
    pub fn plus(mut self, other: &LinearExpr) -> LinearExpr {
        self.add_assign(other);
        self
    }

    /// Applies the per-event propagation map of
    /// [`NodeVal::propagate`] symbolically: with `P` the (already summed)
    /// predecessor expression — including the unit-snapshot term when the
    /// event may start a trend — the event's expression is
    ///
    /// ```text
    /// count = P.count
    /// sum   = P.sum + w · P.count
    /// cnt   = P.cnt + [target] · P.count
    /// ```
    pub fn propagate(mut self, w: TrendVal, is_target: bool) -> LinearExpr {
        self.propagate_mut(w, is_target);
        self
    }

    /// In-place [`propagate`](Self::propagate) for reusable buffers.
    pub fn propagate_mut(&mut self, w: TrendVal, is_target: bool) {
        self.c.sum += w * self.c.count;
        if is_target {
            self.c.cnt += self.c.count;
        }
        for t in &mut self.terms {
            t.b_sum += w * t.a;
            if is_target {
                t.b_cnt += t.a;
            }
        }
    }

    /// Evaluates the expression for one member query given its snapshot
    /// values (`resolve(x)` maps a snapshot id to that query's value).
    pub fn eval(&self, resolve: impl Fn(SnapId) -> NodeVal) -> NodeVal {
        let mut out = self.c;
        for t in &self.terms {
            let s = resolve(t.snap);
            out.count += t.a * s.count;
            out.sum += t.a * s.sum + t.b_sum * s.count;
            out.cnt += t.a * s.cnt + t.b_cnt * s.count;
        }
        out
    }

    /// Approximate heap + inline footprint in bytes (memory metric, §6.1).
    pub fn mem_bytes(&self) -> usize {
        std::mem::size_of::<LinearExpr>() + self.terms.len() * std::mem::size_of::<Term>()
    }

    /// Serializes the expression (checkpoint codec): constant, then the
    /// sorted term list verbatim — decode reproduces it bit-for-bit.
    pub(crate) fn encode(&self, e: &mut crate::checkpoint::Enc) {
        self.c.encode(e);
        e.usize(self.terms.len());
        for t in &self.terms {
            e.u32(t.snap);
            e.u64(t.a.0);
            e.u64(t.b_sum.0);
            e.u64(t.b_cnt.0);
        }
    }

    /// Mirror of [`encode`](Self::encode). `num_snaps` is the restored
    /// snapshot table's size: a term referencing a snapshot beyond it is
    /// corrupt and must fail here, not index out of bounds at the first
    /// evaluation.
    pub(crate) fn decode(
        d: &mut crate::checkpoint::Dec<'_>,
        num_snaps: usize,
    ) -> Result<LinearExpr, crate::checkpoint::CheckpointError> {
        let c = NodeVal::decode(d)?;
        let n = d.seq_len()?;
        let mut terms = Vec::with_capacity(n);
        for _ in 0..n {
            let snap = d.u32()?;
            if snap as usize >= num_snaps {
                return Err(crate::checkpoint::CheckpointError::Corrupt(format!(
                    "expression references snapshot {snap} of {num_snaps}"
                )));
            }
            terms.push(Term {
                snap,
                a: TrendVal(d.u64()?),
                b_sum: TrendVal(d.u64()?),
                b_cnt: TrendVal(d.u64()?),
            });
        }
        Ok(LinearExpr { c, terms })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamlet_types::TrendVal as T;

    fn nv(count: u64, sum: u64, cnt: u64) -> NodeVal {
        NodeVal {
            count: T(count),
            sum: T(sum),
            cnt: T(cnt),
        }
    }

    #[test]
    fn zero_and_constant() {
        assert!(LinearExpr::zero().is_zero());
        let e = LinearExpr::constant(nv(2, 0, 0));
        assert!(!e.is_zero());
        assert_eq!(e.eval(|_| unreachable!()), nv(2, 0, 0));
    }

    #[test]
    fn add_merges_sorted_terms() {
        let a = LinearExpr::snapshot(1).plus(&LinearExpr::snapshot(3));
        let b = LinearExpr::snapshot(2).plus(&LinearExpr::snapshot(3));
        let c = a.plus(&b);
        assert_eq!(c.num_terms(), 3);
        assert_eq!(c.terms[0].snap, 1);
        assert_eq!(c.terms[1].snap, 2);
        assert_eq!(c.terms[2].snap, 3);
        assert_eq!(c.terms[2].a, T(2));
    }

    #[test]
    fn cancelling_terms_are_dropped() {
        let mut neg = LinearExpr::snapshot(5);
        neg.terms[0].a = T(0) - T(1);
        let sum = LinearExpr::snapshot(5).plus(&neg);
        assert!(sum.is_zero());
    }

    #[test]
    fn table3_shared_propagation() {
        // Paper Table 3: b3..b6 in graphlet B3 with snapshot x.
        // count(b3)=x, count(b4)=2x, count(b5)=4x, count(b6)=8x.
        let x = 7; // arbitrary snapshot id
        let mut prefix = LinearExpr::zero(); // Σ counts of prior events in graphlet
        let mut counts = Vec::new();
        for _ in 0..4 {
            let pred = LinearExpr::snapshot(x).plus(&prefix);
            let e = pred.propagate(T::ZERO, false);
            prefix.add_assign(&e);
            counts.push(e);
        }
        let sx = nv(2, 0, 0); // x = 2 for q1 (Table 4)
        let got: Vec<u64> = counts.iter().map(|e| e.eval(|_| sx).count.0).collect();
        assert_eq!(got, vec![2, 4, 8, 16]); // x, 2x, 4x, 8x with x=2
        let sx2 = nv(1, 0, 0); // x = 1 for q2
        let got: Vec<u64> = counts.iter().map(|e| e.eval(|_| sx2).count.0).collect();
        assert_eq!(got, vec![1, 2, 4, 8]);
    }

    #[test]
    fn propagate_carries_sum_and_cnt() {
        // One snapshot x, event of target type with attr w=10.
        let pred = LinearExpr::snapshot(0);
        let e = pred.propagate(T(10), true);
        // For S(x) = (count=3, sum=4, cnt=5):
        // count = 3, sum = 4 + 10·3 = 34, cnt = 5 + 3 = 8.
        let v = e.eval(|_| nv(3, 4, 5));
        assert_eq!(v, nv(3, 34, 8));
    }

    #[test]
    fn eval_mixed_terms_and_const() {
        // e = const(1,0,0) + 2·x0 + 1·x1 with b_sum on x1.
        let mut e = LinearExpr::constant(nv(1, 0, 0));
        e.add_assign(&LinearExpr::snapshot(0));
        e.add_assign(&LinearExpr::snapshot(0));
        e.add_assign(&LinearExpr::snapshot(1).propagate(T(5), false));
        let vals = [nv(10, 0, 0), nv(100, 0, 0)];
        let v = e.eval(|s| vals[s as usize]);
        assert_eq!(v.count, T(1 + 2 * 10 + 100));
        assert_eq!(v.sum, T(5 * 100));
    }

    #[test]
    fn mem_bytes_grows_with_terms() {
        let a = LinearExpr::zero();
        let b = LinearExpr::snapshot(0).plus(&LinearExpr::snapshot(1));
        assert!(b.mem_bytes() > a.mem_bytes());
    }
}
