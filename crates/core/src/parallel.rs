//! Shared-nothing parallel execution across stream partitions.
//!
//! HAMLET partitions the stream by grouping/equivalence attributes (§2.2);
//! partitions are independent, so the classic scale-out move applies: run
//! one [`HamletEngine`] per worker, each owning the partitions whose key
//! hashes to its shard (`EngineConfig::shard`). Every worker scans the
//! whole stream (routing is cheap) but builds graphs, snapshots and
//! results only for its own partitions — aggregates stay bit-identical to
//! single-threaded execution, just computed concurrently.
//!
//! This is an offline/batch harness (`run` consumes a finite stream);
//! per-event pipelined feeding would need backpressure machinery that the
//! paper's single-node evaluation does not call for.

use crate::executor::{EngineConfig, EngineError, EngineStats, HamletEngine, WindowResult};
use hamlet_query::Query;
use hamlet_types::{Event, TypeRegistry};
use std::sync::Arc;

/// Result of a parallel run.
pub struct ParallelReport {
    /// All window results (order unspecified across workers).
    pub results: Vec<WindowResult>,
    /// Per-worker engine statistics.
    pub stats: Vec<EngineStats>,
    /// Per-worker peak byte-accounted state.
    pub peak_mem: Vec<usize>,
}

/// Partition-parallel executor: `workers` shard-owning engines over the
/// same workload.
pub struct ParallelEngine {
    reg: Arc<TypeRegistry>,
    queries: Vec<Query>,
    cfg: EngineConfig,
    workers: u32,
}

impl ParallelEngine {
    /// Validates the workload once and prepares a `workers`-way sharding.
    pub fn new(
        reg: Arc<TypeRegistry>,
        queries: Vec<Query>,
        cfg: EngineConfig,
        workers: u32,
    ) -> Result<Self, EngineError> {
        assert!(workers >= 1, "at least one worker");
        // Compile once up front so construction errors surface here, not
        // inside worker threads.
        HamletEngine::new(reg.clone(), queries.clone(), cfg.clone())?;
        Ok(ParallelEngine {
            reg,
            queries,
            cfg,
            workers,
        })
    }

    /// Processes a finite stream with one thread per shard and merges the
    /// window results.
    pub fn run(&self, events: &[Event]) -> ParallelReport {
        let n = self.workers;
        let mut slots: Vec<Option<(Vec<WindowResult>, EngineStats, usize)>> =
            (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for idx in 0..n {
                let reg = self.reg.clone();
                let queries = self.queries.clone();
                let mut cfg = self.cfg.clone();
                if n > 1 {
                    cfg.shard = Some((idx, n));
                }
                handles.push(scope.spawn(move || {
                    let mut eng = HamletEngine::new(reg, queries, cfg)
                        .expect("validated in ParallelEngine::new");
                    let mut out = Vec::new();
                    for e in events {
                        out.extend(eng.process(e));
                    }
                    out.extend(eng.flush());
                    (out, *eng.stats(), eng.peak_memory())
                }));
            }
            for (idx, h) in handles.into_iter().enumerate() {
                slots[idx] = Some(h.join().expect("worker thread panicked"));
            }
        });
        let mut report = ParallelReport {
            results: Vec::new(),
            stats: Vec::new(),
            peak_mem: Vec::new(),
        };
        for slot in slots.into_iter().flatten() {
            let (results, stats, peak) = slot;
            report.results.extend(results);
            report.stats.push(stats);
            report.peak_mem.push(peak);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamlet_query::{parse_query, QueryId};
    use hamlet_types::{AttrValue, Ts};

    fn setup() -> (Arc<TypeRegistry>, Vec<Query>, Vec<Event>) {
        let mut reg = TypeRegistry::new();
        let a = reg.register("A", &["g"]);
        let b = reg.register("B", &["g"]);
        let c = reg.register("C", &["g"]);
        let reg = Arc::new(reg);
        let queries = vec![
            parse_query(
                &reg,
                1,
                "RETURN COUNT(*) PATTERN SEQ(A, B+) GROUP BY g WITHIN 20",
            )
            .unwrap(),
            parse_query(
                &reg,
                2,
                "RETURN COUNT(*) PATTERN SEQ(C, B+) GROUP BY g WITHIN 20",
            )
            .unwrap(),
        ];
        let mut events = Vec::new();
        for t in 0..200u64 {
            let ty = match t % 5 {
                0 => a,
                1 => c,
                _ => b,
            };
            events.push(Event::new(Ts(t), ty, vec![AttrValue::Int((t % 7) as i64)]));
        }
        (reg, queries, events)
    }

    fn norm(mut rs: Vec<WindowResult>) -> Vec<String> {
        rs.retain(|r| !matches!(r.value, crate::AggValue::Count(0) | crate::AggValue::Null));
        let mut v: Vec<String> = rs
            .iter()
            .map(|r| {
                format!(
                    "{:?}|{}|{}|{:?}",
                    r.query, r.group_key, r.window_start, r.value
                )
            })
            .collect();
        v.sort();
        v
    }

    #[test]
    fn parallel_matches_single_threaded() {
        let (reg, queries, events) = setup();
        let single = ParallelEngine::new(reg.clone(), queries.clone(), EngineConfig::default(), 1)
            .unwrap()
            .run(&events);
        for workers in [2u32, 4, 7] {
            let par = ParallelEngine::new(
                reg.clone(),
                queries.clone(),
                EngineConfig::default(),
                workers,
            )
            .unwrap()
            .run(&events);
            assert_eq!(
                norm(single.results.clone()),
                norm(par.results.clone()),
                "{workers} workers"
            );
            assert_eq!(par.stats.len(), workers as usize);
        }
    }

    #[test]
    fn shards_partition_the_work() {
        let (reg, queries, events) = setup();
        let par = ParallelEngine::new(reg.clone(), queries, EngineConfig::default(), 4)
            .unwrap()
            .run(&events);
        // All 7 group-by keys are covered, each by exactly one worker.
        let keys: std::collections::BTreeSet<String> = par
            .results
            .iter()
            .map(|r| format!("{}", r.group_key))
            .collect();
        assert_eq!(keys.len(), 7);
        // Work split across more than one worker.
        let active = par.stats.iter().filter(|s| s.events_routed > 0).count();
        assert!(active >= 2, "work spread over workers: {active}");
        // Each result belongs to exactly one query per key/window (no
        // duplicates across workers).
        let mut seen = std::collections::BTreeSet::new();
        for r in &par.results {
            if r.query == QueryId(1) {
                assert!(
                    seen.insert((format!("{}", r.group_key), r.window_start)),
                    "duplicate result {r:?}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let (reg, queries, _) = setup();
        let _ = ParallelEngine::new(reg, queries, EngineConfig::default(), 0);
    }
}
