//! Shared-nothing parallel execution across stream partitions.
//!
//! HAMLET partitions the stream by grouping/equivalence attributes (§2.2);
//! partitions are independent, so the classic scale-out move applies: run
//! one [`HamletEngine`] per worker, each owning the partitions whose key
//! hashes to its shard (`EngineConfig::shard`).
//!
//! # Architecture
//!
//! A coordinator routes the stream once: for every event it computes the
//! set of shards that own one of the event's partition keys
//! ([`HamletEngine::shard_mask`]) and appends the event to those shards'
//! batch buffers. Full batches are handed to the worker threads over
//! bounded channels, so routing and processing overlap and no worker ever
//! scans events it does not own. Each worker therefore processes ~1/w of
//! the events against ~1/w of the live partitions and holds ~1/w of the
//! state. (Since the watermark expiration index landed, window expiry no
//! longer scans live partitions per event, so sharding's win comes from
//! core parallelism and per-shard state locality rather than from
//! dividing an O(P) expiry term.)
//!
//! # Determinism
//!
//! Aggregates are bit-identical to single-threaded execution: every
//! partition is owned by exactly one shard, and each shard computes it
//! exactly as the single-threaded engine would. At merge time the report
//! sorts all window results by `(window_start, query, group_key)`
//! ([`crate::executor::sort_results`]), so [`ParallelReport::results`] is
//! byte-comparable across runs, worker counts, and against a
//! single-threaded run sorted the same way. The single-threaded engine is
//! itself deterministic by construction: each watermark advance emits its
//! expired windows in `(window_start, group, key)` order straight off the
//! expiration index, never in `HashMap` iteration order.
//!
//! This is an offline/batch harness (`run` consumes a finite stream) —
//! the right tool for throughput measurement over materialized streams.
//! For *online* feeding — unbounded sources, per-event backpressure,
//! out-of-order ingestion, live latency metrics — use the
//! `hamlet-pipeline` crate, which reuses the same [`HamletEngine::shard_mask`]
//! routing over bounded per-shard channels and drains to the same
//! bit-identical merged output.

use crate::checkpoint::{self, CheckpointError, Dec};
use crate::executor::{
    checkpoint_epoch, sort_results, ChurnError, ChurnOp, EngineConfig, EngineError, EngineStats,
    HamletEngine, WindowResult,
};
use crate::metrics::LatencyRecorder;
use hamlet_obs::{merge_group_metrics, GroupMetrics};
use hamlet_query::Query;
use hamlet_types::{Event, TypeRegistry};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Default number of events per routed batch. Large enough to amortize
/// channel traffic, small enough to keep all workers busy on short
/// streams.
pub const DEFAULT_BATCH: usize = 1024;

/// Bounded depth of each worker's batch channel (backpressure: the router
/// stalls rather than buffering the whole stream for a slow worker).
const PIPELINE_DEPTH: usize = 4;

/// What one worker returns: results, stats, latency recorder, peak
/// bytes, per-share-group observability counters, and — when the run
/// ends at a checkpoint barrier instead of a flush — the shard's
/// serialized engine state.
type WorkerOutput = (
    Vec<WindowResult>,
    EngineStats,
    LatencyRecorder,
    usize,
    Vec<GroupMetrics>,
    Option<Vec<u8>>,
);

/// How a parallel run ends: drain every window (`flush`) or freeze the
/// per-shard engine state at a coordinated barrier (`checkpoint`).
#[derive(Copy, Clone, PartialEq, Eq)]
enum EndMode {
    Flush,
    Checkpoint,
}

/// What the router sends a shard worker during a churned run: a routed
/// batch, or a churn op every worker applies at the same stream position
/// (the coordinated per-shard barrier — channel FIFO order guarantees all
/// pre-op events are processed first).
enum ShardMsg {
    Batch(Vec<Event>),
    Churn(ChurnOp),
}

/// Applies one validated churn op to an engine, returning the results it
/// drained at the barrier.
fn apply_op(eng: &mut HamletEngine, op: ChurnOp) -> Vec<WindowResult> {
    let report = match op {
        ChurnOp::Add(q) => eng.add_query(q),
        ChurnOp::Remove(id) => eng.remove_query(id),
    };
    report
        // hamlet-lint: allow(panic-hygiene) -- a shard failing a pre-validated churn must not run past the cut; the panic surfaces at join
        .expect("churn ops validated before execution started")
        .drained
}

/// Magic tag opening a serialized [`ParallelCheckpoint`] container.
pub const PARALLEL_MAGIC: [u8; 4] = *b"HMPC";
/// Container format version.
pub const PARALLEL_VERSION: u16 = 1;

/// A coordinated checkpoint of a parallel run: one engine checkpoint per
/// shard, all taken at the same stream barrier (no shard has seen an
/// event another shard has not been offered).
///
/// Produced by [`ParallelEngine::run_to_checkpoint`], consumed by
/// [`ParallelEngine::resume`]. Because every partition is owned by
/// exactly one shard, the union of shard states *is* the engine state:
/// resuming and finishing the stream emits byte-identically to an
/// uninterrupted run (`tests/checkpoint_equivalence.rs`).
pub struct ParallelCheckpoint {
    workers: u32,
    /// Per-shard engine blobs (index = shard).
    shards: Vec<Vec<u8>>,
}

impl ParallelCheckpoint {
    /// Worker count the checkpoint was taken under (a checkpoint only
    /// restores into the same sharding — partition ownership depends on
    /// it).
    pub fn workers(&self) -> u32 {
        self.workers
    }

    /// Serialized size across all shards, in bytes.
    pub fn total_bytes(&self) -> usize {
        self.shards.iter().map(Vec::len).sum()
    }

    /// Per-shard blob sizes, in bytes.
    pub fn shard_bytes(&self) -> Vec<usize> {
        self.shards.iter().map(Vec::len).collect()
    }

    /// Serializes the container (magic, version, per-shard blobs) for
    /// file persistence.
    pub fn to_bytes(&self) -> Vec<u8> {
        checkpoint::container_header(
            &PARALLEL_MAGIC,
            PARALLEL_VERSION,
            self.workers,
            &self.shards,
        )
        .finish()
    }

    /// Mirror of [`to_bytes`](Self::to_bytes).
    pub fn from_bytes(bytes: &[u8]) -> Result<ParallelCheckpoint, CheckpointError> {
        let mut d = Dec::new(bytes);
        let (workers, shards) =
            checkpoint::read_container(&mut d, &PARALLEL_MAGIC, PARALLEL_VERSION)?;
        d.expect_end()?;
        Ok(ParallelCheckpoint { workers, shards })
    }
}

/// What [`ParallelEngine::run_to_checkpoint`] hands back: the results
/// emitted *before* the barrier, the coordinated checkpoint, and how
/// long the barrier pause took.
pub struct ParallelCheckpointReport {
    /// Results emitted before the checkpoint barrier, in the same
    /// canonical order [`ParallelReport::results`] guarantees. Windows
    /// still open at the barrier are inside the checkpoint, not here.
    pub report: ParallelReport,
    /// The coordinated per-shard checkpoint.
    pub checkpoint: ParallelCheckpoint,
    /// Drain-barrier pause: from the moment routing stopped until every
    /// shard had drained its queue and serialized its state — the time a
    /// live system would be unavailable for new events.
    pub pause: Duration,
}

/// Result of a parallel run: the merged, deterministically ordered window
/// results plus a per-worker breakdown and aggregate views of the §6.1
/// metrics.
pub struct ParallelReport {
    /// All window results, sorted by `(window_start, query, group_key)`.
    /// The order is a guarantee: it does not depend on worker count or
    /// thread scheduling, so two runs of the same workload — parallel or
    /// single-threaded (after [`sort_results`]) — compare byte-for-byte.
    pub results: Vec<WindowResult>,
    /// Per-worker engine statistics (index = shard index).
    pub stats: Vec<EngineStats>,
    /// Per-worker peak byte-accounted state.
    pub peak_mem: Vec<usize>,
    /// Per-worker result latency recorders.
    pub latency: Vec<LatencyRecorder>,
    /// Per-worker per-share-group observability counters (index =
    /// shard index; empty inner vectors when `EngineConfig::obs` is
    /// off). Merge with [`Self::merged_group_metrics`].
    pub group_metrics: Vec<Vec<GroupMetrics>>,
    /// Events fed to the router.
    pub events: u64,
    /// End-to-end wall time of the run (routing + processing + merge).
    pub wall: Duration,
}

impl ParallelReport {
    /// Workload-level statistics: every worker's counters accumulated.
    pub fn merged_stats(&self) -> EngineStats {
        let mut total = EngineStats::default();
        for s in &self.stats {
            total.merge(s);
        }
        total
    }

    /// All workers' latency samples merged into one recorder.
    pub fn merged_latency(&self) -> LatencyRecorder {
        let mut total = LatencyRecorder::new();
        for l in &self.latency {
            total.merge(l);
        }
        total
    }

    /// Per-share-group counters summed across shards, keyed by group
    /// signature and sorted canonically — byte-identical for any
    /// worker count over the same workload and stream.
    pub fn merged_group_metrics(&self) -> Vec<GroupMetrics> {
        merge_group_metrics(self.group_metrics.iter().cloned())
    }

    /// Sum of the per-worker peaks — the aggregate state footprint if
    /// every shard hit its peak simultaneously (upper bound).
    pub fn total_peak_mem(&self) -> usize {
        self.peak_mem.iter().sum()
    }

    /// Largest single-worker peak — what capacity each shard needs.
    pub fn max_peak_mem(&self) -> usize {
        self.peak_mem.iter().copied().max().unwrap_or(0)
    }

    /// End-to-end events per second (router input over wall time).
    pub fn throughput_eps(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.events as f64 / secs
        } else {
            0.0
        }
    }

    /// Number of workers that ran.
    pub fn workers(&self) -> usize {
        self.stats.len()
    }
}

/// Partition-parallel executor: `workers` shard-owning engines over the
/// same workload, fed by a batching router.
pub struct ParallelEngine {
    reg: Arc<TypeRegistry>,
    queries: Vec<Query>,
    cfg: EngineConfig,
    workers: u32,
    batch: usize,
    /// Routing-only engine (never processes events): owns the compiled
    /// share groups the router needs to map events to shards with exactly
    /// the hash the workers' shard filters apply.
    router: HamletEngine,
}

impl ParallelEngine {
    /// Validates the workload once and prepares a `workers`-way sharding.
    /// `workers` must be in `1..=64` (the shard mask is a `u64`).
    pub fn new(
        reg: Arc<TypeRegistry>,
        queries: Vec<Query>,
        cfg: EngineConfig,
        workers: u32,
    ) -> Result<Self, EngineError> {
        assert!(workers >= 1, "at least one worker");
        assert!(workers <= 64, "at most 64 workers (shard mask is a u64)");
        // Compile once up front so construction errors surface here, not
        // inside worker threads; the compiled engine doubles as the
        // router's share-group index.
        let mut router_cfg = cfg.clone();
        router_cfg.shard = None;
        router_cfg.track_latency = false;
        router_cfg.mem_sample_every = 0;
        let router = HamletEngine::new(reg.clone(), queries.clone(), router_cfg)?;
        Ok(ParallelEngine {
            reg,
            queries,
            cfg,
            workers,
            batch: DEFAULT_BATCH,
            router,
        })
    }

    /// Overrides the routing batch size (events per channel send).
    pub fn with_batch_size(mut self, batch: usize) -> Self {
        assert!(batch >= 1, "batch size must be positive");
        self.batch = batch;
        self
    }

    /// Opens a **live session** over this engine's workload and
    /// sharding: the per-shard engines are built once and held across
    /// calls, so processing can interleave with coordinated chain cuts
    /// ([`crate::Snapshot::cut`]). The offline methods on `self`
    /// ([`run`](Self::run) etc.) are unaffected.
    pub fn session(&self) -> ParallelSession {
        let mut router_cfg = self.cfg.clone();
        router_cfg.shard = None;
        router_cfg.track_latency = false;
        router_cfg.mem_sample_every = 0;
        let router = HamletEngine::new(self.reg.clone(), self.queries.clone(), router_cfg)
            // hamlet-lint: allow(panic-hygiene) -- the same config already built an engine in ParallelEngine::new; reconstruction is deterministic
            .expect("validated in ParallelEngine::new");
        let engines = (0..self.workers as usize)
            .map(|idx| {
                HamletEngine::new(self.reg.clone(), self.queries.clone(), self.shard_cfg(idx))
                    // hamlet-lint: allow(panic-hygiene) -- the same config already built an engine in ParallelEngine::new; reconstruction is deterministic
                    .expect("validated in ParallelEngine::new")
            })
            .collect();
        ParallelSession {
            workers: self.workers,
            router,
            engines,
        }
    }

    /// Processes a finite stream and merges the window results.
    pub fn run(&self, events: &[Event]) -> ParallelReport {
        self.run_batches(events.chunks(self.batch))
    }

    /// Streaming variant of [`run`](Self::run): consumes the input batch
    /// by batch (e.g. from the `batches` helper in `hamlet-stream`) so
    /// the caller never needs the whole stream in one slice. Input batch
    /// boundaries only affect pipelining granularity, not results.
    pub fn run_batches<'a>(&self, batches: impl Iterator<Item = &'a [Event]>) -> ParallelReport {
        self.execute(batches, None, EndMode::Flush)
            // hamlet-lint: allow(panic-hygiene) -- execute() without a restore blob has no error path (checkpoint decode is the only failure)
            .expect("no checkpoint to restore, engines validated in new")
            .report
    }

    /// Processes a stream *prefix*, then takes a **coordinated
    /// checkpoint** at the barrier instead of flushing: routing stops,
    /// every shard drains its queue and serializes its engine. The
    /// returned report carries the results emitted before the barrier
    /// (canonically sorted); windows still open travel inside the
    /// checkpoint and emit after [`resume`](Self::resume).
    pub fn run_to_checkpoint(&self, events: &[Event]) -> ParallelCheckpointReport {
        self.execute(events.chunks(self.batch), None, EndMode::Checkpoint)
            // hamlet-lint: allow(panic-hygiene) -- execute() without a restore blob has no error path (checkpoint decode is the only failure)
            .expect("no checkpoint to restore, engines validated in new")
    }

    /// Restores every shard from a coordinated checkpoint and finishes
    /// the stream: feed the events *after* the checkpoint barrier, drain
    /// with a full flush. `checkpoint.workers()` must equal this engine's
    /// worker count and the workload must match (validated per shard via
    /// the engine fingerprint).
    ///
    /// Appending these results to the pre-barrier results and sorting
    /// canonically is byte-identical to one uninterrupted
    /// [`run`](Self::run) over the whole stream.
    pub fn resume(
        &self,
        checkpoint: &ParallelCheckpoint,
        events: &[Event],
    ) -> Result<ParallelReport, CheckpointError> {
        self.execute(events.chunks(self.batch), Some(checkpoint), EndMode::Flush)
            .map(|x| x.report)
    }

    /// Processes a finite stream with **runtime query churn**: each
    /// `(position, op)` pair applies its add/remove after `position`
    /// events of the stream have been routed (positions non-decreasing).
    ///
    /// Churn applies at a coordinated per-shard barrier: routing pauses,
    /// every in-flight batch is flushed to its shard, every shard applies
    /// the op at the same stream position (channel FIFO order), and the
    /// router re-plans before routing resumes. Results drained at the
    /// barriers (see the churn contract on
    /// [`HamletEngine::remove_query`]) are
    /// merged into the report's canonically sorted results, so nothing is
    /// dropped.
    ///
    /// The whole op sequence is validated (ids, compilability of every
    /// intermediate workload) before any event is processed; on error the
    /// engine is untouched. On success the engine's query set — and its
    /// router — end at the final workload, so a subsequent
    /// [`run`](Self::run) sees the post-churn workload.
    pub fn run_with_churn(
        &mut self,
        events: &[Event],
        ops: &[(usize, ChurnOp)],
    ) -> Result<ParallelReport, ChurnError> {
        for w in ops.windows(2) {
            assert!(w[0].0 <= w[1].0, "churn positions must be non-decreasing");
        }
        // Validate the whole op sequence upfront: simulate the query-list
        // evolution and compile every intermediate workload, so worker
        // threads can treat churn application as infallible.
        let mut sim = self.queries.clone();
        let mut probe_cfg = self.cfg.clone();
        probe_cfg.shard = None;
        probe_cfg.track_latency = false;
        probe_cfg.mem_sample_every = 0;
        for (_, op) in ops {
            match op {
                ChurnOp::Add(q) => {
                    if sim.iter().any(|p| p.id == q.id) {
                        return Err(ChurnError::Duplicate(q.id));
                    }
                    sim.push(q.clone());
                }
                ChurnOp::Remove(id) => {
                    if !sim.iter().any(|p| p.id == *id) {
                        return Err(ChurnError::Unknown(*id));
                    }
                    sim.retain(|p| p.id != *id);
                }
            }
            HamletEngine::new(self.reg.clone(), sim.clone(), probe_cfg.clone())
                .map_err(ChurnError::Engine)?;
        }

        // hamlet-lint: allow(wallclock) -- run-duration measurement for the report
        let t0 = Instant::now();
        let n = self.workers as usize;
        let mut events_total = 0u64;
        let outputs: Vec<WorkerOutput> = if n == 1 {
            let mut eng =
                HamletEngine::new(self.reg.clone(), self.queries.clone(), self.shard_cfg(0))
                    // hamlet-lint: allow(panic-hygiene) -- the same config already built an engine in ParallelEngine::new; reconstruction is deterministic
                    .expect("validated in ParallelEngine::new");
            let mut out = Vec::new();
            let mut pos = 0usize;
            for (at, op) in ops {
                let at = (*at).min(events.len());
                for chunk in events[pos..at].chunks(self.batch.max(1)) {
                    events_total += chunk.len() as u64;
                    out.extend(eng.process_batch(chunk));
                }
                pos = at;
                out.extend(apply_op(&mut eng, op.clone()));
            }
            for chunk in events[pos..].chunks(self.batch.max(1)) {
                events_total += chunk.len() as u64;
                out.extend(eng.process_batch(chunk));
            }
            out.extend(eng.flush());
            vec![(
                out,
                *eng.stats(),
                eng.latency().clone(),
                eng.peak_memory(),
                eng.group_metrics().to_vec(),
                None,
            )]
        } else {
            let batch = self.batch;
            let workers = self.workers;
            let cfgs: Vec<EngineConfig> = (0..n).map(|idx| self.shard_cfg(idx)).collect();
            let reg0 = self.reg.clone();
            let queries0 = self.queries.clone();
            let router = &mut self.router;
            std::thread::scope(|scope| {
                let mut txs = Vec::with_capacity(n);
                let mut handles = Vec::with_capacity(n);
                for cfg in &cfgs {
                    let (tx, rx) = mpsc::sync_channel::<ShardMsg>(PIPELINE_DEPTH);
                    txs.push(tx);
                    let (reg, queries, cfg) = (reg0.clone(), queries0.clone(), cfg.clone());
                    handles.push(scope.spawn(move || {
                        let mut eng = HamletEngine::new(reg, queries, cfg)
                            // hamlet-lint: allow(panic-hygiene) -- the same config already built an engine in ParallelEngine::new; reconstruction is deterministic
                            .expect("validated in ParallelEngine::new");
                        let mut out = Vec::new();
                        while let Ok(msg) = rx.recv() {
                            match msg {
                                ShardMsg::Batch(b) => out.extend(eng.process_batch(&b)),
                                ShardMsg::Churn(op) => out.extend(apply_op(&mut eng, op)),
                            }
                        }
                        out.extend(eng.flush());
                        (
                            out,
                            *eng.stats(),
                            eng.latency().clone(),
                            eng.peak_memory(),
                            eng.group_metrics().to_vec(),
                            None,
                        )
                    }));
                }
                let mut buffers: Vec<Vec<Event>> =
                    (0..n).map(|_| Vec::with_capacity(batch)).collect();
                let route = |router: &HamletEngine,
                             buffers: &mut Vec<Vec<Event>>,
                             span: &[Event],
                             events_total: &mut u64| {
                    for e in span {
                        *events_total += 1;
                        let mut mask = router.shard_mask(e, workers);
                        while mask != 0 {
                            let idx = mask.trailing_zeros() as usize;
                            mask &= mask - 1;
                            buffers[idx].push(e.clone());
                            if buffers[idx].len() >= batch {
                                let full =
                                    std::mem::replace(&mut buffers[idx], Vec::with_capacity(batch));
                                let _ = txs[idx].send(ShardMsg::Batch(full));
                            }
                        }
                    }
                };
                let mut pos = 0usize;
                for (at, op) in ops {
                    let at = (*at).min(events.len());
                    route(router, &mut buffers, &events[pos..at], &mut events_total);
                    pos = at;
                    // Coordinated barrier: flush every shard's partial
                    // batch, then enqueue the op on every channel. FIFO
                    // delivery means each worker applies it after exactly
                    // the pre-op events — the same cut on every shard.
                    for (idx, buf) in buffers.iter_mut().enumerate() {
                        if !buf.is_empty() {
                            let full = std::mem::take(buf);
                            let _ = txs[idx].send(ShardMsg::Batch(full));
                        }
                    }
                    for tx in &txs {
                        let _ = tx.send(ShardMsg::Churn(op.clone()));
                    }
                    // Re-plan routing: the router's share groups (and so
                    // the shard masks) follow the new workload.
                    apply_op(router, op.clone());
                }
                route(router, &mut buffers, &events[pos..], &mut events_total);
                for (idx, buf) in buffers.into_iter().enumerate() {
                    if !buf.is_empty() {
                        let _ = txs[idx].send(ShardMsg::Batch(buf));
                    }
                }
                drop(txs);
                handles
                    .into_iter()
                    // hamlet-lint: allow(panic-hygiene) -- join propagates a worker panic; swallowing it would fake a clean run
                    .map(|h| h.join().expect("worker thread panicked"))
                    .collect()
            })
        };
        if n == 1 {
            // The degenerate path never touched the router; catch it up so
            // the engine ends at the final workload either way.
            for (_, op) in ops {
                apply_op(&mut self.router, op.clone());
            }
        }
        self.queries = sim;

        let mut report = ParallelReport {
            results: Vec::new(),
            stats: Vec::new(),
            peak_mem: Vec::new(),
            latency: Vec::new(),
            group_metrics: Vec::new(),
            events: events_total,
            wall: Duration::ZERO,
        };
        for (results, stats, latency, peak, groups, _) in outputs {
            report.results.extend(results);
            report.stats.push(stats);
            report.latency.push(latency);
            report.peak_mem.push(peak);
            report.group_metrics.push(groups);
        }
        sort_results(&mut report.results);
        report.wall = t0.elapsed();
        Ok(report)
    }

    /// Shard engine configuration for worker `idx`.
    fn shard_cfg(&self, idx: usize) -> EngineConfig {
        let mut cfg = self.cfg.clone();
        if self.workers > 1 {
            cfg.shard = Some((idx as u32, self.workers));
        }
        cfg
    }

    /// Routes the stream to `workers` shard engines and ends in the
    /// requested mode. On a resume, every engine is built **and
    /// restored** up front on the caller's thread, so checkpoint errors
    /// surface synchronously; on a fresh run, engines are built inside
    /// their worker threads (workload compilation overlaps with
    /// routing, as it always did — `new()` already validated it).
    fn execute<'a>(
        &self,
        batches: impl Iterator<Item = &'a [Event]>,
        restore: Option<&ParallelCheckpoint>,
        mode: EndMode,
    ) -> Result<ParallelCheckpointReport, CheckpointError> {
        // hamlet-lint: allow(wallclock) -- run-duration measurement for the report
        let t0 = Instant::now();
        let n = self.workers as usize;
        let mut epoch = None;
        if let Some(c) = restore {
            if c.workers != self.workers {
                return Err(CheckpointError::WorkloadMismatch(format!(
                    "checkpoint taken under {} workers, resuming under {}",
                    c.workers, self.workers
                )));
            }
            // All shards of a coordinated checkpoint were taken at the
            // same barrier, so they must agree on the workload epoch; a
            // mixed container is corrupt, not restorable shard-by-shard.
            for s in &c.shards {
                let e = checkpoint_epoch(s)?;
                match epoch {
                    None => epoch = Some(e),
                    Some(e0) if e0 != e => {
                        return Err(CheckpointError::WorkloadMismatch(format!(
                            "mixed workload epochs in checkpoint container ({e0} vs {e})"
                        )))
                    }
                    Some(_) => {}
                }
            }
        }
        let mut engines: Vec<Option<HamletEngine>> = Vec::with_capacity(n);
        for idx in 0..n {
            engines.push(match restore {
                None => None, // built inside the worker thread
                Some(c) => {
                    let mut eng = HamletEngine::new(
                        self.reg.clone(),
                        self.queries.clone(),
                        self.shard_cfg(idx),
                    )
                    // hamlet-lint: allow(panic-hygiene) -- the same config already built an engine in ParallelEngine::new; reconstruction is deterministic
                    .expect("validated in ParallelEngine::new");
                    if let Some(e) = epoch {
                        // This engine's query set must be the checkpoint's
                        // post-churn set (the fingerprint still validates
                        // that); adopt the blob's churn generation.
                        eng.set_epoch(e);
                    }
                    eng.restore(&c.shards[idx])?;
                    Some(eng)
                }
            });
        }

        let mut events_total = 0u64;
        let (outputs, pause) = if n == 1 {
            // Degenerate case: no routing, no threads — the baseline the
            // scaling experiments compare against.
            // hamlet-lint: allow(panic-hygiene) -- engines was built with exactly one slot per worker above
            let mut eng = engines.pop().expect("one slot").unwrap_or_else(|| {
                HamletEngine::new(self.reg.clone(), self.queries.clone(), self.shard_cfg(0))
                    // hamlet-lint: allow(panic-hygiene) -- the same config already built an engine in ParallelEngine::new; reconstruction is deterministic
                    .expect("validated in ParallelEngine::new")
            });
            let mut out = Vec::new();
            for batch in batches {
                events_total += batch.len() as u64;
                out.extend(eng.process_batch(batch));
            }
            // hamlet-lint: allow(wallclock) -- barrier-pause measurement for the report
            let barrier = Instant::now();
            let ckpt = match mode {
                EndMode::Flush => {
                    out.extend(eng.flush());
                    None
                }
                EndMode::Checkpoint => Some(eng.checkpoint()),
            };
            let pause = barrier.elapsed();
            (
                vec![(
                    out,
                    *eng.stats(),
                    eng.latency().clone(),
                    eng.peak_memory(),
                    eng.group_metrics().to_vec(),
                    ckpt,
                )],
                pause,
            )
        } else {
            self.run_sharded(engines, batches, &mut events_total, mode)
        };

        let mut report = ParallelReport {
            results: Vec::new(),
            stats: Vec::new(),
            peak_mem: Vec::new(),
            latency: Vec::new(),
            group_metrics: Vec::new(),
            events: events_total,
            wall: Duration::ZERO,
        };
        let mut shards = Vec::with_capacity(n);
        for (results, stats, latency, peak, groups, ckpt) in outputs {
            report.results.extend(results);
            report.stats.push(stats);
            report.latency.push(latency);
            report.peak_mem.push(peak);
            report.group_metrics.push(groups);
            if let Some(c) = ckpt {
                shards.push(c);
            }
        }
        sort_results(&mut report.results);
        report.wall = t0.elapsed();
        Ok(ParallelCheckpointReport {
            report,
            checkpoint: ParallelCheckpoint {
                workers: self.workers,
                shards,
            },
            pause,
        })
    }

    /// Routes batches to `workers` shard-owning engines on worker
    /// threads. A `None` slot means "build your engine yourself" —
    /// compilation then overlaps with routing on the worker thread.
    fn run_sharded<'a>(
        &self,
        engines: Vec<Option<HamletEngine>>,
        batches: impl Iterator<Item = &'a [Event]>,
        events_total: &mut u64,
        mode: EndMode,
    ) -> (Vec<WorkerOutput>, Duration) {
        let n = self.workers as usize;
        std::thread::scope(|scope| {
            let mut txs = Vec::with_capacity(n);
            let mut handles = Vec::with_capacity(n);
            for (idx, pre_built) in engines.into_iter().enumerate() {
                let (tx, rx) = mpsc::sync_channel::<Vec<Event>>(PIPELINE_DEPTH);
                txs.push(tx);
                let (reg, queries, cfg) =
                    (self.reg.clone(), self.queries.clone(), self.shard_cfg(idx));
                handles.push(scope.spawn(move || {
                    let mut eng = pre_built.unwrap_or_else(|| {
                        HamletEngine::new(reg, queries, cfg)
                            // hamlet-lint: allow(panic-hygiene) -- the same config already built an engine in ParallelEngine::new; reconstruction is deterministic
                            .expect("validated in ParallelEngine::new")
                    });
                    let mut out = Vec::new();
                    while let Ok(batch) = rx.recv() {
                        out.extend(eng.process_batch(&batch));
                    }
                    // Channel closed: the barrier. Flush drains every
                    // window; checkpoint freezes them instead.
                    let ckpt = match mode {
                        EndMode::Flush => {
                            out.extend(eng.flush());
                            None
                        }
                        EndMode::Checkpoint => Some(eng.checkpoint()),
                    };
                    (
                        out,
                        *eng.stats(),
                        eng.latency().clone(),
                        eng.peak_memory(),
                        eng.group_metrics().to_vec(),
                        ckpt,
                    )
                }));
            }
            let mut buffers: Vec<Vec<Event>> =
                (0..n).map(|_| Vec::with_capacity(self.batch)).collect();
            for input in batches {
                *events_total += input.len() as u64;
                for e in input {
                    // One bit per shard that owns one of the event's
                    // partition keys (usually one; an event local to
                    // several share groups can carry several keys).
                    let mut mask = self.router.shard_mask(e, self.workers);
                    while mask != 0 {
                        let idx = mask.trailing_zeros() as usize;
                        mask &= mask - 1;
                        buffers[idx].push(e.clone());
                        if buffers[idx].len() >= self.batch {
                            let full = std::mem::replace(
                                &mut buffers[idx],
                                Vec::with_capacity(self.batch),
                            );
                            // A send only fails if the worker died; the
                            // join below surfaces its panic.
                            let _ = txs[idx].send(full);
                        }
                    }
                }
            }
            for (idx, buf) in buffers.into_iter().enumerate() {
                if !buf.is_empty() {
                    let _ = txs[idx].send(buf);
                }
            }
            drop(txs); // end-of-stream barrier: workers drain, then flush or checkpoint
                       // hamlet-lint: allow(wallclock) -- barrier-pause measurement for the report
            let barrier = Instant::now();
            let outputs = handles
                .into_iter()
                // hamlet-lint: allow(panic-hygiene) -- join propagates a worker panic; swallowing it would fake a clean run
                .map(|h| h.join().expect("worker thread panicked"))
                .collect();
            (outputs, barrier.elapsed())
        })
    }
}

/// A live partition-parallel session (see [`ParallelEngine::session`]):
/// `workers` shard-owning engines held in memory across calls, plus the
/// routing engine. Results are canonically sorted per call, so output
/// is identical across worker counts, call boundary by call boundary.
///
/// Implements [`crate::Snapshot`]: [`cut`](crate::Snapshot::cut) takes
/// a coordinated per-shard chain record (every shard at the same stream
/// position — the caller is between `process` calls, so no shard has
/// seen an event another has not been offered) and packs them into one
/// `HMPC` container; [`restore_chain`](crate::Snapshot::restore_chain)
/// decomposes a container chain back into per-shard chains. On a
/// restore error the session may be partially restored — discard it.
pub struct ParallelSession {
    workers: u32,
    /// Routing-only engine (never processes events); see
    /// [`ParallelEngine::router`].
    router: HamletEngine,
    /// One shard-owning engine per worker (index = shard).
    engines: Vec<HamletEngine>,
}

impl ParallelSession {
    /// Routes one slice of the stream to the shard engines and returns
    /// the merged, canonically sorted results it emitted.
    pub fn process(&mut self, events: &[Event]) -> Vec<WindowResult> {
        let n = self.engines.len();
        let mut out: Vec<WindowResult> = if n == 1 {
            self.engines[0].process_batch(events)
        } else {
            let workers = self.workers;
            let mut bufs: Vec<Vec<Event>> = vec![Vec::new(); n];
            for e in events {
                let mut mask = self.router.shard_mask(e, workers);
                while mask != 0 {
                    let idx = mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    bufs[idx].push(e.clone());
                }
            }
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .engines
                    .iter_mut()
                    .zip(&bufs)
                    .map(|(eng, buf)| scope.spawn(move || eng.process_batch(buf)))
                    .collect();
                handles
                    .into_iter()
                    // hamlet-lint: allow(panic-hygiene) -- join propagates a worker panic; swallowing it would fake a clean run
                    .flat_map(|h| h.join().expect("worker thread panicked"))
                    .collect()
            })
        };
        sort_results(&mut out);
        out
    }

    /// Finalizes every in-flight window on every shard (end of stream),
    /// merged and canonically sorted.
    pub fn flush(&mut self) -> Vec<WindowResult> {
        let mut out: Vec<WindowResult> = if self.engines.len() == 1 {
            self.engines[0].flush()
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .engines
                    .iter_mut()
                    .map(|eng| scope.spawn(move || eng.flush()))
                    .collect();
                handles
                    .into_iter()
                    // hamlet-lint: allow(panic-hygiene) -- join propagates a worker panic; swallowing it would fake a clean run
                    .flat_map(|h| h.join().expect("worker thread panicked"))
                    .collect()
            })
        };
        sort_results(&mut out);
        out
    }

    /// Number of shard workers in the session.
    pub fn workers(&self) -> u32 {
        self.workers
    }
}

impl crate::store::Snapshot for ParallelSession {
    fn cut(
        &mut self,
        kind: crate::store::CutKind,
    ) -> Result<crate::store::Checkpoint, CheckpointError> {
        // The record kind must be uniform across shards (the container
        // handle peeks the first shard and speaks for all): a delta cut
        // happens only when *every* shard can prove one sound.
        let kind = match kind {
            crate::store::CutKind::Delta if self.engines.iter().all(HamletEngine::delta_ready) => {
                crate::store::CutKind::Delta
            }
            _ => crate::store::CutKind::Full,
        };
        let blobs: Vec<Vec<u8>> = self
            .engines
            .iter_mut()
            .map(|e| e.cut_record(kind))
            .collect();
        let bytes =
            checkpoint::container_header(&PARALLEL_MAGIC, PARALLEL_VERSION, self.workers, &blobs)
                .finish();
        crate::store::Checkpoint::from_bytes(bytes)
    }

    fn restore_chain(&mut self, chain: &[crate::store::Checkpoint]) -> Result<(), CheckpointError> {
        let n = self.engines.len();
        let mut per_shard: Vec<Vec<Vec<u8>>> = vec![Vec::new(); n];
        for ck in chain {
            let pc = ParallelCheckpoint::from_bytes(ck.as_bytes())?;
            if pc.workers != self.workers || pc.shards.len() != n {
                return Err(CheckpointError::WorkloadMismatch(format!(
                    "checkpoint taken under {} workers, restoring under {}",
                    pc.workers, self.workers
                )));
            }
            for (idx, blob) in pc.shards.into_iter().enumerate() {
                per_shard[idx].push(blob);
            }
        }
        for (eng, records) in self.engines.iter_mut().zip(&per_shard) {
            let refs: Vec<&[u8]> = records.iter().map(Vec::as_slice).collect();
            eng.restore_chain_bytes(&refs)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamlet_query::{parse_query, QueryId};
    use hamlet_types::{AttrValue, Ts};

    fn setup() -> (Arc<TypeRegistry>, Vec<Query>, Vec<Event>) {
        let mut reg = TypeRegistry::new();
        let a = reg.register("A", &["g"]);
        let b = reg.register("B", &["g"]);
        let c = reg.register("C", &["g"]);
        let reg = Arc::new(reg);
        let queries = vec![
            parse_query(
                &reg,
                1,
                "RETURN COUNT(*) PATTERN SEQ(A, B+) GROUP BY g WITHIN 20",
            )
            .unwrap(),
            parse_query(
                &reg,
                2,
                "RETURN COUNT(*) PATTERN SEQ(C, B+) GROUP BY g WITHIN 20",
            )
            .unwrap(),
        ];
        let mut events = Vec::new();
        for t in 0..200u64 {
            let ty = match t % 5 {
                0 => a,
                1 => c,
                _ => b,
            };
            events.push(Event::new(Ts(t), ty, vec![AttrValue::Int((t % 7) as i64)]));
        }
        (reg, queries, events)
    }

    #[test]
    fn parallel_matches_single_threaded_bit_identically() {
        let (reg, queries, events) = setup();
        // Reference: the raw engine, results sorted into report order.
        let mut eng =
            HamletEngine::new(reg.clone(), queries.clone(), EngineConfig::default()).unwrap();
        let mut reference = Vec::new();
        for e in &events {
            reference.extend(eng.process(e));
        }
        reference.extend(eng.flush());
        sort_results(&mut reference);
        for workers in [1u32, 2, 4, 7] {
            let par = ParallelEngine::new(
                reg.clone(),
                queries.clone(),
                EngineConfig::default(),
                workers,
            )
            .unwrap()
            .run(&events);
            // No normalization: the full result set — zero rows included —
            // is identical, in identical order.
            assert_eq!(reference, par.results, "{workers} workers");
            assert_eq!(par.stats.len(), workers as usize);
            assert_eq!(par.latency.len(), workers as usize);
            assert_eq!(par.events, events.len() as u64);
        }
    }

    /// Zero-length and ragged input batches are inert: a hand-off
    /// sequence with empty head/middle/tail batches and a trailing
    /// partial produces bit-identical results to the whole-slice run —
    /// an empty batch must be a no-op, not a watermark side-effect.
    #[test]
    fn empty_and_partial_input_batches_are_inert() {
        let (reg, queries, events) = setup();
        for workers in [1u32, 4] {
            let mk = || {
                ParallelEngine::new(
                    reg.clone(),
                    queries.clone(),
                    EngineConfig::default(),
                    workers,
                )
                .unwrap()
            };
            let base = mk().run(&events);
            let seq: Vec<&[Event]> = vec![
                &[],
                &events[0..1],
                &[],
                &events[1..64],
                &events[64..64],
                &events[64..199],
                &events[199..200],
                &[],
            ];
            let got = mk().run_batches(seq.into_iter());
            assert_eq!(base.results, got.results, "{workers} workers");
            assert_eq!(base.events, got.events);
        }
    }

    #[test]
    fn batch_size_does_not_change_results() {
        let (reg, queries, events) = setup();
        let base = ParallelEngine::new(reg.clone(), queries.clone(), EngineConfig::default(), 4)
            .unwrap()
            .run(&events);
        for batch in [1usize, 7, 1024] {
            let par = ParallelEngine::new(reg.clone(), queries.clone(), EngineConfig::default(), 4)
                .unwrap()
                .with_batch_size(batch)
                .run(&events);
            assert_eq!(base.results, par.results, "batch {batch}");
        }
    }

    #[test]
    fn results_are_sorted_by_window_query_key() {
        let (reg, queries, events) = setup();
        let par = ParallelEngine::new(reg.clone(), queries, EngineConfig::default(), 4)
            .unwrap()
            .run(&events);
        for pair in par.results.windows(2) {
            let ord = (pair[0].window_start, pair[0].query)
                .cmp(&(pair[1].window_start, pair[1].query))
                .then_with(|| pair[0].group_key.total_cmp(&pair[1].group_key));
            assert_ne!(ord, std::cmp::Ordering::Greater, "unsorted: {pair:?}");
        }
    }

    #[test]
    fn report_aggregates_workers() {
        let (reg, queries, events) = setup();
        let par = ParallelEngine::new(reg.clone(), queries, EngineConfig::default(), 4)
            .unwrap()
            .run(&events);
        let merged = par.merged_stats();
        assert_eq!(
            merged.events_routed,
            par.stats.iter().map(|s| s.events_routed).sum::<u64>()
        );
        assert_eq!(merged.windows_emitted, par.results.len() as u64);
        assert_eq!(par.total_peak_mem(), par.peak_mem.iter().sum::<usize>());
        assert!(par.max_peak_mem() <= par.total_peak_mem());
        assert_eq!(
            par.merged_latency().count(),
            par.latency.iter().map(|l| l.count()).sum::<u64>()
        );
        assert!(par.wall > Duration::ZERO);
        assert!(par.throughput_eps() > 0.0);
        assert_eq!(par.workers(), 4);
    }

    #[test]
    fn shards_partition_the_work() {
        let (reg, queries, events) = setup();
        let par = ParallelEngine::new(reg.clone(), queries, EngineConfig::default(), 4)
            .unwrap()
            .run(&events);
        // All 7 group-by keys are covered, each by exactly one worker.
        let keys: std::collections::BTreeSet<String> = par
            .results
            .iter()
            .map(|r| format!("{}", r.group_key))
            .collect();
        assert_eq!(keys.len(), 7);
        // Work split across more than one worker.
        let active = par.stats.iter().filter(|s| s.events_routed > 0).count();
        assert!(active >= 2, "work spread over workers: {active}");
        // Routing is exact: no worker saw more events than the stream.
        let routed: u64 = par.stats.iter().map(|s| s.events_routed).sum();
        assert!(routed <= events.len() as u64 * 2, "routing not broadcast");
        // Each result belongs to exactly one query per key/window (no
        // duplicates across workers).
        let mut seen = std::collections::BTreeSet::new();
        for r in &par.results {
            if r.query == QueryId(1) {
                assert!(
                    seen.insert((format!("{}", r.group_key), r.window_start)),
                    "duplicate result {r:?}"
                );
            }
        }
    }

    /// Checkpoint at an arbitrary barrier, resume, finish: the union of
    /// pre-barrier and post-resume results is byte-identical to one
    /// uninterrupted run, at 1 and several workers.
    #[test]
    fn checkpoint_resume_matches_uninterrupted() {
        let (reg, queries, events) = setup();
        for workers in [1u32, 4] {
            let eng = ParallelEngine::new(
                reg.clone(),
                queries.clone(),
                EngineConfig::default(),
                workers,
            )
            .unwrap();
            let gold = eng.run(&events);
            for cut in [0usize, 63, events.len()] {
                let pre = eng.run_to_checkpoint(&events[..cut]);
                assert_eq!(pre.checkpoint.workers(), workers);
                assert_eq!(pre.checkpoint.shard_bytes().len(), workers as usize);
                assert!(pre.checkpoint.total_bytes() > 0);
                // Serialize/deserialize the container as a file would.
                let blob = pre.checkpoint.to_bytes();
                let restored = ParallelCheckpoint::from_bytes(&blob).unwrap();
                let post = eng.resume(&restored, &events[cut..]).unwrap();
                let mut all = pre.report.results.clone();
                all.extend(post.results);
                sort_results(&mut all);
                assert_eq!(all, gold.results, "{workers} workers, cut {cut}");
            }
        }
    }

    /// Worker-count and container mismatches are clean errors.
    #[test]
    fn resume_validates_worker_count_and_container() {
        let (reg, queries, events) = setup();
        let four =
            ParallelEngine::new(reg.clone(), queries.clone(), EngineConfig::default(), 4).unwrap();
        let pre = four.run_to_checkpoint(&events[..50]);
        let two =
            ParallelEngine::new(reg.clone(), queries.clone(), EngineConfig::default(), 2).unwrap();
        assert!(matches!(
            two.resume(&pre.checkpoint, &events[50..]),
            Err(CheckpointError::WorkloadMismatch(_))
        ));
        assert!(matches!(
            ParallelCheckpoint::from_bytes(b"garbage!"),
            Err(CheckpointError::BadMagic)
        ));
        let blob = pre.checkpoint.to_bytes();
        assert!(ParallelCheckpoint::from_bytes(&blob[..blob.len() - 2]).is_err());
    }

    /// Runtime churn at a coordinated barrier: results are identical
    /// across worker counts (the 1-worker path is the reference), ops
    /// validate upfront, and the engine ends at the final workload.
    #[test]
    fn churned_run_is_worker_count_invariant() {
        let (reg, queries, events) = setup();
        let q3 = parse_query(
            &reg,
            9,
            "RETURN COUNT(*) PATTERN SEQ(A, B+) GROUP BY g WITHIN 10",
        )
        .unwrap();
        let ops = vec![
            (60usize, ChurnOp::Add(q3.clone())),
            (140usize, ChurnOp::Remove(QueryId(9))),
        ];
        let mut reference = None;
        for workers in [1u32, 2, 4] {
            let mut eng = ParallelEngine::new(
                reg.clone(),
                queries.clone(),
                EngineConfig::default(),
                workers,
            )
            .unwrap();
            let rep = eng.run_with_churn(&events, &ops).unwrap();
            assert_eq!(rep.events, events.len() as u64, "{workers} workers");
            match &reference {
                None => reference = Some(rep.results),
                Some(r) => assert_eq!(r, &rep.results, "{workers} workers"),
            }
            // The engine ended at the final (post-churn) workload: another
            // run must behave like a fresh engine over that workload.
            assert_eq!(eng.queries.len(), queries.len());
            let after = eng.run(&events);
            let fresh = ParallelEngine::new(
                reg.clone(),
                queries.clone(),
                EngineConfig::default(),
                workers,
            )
            .unwrap()
            .run(&events);
            assert_eq!(after.results, fresh.results, "{workers} workers, after");
        }
        // The churned results include q9's windows (drained or closed).
        let r = reference.unwrap();
        assert!(r.iter().any(|x| x.query == QueryId(9)));

        // Validation: a bad op sequence is rejected before any processing.
        let mut eng =
            ParallelEngine::new(reg.clone(), queries.clone(), EngineConfig::default(), 2).unwrap();
        assert!(matches!(
            eng.run_with_churn(&events, &[(0, ChurnOp::Remove(QueryId(77)))]),
            Err(ChurnError::Unknown(QueryId(77)))
        ));
        assert!(matches!(
            eng.run_with_churn(&events, &[(0, ChurnOp::Add(queries[0].clone()))]),
            Err(ChurnError::Duplicate(QueryId(1)))
        ));
    }

    /// A checkpoint taken after churn resumes into a `ParallelEngine`
    /// built with the final query set (the blob's epoch is adopted from
    /// the container), and rejects an engine whose set never churned.
    #[test]
    fn post_churn_checkpoint_resumes_with_epoch() {
        let (reg, queries, events) = setup();
        // Drive a single-shard churned prefix through the core engine to
        // get a post-churn parallel container.
        let mut eng = ParallelEngine::new(
            reg.clone(),
            vec![queries[0].clone(), queries[1].clone()],
            EngineConfig::default(),
            1,
        )
        .unwrap();
        let _ = eng
            .run_with_churn(&events[..100], &[(50, ChurnOp::Remove(QueryId(2)))])
            .unwrap();
        // Build the same churned state directly on a core engine and
        // checkpoint it as a 1-worker container.
        let mut core =
            HamletEngine::new(reg.clone(), queries.clone(), EngineConfig::default()).unwrap();
        let mut pre = Vec::new();
        for e in &events[..50] {
            pre.extend(core.process(e));
        }
        let rep = core.remove_query(QueryId(2)).unwrap();
        pre.extend(rep.drained);
        for e in &events[50..100] {
            pre.extend(core.process(e));
        }
        let container = ParallelCheckpoint {
            workers: 1,
            shards: vec![core.checkpoint()],
        };
        // Resume with the final (one-query) workload: epoch adopted.
        let final_set = vec![queries[0].clone()];
        let resumed = ParallelEngine::new(reg.clone(), final_set, EngineConfig::default(), 1)
            .unwrap()
            .resume(&container, &events[100..])
            .unwrap();
        let mut direct = Vec::new();
        for e in &events[100..] {
            direct.extend(core.process(e));
        }
        direct.extend(core.flush());
        sort_results(&mut direct);
        assert_eq!(direct, resumed.results);
        // An engine over the pre-churn two-query set cannot restore it.
        let err = ParallelEngine::new(reg.clone(), queries.clone(), EngineConfig::default(), 1)
            .unwrap()
            .resume(&container, &events[100..]);
        assert!(matches!(err, Err(CheckpointError::WorkloadMismatch(_))));
    }

    /// A live session matches the offline run across worker counts, and
    /// a chain cut mid-stream restores into a fresh session that
    /// finishes the stream identically (the 4-worker delta path of
    /// `tests/delta_checkpoint.rs`, in miniature).
    #[test]
    fn session_chain_cut_and_restore_matches_offline() {
        use crate::store::{CutKind, Snapshot};
        let (reg, queries, events) = setup();
        let offline = ParallelEngine::new(reg.clone(), queries.clone(), EngineConfig::default(), 4)
            .unwrap()
            .run(&events);
        for workers in [1u32, 4] {
            let par = ParallelEngine::new(
                reg.clone(),
                queries.clone(),
                EngineConfig::default(),
                workers,
            )
            .unwrap();
            let mut sess = par.session();
            let mut out = Vec::new();
            let mut chain = Vec::new();
            for (i, seg) in events.chunks(50).enumerate() {
                out.extend(sess.process(seg));
                let ck = sess.cut(CutKind::Delta).unwrap();
                assert_eq!(ck.is_delta(), i > 0, "first cut promotes to base");
                assert_eq!(ck.seq(), i as u64 + 1);
                chain.push(ck);
            }
            // The cut session and a chain-restored session describe the
            // same state: their next full cuts agree byte-for-byte...
            let mut revived = par.session();
            revived.restore_chain(&chain).unwrap();
            assert_eq!(
                revived.cut(CutKind::Full).unwrap().as_bytes(),
                sess.cut(CutKind::Full).unwrap().as_bytes()
            );
            // ...and they drain the remaining in-flight windows
            // identically.
            let flushed = sess.flush();
            assert_eq!(revived.flush(), flushed);
            out.extend(flushed);
            sort_results(&mut out);
            assert_eq!(out, offline.results, "{workers} workers");
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let (reg, queries, _) = setup();
        let _ = ParallelEngine::new(reg, queries, EngineConfig::default(), 0);
    }

    #[test]
    #[should_panic(expected = "at most 64 workers")]
    fn too_many_workers_rejected() {
        let (reg, queries, _) = setup();
        let _ = ParallelEngine::new(reg, queries, EngineConfig::default(), 65);
    }
}
