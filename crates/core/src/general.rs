//! General trend aggregation queries (§5): disjunction and conjunction.
//!
//! `COUNT(P1 ∨ P2)` and `COUNT(P1 ∧ P2)` are computed from the counts of
//! the sub-patterns, which are evaluated (and shared) as ordinary queries:
//!
//! ```text
//! COUNT(P1 ∨ P2) = C1' + C2' + C1,2
//! COUNT(P1 ∧ P2) = C1'·C2' + C1'·C1,2 + C2'·C1,2 + (C1,2 choose 2)
//! ```
//!
//! with `C1' = C1 − C1,2`, `C2' = C2 − C1,2` and `C1,2` the count of trends
//! matched by both branches. Deciding `C1,2` for arbitrary branch patterns
//! requires a pattern-intersection construction; this implementation covers
//! the two cases that arise in practice — identical branches
//! (`C1,2 = C1`) and branches over differing type sets (`C1,2 = 0`) — and
//! rejects the rest (documented in DESIGN.md).
//!
//! Negation (`SEQ(P1, NOT N, P2)`) is handled natively inside the run
//! engine via blocking watermarks (see [`crate::run`]), not here.

use hamlet_query::{AggFunc, Pattern, Query, QueryId};
use hamlet_types::TrendVal;
use std::fmt;

/// How two branch counts combine.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CombineKind {
    /// Disjunction (`P1 ∨ P2`).
    Or,
    /// Conjunction (`P1 ∧ P2`).
    And,
}

/// A decomposed general query: two branch queries plus a combiner.
#[derive(Clone, Debug)]
pub struct Decomposition {
    /// Left branch (same clauses as the original, pattern = `P1`).
    pub left: Query,
    /// Right branch (pattern = `P2`).
    pub right: Query,
    /// Combination rule.
    pub kind: CombineKind,
    /// True iff the branch patterns are identical (`C1,2 = C1`).
    pub same_pattern: bool,
}

/// Why a general query cannot be decomposed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GeneralError {
    /// Disjunction/conjunction only support `COUNT(*)` (the paper's §5
    /// formulas are trend counts).
    NonCountAggregate,
    /// Branch patterns overlap on some but not all types, so `C1,2` is not
    /// derivable without a pattern-intersection construction.
    AmbiguousOverlap,
    /// `OR`/`AND` nested below the top level.
    NestedGeneralOperator,
}

impl fmt::Display for GeneralError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeneralError::NonCountAggregate => {
                write!(f, "OR/AND queries support COUNT(*) only")
            }
            GeneralError::AmbiguousOverlap => write!(
                f,
                "OR/AND branches must be identical or type-disjoint to derive C1,2"
            ),
            GeneralError::NestedGeneralOperator => {
                write!(f, "OR/AND must be the top-level pattern operator")
            }
        }
    }
}

impl std::error::Error for GeneralError {}

fn contains_general(p: &Pattern) -> bool {
    match p {
        Pattern::Type(_) => false,
        Pattern::Kleene(i) | Pattern::Not(i) => contains_general(i),
        Pattern::Seq(ps) => ps.iter().any(contains_general),
        Pattern::Or(_, _) | Pattern::And(_, _) => true,
    }
}

/// Decomposes a top-level `OR`/`AND` query into branch queries with fresh
/// ids `left_id` and `right_id`. Returns `Ok(None)` for ordinary queries.
pub fn decompose(
    q: &Query,
    left_id: QueryId,
    right_id: QueryId,
) -> Result<Option<Decomposition>, GeneralError> {
    let (p1, p2, kind) = match &q.pattern {
        Pattern::Or(a, b) => (a, b, CombineKind::Or),
        Pattern::And(a, b) => (a, b, CombineKind::And),
        other => {
            if contains_general(other) {
                return Err(GeneralError::NestedGeneralOperator);
            }
            return Ok(None);
        }
    };
    if contains_general(p1) || contains_general(p2) {
        return Err(GeneralError::NestedGeneralOperator);
    }
    if q.agg != AggFunc::CountStar {
        return Err(GeneralError::NonCountAggregate);
    }
    let same = p1 == p2;
    if !same {
        let t1 = p1.event_types();
        let t2 = p2.event_types();
        if t1.intersection(&t2).next().is_some() {
            return Err(GeneralError::AmbiguousOverlap);
        }
    }
    let mk = |id: QueryId, p: &Pattern| {
        let mut sub = q.clone();
        sub.id = id;
        sub.pattern = p.clone();
        sub
    };
    Ok(Some(Decomposition {
        left: mk(left_id, p1),
        right: mk(right_id, p2),
        kind,
        same_pattern: same,
    }))
}

/// `c·(c−1)/2` in the ring: one of the factors is even before wrapping, so
/// divide that one. (Exact for true counts below 2⁶⁴; see DESIGN.md.)
fn choose2(c: TrendVal) -> TrendVal {
    if c.0.is_multiple_of(2) {
        TrendVal(c.0 / 2) * (c - TrendVal::ONE)
    } else {
        c * TrendVal((c.0.wrapping_sub(1)) / 2)
    }
}

/// Combines branch counts into the general query's count (§5 formulas).
pub fn combine(kind: CombineKind, c1: TrendVal, c2: TrendVal, same_pattern: bool) -> TrendVal {
    let c12 = if same_pattern { c1 } else { TrendVal::ZERO };
    let c1p = c1 - c12;
    let c2p = c2 - c12;
    match kind {
        CombineKind::Or => c1p + c2p + c12,
        CombineKind::And => c1p * c2p + c1p * c12 + c2p * c12 + choose2(c12),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamlet_query::Window;
    use hamlet_types::EventTypeId;

    const A: EventTypeId = EventTypeId(0);
    const B: EventTypeId = EventTypeId(1);
    const C: EventTypeId = EventTypeId(2);
    const D: EventTypeId = EventTypeId(3);

    fn seq(a: EventTypeId, b: EventTypeId) -> Pattern {
        Pattern::seq(vec![Pattern::Type(a), Pattern::plus(Pattern::Type(b))])
    }

    #[test]
    fn ordinary_query_passes_through() {
        let q = Query::count_star(0, seq(A, B), Window::tumbling(10));
        assert!(decompose(&q, QueryId(10), QueryId(11)).unwrap().is_none());
    }

    #[test]
    fn or_decomposes_disjoint_branches() {
        let p = Pattern::Or(Box::new(seq(A, B)), Box::new(seq(C, D)));
        let q = Query::count_star(0, p, Window::tumbling(10));
        let d = decompose(&q, QueryId(10), QueryId(11)).unwrap().unwrap();
        assert_eq!(d.kind, CombineKind::Or);
        assert!(!d.same_pattern);
        assert_eq!(d.left.id, QueryId(10));
        assert_eq!(d.right.pattern, seq(C, D));
    }

    #[test]
    fn overlapping_branches_rejected() {
        let p = Pattern::Or(Box::new(seq(A, B)), Box::new(seq(C, B)));
        let q = Query::count_star(0, p, Window::tumbling(10));
        assert!(matches!(
            decompose(&q, QueryId(10), QueryId(11)),
            Err(GeneralError::AmbiguousOverlap)
        ));
    }

    #[test]
    fn identical_branches_allowed() {
        let p = Pattern::Or(Box::new(seq(A, B)), Box::new(seq(A, B)));
        let q = Query::count_star(0, p, Window::tumbling(10));
        let d = decompose(&q, QueryId(10), QueryId(11)).unwrap().unwrap();
        assert!(d.same_pattern);
        // COUNT(P ∨ P) = C.
        assert_eq!(
            combine(CombineKind::Or, TrendVal(7), TrendVal(7), true),
            TrendVal(7)
        );
    }

    #[test]
    fn nested_or_rejected() {
        let p = Pattern::seq(vec![
            Pattern::Type(A),
            Pattern::Or(Box::new(Pattern::Type(B)), Box::new(Pattern::Type(C))),
        ]);
        // Bypass Query::count_star validation-compatible constructor.
        let q = Query::new(
            QueryId(0),
            p,
            AggFunc::CountStar,
            vec![],
            vec![],
            vec![],
            vec![],
            Window::tumbling(10),
        )
        .unwrap();
        assert!(matches!(
            decompose(&q, QueryId(10), QueryId(11)),
            Err(GeneralError::NestedGeneralOperator)
        ));
    }

    #[test]
    fn or_and_combination_formulas() {
        // Disjoint branches: OR adds, AND multiplies.
        assert_eq!(
            combine(CombineKind::Or, TrendVal(3), TrendVal(4), false),
            TrendVal(7)
        );
        assert_eq!(
            combine(CombineKind::And, TrendVal(3), TrendVal(4), false),
            TrendVal(12)
        );
        // Identical branches: AND pairs distinct trends: C(7,2) = 21.
        assert_eq!(
            combine(CombineKind::And, TrendVal(7), TrendVal(7), true),
            TrendVal(21)
        );
    }

    #[test]
    fn choose2_handles_parity() {
        assert_eq!(choose2(TrendVal(6)), TrendVal(15));
        assert_eq!(choose2(TrendVal(7)), TrendVal(21));
        assert_eq!(choose2(TrendVal(0)), TrendVal(0));
        assert_eq!(choose2(TrendVal(1)), TrendVal(0));
    }

    #[test]
    fn non_count_aggregate_rejected() {
        let p = Pattern::Or(Box::new(seq(A, B)), Box::new(seq(C, D)));
        let q = Query::new(
            QueryId(0),
            p,
            AggFunc::Sum(B, 0),
            vec![],
            vec![],
            vec![],
            vec![],
            Window::tumbling(10),
        )
        .unwrap();
        assert!(matches!(
            decompose(&q, QueryId(10), QueryId(11)),
            Err(GeneralError::NonCountAggregate)
        ));
    }
}
