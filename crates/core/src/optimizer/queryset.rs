//! Choice of the query set to share with (§4.3).
//!
//! The full space of sharing plans is exponential (Fig. 7); Theorems 4.1
//! and 4.2 prune it to the plans at Levels 1–2 — one shared set plus
//! singletons — classified per query:
//!
//! * **Snapshot-driven pruning** (Thm. 4.1): queries that introduce no
//!   snapshots belong in the shared set.
//! * **Benefit-driven pruning** (Thm. 4.2): whether sharing a
//!   snapshot-introducing query is beneficial is monotone in its snapshot
//!   cost, so candidates can be ranked once.
//!
//! Under Eq. 8 the snapshot-maintenance term is `sc·k·g·p` — the snapshot
//! count multiplies the member count — so the cheapest plan that shares
//! `k` queries always consists of the `k` smallest-`sc` candidates. The
//! optimizer therefore sorts candidates by their snapshot cost and picks
//! the cost-minimal prefix: O(m log m), *exactly* optimal over the
//! Level-1/2 plan space (validated against exhaustive search in
//! [`crate::optimizer::exhaustive`]).

use super::benefit::{nonshared_cost, shared_cost, CostFactors};
use crate::bitset::QSet;
use crate::run::BurstCtx;

/// Outcome of the per-burst optimization.
#[derive(Clone, Debug)]
pub struct Decision {
    /// Members that share the burst's graphlet (empty ⇒ no sharing).
    pub share: QSet,
    /// Estimated `Benefit(G_E, Q_E)` of the chosen plan over all-solo
    /// execution (Eq. 8 / Def. 12).
    pub estimated_benefit: f64,
}

impl Decision {
    fn none() -> Decision {
        Decision {
            share: QSet::new(),
            estimated_benefit: 0.0,
        }
    }
}

/// Chooses the subset of candidate queries to share a burst with
/// (Theorems 4.1–4.2): the cost-minimal sharing plan under the Eq. 8
/// model, compared against fully non-shared execution (Def. 12).
pub fn choose_query_set(ctx: &BurstCtx, b: u64) -> Decision {
    let m = ctx.candidates.len();
    if m < 2 {
        return Decision::none();
    }
    let bf = b as f64;
    // The burst joins (or forms) a graphlet of this prospective size.
    let g = (ctx.g + b) as f64;
    let factors = CostFactors {
        b: bf,
        n: ctx.n as f64,
        g,
        sp: (ctx.sp as f64).max(1.0),
        p: ctx.p,
    };

    // Per-candidate snapshot estimate: selection divergence counts one
    // event-level snapshot per diverging event (Def. 9); edge predicates
    // force one per burst event.
    let mut ranked: Vec<(f64, usize)> = (0..m)
        .map(|i| {
            let sc = ctx.diverging[i] as f64 + if ctx.has_edge[i] { bf } else { 0.0 };
            (sc, i)
        })
        .collect();
    ranked.sort_by(|a, b| a.0.total_cmp(&b.0));

    let solo_one = nonshared_cost(1.0, &factors);
    let all_solo = m as f64 * solo_one;

    // Cost-minimal prefix: sharing the k smallest-sc candidates, k = 2..m.
    // `acc` accumulates 1 (the graphlet-level snapshot, Def. 8) plus the
    // prefix's per-query snapshot estimates.
    let mut best_cost = all_solo;
    let mut best_k = 0usize;
    let mut acc = 1.0;
    for (k, (sc, _)) in ranked.iter().enumerate() {
        acc += sc;
        let members = k + 1;
        if members < 2 {
            continue;
        }
        let cost = shared_cost(members as f64, acc, &factors) + (m - members) as f64 * solo_one;
        if cost < best_cost {
            best_cost = cost;
            best_k = members;
        }
    }

    if best_k < 2 {
        return Decision {
            share: QSet::new(),
            estimated_benefit: 0.0,
        };
    }
    let share: QSet = ranked[..best_k]
        .iter()
        .map(|&(_, i)| ctx.candidates[i])
        .collect();
    Decision {
        share,
        estimated_benefit: all_solo - best_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(
        n: u64,
        g: u64,
        sp: usize,
        candidates: Vec<usize>,
        diverging: Vec<u64>,
        has_edge: Vec<bool>,
    ) -> BurstCtx {
        BurstCtx {
            n,
            g,
            sp,
            p: 2.0,
            currently_shared: false,
            diverging,
            has_edge,
            candidates,
        }
    }

    #[test]
    fn no_divergence_shares_everyone() {
        let c = ctx(100, 0, 0, vec![0, 1, 2], vec![0, 0, 0], vec![false; 3]);
        let d = choose_query_set(&c, 10);
        assert_eq!(d.share.len(), 3);
        assert!(d.estimated_benefit > 0.0);
    }

    #[test]
    fn single_candidate_never_shares() {
        let c = ctx(100, 0, 0, vec![0], vec![0], vec![false]);
        assert!(choose_query_set(&c, 10).share.is_empty());
    }

    #[test]
    fn heavy_divergers_are_excluded() {
        // Query 2 diverges massively — its snapshot-maintenance cost
        // dominates — while the snapshot-free queries still share.
        let c = ctx(
            50,
            0,
            0,
            vec![0, 1, 2],
            vec![0, 0, 400],
            vec![false, false, false],
        );
        let d = choose_query_set(&c, 4);
        assert!(d.share.contains(0) && d.share.contains(1));
        assert!(!d.share.contains(2));
    }

    #[test]
    fn snapshot_free_queries_always_kept_with_light_divergers() {
        // A lightly diverging query is kept when n is large (re-computation
        // dominates), mirroring the merge decision of Eq. 11.
        let c = ctx(10_000, 0, 1, vec![0, 1], vec![0, 2], vec![false, false]);
        let d = choose_query_set(&c, 50);
        assert_eq!(d.share.len(), 2);
        assert!(d.estimated_benefit > 0.0);
    }

    #[test]
    fn all_heavy_divergence_disables_sharing() {
        // Everyone needs a snapshot per event on a tiny window — Eq. 10
        // style split: benefit negative, no sharing.
        let c = ctx(2, 512, 6, vec![0, 1], vec![2, 2], vec![true, true]);
        let d = choose_query_set(&c, 2);
        assert!(d.share.is_empty());
    }

    #[test]
    fn edge_predicates_count_as_per_event_snapshots() {
        // With a tiny window, an edge-predicate member is excluded while
        // the clean members share.
        let c = ctx(
            40,
            0,
            0,
            vec![3, 5, 9],
            vec![0, 0, 0],
            vec![false, true, false],
        );
        let d = choose_query_set(&c, 16);
        assert!(d.share.contains(3) && d.share.contains(9));
        assert!(!d.share.contains(5));
    }

    #[test]
    fn policy_dispatch() {
        use crate::optimizer::{decide, SharingPolicy};
        let c = ctx(100, 0, 0, vec![0, 1], vec![0, 0], vec![false, false]);
        assert!(decide(SharingPolicy::NeverShare, &c, 10).share.is_empty());
        assert_eq!(decide(SharingPolicy::AlwaysShare, &c, 10).share.len(), 2);
        assert_eq!(decide(SharingPolicy::Dynamic, &c, 10).share.len(), 2);
        // AlwaysShare with a single candidate still cannot share.
        let c1 = ctx(100, 0, 0, vec![0], vec![0], vec![false]);
        assert!(decide(SharingPolicy::AlwaysShare, &c1, 10).share.is_empty());
    }
}
