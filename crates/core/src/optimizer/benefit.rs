//! The dynamic sharing benefit model (§4.1, Def. 12 / Eq. 8).
//!
//! For a burst `B_E` of `b` events of a sharable type `E`:
//!
//! ```text
//! Shared(G_E, Q_E)    = sc·k·g·p + b·(log₂g + n·sp)
//! NonShared(Gⁱ_E, Q_E) = k·b·(log₂g + n)
//! Benefit             = NonShared − Shared
//! ```
//!
//! where `k` = queries sharing, `g` = events per graphlet, `n` = events per
//! window, `p` = predecessor types per type per query, `sc` = snapshots
//! created from the burst, `sp` = snapshots propagated while processing it
//! (Table 2). Sharing pays off when the re-computation saved across `k`
//! queries outweighs the snapshot-maintenance overhead.

/// Stream statistics the model plugs in (all observed locally, making each
/// decision O(1) — §4.2 complexity analysis).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct CostFactors {
    /// Events in the burst (`b`).
    pub b: f64,
    /// Events per window so far (`n`).
    pub n: f64,
    /// Events in the (prospective) graphlet (`g`).
    pub g: f64,
    /// Snapshots propagated at a time (`sp`).
    pub sp: f64,
    /// Predecessor types per type per query (`p`).
    pub p: f64,
}

#[inline]
fn log2(g: f64) -> f64 {
    g.max(1.0).log2()
}

/// Cost of processing the burst in a graphlet shared by `k` queries,
/// creating `sc` snapshots (Eq. 8, first line).
pub fn shared_cost(k: f64, sc: f64, f: &CostFactors) -> f64 {
    sc * k * f.g * f.p + f.b * (log2(f.g) + f.n * f.sp)
}

/// Cost of processing the burst in `k` separate per-query graphlets
/// (Eq. 8, second line).
pub fn nonshared_cost(k: f64, f: &CostFactors) -> f64 {
    k * f.b * (log2(f.g) + f.n)
}

/// `Benefit = NonShared − Shared`; positive means sharing wins (Def. 12).
pub fn benefit(k: f64, sc: f64, f: &CostFactors) -> f64 {
    nonshared_cost(k, f) - shared_cost(k, sc, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Eq. 9: b=4, n=7, sp=1, sc=1, k=2, g=4, p=2 (the example uses
    /// the simplified Def. 11 without the log₂ term; with Eq. 8 the log₂g
    /// terms appear on both sides).
    ///
    /// Def. 11 (Eq. 9): Shared = 4·7·1 + 1·2·4·2 = 44, NonShared = 2·4·7 =
    /// 56, Benefit = 12 > 0. Eq. 8 adds b·log₂g = 8 to Shared and
    /// k·b·log₂g = 16 to NonShared → Benefit = 12 + 8 = 20 > 0: same
    /// decision.
    #[test]
    fn equation9_decision_to_share() {
        let f = CostFactors {
            b: 4.0,
            n: 7.0,
            g: 4.0,
            sp: 1.0,
            p: 2.0,
        };
        let shared = shared_cost(2.0, 1.0, &f);
        let nonshared = nonshared_cost(2.0, &f);
        assert_eq!(shared, 44.0 + 4.0 * 2.0); // Def. 11 value + b·log₂g
        assert_eq!(nonshared, 56.0 + 8.0 * 2.0); // Def. 11 value + k·b·log₂g
        assert!(benefit(2.0, 1.0, &f) > 0.0);
    }

    /// Paper Eq. 10: predicates force sp=2, sc=1, g=8, n=11 → sharing
    /// loses. Def. 11: Shared = 4·11·2 + 1·2·8·2 = 120, NonShared = 2·4·11
    /// = 88, Benefit = −32. Eq. 8 adds 4·3 = 12 vs 2·4·3 = 24 → −32 + 12 =
    /// −20 < 0: same decision (split).
    #[test]
    fn equation10_decision_to_split() {
        let f = CostFactors {
            b: 4.0,
            n: 11.0,
            g: 8.0,
            sp: 2.0,
            p: 2.0,
        };
        assert_eq!(shared_cost(2.0, 1.0, &f), 120.0 + 4.0 * 3.0);
        assert_eq!(nonshared_cost(2.0, &f), 88.0 + 8.0 * 3.0);
        assert!(benefit(2.0, 1.0, &f) < 0.0);
    }

    /// Paper Eq. 11: burst without new divergence merges again: n=15,
    /// g=4, sp=1, sc=1 → Benefit = 120 − 76 = 44 > 0 (Def. 11); Eq. 8
    /// preserves the sign.
    #[test]
    fn equation11_decision_to_merge() {
        let f = CostFactors {
            b: 4.0,
            n: 15.0,
            g: 4.0,
            sp: 1.0,
            p: 2.0,
        };
        assert_eq!(shared_cost(2.0, 1.0, &f), 76.0 + 4.0 * 2.0);
        assert_eq!(nonshared_cost(2.0, &f), 120.0 + 8.0 * 2.0);
        assert!(benefit(2.0, 1.0, &f) > 0.0);
    }

    #[test]
    fn more_queries_increase_benefit() {
        // §4.1: the more queries share, the higher the benefit.
        let f = CostFactors {
            b: 10.0,
            n: 100.0,
            g: 20.0,
            sp: 1.0,
            p: 1.5,
        };
        let b2 = benefit(2.0, 1.0, &f);
        let b10 = benefit(10.0, 1.0, &f);
        assert!(b10 > b2);
    }

    #[test]
    fn more_snapshots_decrease_benefit() {
        let f = CostFactors {
            b: 10.0,
            n: 100.0,
            g: 20.0,
            sp: 1.0,
            p: 1.5,
        };
        assert!(benefit(5.0, 1.0, &f) > benefit(5.0, 10.0, &f));
        let f_heavy = CostFactors { sp: 8.0, ..f };
        assert!(benefit(5.0, 1.0, &f) > benefit(5.0, 1.0, &f_heavy));
    }

    #[test]
    fn log_term_is_safe_at_zero() {
        let f = CostFactors {
            b: 1.0,
            n: 0.0,
            g: 0.0,
            sp: 0.0,
            p: 1.0,
        };
        assert_eq!(shared_cost(1.0, 0.0, &f), 0.0);
        assert_eq!(nonshared_cost(1.0, &f), 0.0);
    }
}
