//! Runtime stream statistics for O(1) sharing decisions (§4.2).
//!
//! The paper's optimizer "simply plugs in locally available stream
//! statistics" — it does not re-scan the burst. This module maintains
//! exponential moving averages of each member query's *divergence rate*
//! per event type (the fraction of burst events whose predicate outcome
//! differs from the other sharing candidates, the Def. 9 snapshot
//! trigger). The executor can then predict `sc` for a new burst in O(k)
//! instead of O(k·b).
//!
//! The estimator only influences *decisions*, never results: whichever
//! sharing set is chosen, the run engine produces exact aggregates
//! (asserted in the integration tests).

/// Per-(type, member) exponential moving average of divergence rates.
#[derive(Clone, Debug)]
pub struct DivergenceEstimator {
    alpha: f64,
    /// `rates[type][member]` ∈ [0, 1].
    rates: Vec<Vec<f64>>,
    /// Whether a type/member cell has ever been observed (cold cells
    /// predict optimistically: 0 divergence, favoring sharing — matching
    /// the paper's bias toward harvesting sharing opportunities).
    seen: Vec<Vec<bool>>,
}

impl DivergenceEstimator {
    /// Creates an estimator for `num_types` local types and `k` members.
    /// `alpha` is the EMA smoothing factor (weight of the newest burst).
    pub fn new(num_types: usize, k: usize, alpha: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha in [0,1]");
        DivergenceEstimator {
            alpha,
            rates: vec![vec![0.0; k]; num_types],
            seen: vec![vec![false; k]; num_types],
        }
    }

    /// Predicted number of diverging events for member `q` in a burst of
    /// `b` events of type `ty`.
    pub fn predict(&self, ty: usize, q: usize, b: u64) -> u64 {
        (self.rates[ty][q] * b as f64).round() as u64
    }

    /// Records the observed divergence of one burst.
    pub fn observe(&mut self, ty: usize, q: usize, diverged: u64, b: u64) {
        if b == 0 {
            return;
        }
        let rate = (diverged as f64 / b as f64).clamp(0.0, 1.0);
        let cell = &mut self.rates[ty][q];
        if self.seen[ty][q] {
            *cell = self.alpha * rate + (1.0 - self.alpha) * *cell;
        } else {
            *cell = rate;
            self.seen[ty][q] = true;
        }
    }

    /// Records an aggregate observation (event-level snapshots created
    /// per burst, attributed uniformly across `members`) — used when the
    /// exact per-member scan was skipped.
    pub fn observe_aggregate(&mut self, ty: usize, members: &[usize], snapshots: u64, b: u64) {
        if members.is_empty() || b == 0 {
            return;
        }
        let per_member = snapshots / members.len().max(1) as u64;
        for &q in members {
            self.observe(ty, q, per_member.min(b), b);
        }
    }

    /// Current rate estimate (for inspection/tests).
    pub fn rate(&self, ty: usize, q: usize) -> f64 {
        self.rates[ty][q]
    }

    /// Serializes the learned statistics (checkpoint codec). The
    /// estimator only steers sharing *decisions*, never result values,
    /// but restoring it keeps a resumed run's decision sequence — and so
    /// its performance counters — identical to an uninterrupted one.
    pub(crate) fn encode(&self, e: &mut crate::checkpoint::Enc) {
        e.f64(self.alpha);
        e.usize(self.rates.len());
        e.usize(self.rates.first().map_or(0, Vec::len));
        for row in &self.rates {
            for &r in row {
                e.f64(r);
            }
        }
        for row in &self.seen {
            for &s in row {
                e.bool(s);
            }
        }
    }

    /// Mirror of [`encode`](Self::encode). `expect_nt`/`expect_k` are
    /// the compiled runtime's dimensions: a blob whose embedded shape
    /// disagrees is corrupt, and must fail here rather than decode into
    /// a table the executor will later index out of bounds.
    pub(crate) fn decode(
        d: &mut crate::checkpoint::Dec<'_>,
        expect_nt: usize,
        expect_k: usize,
    ) -> Result<DivergenceEstimator, crate::checkpoint::CheckpointError> {
        let alpha = d.f64()?;
        if !(0.0..=1.0).contains(&alpha) {
            return Err(crate::checkpoint::CheckpointError::Corrupt(format!(
                "estimator alpha {alpha}"
            )));
        }
        let nt = d.seq_len()?;
        let k = d.usize()?;
        if nt != expect_nt || (nt > 0 && k != expect_k) {
            return Err(crate::checkpoint::CheckpointError::Corrupt(format!(
                "estimator shape {nt}×{k}, compiled runtime is {expect_nt}×{expect_k}"
            )));
        }
        let mut rates = Vec::with_capacity(nt);
        for _ in 0..nt {
            let mut row = Vec::with_capacity(k);
            for _ in 0..k {
                row.push(d.f64()?);
            }
            rates.push(row);
        }
        let mut seen = Vec::with_capacity(nt);
        for _ in 0..nt {
            let mut row = Vec::with_capacity(k);
            for _ in 0..k {
                row.push(d.bool()?);
            }
            seen.push(row);
        }
        Ok(DivergenceEstimator { alpha, rates, seen })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_cells_predict_zero() {
        let e = DivergenceEstimator::new(2, 3, 0.5);
        assert_eq!(e.predict(0, 0, 100), 0);
        assert_eq!(e.rate(1, 2), 0.0);
    }

    #[test]
    fn first_observation_sets_rate() {
        let mut e = DivergenceEstimator::new(1, 1, 0.1);
        e.observe(0, 0, 30, 100);
        assert!((e.rate(0, 0) - 0.3).abs() < 1e-9);
        assert_eq!(e.predict(0, 0, 10), 3);
    }

    #[test]
    fn ema_converges_toward_new_rate() {
        let mut e = DivergenceEstimator::new(1, 1, 0.5);
        e.observe(0, 0, 0, 100);
        for _ in 0..10 {
            e.observe(0, 0, 100, 100);
        }
        assert!(e.rate(0, 0) > 0.99);
        // And back down.
        for _ in 0..10 {
            e.observe(0, 0, 0, 100);
        }
        assert!(e.rate(0, 0) < 0.01);
    }

    #[test]
    fn empty_burst_ignored() {
        let mut e = DivergenceEstimator::new(1, 1, 0.5);
        e.observe(0, 0, 0, 0);
        assert_eq!(e.rate(0, 0), 0.0);
        assert_eq!(e.predict(0, 0, 0), 0);
    }

    #[test]
    fn aggregate_attribution() {
        let mut e = DivergenceEstimator::new(1, 4, 1.0);
        e.observe_aggregate(0, &[1, 3], 20, 40);
        assert!((e.rate(0, 1) - 0.25).abs() < 1e-9);
        assert!((e.rate(0, 3) - 0.25).abs() < 1e-9);
        assert_eq!(e.rate(0, 0), 0.0);
        e.observe_aggregate(0, &[], 20, 40); // no-op
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_rejected() {
        DivergenceEstimator::new(1, 1, 1.5);
    }
}
