//! Exhaustive sharing-plan search over the Fig. 7 space, used to *validate*
//! the pruned optimizer.
//!
//! The paper prunes the exponential space of sharing plans to an O(m) scan
//! (Theorems 4.1–4.2). This module evaluates plans without pruning:
//! every subset S of the candidates is costed as
//! `Shared(S) + Σ_{q ∉ S} NonShared({q})` under Eq. 8, restricted — like
//! the paper's optimizer (§4.3 "Consequence of Pruning Principles") — to
//! plans with one shared set plus singletons (Levels 1–2 of Fig. 7).
//! Tests assert the pruned choice achieves the exhaustive minimum cost.
//! It is exponential in the candidate count and intended for tests and
//! ablation benchmarks only.

use super::benefit::{nonshared_cost, shared_cost, CostFactors};
use crate::bitset::QSet;
use crate::run::BurstCtx;

/// Cost of the plan that shares exactly `share_idx` (indices into
/// `ctx.candidates`) and runs everyone else solo.
pub fn plan_cost(ctx: &BurstCtx, b: u64, share_idx: &[usize]) -> f64 {
    let bf = b as f64;
    let g = (ctx.g + b) as f64;
    let factors = CostFactors {
        b: bf,
        n: ctx.n as f64,
        g,
        sp: (ctx.sp as f64).max(1.0),
        p: ctx.p,
    };
    let k_total = ctx.candidates.len();
    let k_shared = share_idx.len();
    let k_solo = (k_total - k_shared) as f64;
    let mut cost = k_solo * nonshared_cost(1.0, &factors);
    if k_shared >= 2 {
        let sc: f64 = 1.0
            + share_idx
                .iter()
                .map(|&i| ctx.diverging[i] as f64 + if ctx.has_edge[i] { bf } else { 0.0 })
                .sum::<f64>();
        cost += shared_cost(k_shared as f64, sc, &factors);
    } else {
        // A "shared" set of < 2 queries is just solo execution.
        cost += k_shared as f64 * nonshared_cost(1.0, &factors);
    }
    cost
}

/// Brute-force minimum over all one-shared-set plans. Returns the best
/// share set (as member indices) and its cost.
pub fn best_plan(ctx: &BurstCtx, b: u64) -> (QSet, f64) {
    let m = ctx.candidates.len();
    assert!(m <= 20, "exhaustive search is for small candidate sets");
    let mut best: (Vec<usize>, f64) = (Vec::new(), plan_cost(ctx, b, &[]));
    for mask in 1u32..(1 << m) {
        let share_idx: Vec<usize> = (0..m).filter(|i| mask & (1 << i) != 0).collect();
        if share_idx.len() == 1 {
            continue; // identical to the all-solo plan
        }
        let cost = plan_cost(ctx, b, &share_idx);
        if cost < best.1 {
            best = (share_idx, cost);
        }
    }
    let set: QSet = best.0.iter().map(|&i| ctx.candidates[i]).collect();
    (set, best.1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::choose_query_set;
    use proptest::prelude::*;

    fn ctx(n: u64, g: u64, sp: usize, diverging: Vec<u64>, has_edge: Vec<bool>) -> BurstCtx {
        let m = diverging.len();
        BurstCtx {
            n,
            g,
            sp,
            p: 2.0,
            currently_shared: false,
            candidates: (0..m).collect(),
            diverging,
            has_edge,
        }
    }

    #[test]
    fn all_solo_plan_cost_is_k_times_single() {
        let c = ctx(100, 10, 1, vec![0, 0, 0], vec![false; 3]);
        let solo = plan_cost(&c, 8, &[]);
        let single = plan_cost(&ctx(100, 10, 1, vec![0], vec![false]), 8, &[]);
        assert!((solo - 3.0 * single).abs() < 1e-9);
    }

    #[test]
    fn pruned_choice_matches_exhaustive_on_examples() {
        for (n, g, diverging) in [
            (1000u64, 0u64, vec![0u64, 0, 0, 0]),
            (1000, 0, vec![0, 0, 500, 0]),
            (10, 300, vec![5, 5, 5, 5]),
            (5000, 50, vec![0, 3, 0, 80]),
        ] {
            let m = diverging.len();
            let c = ctx(n, g, 1, diverging.clone(), vec![false; m]);
            let b = 16;
            let pruned = choose_query_set(&c, b);
            let pruned_idx: Vec<usize> = (0..m)
                .filter(|&i| pruned.share.contains(c.candidates[i]))
                .collect();
            let pruned_cost = plan_cost(&c, b, &pruned_idx);
            let (_, best_cost) = best_plan(&c, b);
            assert!(
                pruned_cost <= best_cost + 1e-6,
                "diverging {diverging:?}: pruned {pruned_cost} vs best {best_cost}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Theorems 4.1/4.2: the O(m) pruned choice achieves the
        /// exhaustive minimum plan cost over randomized burst statistics.
        #[test]
        fn pruning_is_optimal(
            n in 1u64..100_000,
            g in 0u64..5_000,
            sp in 0usize..8,
            b in 1u64..512,
            diverging in proptest::collection::vec(0u64..512, 2..9),
            edge_bits in proptest::collection::vec(any::<bool>(), 9),
        ) {
            let m = diverging.len();
            let has_edge = edge_bits[..m].to_vec();
            let c = ctx(n, g, sp, diverging, has_edge);
            let pruned = choose_query_set(&c, b);
            let pruned_idx: Vec<usize> = (0..m)
                .filter(|&i| pruned.share.contains(c.candidates[i]))
                .collect();
            let pruned_cost = plan_cost(&c, b, &pruned_idx);
            let (_, best_cost) = best_plan(&c, b);
            prop_assert!(
                pruned_cost <= best_cost + 1e-6 * best_cost.abs().max(1.0),
                "pruned {} vs exhaustive best {}",
                pruned_cost,
                best_cost
            );
        }
    }
}
