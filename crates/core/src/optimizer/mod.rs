//! The dynamic sharing optimizer (§4).
//!
//! Per burst of events of a sharable type, the optimizer (i) estimates the
//! benefit of shared vs. non-shared execution from locally available stream
//! statistics (§4.1, Def. 12 / Eq. 8), (ii) chooses the subset of queries
//! worth sharing with (§4.3, Theorems 4.1–4.2), and (iii) instructs the
//! executor to split or merge graphlets accordingly (§4.2).

pub mod benefit;
pub mod exhaustive;
pub mod queryset;
pub mod stats;

pub use benefit::{benefit, nonshared_cost, shared_cost, CostFactors};
pub use queryset::{choose_query_set, Decision};
pub use stats::DivergenceEstimator;

use crate::bitset::QSet;
use crate::run::BurstCtx;

/// Executor-level sharing policy.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum SharingPolicy {
    /// Per-burst dynamic decisions (the HAMLET optimizer, §4).
    #[default]
    Dynamic,
    /// Static always-share plan (the "static optimizer" baseline of §6.2:
    /// sharing decided at compile time for the whole window).
    AlwaysShare,
    /// Never share — per-query GRETA-style execution (§3.2).
    NeverShare,
}

/// Decides the sharing set for one burst under the given policy.
pub fn decide(policy: SharingPolicy, ctx: &BurstCtx, burst_len: u64) -> Decision {
    match policy {
        SharingPolicy::NeverShare => Decision {
            share: QSet::new(),
            estimated_benefit: 0.0,
        },
        SharingPolicy::AlwaysShare => {
            let share = if ctx.candidates.len() >= 2 {
                ctx.candidates.iter().copied().collect()
            } else {
                QSet::new()
            };
            Decision {
                share,
                estimated_benefit: 0.0,
            }
        }
        SharingPolicy::Dynamic => choose_query_set(ctx, burst_len),
    }
}
