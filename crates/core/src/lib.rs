//! # hamlet-core
//!
//! The HAMLET engine (SIGMOD 2021): shared **online event trend
//! aggregation** with a **dynamic sharing optimizer**.
//!
//! Given a workload of Kleene-pattern aggregation queries over one event
//! stream, HAMLET:
//!
//! 1. analyzes the workload into *share groups* of sharable queries and
//!    merges their patterns into one template ([`workload`], [`template`]);
//! 2. evaluates each group online — aggregates propagate through a graph
//!    of matched events *without constructing trends* ([`run`]), packing
//!    bursts of Kleene-type events into **graphlets** whose propagation is
//!    shared across queries via **snapshots** ([`expr`], [`snapshot`]);
//! 3. decides **per burst at runtime** whether sharing pays off, splitting
//!    and merging graphlets adaptively ([`optimizer`]);
//! 4. partitions the stream by group-by keys, panes and window instances,
//!    and emits one aggregate per query, key and window ([`executor`]).
//!
//! ```
//! use hamlet_core::{EngineConfig, HamletEngine};
//! use hamlet_query::parse_query;
//! use hamlet_types::{EventBuilder, TypeRegistry};
//! use std::sync::Arc;
//!
//! let mut reg = TypeRegistry::new();
//! let a = reg.register("A", &[]);
//! let b = reg.register("B", &[]);
//! let reg = Arc::new(reg);
//! let queries = vec![
//!     parse_query(&reg, 1, "RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 10").unwrap(),
//! ];
//! let mut engine = HamletEngine::new(reg.clone(), queries, EngineConfig::default()).unwrap();
//! engine.process(&EventBuilder::new(&reg, a, 0).build());
//! engine.process(&EventBuilder::new(&reg, b, 1).build());
//! let results = engine.flush();
//! assert_eq!(results[0].value.as_count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agg;
pub mod bitset;
pub mod checkpoint;
pub mod executor;
pub mod expr;
pub mod general;
pub mod metrics;
pub mod optimizer;
pub mod parallel;
pub mod run;
pub mod snapshot;
pub mod store;
pub mod template;
pub mod workload;

pub use checkpoint::CheckpointError;
pub use executor::{
    checkpoint_epoch, sort_results, AggValue, ChurnError, ChurnOp, ChurnReport, EngineConfig,
    EngineError, EngineStats, GroupPlacement, HamletEngine, WindowResult,
};
pub use hamlet_obs::{GroupMetrics, Span, SpanRecorder, Stage};
pub use metrics::{LatencyHistogram, LatencyRecorder};
pub use optimizer::SharingPolicy;
pub use parallel::{
    ParallelCheckpoint, ParallelCheckpointReport, ParallelEngine, ParallelReport, ParallelSession,
    DEFAULT_BATCH,
};
pub use run::{BurstCtx, GroupRuntime, MemberOutput, Run, RunStats};
pub use store::{
    Checkpoint, CheckpointKind, CheckpointStore, CutKind, DirStore, MemStore, Snapshot,
};
pub use workload::{analyze, AggSkeleton, ShareGroup, WorkloadPlan};
