//! Query templates and the merged workload template (§3.1).
//!
//! A pattern compiles to a Finite-State-Automaton-like *query template*
//! whose states are event types: a transition `E1 → E2` means events of
//! type `E1` precede events of type `E2` in a trend (`E1 ∈ pt(E2, q)`,
//! Example 2). A whole share group compiles to one *merged template* where
//! each type appears once and each transition is labeled with the set of
//! queries it holds for (Fig. 3(b)).

use crate::bitset::QSet;
use hamlet_query::{Pattern, Query};
use hamlet_types::EventTypeId;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// Errors raised while compiling a pattern to a template.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TemplateError {
    /// `OR`/`AND` patterns must be decomposed (via [`crate::general`])
    /// before template construction (§5 computes them from sub-pattern
    /// counts).
    UnsupportedOperator(&'static str),
    /// Negation nested somewhere other than directly inside the top-level
    /// `SEQ`.
    NestedNegation,
}

impl fmt::Display for TemplateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemplateError::UnsupportedOperator(op) => write!(
                f,
                "{op} patterns must be decomposed before template construction"
            ),
            TemplateError::NestedNegation => {
                write!(f, "NOT is only supported directly inside the top-level SEQ")
            }
        }
    }
}

impl std::error::Error for TemplateError {}

/// Where a negated sub-pattern sits relative to the positive components.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NegKind {
    /// `SEQ(NOT N, P)` — a match of `N` forbids trends starting later in
    /// the window.
    Leading {
        /// Start types of the following positive component.
        succ: BTreeSet<EventTypeId>,
    },
    /// `SEQ(P1, NOT N, P2)` — a match of `N` severs connections from
    /// earlier `P1` matches to later `P2` matches (§5).
    Gap {
        /// End types of the preceding positive component.
        pred: BTreeSet<EventTypeId>,
        /// Start types of the following positive component.
        succ: BTreeSet<EventTypeId>,
    },
    /// `SEQ(P, NOT N)` — a match of `N` invalidates trends completed
    /// before it.
    Trailing,
}

/// A negation constraint extracted from the pattern.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NegConstraint {
    /// The negated event type.
    pub neg_ty: EventTypeId,
    /// Position of the negation.
    pub kind: NegKind,
}

/// Automaton fragment used during recursive construction.
#[derive(Clone, Debug, Default)]
struct Frag {
    states: BTreeSet<EventTypeId>,
    start: BTreeSet<EventTypeId>,
    end: BTreeSet<EventTypeId>,
    edges: BTreeSet<(EventTypeId, EventTypeId)>,
}

/// Per-query template: predecessor types, start/end types, negations.
#[derive(Clone, Debug)]
pub struct QueryTemplate {
    /// Positive event types (automaton states).
    pub states: BTreeSet<EventTypeId>,
    /// Types that may begin a trend (`start(q)`).
    pub start: BTreeSet<EventTypeId>,
    /// Types that may end a trend (`end(q)`).
    pub end: BTreeSet<EventTypeId>,
    /// Transitions `(pred, succ)`; `succ`'s predecessor types are read off
    /// these (`pt(E, q)`).
    pub edges: BTreeSet<(EventTypeId, EventTypeId)>,
    /// Negation constraints (§5).
    pub negations: Vec<NegConstraint>,
}

impl QueryTemplate {
    /// Compiles a (positive, possibly negation-carrying) pattern.
    pub fn build(pattern: &Pattern) -> Result<QueryTemplate, TemplateError> {
        let mut negations = Vec::new();
        let frag = build_frag(pattern, &mut negations, true)?;
        Ok(QueryTemplate {
            states: frag.states,
            start: frag.start,
            end: frag.end,
            edges: frag.edges,
            negations,
        })
    }

    /// Predecessor types of `ty` (`pt(ty, q)`, Example 2).
    pub fn pred_types(&self, ty: EventTypeId) -> BTreeSet<EventTypeId> {
        self.edges
            .iter()
            .filter(|(_, s)| *s == ty)
            .map(|(p, _)| *p)
            .collect()
    }
}

fn build_frag(
    p: &Pattern,
    negs: &mut Vec<NegConstraint>,
    top: bool,
) -> Result<Frag, TemplateError> {
    match p {
        Pattern::Type(t) => Ok(Frag {
            states: [*t].into(),
            start: [*t].into(),
            end: [*t].into(),
            edges: BTreeSet::new(),
        }),
        Pattern::Kleene(inner) => {
            let mut f = build_frag(inner, negs, false)?;
            // Loop back: every end type connects to every start type,
            // yielding the self-loop for E+ and the B→A loop for
            // (SEQ(A, B+))+ (Example 10).
            let loops: Vec<_> = f
                .end
                .iter()
                .flat_map(|e| f.start.iter().map(move |s| (*e, *s)))
                .collect();
            f.edges.extend(loops);
            Ok(f)
        }
        Pattern::Seq(parts) => {
            let mut acc: Option<Frag> = None;
            let mut pending_negs: Vec<EventTypeId> = Vec::new();
            for part in parts {
                if let Pattern::Not(inner) = part {
                    let Pattern::Type(nt) = &**inner else {
                        return Err(TemplateError::NestedNegation);
                    };
                    pending_negs.push(*nt);
                    continue;
                }
                let f = build_frag(part, negs, false)?;
                match acc {
                    None => {
                        for nt in pending_negs.drain(..) {
                            negs.push(NegConstraint {
                                neg_ty: nt,
                                kind: NegKind::Leading {
                                    succ: f.start.clone(),
                                },
                            });
                        }
                        acc = Some(f);
                    }
                    Some(mut a) => {
                        for nt in pending_negs.drain(..) {
                            negs.push(NegConstraint {
                                neg_ty: nt,
                                kind: NegKind::Gap {
                                    pred: a.end.clone(),
                                    succ: f.start.clone(),
                                },
                            });
                        }
                        // Chain: end(prev) × start(next).
                        let cross: Vec<_> = a
                            .end
                            .iter()
                            .flat_map(|e| f.start.iter().map(move |s| (*e, *s)))
                            .collect();
                        a.edges.extend(cross);
                        a.edges.extend(f.edges.iter().copied());
                        a.states.extend(f.states.iter().copied());
                        a.end = f.end;
                        acc = Some(a);
                    }
                }
            }
            let mut a = acc.ok_or(TemplateError::UnsupportedOperator("empty SEQ"))?;
            for nt in pending_negs {
                negs.push(NegConstraint {
                    neg_ty: nt,
                    kind: NegKind::Trailing,
                });
            }
            // Negations are only extracted at the top-level SEQ; deeper
            // SEQ nesting with NOT was rejected above.
            let _ = top;
            a.states = a.states.into_iter().collect();
            Ok(a)
        }
        Pattern::Or(_, _) => Err(TemplateError::UnsupportedOperator("OR")),
        Pattern::And(_, _) => Err(TemplateError::UnsupportedOperator("AND")),
        Pattern::Not(_) => Err(TemplateError::NestedNegation),
    }
}

/// The merged template of a share group (Fig. 3(b)): one state per event
/// type, transitions labeled with query sets, plus the per-type metadata
/// the run engine reads on the hot path, all in run-local dense indices.
#[derive(Clone, Debug)]
pub struct MergedTemplate {
    /// Event types appearing (positively or negated) in the group, in
    /// dense local order.
    pub types: Vec<EventTypeId>,
    local: HashMap<EventTypeId, usize>,
    /// Number of member queries.
    pub k: usize,
    /// `pt[type][q]` — local predecessor types of `type` for member `q`.
    pub pt: Vec<Vec<Vec<usize>>>,
    /// Members whose pattern contains the type positively.
    pub involved: Vec<QSet>,
    /// Members for which the type is negated.
    pub neg_involved: Vec<QSet>,
    /// Members for which the type starts trends.
    pub start: Vec<QSet>,
    /// Members for which the type ends trends.
    pub end: Vec<QSet>,
    /// Members whose template has a self-loop on the type (Kleene).
    pub self_loop: Vec<QSet>,
    /// Types whose `E+` is *sharable* (Def. 4): self-loop in ≥ 2 members.
    pub sharable: Vec<bool>,
    /// Per-member compiled templates (negations, full edge sets).
    pub per_query: Vec<QueryTemplate>,
}

impl MergedTemplate {
    /// Merges the templates of `queries` (their order defines member
    /// indices).
    pub fn build(queries: &[&Query]) -> Result<MergedTemplate, TemplateError> {
        let k = queries.len();
        let per_query: Vec<QueryTemplate> = queries
            .iter()
            .map(|q| QueryTemplate::build(&q.pattern))
            .collect::<Result<_, _>>()?;

        // Dense local type ids over all positive + negated types.
        let mut local: HashMap<EventTypeId, usize> = HashMap::new();
        let mut types: Vec<EventTypeId> = Vec::new();
        let mut intern = |t: EventTypeId, types: &mut Vec<EventTypeId>| {
            *local.entry(t).or_insert_with(|| {
                types.push(t);
                types.len() - 1
            })
        };
        for tpl in &per_query {
            for &t in &tpl.states {
                intern(t, &mut types);
            }
            for n in &tpl.negations {
                intern(n.neg_ty, &mut types);
            }
        }
        let nt = types.len();
        let mut pt = vec![vec![Vec::new(); k]; nt];
        let mut involved = vec![QSet::new(); nt];
        let mut neg_involved = vec![QSet::new(); nt];
        let mut start = vec![QSet::new(); nt];
        let mut end = vec![QSet::new(); nt];
        let mut self_loop = vec![QSet::new(); nt];

        for (qi, tpl) in per_query.iter().enumerate() {
            for &t in &tpl.states {
                involved[local[&t]].insert(qi);
            }
            for &t in &tpl.start {
                start[local[&t]].insert(qi);
            }
            for &t in &tpl.end {
                end[local[&t]].insert(qi);
            }
            for &(p, s) in &tpl.edges {
                let (pl, sl) = (local[&p], local[&s]);
                if pl == sl {
                    self_loop[sl].insert(qi);
                }
                if !pt[sl][qi].contains(&pl) {
                    pt[sl][qi].push(pl);
                }
            }
            for n in &tpl.negations {
                neg_involved[local[&n.neg_ty]].insert(qi);
            }
        }
        for preds in pt.iter_mut().flatten() {
            preds.sort_unstable();
        }
        let sharable = self_loop.iter().map(|s| s.len() >= 2).collect();
        Ok(MergedTemplate {
            types,
            local,
            k,
            pt,
            involved,
            neg_involved,
            start,
            end,
            self_loop,
            sharable,
            per_query,
        })
    }

    /// Local index of a global event type, if it appears in the group.
    #[inline]
    pub fn local(&self, t: EventTypeId) -> Option<usize> {
        self.local.get(&t).copied()
    }

    /// Number of local types.
    pub fn num_types(&self) -> usize {
        self.types.len()
    }

    /// Average number of predecessor types per type per query — the cost
    /// factor `p` of Table 2.
    pub fn avg_pred_types(&self) -> f64 {
        let mut total = 0usize;
        let mut cells = 0usize;
        for per_type in &self.pt {
            for preds in per_type {
                if !preds.is_empty() {
                    total += preds.len();
                    cells += 1;
                }
            }
        }
        if cells == 0 {
            0.0
        } else {
            total as f64 / cells as f64
        }
    }

    /// The transition relation with query-set labels, for inspection and
    /// tests (Fig. 3(b)).
    pub fn labeled_edges(&self) -> BTreeMap<(EventTypeId, EventTypeId), Vec<usize>> {
        let mut out: BTreeMap<(EventTypeId, EventTypeId), Vec<usize>> = BTreeMap::new();
        for (sl, per_q) in self.pt.iter().enumerate() {
            for (qi, preds) in per_q.iter().enumerate() {
                for &pl in preds {
                    out.entry((self.types[pl], self.types[sl]))
                        .or_default()
                        .push(qi);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamlet_query::Window;

    const A: EventTypeId = EventTypeId(0);
    const B: EventTypeId = EventTypeId(1);
    const C: EventTypeId = EventTypeId(2);
    const N: EventTypeId = EventTypeId(3);

    fn q(id: u32, p: Pattern) -> Query {
        Query::count_star(id, p, Window::tumbling(100))
    }

    fn seq_a_bplus() -> Pattern {
        Pattern::seq(vec![Pattern::Type(A), Pattern::plus(Pattern::Type(B))])
    }

    fn seq_c_bplus() -> Pattern {
        Pattern::seq(vec![Pattern::Type(C), Pattern::plus(Pattern::Type(B))])
    }

    #[test]
    fn figure3a_template_of_q1() {
        // SEQ(A, B+): pt(B) = {A, B}, pt(A) = ∅, start = {A}, end = {B}.
        let tpl = QueryTemplate::build(&seq_a_bplus()).unwrap();
        assert_eq!(tpl.pred_types(B), [A, B].into());
        assert_eq!(tpl.pred_types(A), BTreeSet::new());
        assert_eq!(tpl.start, [A].into());
        assert_eq!(tpl.end, [B].into());
    }

    #[test]
    fn example10_nested_kleene_template() {
        // (SEQ(A, B+))+ adds the loop B → A (Fig. 8).
        let p = Pattern::plus(seq_a_bplus());
        let tpl = QueryTemplate::build(&p).unwrap();
        assert_eq!(tpl.pred_types(A), [B].into());
        assert_eq!(tpl.pred_types(B), [A, B].into());
        assert_eq!(tpl.start, [A].into());
        assert_eq!(tpl.end, [B].into());
    }

    #[test]
    fn negation_positions() {
        // SEQ(NOT N, A, NOT N?, B+, NOT N) — use three distinct spots.
        let p = Pattern::seq(vec![
            Pattern::Not(Box::new(Pattern::Type(N))),
            Pattern::Type(A),
            Pattern::plus(Pattern::Type(B)),
            Pattern::Not(Box::new(Pattern::Type(N))),
        ]);
        let tpl = QueryTemplate::build(&p).unwrap();
        assert_eq!(tpl.negations.len(), 2);
        assert!(matches!(tpl.negations[0].kind, NegKind::Leading { .. }));
        assert!(matches!(tpl.negations[1].kind, NegKind::Trailing));

        let p = Pattern::seq(vec![
            Pattern::Type(A),
            Pattern::Not(Box::new(Pattern::Type(N))),
            Pattern::plus(Pattern::Type(B)),
        ]);
        let tpl = QueryTemplate::build(&p).unwrap();
        assert_eq!(tpl.negations.len(), 1);
        match &tpl.negations[0].kind {
            NegKind::Gap { pred, succ } => {
                assert_eq!(pred, &[A].into());
                assert_eq!(succ, &[B].into());
            }
            other => panic!("expected Gap, got {other:?}"),
        }
    }

    #[test]
    fn or_rejected_until_decomposed() {
        let p = Pattern::Or(Box::new(seq_a_bplus()), Box::new(seq_c_bplus()));
        assert!(matches!(
            QueryTemplate::build(&p),
            Err(TemplateError::UnsupportedOperator("OR"))
        ));
    }

    #[test]
    fn figure3b_merged_template() {
        // Workload Q = {q1: SEQ(A,B+), q2: SEQ(C,B+)}: B's self-loop is
        // labeled {q1, q2}; A→B labeled {q1}; C→B labeled {q2}.
        let q1 = q(1, seq_a_bplus());
        let q2 = q(2, seq_c_bplus());
        let m = MergedTemplate::build(&[&q1, &q2]).unwrap();
        assert_eq!(m.k, 2);
        let bl = m.local(B).unwrap();
        assert!(m.sharable[bl]);
        assert!(!m.sharable[m.local(A).unwrap()]);
        let edges = m.labeled_edges();
        assert_eq!(edges[&(B, B)], vec![0, 1]);
        assert_eq!(edges[&(A, B)], vec![0]);
        assert_eq!(edges[&(C, B)], vec![1]);
        assert!(m.start[m.local(A).unwrap()].contains(0));
        assert!(!m.start[m.local(A).unwrap()].contains(1));
        assert!(m.end[bl].contains(0) && m.end[bl].contains(1));
        assert!(m.avg_pred_types() > 0.0);
        assert_eq!(m.num_types(), 3);
    }

    #[test]
    fn merged_template_tracks_negated_types() {
        let q1 = q(
            1,
            Pattern::seq(vec![
                Pattern::Type(A),
                Pattern::plus(Pattern::Type(B)),
                Pattern::Not(Box::new(Pattern::Type(N))),
            ]),
        );
        let q2 = q(2, seq_c_bplus());
        let m = MergedTemplate::build(&[&q1, &q2]).unwrap();
        let nl = m.local(N).unwrap();
        assert!(m.neg_involved[nl].contains(0));
        assert!(!m.neg_involved[nl].contains(1));
        assert!(m.involved[nl].is_empty());
    }
}
