//! The per-window evaluation engine: the HAMLET graph of one share group
//! over one stream partition and one window instance.
//!
//! Events arrive in *bursts* (maximal runs of one event type, Def. 10).
//! For each burst the caller (executor + optimizer) supplies the sharing
//! decision — which members process the burst in a shared graphlet versus
//! per-query solo graphlets (§4.2). The run maintains:
//!
//! * `cum[type][member]` — the resolved per-member sum of intermediate
//!   aggregates of all *closed* graphlets of each type. Snapshot values and
//!   external predecessor contributions are read off these (Def. 8:
//!   `value(x, q) = Σ sum(G_E', q)`).
//! * one *active* graphlet per type: either a shared graphlet whose events
//!   carry [`LinearExpr`] aggregates over snapshots, or per-member solo
//!   graphlets with numeric aggregates (§3.2), or both (when the optimizer
//!   shares only a subset of the queries, §4.3).
//! * the snapshot table `S` (Algorithm 1).
//!
//! Because `fcount(q) = Σ count(e, q)` over end-type events (Eq. 3), the
//! final aggregate per member is just the end-type totals of `cum` at
//! window close — no per-event result bookkeeping is needed.

use crate::agg::{ring_of_attr, MmVal, NodeVal};
use crate::bitset::QSet;
use crate::expr::{LinearExpr, SnapId};
use crate::snapshot::SnapTable;
use crate::template::{MergedTemplate, NegKind};
use crate::workload::{AggSkeleton, ShareGroup};
use hamlet_query::{CompiledSelection, EdgePredicate, Query};
use hamlet_types::{Event, TrendVal};
use std::collections::HashMap;
use std::sync::Arc;

/// Immutable per-group runtime info shared by all of the group's runs:
/// the merged template plus per-(type, member) predicate tables.
pub struct GroupRuntime {
    /// The merged template.
    pub template: Arc<MergedTemplate>,
    /// Member queries in dense member order.
    pub queries: Vec<Arc<Query>>,
    /// Aggregation skeleton.
    pub skeleton: AggSkeleton,
    /// `sel[type][member]` — selection predicates on that type, compiled
    /// to the Int/Float fast form so the per-event hot loop avoids enum
    /// dispatch ([`CompiledSelection`]).
    pub sel: Vec<Vec<Vec<CompiledSelection>>>,
    /// `edge[type][member]` — edge predicates whose head is that type.
    pub edge: Vec<Vec<Vec<EdgePredicate>>>,
    /// Per type: true iff any member has an edge predicate on it (forces
    /// event storage and pairwise scans).
    pub type_any_edge: Vec<bool>,
    /// Negation constraints indexed by the *negated* type:
    /// `(member, kind)` pairs in local type indices.
    pub negs: Vec<Vec<(usize, LocalNegKind)>>,
}

/// [`NegKind`] with local type indices.
#[derive(Clone, Debug)]
pub enum LocalNegKind {
    /// Blocks trend starts after the match.
    Leading,
    /// Severs `pred → succ` connections across the match.
    Gap {
        /// Local predecessor types.
        pred: Vec<usize>,
        /// Local successor types.
        succ: Vec<usize>,
    },
    /// Invalidates results accumulated before the match.
    Trailing,
}

impl GroupRuntime {
    /// Builds the runtime tables for a share group.
    pub fn new(group: &ShareGroup) -> Arc<GroupRuntime> {
        let tpl = group.template.clone();
        let nt = tpl.num_types();
        let k = tpl.k;
        let mut sel = vec![vec![Vec::new(); k]; nt];
        let mut edge = vec![vec![Vec::new(); k]; nt];
        let mut negs: Vec<Vec<(usize, LocalNegKind)>> = vec![Vec::new(); nt];
        for (qi, q) in group.queries.iter().enumerate() {
            for s in &q.selections {
                if let Some(tl) = tpl.local(s.ty) {
                    sel[tl][qi].push(CompiledSelection::new(s));
                }
            }
            for e in &q.edges {
                if let Some(tl) = tpl.local(e.ty) {
                    edge[tl][qi].push(e.clone());
                }
            }
            for n in &tpl.per_query[qi].negations {
                // hamlet-lint: allow(panic-hygiene) -- the group template interns every negated type at construction
                let nl = tpl.local(n.neg_ty).expect("negated type interned");
                let kind = match &n.kind {
                    NegKind::Leading { .. } => LocalNegKind::Leading,
                    NegKind::Gap { pred, succ } => LocalNegKind::Gap {
                        pred: pred.iter().filter_map(|t| tpl.local(*t)).collect(),
                        succ: succ.iter().filter_map(|t| tpl.local(*t)).collect(),
                    },
                    NegKind::Trailing => LocalNegKind::Trailing,
                };
                negs[nl].push((qi, kind));
            }
        }
        let type_any_edge = edge
            .iter()
            .map(|per_q| per_q.iter().any(|v| !v.is_empty()))
            .collect();
        Arc::new(GroupRuntime {
            template: tpl,
            queries: group.queries.clone(),
            skeleton: group.skeleton.clone(),
            sel,
            edge,
            type_any_edge,
            negs,
        })
    }

    /// Number of members.
    #[inline]
    pub fn k(&self) -> usize {
        self.template.k
    }

    /// True iff every burst of this group is *uniform*: each event applies
    /// the same linear map regardless of its content, so a pending burst is
    /// fully described by its length and [`Run::process_burst_ext`] replays
    /// it with the closed form of the internal `Run::burst_fast_path`
    /// helper. Requires the weight-free
    /// `CountOnly` skeleton, no edge predicates, no selection predicates,
    /// and no negation constraints anywhere in the template. The engine
    /// checks this once at build time and buffers such groups' bursts as a
    /// bare count instead of cloned events.
    pub fn uniform_bursts(&self) -> bool {
        matches!(self.skeleton, AggSkeleton::CountOnly)
            && !self.type_any_edge.iter().any(|&b| b)
            && self.sel.iter().all(|per_q| per_q.iter().all(Vec::is_empty))
            && self.negs.iter().all(Vec::is_empty)
    }

    /// Skeleton weight of an event: the ring embedding of the target
    /// attribute (0 when the event is not of the target type or no
    /// attribute is read).
    #[inline]
    fn weight(&self, e: &Event) -> (TrendVal, bool) {
        match &self.skeleton {
            AggSkeleton::CountOnly => (TrendVal::ZERO, false),
            AggSkeleton::Linear { ty, attr } => {
                if e.ty == *ty {
                    let w = attr
                        .and_then(|a| e.attr(a))
                        .map(|v| ring_of_attr(v.as_f64()))
                        .unwrap_or(TrendVal::ZERO);
                    (w, true)
                } else {
                    (TrendVal::ZERO, false)
                }
            }
            AggSkeleton::MinMax { .. } => (TrendVal::ZERO, false),
        }
    }

    /// True iff member `q`'s selection predicates accept `e` (type `tl`).
    #[inline]
    fn selects(&self, tl: usize, q: usize, e: &Event) -> bool {
        self.sel[tl][q].iter().all(|p| p.matches(e))
    }

    /// True iff member `q`'s edge predicates accept the pair `prev → cur`.
    #[inline]
    fn edge_holds(&self, tl: usize, q: usize, prev: &Event, cur: &Event) -> bool {
        self.edge[tl][q].iter().all(|p| p.matches(prev, cur))
    }
}

/// A shared graphlet (Def. 7): one symbolic propagation for its member set.
struct SharedGraphlet {
    members: QSet,
    /// Graphlet-level snapshot (Def. 8).
    x: SnapId,
    /// Unit snapshot carrying per-member trend-start indicators (handles
    /// start-type divergence among members without leaving the shared
    /// path).
    unit: Option<SnapId>,
    /// Σ of member events' expressions (doubles as the self-loop
    /// predecessor prefix and the close-time resolution source).
    sum_exprs: LinearExpr,
    /// Events in this graphlet (`g`).
    size: u64,
}

/// A per-member (non-shared) graphlet (§3.2).
#[derive(Clone)]
struct SoloGraphlet {
    sum: NodeVal,
    mm: MmVal,
    alive: bool,
    size: u64,
}

impl SoloGraphlet {
    fn new(mm_identity: MmVal) -> SoloGraphlet {
        SoloGraphlet {
            sum: NodeVal::ZERO,
            mm: mm_identity,
            alive: false,
            size: 0,
        }
    }
}

/// Active graphlets of one type.
#[derive(Default)]
struct Active {
    shared: Option<SharedGraphlet>,
    solo: Vec<Option<SoloGraphlet>>,
}

/// Stored per-event data for types with edge predicates (pairwise scans
/// need the raw events and per-member evaluable contributions).
struct StoredEvent {
    event: Event,
    /// Members covered by the symbolic contribution.
    shared: Option<(QSet, LinearExpr)>,
    /// Per-member numeric contributions (solo path).
    solo: Vec<(u16, NodeVal)>,
    /// Per-member lattice contributions (min/max path).
    mm: Vec<(u16, MmVal)>,
}

/// Counters exposed for the evaluation section's figures.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Graphlet-level snapshots created (Def. 8).
    pub graphlet_snapshots: u64,
    /// Event-level snapshots created (Def. 9).
    pub event_snapshots: u64,
    /// Graphlets opened (shared + solo).
    pub graphlets: u64,
    /// Solo → shared transitions (§4.2 "decision to merge").
    pub merges: u64,
    /// Shared → solo transitions (§4.2 "decision to split").
    pub splits: u64,
    /// Bursts processed with sharing.
    pub shared_bursts: u64,
    /// Bursts processed without sharing.
    pub solo_bursts: u64,
    /// Events processed.
    pub events: u64,
}

impl RunStats {
    /// Accumulates another run's counters.
    pub fn add(&mut self, o: &RunStats) {
        self.graphlet_snapshots += o.graphlet_snapshots;
        self.event_snapshots += o.event_snapshots;
        self.graphlets += o.graphlets;
        self.merges += o.merges;
        self.splits += o.splits;
        self.shared_bursts += o.shared_bursts;
        self.solo_bursts += o.solo_bursts;
        self.events += o.events;
    }

    /// Total snapshots (both levels).
    pub fn snapshots(&self) -> u64 {
        self.graphlet_snapshots + self.event_snapshots
    }

    /// Serializes the counters (checkpoint codec). Kept unrolled, one
    /// call per field, so the decode mirror below is positionally
    /// auditable (and checked by hamlet-lint's codec-symmetry rule).
    pub(crate) fn encode(&self, e: &mut crate::checkpoint::Enc) {
        e.u64(self.graphlet_snapshots);
        e.u64(self.event_snapshots);
        e.u64(self.graphlets);
        e.u64(self.merges);
        e.u64(self.splits);
        e.u64(self.shared_bursts);
        e.u64(self.solo_bursts);
        e.u64(self.events);
    }

    /// Mirror of [`encode`](Self::encode).
    pub(crate) fn decode(
        d: &mut crate::checkpoint::Dec<'_>,
    ) -> Result<RunStats, crate::checkpoint::CheckpointError> {
        Ok(RunStats {
            graphlet_snapshots: d.u64()?,
            event_snapshots: d.u64()?,
            graphlets: d.u64()?,
            merges: d.u64()?,
            splits: d.u64()?,
            shared_bursts: d.u64()?,
            solo_bursts: d.u64()?,
            events: d.u64()?,
        })
    }
}

/// Final per-member aggregate of a finished window.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemberOutput {
    /// Ring-valued (count, sum, cnt) totals.
    pub raw: NodeVal,
    /// Lattice value for `MIN`/`MAX` members (identity otherwise).
    pub mm: f64,
}

/// Inputs the dynamic optimizer reads before deciding on a burst (§4.1).
#[derive(Clone, Debug)]
pub struct BurstCtx {
    /// Events per window so far (`n`).
    pub n: u64,
    /// Events in the currently active graphlet of the type (`g`).
    pub g: u64,
    /// Snapshot terms currently propagated in the active shared graphlet
    /// (`sp`).
    pub sp: usize,
    /// Average predecessor types per type per query (`p`).
    pub p: f64,
    /// Whether the active graphlet of this type is currently shared.
    pub currently_shared: bool,
    /// Per candidate member: events of the burst whose predicate outcome
    /// diverges from the other candidates (drives `sc`, Def. 9).
    pub diverging: Vec<u64>,
    /// Per candidate member: whether edge predicates force event-level
    /// snapshots on every event.
    pub has_edge: Vec<bool>,
    /// Candidate member indices (involved, Kleene self-loop, linear agg).
    pub candidates: Vec<usize>,
}

/// The evaluation state of one (share group × partition × window instance).
pub struct Run {
    rt: Arc<GroupRuntime>,
    k: usize,
    n_events: u64,
    cum: Vec<Vec<NodeVal>>,
    mm_cum: Vec<Vec<MmVal>>,
    alive_cum: Vec<Vec<bool>>,
    start_blocked: Vec<bool>,
    gap_blocked: HashMap<(usize, usize, usize), NodeVal>,
    result_blocked: Vec<NodeVal>,
    snaps: SnapTable,
    active: Vec<Active>,
    stored: Vec<Vec<StoredEvent>>,
    stats: RunStats,
    mm_identity: MmVal,
    is_min: bool,
    /// Reused per-event match buffer of the shared path — scratch only,
    /// never serialized.
    matched_scratch: Vec<(usize, bool)>,
    /// Reused expression buffer of the uniform shared path — scratch
    /// only, never serialized.
    pred_scratch: LinearExpr,
}

impl Run {
    /// Creates an empty run.
    pub fn new(rt: Arc<GroupRuntime>) -> Run {
        let nt = rt.template.num_types();
        let k = rt.k();
        let (mm_identity, is_min) = match rt.skeleton {
            AggSkeleton::MinMax { is_min, .. } => (
                if is_min {
                    MmVal::MIN_IDENTITY
                } else {
                    MmVal::MAX_IDENTITY
                },
                is_min,
            ),
            _ => (MmVal::MIN_IDENTITY, true),
        };
        Run {
            k,
            n_events: 0,
            cum: vec![vec![NodeVal::ZERO; k]; nt],
            mm_cum: vec![vec![mm_identity; k]; nt],
            alive_cum: vec![vec![false; k]; nt],
            start_blocked: vec![false; k],
            gap_blocked: HashMap::new(),
            result_blocked: vec![NodeVal::ZERO; k],
            snaps: SnapTable::new(k),
            active: (0..nt)
                .map(|_| Active {
                    shared: None,
                    solo: vec![None; k],
                })
                .collect(),
            stored: (0..nt).map(|_| Vec::new()).collect(),
            stats: RunStats::default(),
            rt,
            mm_identity,
            is_min,
            matched_scratch: Vec::new(),
            pred_scratch: LinearExpr::zero(),
        }
    }

    /// Re-points the run at a freshly compiled runtime of the *same*
    /// shape (identical template type count and member count). Used by
    /// runtime query churn when a share group survives a workload change
    /// unchanged: the group is recompiled (so the engine's structures
    /// match a fresh build of the new workload exactly), and the live
    /// runs adopt the recompiled runtime. The runtime is deterministic
    /// from the group's members, so the swap cannot change behavior.
    pub(crate) fn retarget(&mut self, rt: Arc<GroupRuntime>) {
        debug_assert_eq!(self.rt.template.num_types(), rt.template.num_types());
        debug_assert_eq!(self.rt.k(), rt.k());
        self.rt = rt;
    }

    /// Events processed so far (`n`).
    pub fn n_events(&self) -> u64 {
        self.n_events
    }

    /// Run statistics.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Number of snapshots in the table.
    pub fn num_snapshots(&self) -> usize {
        self.snaps.len()
    }

    /// Collects the cheap structural optimizer inputs for a burst of local
    /// type `tl` — everything except the divergence counts (§4.1). O(k).
    pub fn burst_shape(&self, tl: usize) -> BurstCtx {
        let tpl = &self.rt.template;
        let linear_ok = self.rt.skeleton.supports_sharing();
        let candidates: Vec<usize> = (0..self.k)
            .filter(|&q| linear_ok && tpl.involved[tl].contains(q) && tpl.self_loop[tl].contains(q))
            .collect();
        let has_edge: Vec<bool> = candidates
            .iter()
            .map(|&q| !self.rt.edge[tl][q].is_empty())
            .collect();
        let diverging = vec![0u64; candidates.len()];
        let (g, sp, currently_shared) = match &self.active[tl].shared {
            Some(sh) => (sh.size, sh.sum_exprs.num_terms(), true),
            None => {
                let g = self.active[tl]
                    .solo
                    .iter()
                    .flatten()
                    .map(|s| s.size)
                    .max()
                    .unwrap_or(0);
                (g, 0, false)
            }
        };
        BurstCtx {
            n: self.n_events,
            g,
            sp,
            p: tpl.avg_pred_types().max(1.0),
            currently_shared,
            diverging,
            has_edge,
            candidates,
        }
    }

    /// Exact per-candidate divergence counts of a burst: an event
    /// "diverges" for a member when its selection outcome differs from at
    /// least one other candidate — the Def. 9 snapshot trigger. O(k·b);
    /// the EMA estimator ([`crate::optimizer::stats`]) avoids this scan.
    pub fn exact_divergence(&self, tl: usize, events: &[Event], candidates: &[usize]) -> Vec<u64> {
        let k = candidates.len();
        let mut diverging = vec![0u64; k];
        if k == 0 {
            return diverging;
        }
        // One match-bit buffer for the whole burst, not one per event.
        let mut m = vec![false; k];
        for e in events {
            let mut any_acc = false;
            let mut any_rej = false;
            for (i, &q) in candidates.iter().enumerate() {
                let s = self.rt.selects(tl, q, e);
                m[i] = s;
                any_acc |= s;
                any_rej |= !s;
            }
            if any_acc && any_rej {
                for (i, &acc) in m.iter().enumerate() {
                    if !acc {
                        diverging[i] += 1;
                    }
                }
            }
        }
        diverging
    }

    /// Full optimizer inputs with exact divergence (§4.1). `events` must
    /// all have local type `tl`.
    pub fn burst_context(&self, tl: usize, events: &[Event]) -> BurstCtx {
        let mut ctx = self.burst_shape(tl);
        ctx.diverging = self.exact_divergence(tl, events, &ctx.candidates);
        ctx
    }

    /// Processes one complete burst of local type `tl`.
    ///
    /// `shared_members` is the optimizer's choice of queries that share the
    /// burst (must be a subset of the Kleene candidates); everyone else in
    /// `involved[tl]` processes the burst solo. Passing an empty set yields
    /// pure GRETA-style non-shared execution.
    pub fn process_burst(&mut self, tl: usize, events: &[Event], shared_members: &QSet) {
        self.process_burst_impl(tl, events, 0, shared_members, true)
    }

    /// [`process_burst`](Self::process_burst) of `events` plus `extra`
    /// count-only buffered events of the same burst (one flush, one
    /// sharing decision). `extra > 0` requires
    /// [`GroupRuntime::uniform_bursts`]: those events carried no
    /// information beyond their count, so the closed-form fast path
    /// replays them exactly.
    pub fn process_burst_ext(
        &mut self,
        tl: usize,
        events: &[Event],
        extra: u64,
        shared_members: &QSet,
    ) {
        self.process_burst_impl(tl, events, extra, shared_members, true)
    }

    /// [`process_burst`](Self::process_burst) with the closed-form burst
    /// fast path disabled — the oracle its unit tests compare against.
    #[cfg(test)]
    pub(crate) fn process_burst_slow(
        &mut self,
        tl: usize,
        events: &[Event],
        shared_members: &QSet,
    ) {
        self.process_burst_impl(tl, events, 0, shared_members, false)
    }

    fn process_burst_impl(
        &mut self,
        tl: usize,
        events: &[Event],
        extra: u64,
        shared_members: &QSet,
        use_fast: bool,
    ) {
        debug_assert!(events
            .iter()
            .all(|e| { self.rt.template.local(e.ty) == Some(tl) }));
        debug_assert!(extra == 0 || self.rt.uniform_bursts());
        if events.is_empty() && extra == 0 {
            return;
        }
        let tpl = self.rt.template.clone();

        // Deactivate other types' graphlets for affected members
        // (Algorithm 1 lines 4–6). Conservative: type relevance, not
        // per-event match, triggers deactivation — early closure is always
        // correct, it only forgoes some sharing.
        let mut relevant = tpl.involved[tl].clone();
        relevant.union_with(&tpl.neg_involved[tl]);
        for ty in 0..tpl.num_types() {
            if ty == tl {
                continue;
            }
            let close_shared = self.active[ty]
                .shared
                .as_ref()
                .is_some_and(|sh| sh.members.intersects(&relevant));
            if close_shared {
                self.close_shared(ty);
            }
            for q in 0..self.k {
                if relevant.contains(q) && self.active[ty].solo[q].is_some() {
                    self.close_solo(ty, q);
                }
            }
        }

        // Negation constraints fire before positive processing (§5): the
        // negated match blocks connections across it.
        if !tpl.neg_involved[tl].is_empty() {
            self.apply_negations(tl, events);
        }

        if tpl.involved[tl].is_empty() {
            return;
        }

        // Effective sharing set: candidates with a Kleene self-loop and a
        // linear skeleton; sharing needs ≥ 2 members (Def. 4).
        let mut share: QSet = shared_members
            .iter()
            .filter(|&q| {
                tpl.involved[tl].contains(q)
                    && tpl.self_loop[tl].contains(q)
                    && self.rt.skeleton.supports_sharing()
            })
            .collect();
        if share.len() < 2 {
            share = QSet::new();
        }

        let t0 = events
            .first()
            .map(|e| e.time)
            .unwrap_or_else(|| 0u64.into());
        self.transition_graphlets(tl, &share, t0);
        if share.is_empty() {
            self.stats.solo_bursts += 1;
        } else {
            self.stats.shared_bursts += 1;
        }

        // One runtime handle per burst — the per-event path used to clone
        // the Arc (and bump its refcount) once per event.
        let rt = self.rt.clone();
        let b = events.len() as u64 + extra;
        if use_fast && self.burst_fast_path(&rt, tl, b, &share) {
            return;
        }
        // Count-only buffered events exist only for uniform groups, whose
        // bursts always take the closed form above.
        assert!(extra == 0, "count-only burst events require the fast path");
        for e in events {
            self.process_event(&rt, tl, e, &share);
            self.n_events += 1;
            self.stats.events += 1;
        }
    }

    /// Closed-form burst advance for predicate-free COUNT(*) groups.
    ///
    /// When the skeleton carries no weight (`CountOnly` makes
    /// [`GroupRuntime::weight`] return `(0, false)` for every event), the
    /// template has no edge predicates anywhere (so nothing is
    /// event-stored or pairwise-scanned), and every involved member's
    /// selection on `tl` is empty, each event of the burst applies the
    /// same linear map:
    ///
    /// - shared graphlet: `S ← 2·S + P` with `P = x (+ unit)`, so after
    ///   `b` events `S = 2ᵇ·S₀ + (2ᵇ−1)·P`;
    /// - self-loop solo member: `sum ← 2·sum + step` with
    ///   `step = external_pred (+1 on count if a start type)`, same form;
    /// - non-self-loop solo member: `sum ← sum + b·step`.
    ///
    /// All arithmetic is in the wrapping `u64` ring, where the `2ᵇ`
    /// scalars are exact (`b ≥ 64 ⇒ 2ᵇ ≡ 0`), so the result is
    /// bit-identical to the per-event loop — asserted against
    /// [`process_burst_slow`](Self::process_burst_slow) in tests. Returns
    /// false (caller falls back to the loop) whenever a precondition
    /// fails.
    fn burst_fast_path(&mut self, rt: &Arc<GroupRuntime>, tl: usize, b: u64, share: &QSet) -> bool {
        let tpl = &rt.template;
        if !matches!(rt.skeleton, AggSkeleton::CountOnly) || rt.type_any_edge.iter().any(|&b| b) {
            return false;
        }
        for q in 0..self.k {
            if tpl.involved[tl].contains(q) && !rt.sel[tl][q].is_empty() {
                return false;
            }
        }
        // 2ᵇ and 2ᵇ−1 in the wrapping ring.
        let m = TrendVal(if b >= 64 { 0 } else { 1u64 << b });
        let g = m - TrendVal::ONE;
        if !share.is_empty() {
            // hamlet-lint: allow(panic-hygiene) -- a non-empty share set implies the shared graphlet was created when the burst opened
            let sh = self.active[tl].shared.as_mut().expect("shared graphlet");
            let (x, unit) = (sh.x, sh.unit);
            sh.sum_exprs.scale(m);
            sh.sum_exprs.add_snapshot_scaled(x, g);
            if let Some(u) = unit {
                sh.sum_exprs.add_snapshot_scaled(u, g);
            }
            sh.size += b;
        }
        for q in 0..self.k {
            if !tpl.involved[tl].contains(q) || share.contains(q) {
                continue;
            }
            if self.active[tl].solo[q].is_none() {
                self.active[tl].solo[q] = Some(SoloGraphlet::new(self.mm_identity));
                self.stats.graphlets += 1;
            }
            let mut step = self.external_pred(tl, q);
            if tpl.start[tl].contains(q) && !self.start_blocked[q] {
                step.count += TrendVal::ONE;
            }
            // hamlet-lint: allow(panic-hygiene) -- a solo query reaching here implies its solo graphlet was created when the burst opened
            let solo = self.active[tl].solo[q].as_mut().expect("solo graphlet");
            if tpl.self_loop[tl].contains(q) {
                solo.sum.scale(m);
                solo.sum.add_scaled(step, g);
            } else {
                solo.sum.add_scaled(step, TrendVal(b));
            }
            solo.size += b;
        }
        self.n_events += b;
        self.stats.events += b;
        true
    }

    /// Applies Leading/Gap/Trailing negation effects of a burst of negated
    /// type `tl` (§5).
    fn apply_negations(&mut self, tl: usize, events: &[Event]) {
        let rt = self.rt.clone();
        for (q, kind) in &rt.negs[tl] {
            // The negated sub-pattern may carry selection predicates.
            if !events.iter().any(|e| rt.selects(tl, *q, e)) {
                continue;
            }
            match kind {
                LocalNegKind::Leading => self.start_blocked[*q] = true,
                LocalNegKind::Gap { pred, succ } => {
                    for &p in pred {
                        for &s in succ {
                            let v = self.cum[p][*q];
                            self.gap_blocked.insert((*q, p, s), v);
                        }
                    }
                }
                LocalNegKind::Trailing => {
                    self.result_blocked[*q] = self.result_total(*q);
                }
            }
        }
    }

    /// Current Σ of end-type totals for member `q` (Eq. 3 over `cum`).
    fn result_total(&self, q: usize) -> NodeVal {
        let tpl = &self.rt.template;
        let mut out = NodeVal::ZERO;
        for ty in 0..tpl.num_types() {
            if tpl.end[ty].contains(q) {
                out.add(self.cum[ty][q]);
                // Include active graphlets (they haven't been folded yet).
                if let Some(sh) = &self.active[ty].shared {
                    if sh.members.contains(q) {
                        out.add(self.snaps.eval(&sh.sum_exprs, q));
                    }
                }
                if let Some(solo) = &self.active[ty].solo[q] {
                    out.add(solo.sum);
                }
            }
        }
        out
    }

    /// Opens/closes graphlets of type `tl` so the active configuration
    /// matches the sharing decision (§4.2 split & merge).
    fn transition_graphlets(&mut self, tl: usize, share: &QSet, _now: hamlet_types::Ts) {
        let keep_shared = self.active[tl]
            .shared
            .as_ref()
            .is_some_and(|sh| sh.members == *share);
        if !keep_shared && self.active[tl].shared.is_some() {
            // Split (or re-form with a different member set).
            self.close_shared(tl);
            self.stats.splits += 1;
        }
        if !share.is_empty() && self.active[tl].shared.is_none() {
            // Merge: members' solo graphlets collapse into cum, and one
            // consolidated graphlet-level snapshot is created (Fig. 6(f)).
            let mut was_solo = false;
            for q in share.iter() {
                if self.active[tl].solo[q].is_some() {
                    self.close_solo(tl, q);
                    was_solo = true;
                }
            }
            if was_solo {
                self.stats.merges += 1;
            }
            self.open_shared(tl, share.clone());
        }
        // Solo members keep (or lazily open) their graphlets in
        // `process_event`; members newly covered by the shared graphlet
        // must not also run solo.
        for q in share.iter() {
            if self.active[tl].solo[q].is_some() {
                self.close_solo(tl, q);
            }
        }
    }

    /// Creates a shared graphlet with its graphlet-level snapshot
    /// (Algorithm 1 lines 7–13).
    fn open_shared(&mut self, tl: usize, members: QSet) {
        let tpl = self.rt.template.clone();
        let mut vals = vec![NodeVal::ZERO; self.k];
        for q in members.iter() {
            let scan_self = !self.rt.edge[tl][q].is_empty();
            let mut v = NodeVal::ZERO;
            for &p in &tpl.pt[tl][q] {
                if p == tl && scan_self {
                    // Self contributions come from pairwise scans instead.
                    continue;
                }
                let blocked = self
                    .gap_blocked
                    .get(&(q, p, tl))
                    .copied()
                    .unwrap_or(NodeVal::ZERO);
                v.add(self.cum[p][q].minus(blocked));
            }
            vals[q] = v;
        }
        let x = self.snaps.create(vals);
        self.stats.graphlet_snapshots += 1;
        self.stats.graphlets += 1;
        // Unit snapshot: per-member trend-start indicator (1 iff the type
        // starts trends for the member and no leading negation blocks it).
        let needs_unit = members
            .iter()
            .any(|q| tpl.start[tl].contains(q) && !self.start_blocked[q]);
        let unit = needs_unit.then(|| {
            let vals = (0..self.k)
                .map(|q| {
                    if members.contains(q) && tpl.start[tl].contains(q) && !self.start_blocked[q] {
                        NodeVal {
                            count: TrendVal::ONE,
                            sum: TrendVal::ZERO,
                            cnt: TrendVal::ZERO,
                        }
                    } else {
                        NodeVal::ZERO
                    }
                })
                .collect();
            self.snaps.create(vals)
        });
        self.active[tl].shared = Some(SharedGraphlet {
            members,
            x,
            unit,
            sum_exprs: LinearExpr::zero(),
            size: 0,
        });
    }

    /// Resolves a shared graphlet's totals per member into `cum` and drops
    /// its symbolic state ("the snapshot is replaced by its value",
    /// Fig. 6(d)).
    fn close_shared(&mut self, tl: usize) {
        if let Some(sh) = self.active[tl].shared.take() {
            for q in sh.members.iter() {
                let v = self.snaps.eval(&sh.sum_exprs, q);
                self.cum[tl][q].add(v);
                // Shared graphlets exist only for linear skeletons; the
                // lattice dimensions stay untouched.
            }
        }
    }

    /// Folds a solo graphlet into `cum` / lattice accumulators.
    fn close_solo(&mut self, tl: usize, q: usize) {
        if let Some(solo) = self.active[tl].solo[q].take() {
            self.cum[tl][q].add(solo.sum);
            self.mm_cum[tl][q].fold(solo.mm.0, self.is_min);
            self.alive_cum[tl][q] |= solo.alive;
        }
    }

    /// External (non-self or fully resolved) predecessor contribution for
    /// member `q` at type `tl`, honoring gap negations (§5).
    fn external_pred(&self, tl: usize, q: usize) -> NodeVal {
        let tpl = &self.rt.template;
        let scan_self = !self.rt.edge[tl][q].is_empty();
        let mut v = NodeVal::ZERO;
        for &p in &tpl.pt[tl][q] {
            if p == tl {
                if scan_self {
                    continue; // covered by the pairwise scan
                }
                // Closed same-type graphlets; the active one is added by
                // the caller (prefix / sum_exprs).
                v.add(self.cum[p][q]);
                continue;
            }
            let blocked = self
                .gap_blocked
                .get(&(q, p, tl))
                .copied()
                .unwrap_or(NodeVal::ZERO);
            v.add(self.cum[p][q].minus(blocked));
        }
        v
    }

    /// Lattice predecessor fold for member `q` at type `tl`.
    fn mm_pred(&self, tl: usize, q: usize) -> (MmVal, bool) {
        let tpl = &self.rt.template;
        let mut mm = self.mm_identity;
        let mut alive = false;
        for &p in &tpl.pt[tl][q] {
            mm.fold(self.mm_cum[p][q].0, self.is_min);
            alive |= self.alive_cum[p][q];
            if p == tl {
                if let Some(solo) = &self.active[p].solo[q] {
                    mm.fold(solo.mm.0, self.is_min);
                    alive |= solo.alive;
                }
            }
        }
        (mm, alive)
    }

    /// Pairwise scan over stored same-type events for an edge-predicate
    /// member: Σ of contributions of events whose edge to `e` holds.
    fn scan_pred(&self, tl: usize, q: usize, e: &Event) -> NodeVal {
        let mut v = NodeVal::ZERO;
        for se in &self.stored[tl] {
            if !self.rt.edge_holds(tl, q, &se.event, e) {
                continue;
            }
            if let Some((members, expr)) = &se.shared {
                if members.contains(q) {
                    v.add(self.snaps.eval(expr, q));
                    continue;
                }
            }
            if let Some((_, sv)) = se.solo.iter().find(|(m, _)| *m as usize == q) {
                v.add(*sv);
            }
        }
        v
    }

    /// Lattice variant of [`Run::scan_pred`].
    fn scan_mm(&self, tl: usize, q: usize, e: &Event) -> (MmVal, bool) {
        let mut mm = self.mm_identity;
        let mut alive = false;
        for se in &self.stored[tl] {
            if !self.rt.edge_holds(tl, q, &se.event, e) {
                continue;
            }
            if let Some((_, sv)) = se.mm.iter().find(|(m, _)| *m as usize == q) {
                mm.fold(sv.0, self.is_min);
                alive = true;
            }
        }
        (mm, alive)
    }

    /// Processes a single event within its (already transitioned) burst.
    /// `rt` is the run's own runtime, passed in so the burst loop clones
    /// the `Arc` once instead of once per event.
    fn process_event(&mut self, rt: &Arc<GroupRuntime>, tl: usize, e: &Event, share: &QSet) {
        let tpl = &rt.template;
        let (w, is_target) = rt.weight(e);
        let store_needed = rt.type_any_edge[tl];
        let mut stored_shared: Option<(QSet, LinearExpr)> = None;
        let mut stored_solo: Vec<(u16, NodeVal)> = Vec::new();
        let mut stored_mm: Vec<(u16, MmVal)> = Vec::new();

        // ---- Shared path -------------------------------------------------
        if !share.is_empty() {
            let mut matched = std::mem::take(&mut self.matched_scratch);
            matched.clear();
            matched.extend(share.iter().map(|q| (q, rt.selects(tl, q, e))));
            let any_edge = share.iter().any(|q| !rt.edge[tl][q].is_empty());
            let uniform = !any_edge && matched.iter().all(|&(_, m)| m);
            // hamlet-lint: allow(panic-hygiene) -- a non-empty share set implies the shared graphlet was created when the burst opened
            let sh = self.active[tl].shared.as_ref().expect("shared graphlet");
            let expr = if uniform {
                // Eq. 2 symbolically: preds = x (+ unit) + in-graphlet
                // prefix; then the per-event propagation map. Built in a
                // reused buffer: `clone_from` keeps the term vector's
                // capacity, so the steady state allocates nothing.
                let mut pred = std::mem::take(&mut self.pred_scratch);
                pred.clone_from(&sh.sum_exprs);
                pred.add_snapshot(sh.x);
                if let Some(u) = sh.unit {
                    pred.add_snapshot(u);
                }
                pred.propagate_mut(w, is_target);
                pred
            } else {
                // Event-level snapshot (Def. 9): per-member numeric values.
                let mut vals = vec![NodeVal::ZERO; self.k];
                for &(q, m) in &matched {
                    if !m {
                        continue;
                    }
                    let mut pred = self.snaps.value(sh.x, q);
                    if !rt.edge[tl][q].is_empty() {
                        pred.add(self.scan_pred(tl, q, e));
                    } else {
                        pred.add(self.snaps.eval(&sh.sum_exprs, q));
                    }
                    let start = tpl.start[tl].contains(q) && !self.start_blocked[q];
                    vals[q] = NodeVal::propagate(pred, start, w, is_target);
                }
                let z = self.snaps.create(vals);
                self.stats.event_snapshots += 1;
                LinearExpr::snapshot(z)
            };
            // hamlet-lint: allow(panic-hygiene) -- a non-empty share set implies the shared graphlet was created when the burst opened
            let sh = self.active[tl].shared.as_mut().expect("shared graphlet");
            sh.sum_exprs.add_assign(&expr);
            sh.size += 1;
            if store_needed {
                stored_shared = Some((sh.members.clone(), expr));
            } else {
                // Hand the buffer back for the next event.
                self.pred_scratch = expr;
            }
            self.matched_scratch = matched;
        }

        // ---- Solo path ----------------------------------------------------
        for q in 0..self.k {
            if !tpl.involved[tl].contains(q) || share.contains(q) {
                continue;
            }
            if self.active[tl].solo[q].is_none() {
                self.active[tl].solo[q] = Some(SoloGraphlet::new(self.mm_identity));
                self.stats.graphlets += 1;
            }
            if !rt.selects(tl, q, e) {
                continue;
            }
            let has_edge = !rt.edge[tl][q].is_empty();
            let mut pred = self.external_pred(tl, q);
            if has_edge {
                pred.add(self.scan_pred(tl, q, e));
            } else if tpl.self_loop[tl].contains(q) {
                if let Some(solo) = &self.active[tl].solo[q] {
                    pred.add(solo.sum);
                }
            }
            let start = tpl.start[tl].contains(q) && !self.start_blocked[q];
            let val = NodeVal::propagate(pred, start, w, is_target);

            // Lattice propagation for MIN/MAX members.
            let mut mmv = self.mm_identity;
            let mut alive_out = false;
            if let AggSkeleton::MinMax { ty, attr, .. } = &rt.skeleton {
                let (mut mm, mut alive) = if has_edge {
                    self.scan_mm(tl, q, e)
                } else {
                    self.mm_pred(tl, q)
                };
                alive |= start;
                if alive {
                    if e.ty == *ty {
                        if let Some(v) = e.attr(*attr) {
                            mm.fold(v.as_f64(), self.is_min);
                        }
                    }
                    mmv = mm;
                    alive_out = true;
                }
            }

            // hamlet-lint: allow(panic-hygiene) -- a solo query reaching here implies its solo graphlet was created when the burst opened
            let solo = self.active[tl].solo[q].as_mut().expect("solo graphlet");
            solo.sum.add(val);
            solo.mm.fold(mmv.0, self.is_min);
            solo.alive |= alive_out;
            solo.size += 1;
            if store_needed {
                stored_solo.push((q as u16, val));
                if alive_out {
                    stored_mm.push((q as u16, mmv));
                }
            }
        }

        if store_needed {
            self.stored[tl].push(StoredEvent {
                event: e.clone(),
                shared: stored_shared,
                solo: stored_solo,
                mm: stored_mm,
            });
        }
    }

    /// Closes all graphlets and returns the per-member window outputs
    /// (Eq. 3 over end-type totals, minus trailing-negation blocks).
    pub fn finalize(&mut self) -> Vec<MemberOutput> {
        let tpl = self.rt.template.clone();
        for ty in 0..tpl.num_types() {
            self.close_shared(ty);
            for q in 0..self.k {
                self.close_solo(ty, q);
            }
        }
        (0..self.k)
            .map(|q| {
                let mut raw = NodeVal::ZERO;
                let mut mm = self.mm_identity;
                for ty in 0..tpl.num_types() {
                    if tpl.end[ty].contains(q) {
                        raw.add(self.cum[ty][q]);
                        mm.fold(self.mm_cum[ty][q].0, self.is_min);
                    }
                }
                MemberOutput {
                    raw: raw.minus(self.result_blocked[q]),
                    mm: mm.0,
                }
            })
            .collect()
    }

    /// Serializes the run's complete evaluation state (checkpoint codec):
    /// per-type/member cumulative totals, negation blocks, the snapshot
    /// table, active shared/solo graphlets (symbolic expressions
    /// included), stored events for edge-predicate scans, and counters.
    /// The immutable [`GroupRuntime`] is *not* serialized — the decoder
    /// receives it from the freshly compiled engine and only the mutable
    /// state travels.
    pub(crate) fn encode(&self, e: &mut crate::checkpoint::Enc) {
        let nt = self.rt.template.num_types();
        e.usize(self.k);
        e.usize(nt);
        e.u64(self.n_events);
        for per_ty in &self.cum {
            for v in per_ty {
                v.encode(e);
            }
        }
        for per_ty in &self.mm_cum {
            for v in per_ty {
                e.f64(v.0);
            }
        }
        for per_ty in &self.alive_cum {
            for &v in per_ty {
                e.bool(v);
            }
        }
        for &b in &self.start_blocked {
            e.bool(b);
        }
        // HashMap: impose the canonical key order so the encoding is
        // deterministic (checkpoint → restore → checkpoint is
        // byte-identical).
        let mut gaps: Vec<(&(usize, usize, usize), &NodeVal)> = self.gap_blocked.iter().collect();
        gaps.sort_by_key(|(k, _)| **k);
        e.usize(gaps.len());
        for ((q, p, s), v) in gaps {
            e.usize(*q);
            e.usize(*p);
            e.usize(*s);
            v.encode(e);
        }
        for v in &self.result_blocked {
            v.encode(e);
        }
        self.snaps.encode(e);
        for a in &self.active {
            match &a.shared {
                None => e.some(false),
                Some(sh) => {
                    e.some(true);
                    sh.members.encode(e);
                    e.u32(sh.x);
                    match sh.unit {
                        None => e.some(false),
                        Some(u) => {
                            e.some(true);
                            e.u32(u);
                        }
                    }
                    sh.sum_exprs.encode(e);
                    e.u64(sh.size);
                }
            }
            for solo in &a.solo {
                match solo {
                    None => e.some(false),
                    Some(s) => {
                        e.some(true);
                        s.sum.encode(e);
                        e.f64(s.mm.0);
                        e.bool(s.alive);
                        e.u64(s.size);
                    }
                }
            }
        }
        for per_ty in &self.stored {
            e.usize(per_ty.len());
            for se in per_ty {
                e.event(&se.event);
                match &se.shared {
                    None => e.some(false),
                    Some((members, expr)) => {
                        e.some(true);
                        members.encode(e);
                        expr.encode(e);
                    }
                }
                e.usize(se.solo.len());
                for (q, v) in &se.solo {
                    e.u16(*q);
                    v.encode(e);
                }
                e.usize(se.mm.len());
                for (q, v) in &se.mm {
                    e.u16(*q);
                    e.f64(v.0);
                }
            }
        }
        self.stats.encode(e);
    }

    /// Mirror of [`encode`](Self::encode): rebuilds a run over the given
    /// (freshly compiled) runtime.
    pub(crate) fn decode(
        d: &mut crate::checkpoint::Dec<'_>,
        rt: Arc<GroupRuntime>,
    ) -> Result<Run, crate::checkpoint::CheckpointError> {
        use crate::checkpoint::CheckpointError;
        let mut run = Run::new(rt);
        let nt = run.rt.template.num_types();
        let (k_enc, nt_enc) = (d.usize()?, d.usize()?);
        if k_enc != run.k || nt_enc != nt {
            return Err(CheckpointError::WorkloadMismatch(format!(
                "run shape ({k_enc} members × {nt_enc} types) vs compiled ({} × {nt})",
                run.k
            )));
        }
        run.n_events = d.u64()?;
        for per_ty in &mut run.cum {
            for v in per_ty.iter_mut() {
                *v = NodeVal::decode(d)?;
            }
        }
        for per_ty in &mut run.mm_cum {
            for v in per_ty.iter_mut() {
                *v = MmVal(d.f64()?);
            }
        }
        for per_ty in &mut run.alive_cum {
            for v in per_ty.iter_mut() {
                *v = d.bool()?;
            }
        }
        for b in &mut run.start_blocked {
            *b = d.bool()?;
        }
        let n_gaps = d.seq_len()?;
        for _ in 0..n_gaps {
            let key = (d.usize()?, d.usize()?, d.usize()?);
            run.gap_blocked.insert(key, NodeVal::decode(d)?);
        }
        for v in &mut run.result_blocked {
            *v = NodeVal::decode(d)?;
        }
        run.snaps = SnapTable::decode(d, run.k)?;
        for a in &mut run.active {
            a.shared = if d.some()? {
                let members = QSet::decode(d)?;
                let num_snaps = run.snaps.len();
                let snap_id = |id: SnapId| {
                    if (id as usize) < num_snaps {
                        Ok(id)
                    } else {
                        Err(crate::checkpoint::CheckpointError::Corrupt(format!(
                            "graphlet references snapshot {id} of {num_snaps}"
                        )))
                    }
                };
                let x = snap_id(d.u32()?)?;
                let unit = if d.some()? {
                    Some(snap_id(d.u32()?)?)
                } else {
                    None
                };
                let sum_exprs = LinearExpr::decode(d, num_snaps)?;
                let size = d.u64()?;
                Some(SharedGraphlet {
                    members,
                    x,
                    unit,
                    sum_exprs,
                    size,
                })
            } else {
                None
            };
            for solo in a.solo.iter_mut() {
                *solo = if d.some()? {
                    Some(SoloGraphlet {
                        sum: NodeVal::decode(d)?,
                        mm: MmVal(d.f64()?),
                        alive: d.bool()?,
                        size: d.u64()?,
                    })
                } else {
                    None
                };
            }
        }
        for per_ty in &mut run.stored {
            let n = d.seq_len()?;
            for _ in 0..n {
                let event = d.event()?;
                let shared = if d.some()? {
                    Some((QSet::decode(d)?, LinearExpr::decode(d, run.snaps.len())?))
                } else {
                    None
                };
                let n_solo = d.seq_len()?;
                let mut solo = Vec::with_capacity(n_solo);
                for _ in 0..n_solo {
                    solo.push((d.u16()?, NodeVal::decode(d)?));
                }
                let n_mm = d.seq_len()?;
                let mut mm = Vec::with_capacity(n_mm);
                for _ in 0..n_mm {
                    mm.push((d.u16()?, MmVal(d.f64()?)));
                }
                per_ty.push(StoredEvent {
                    event,
                    shared,
                    solo,
                    mm,
                });
            }
        }
        run.stats = RunStats::decode(d)?;
        Ok(run)
    }

    /// Approximate state footprint in bytes (§6.1 memory metric: stored
    /// events, snapshot expressions, snapshot values, per-member totals).
    pub fn mem_bytes(&self) -> usize {
        let mut b = std::mem::size_of::<Run>();
        b += self.cum.len() * self.k * std::mem::size_of::<NodeVal>() * 3; // cum + mm + alive (approx)
        b += self.snaps.mem_bytes();
        for a in &self.active {
            if let Some(sh) = &a.shared {
                b += sh.sum_exprs.mem_bytes();
            }
            b += a.solo.iter().flatten().count() * std::mem::size_of::<SoloGraphlet>();
        }
        for per_ty in &self.stored {
            for se in per_ty {
                b += se.event.mem_bytes();
                if let Some((_, ex)) = &se.shared {
                    b += ex.mem_bytes();
                }
                b += se.solo.len() * (2 + std::mem::size_of::<NodeVal>());
                b += se.mm.len() * (2 + std::mem::size_of::<MmVal>());
            }
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamlet_query::{Pattern, Window};
    use hamlet_types::{EventTypeId, Ts};

    const A: EventTypeId = EventTypeId(0);
    const B: EventTypeId = EventTypeId(1);
    const C: EventTypeId = EventTypeId(2);

    fn ev(ty: EventTypeId, t: u64) -> Event {
        Event::new(Ts(t), ty, vec![])
    }

    fn seq(first: EventTypeId, kleene: EventTypeId) -> Pattern {
        Pattern::seq(vec![
            Pattern::Type(first),
            Pattern::plus(Pattern::Type(kleene)),
        ])
    }

    fn rt_two_queries() -> Arc<GroupRuntime> {
        let q1 = Arc::new(Query::count_star(1, seq(A, B), Window::tumbling(1000)));
        let q2 = Arc::new(Query::count_star(2, seq(C, B), Window::tumbling(1000)));
        let plan = crate::workload::analyze(&[q1, q2]).unwrap();
        assert_eq!(plan.groups.len(), 1);
        GroupRuntime::new(&plan.groups[0])
    }

    /// Drives the paper's running example (Fig. 4(b): a1 a2 c1 | b1..b3)
    /// and checks count(b3) per query (Example 4: 2 for q1, 1 for q2).
    #[test]
    fn example4_counts_shared() {
        let rt = rt_two_queries();
        let tl = |t| rt.template.local(t).unwrap();
        let mut run = Run::new(rt.clone());
        let all = QSet::all(2);
        run.process_burst(tl(A), &[ev(A, 1), ev(A, 2)], &all);
        run.process_burst(tl(C), &[ev(C, 3)], &all);
        run.process_burst(tl(B), &[ev(B, 4)], &all);
        let out = run.finalize();
        // One B event: count(b,q1) = a1+a2 = 2; count(b,q2) = c1 = 1.
        assert_eq!(out[0].raw.count, TrendVal(2));
        assert_eq!(out[1].raw.count, TrendVal(1));
    }

    /// The closed-form COUNT(*) burst advance must leave the run in a
    /// bit-identical state to the per-event loop — checked on the full
    /// serialized state, across share/solo bursts and a ≥ 64-event burst
    /// that exercises the `2ᵇ ≡ 0` wrapping edge of the ring scalars.
    #[test]
    fn burst_fast_path_matches_event_loop() {
        let rt = rt_two_queries();
        let tl = |t| rt.template.local(t).unwrap();
        let bs = |ty: EventTypeId, t0: u64, n: u64| -> Vec<Event> {
            (0..n).map(|i| ev(ty, t0 + i)).collect()
        };
        let stream: Vec<(usize, Vec<Event>, QSet)> = vec![
            (tl(A), bs(A, 1, 2), QSet::all(2)),
            (tl(C), bs(C, 3, 1), QSet::all(2)),
            (tl(B), bs(B, 4, 1), QSet::all(2)),
            (tl(B), bs(B, 5, 70), QSet::all(2)),
            (tl(A), bs(A, 80, 3), QSet::new()),
            (tl(B), bs(B, 90, 5), QSet::new()),
            (tl(B), bs(B, 100, 64), QSet::all(2)),
        ];
        let mut fast = Run::new(rt.clone());
        let mut slow = Run::new(rt.clone());
        for (ty, burst, share) in &stream {
            fast.process_burst(*ty, burst, share);
            slow.process_burst_slow(*ty, burst, share);
        }
        assert_eq!(fast.n_events(), slow.n_events());
        assert_eq!(fast.stats().events, slow.stats().events);
        assert_eq!(fast.stats().graphlets, slow.stats().graphlets);
        let bytes = |r: &Run| {
            let mut e = crate::checkpoint::Enc::new();
            r.encode(&mut e);
            e.finish()
        };
        assert_eq!(bytes(&fast), bytes(&slow));
        assert_eq!(fast.finalize(), slow.finalize());
    }

    #[test]
    fn shared_equals_solo_counts() {
        // The same stream processed fully shared and fully solo must agree
        // bit-exactly.
        let rt = rt_two_queries();
        let tl = |t| rt.template.local(t).unwrap();
        let stream: Vec<(usize, Vec<Event>)> = vec![
            (tl(A), vec![ev(A, 1), ev(A, 2)]),
            (tl(C), vec![ev(C, 3)]),
            (tl(B), vec![ev(B, 4), ev(B, 5), ev(B, 6), ev(B, 7)]),
            (tl(A), vec![ev(A, 8)]),
            (tl(C), vec![ev(C, 9)]),
            (tl(B), vec![ev(B, 10), ev(B, 11)]),
        ];
        let mut shared = Run::new(rt.clone());
        let mut solo = Run::new(rt.clone());
        for (ty, burst) in &stream {
            shared.process_burst(*ty, burst, &QSet::all(2));
            solo.process_burst(*ty, burst, &QSet::new());
        }
        assert_eq!(shared.finalize(), solo.finalize());
        assert!(shared.stats().shared_bursts > 0);
        assert!(solo.stats().solo_bursts > 0);
    }

    #[test]
    fn table3_graphlet_counts() {
        // Fig. 5(a)/Table 3: after a1 a2 c1, four B events share graphlet
        // B3 via snapshot x. Final counts: q1 ends at B → Σ count(b_i, q1)
        // = x+2x+4x+8x = 15x with x=2 → 30; q2: 15·1 = 15.
        let rt = rt_two_queries();
        let tl = |t| rt.template.local(t).unwrap();
        let mut run = Run::new(rt.clone());
        let all = QSet::all(2);
        run.process_burst(tl(A), &[ev(A, 1), ev(A, 2)], &all);
        run.process_burst(tl(C), &[ev(C, 3)], &all);
        run.process_burst(tl(B), &[ev(B, 4), ev(B, 5), ev(B, 6), ev(B, 7)], &all);
        assert_eq!(run.num_snapshots(), 1); // only the graphlet snapshot x
        let out = run.finalize();
        assert_eq!(out[0].raw.count, TrendVal(30));
        assert_eq!(out[1].raw.count, TrendVal(15));
    }

    #[test]
    fn mid_stream_split_preserves_results() {
        // Share the first B burst; the second B burst (next pane, no
        // intervening events — the graphlet is still active, Def. 6) is
        // processed solo, forcing a split (Fig. 6(d)). Totals must match
        // the fully solo execution.
        let rt = rt_two_queries();
        let tl = |t| rt.template.local(t).unwrap();
        let stream: Vec<(usize, Vec<Event>)> = vec![
            (tl(A), vec![ev(A, 1)]),
            (tl(C), vec![ev(C, 2)]),
            (tl(B), vec![ev(B, 3), ev(B, 4)]),
            (tl(B), vec![ev(B, 6), ev(B, 7)]),
        ];
        let mut dynamic = Run::new(rt.clone());
        let mut solo = Run::new(rt.clone());
        for (i, (ty, burst)) in stream.iter().enumerate() {
            let share = if i < 3 { QSet::all(2) } else { QSet::new() };
            dynamic.process_burst(*ty, burst, &share);
            solo.process_burst(*ty, burst, &QSet::new());
        }
        assert!(dynamic.stats().splits > 0);
        assert_eq!(dynamic.finalize(), solo.finalize());
    }

    #[test]
    fn shared_sum_and_cnt_dimensions_agree_with_solo() {
        // SUM/COUNT(E) propagate through the same shared expressions; the
        // skeleton carries the (attr, type) dims for every member.
        let mk = |id: u32, first: EventTypeId| {
            Arc::new(
                Query::new(
                    hamlet_query::QueryId(id),
                    seq(first, B),
                    hamlet_query::AggFunc::Sum(B, 0),
                    vec![],
                    vec![],
                    vec![],
                    vec![],
                    Window::tumbling(1000),
                )
                .unwrap(),
            )
        };
        let plan = crate::workload::analyze(&[mk(1, A), mk(2, C)]).unwrap();
        assert_eq!(plan.groups.len(), 1);
        let rt = GroupRuntime::new(&plan.groups[0]);
        let tl = |t| rt.template.local(t).unwrap();
        let evv = |ty, t, v: f64| Event::new(Ts(t), ty, vec![hamlet_types::AttrValue::Float(v)]);
        let stream: Vec<(usize, Vec<Event>)> = vec![
            (tl(A), vec![evv(A, 1, 0.0)]),
            (tl(C), vec![evv(C, 2, 0.0)]),
            (tl(B), vec![evv(B, 3, 1.5), evv(B, 4, 2.5), evv(B, 5, 4.0)]),
        ];
        let mut shared = Run::new(rt.clone());
        let mut solo = Run::new(rt.clone());
        for (ty, burst) in &stream {
            shared.process_burst(*ty, burst, &QSet::all(2));
            solo.process_burst(*ty, burst, &QSet::new());
        }
        let a = shared.finalize();
        let b = solo.finalize();
        assert_eq!(a, b);
        // Hand check: trends over {b3,b4,b5} (7 subsets); SUM over all
        // events in all trends: each b appears in 4 trends → 4·(1.5+2.5+4)
        // = 32 (fixed point ×1e6).
        assert_eq!(a[0].raw.sum, crate::agg::ring_of_attr(32.0));
        assert_eq!(a[0].raw.cnt, TrendVal(12)); // 3 events × 4 trends each
    }

    #[test]
    fn start_type_divergence_handled_by_unit_snapshot() {
        // q1 = B+ (B starts trends), q2 = SEQ(A, B+) (B does not): the
        // shared graphlet must apply the +1 start increment only for q1 —
        // via the per-member unit snapshot.
        let q1 = Arc::new(Query::count_star(
            1,
            Pattern::plus(Pattern::Type(B)),
            Window::tumbling(1000),
        ));
        let q2 = Arc::new(Query::count_star(2, seq(A, B), Window::tumbling(1000)));
        let plan = crate::workload::analyze(&[q1, q2]).unwrap();
        assert_eq!(plan.groups.len(), 1);
        let rt = GroupRuntime::new(&plan.groups[0]);
        let tl = |t| rt.template.local(t).unwrap();
        let mut shared = Run::new(rt.clone());
        let mut solo = Run::new(rt.clone());
        let stream: Vec<(usize, Vec<Event>)> = vec![
            (tl(A), vec![ev(A, 1)]),
            (tl(B), vec![ev(B, 2), ev(B, 3), ev(B, 4)]),
        ];
        for (ty, burst) in &stream {
            shared.process_burst(*ty, burst, &QSet::all(2));
            solo.process_burst(*ty, burst, &QSet::new());
        }
        let a = shared.finalize();
        assert_eq!(a, solo.finalize());
        // q1: all non-empty subsets of 3 B's = 7. q2: 7 (one A × subsets).
        assert_eq!(a[0].raw.count, TrendVal(7));
        assert_eq!(a[1].raw.count, TrendVal(7));
        // The shared burst stayed fully shared (no event-level snapshots).
        assert_eq!(shared.stats().event_snapshots, 0);
        assert!(shared.stats().graphlet_snapshots >= 1);
    }

    #[test]
    fn selection_divergence_creates_event_snapshots() {
        use hamlet_query::{CmpOp, SelectionPredicate};
        let mk = |id: u32, first: EventTypeId, cut: f64| {
            let mut q = Query::count_star(id, seq(first, B), Window::tumbling(1000));
            q.selections.push(SelectionPredicate {
                ty: B,
                attr: 0,
                op: CmpOp::Lt,
                value: hamlet_types::AttrValue::Float(cut),
            });
            Arc::new(q)
        };
        let plan = crate::workload::analyze(&[mk(1, A, 5.0), mk(2, C, 2.0)]).unwrap();
        let rt = GroupRuntime::new(&plan.groups[0]);
        let tl = |t| rt.template.local(t).unwrap();
        let evv = |ty, t, v: f64| Event::new(Ts(t), ty, vec![hamlet_types::AttrValue::Float(v)]);
        let mut shared = Run::new(rt.clone());
        let mut solo = Run::new(rt.clone());
        let stream: Vec<(usize, Vec<Event>)> = vec![
            (tl(A), vec![evv(A, 1, 0.0)]),
            (tl(C), vec![evv(C, 2, 0.0)]),
            // v=1 accepted by both; v=3 only q1; v=9 by neither.
            (tl(B), vec![evv(B, 3, 1.0), evv(B, 4, 3.0), evv(B, 5, 9.0)]),
        ];
        for (ty, burst) in &stream {
            shared.process_burst(*ty, burst, &QSet::all(2));
            solo.process_burst(*ty, burst, &QSet::new());
        }
        assert!(shared.stats().event_snapshots > 0, "Def. 9 exercised");
        assert_eq!(shared.finalize(), solo.finalize());
    }

    #[test]
    fn mid_stream_merge_preserves_results() {
        // Start solo, then merge into a shared graphlet (Fig. 6(f)).
        let rt = rt_two_queries();
        let tl = |t| rt.template.local(t).unwrap();
        let stream: Vec<(usize, Vec<Event>)> = vec![
            (tl(A), vec![ev(A, 1)]),
            (tl(C), vec![ev(C, 2)]),
            (tl(B), vec![ev(B, 3), ev(B, 4)]),
            (tl(B), vec![ev(B, 6), ev(B, 7)]),
        ];
        let mut dynamic = Run::new(rt.clone());
        let mut solo = Run::new(rt.clone());
        for (i, (ty, burst)) in stream.iter().enumerate() {
            let share = if i >= 3 { QSet::all(2) } else { QSet::new() };
            dynamic.process_burst(*ty, burst, &share);
            solo.process_burst(*ty, burst, &QSet::new());
        }
        assert!(dynamic.stats().merges > 0);
        assert_eq!(dynamic.finalize(), solo.finalize());
    }
}
