//! Propagated aggregate state and its per-event update rules.
//!
//! GRETA-style online trend aggregation (§3.2) propagates an intermediate
//! value from predecessor events to each new event. For the aggregation
//! functions of Def. 2 the propagated state is:
//!
//! * `count` — number of trends ending at the event (Eq. 2);
//! * `sum`   — Σ over those trends of Σ `attr` of target-type events
//!   (drives `SUM` and `AVG`);
//! * `cnt`   — Σ over those trends of the number of target-type events
//!   (drives `COUNT(E)` and the divisor of `AVG`);
//! * `mm`    — min/max of `attr` over target-type events, over all trends
//!   ending here (drives `MIN`/`MAX`; lattice-valued, non-shared path only).
//!
//! `count`, `sum`, `cnt` live in ℤ/2⁶⁴ and propagate *linearly*, which is
//! what lets HAMLET encode them in snapshot expressions (§3.3). Attribute
//! values enter the ring as ×10⁶ fixed-point integers so float sums stay
//! exact and strategy-independent.

use hamlet_types::TrendVal;

/// Fixed-point scale for embedding attribute values into the ring.
pub const FIXED_POINT_SCALE: f64 = 1e6;

/// Embeds an attribute value into the ring (×10⁶ fixed point).
#[inline]
pub fn ring_of_attr(v: f64) -> TrendVal {
    TrendVal::from_i64((v * FIXED_POINT_SCALE).round() as i64)
}

/// Renders a ring sum back to a float (inverse of [`ring_of_attr`] modulo
/// wrap-around, which only occurs at scales where the paper's Java `long`
/// would have wrapped too).
#[inline]
pub fn attr_of_ring(v: TrendVal) -> f64 {
    (v.0 as i64) as f64 / FIXED_POINT_SCALE
}

/// The linear (ring-valued) part of the propagated state.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct NodeVal {
    /// Number of trends ending at the event (Eq. 2).
    pub count: TrendVal,
    /// Fixed-point Σ of the target attribute over all trends.
    pub sum: TrendVal,
    /// Σ of target-type event counts over all trends.
    pub cnt: TrendVal,
}

impl NodeVal {
    /// The zero state.
    pub const ZERO: NodeVal = NodeVal {
        count: TrendVal::ZERO,
        sum: TrendVal::ZERO,
        cnt: TrendVal::ZERO,
    };

    /// Adds another state component-wise.
    #[inline]
    pub fn add(&mut self, o: NodeVal) {
        self.count += o.count;
        self.sum += o.sum;
        self.cnt += o.cnt;
    }

    /// Component-wise sum.
    #[inline]
    pub fn plus(mut self, o: NodeVal) -> NodeVal {
        self.add(o);
        self
    }

    /// Component-wise difference (used for negation watermarks, §5).
    #[inline]
    pub fn minus(mut self, o: NodeVal) -> NodeVal {
        self.count = self.count - o.count;
        self.sum = self.sum - o.sum;
        self.cnt = self.cnt - o.cnt;
        self
    }

    /// True iff all components are zero.
    pub fn is_zero(&self) -> bool {
        self.count.is_zero() && self.sum.is_zero() && self.cnt.is_zero()
    }

    /// Multiplies every component by the ring scalar `m`.
    #[inline]
    pub fn scale(&mut self, m: TrendVal) {
        self.count = m * self.count;
        self.sum = m * self.sum;
        self.cnt = m * self.cnt;
    }

    /// Adds `m · o` component-wise.
    #[inline]
    pub fn add_scaled(&mut self, o: NodeVal, m: TrendVal) {
        self.count += m * o.count;
        self.sum += m * o.sum;
        self.cnt += m * o.cnt;
    }

    /// The per-event update (Eq. 1–2 extended to sums): given the summed
    /// predecessor state `pred` and whether the event starts a trend, the
    /// event's state is
    ///
    /// ```text
    /// count = pred.count + start
    /// sum   = pred.sum + w·count     (w = target attr, 0 if not target)
    /// cnt   = pred.cnt + u·count     (u = 1 if target type else 0)
    /// ```
    #[inline]
    pub fn propagate(pred: NodeVal, start: bool, w: TrendVal, is_target: bool) -> NodeVal {
        let count = if start {
            pred.count + TrendVal::ONE
        } else {
            pred.count
        };
        let sum = pred.sum + w * count;
        let cnt = if is_target {
            pred.cnt + count
        } else {
            pred.cnt
        };
        NodeVal { count, sum, cnt }
    }

    /// Serializes the three ring components (checkpoint codec).
    pub(crate) fn encode(&self, e: &mut crate::checkpoint::Enc) {
        e.u64(self.count.0);
        e.u64(self.sum.0);
        e.u64(self.cnt.0);
    }

    /// Mirror of [`encode`](Self::encode).
    pub(crate) fn decode(
        d: &mut crate::checkpoint::Dec<'_>,
    ) -> Result<NodeVal, crate::checkpoint::CheckpointError> {
        Ok(NodeVal {
            count: TrendVal(d.u64()?),
            sum: TrendVal(d.u64()?),
            cnt: TrendVal(d.u64()?),
        })
    }
}

/// Min/max lattice state for `MIN`/`MAX` queries (non-shared path).
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct MmVal(pub f64);

impl MmVal {
    /// Identity for `MIN` (+∞).
    pub const MIN_IDENTITY: MmVal = MmVal(f64::INFINITY);
    /// Identity for `MAX` (−∞).
    pub const MAX_IDENTITY: MmVal = MmVal(f64::NEG_INFINITY);

    /// Folds another lattice value (`is_min` selects min vs max).
    #[inline]
    pub fn fold(&mut self, v: f64, is_min: bool) {
        self.0 = if is_min { self.0.min(v) } else { self.0.max(v) };
    }

    /// True iff still the identity (no target event seen).
    pub fn is_identity(&self) -> bool {
        self.0.is_infinite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_point_round_trip() {
        for v in [0.0, 1.0, -2.5, 12.345678, 1e6] {
            let r = ring_of_attr(v);
            assert!((attr_of_ring(r) - v).abs() < 1e-5, "value {v}");
        }
    }

    #[test]
    fn propagate_count_only() {
        // A start event with no predecessors: one new trend.
        let v = NodeVal::propagate(NodeVal::ZERO, true, TrendVal::ZERO, false);
        assert_eq!(v.count, TrendVal(1));
        // Extending 3 trends without starting a new one.
        let pred = NodeVal {
            count: TrendVal(3),
            sum: TrendVal::ZERO,
            cnt: TrendVal::ZERO,
        };
        let v = NodeVal::propagate(pred, false, TrendVal::ZERO, false);
        assert_eq!(v.count, TrendVal(3));
    }

    #[test]
    fn propagate_sum_and_cnt() {
        // Event of the target type with attr value 5 extending 2 trends and
        // starting 1 new: count = 3, sum += 5·3, cnt += 3.
        let pred = NodeVal {
            count: TrendVal(2),
            sum: TrendVal(7),
            cnt: TrendVal(2),
        };
        let v = NodeVal::propagate(pred, true, TrendVal(5), true);
        assert_eq!(v.count, TrendVal(3));
        assert_eq!(v.sum, TrendVal(7 + 15));
        assert_eq!(v.cnt, TrendVal(2 + 3));
    }

    #[test]
    fn nodeval_algebra() {
        let a = NodeVal {
            count: TrendVal(1),
            sum: TrendVal(2),
            cnt: TrendVal(3),
        };
        let b = NodeVal {
            count: TrendVal(10),
            sum: TrendVal(20),
            cnt: TrendVal(30),
        };
        let c = a.plus(b);
        assert_eq!(c.count, TrendVal(11));
        assert_eq!(c.minus(b), a);
        assert!(NodeVal::ZERO.is_zero());
        assert!(!a.is_zero());
    }

    #[test]
    fn mm_fold() {
        let mut m = MmVal::MIN_IDENTITY;
        assert!(m.is_identity());
        m.fold(3.0, true);
        m.fold(1.0, true);
        m.fold(2.0, true);
        assert_eq!(m.0, 1.0);
        let mut m = MmVal::MAX_IDENTITY;
        m.fold(3.0, false);
        m.fold(9.0, false);
        assert_eq!(m.0, 9.0);
    }
}
