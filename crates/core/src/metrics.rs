//! Measurement utilities for the evaluation metrics of §6.1: latency,
//! throughput, and peak memory.

use std::time::{Duration, Instant};

/// Records per-result latencies: the difference between result output time
/// and the arrival time of the last event that contributed to the result
/// (§2.2 / §6.1).
#[derive(Clone, Debug, Default)]
pub struct LatencyRecorder {
    total: Duration,
    max: Duration,
    count: u64,
}

impl LatencyRecorder {
    /// New empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, d: Duration) {
        self.total += d;
        self.max = self.max.max(d);
        self.count += 1;
    }

    /// Average latency (zero when no samples).
    pub fn avg(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / self.count as u32
        }
    }

    /// Maximum latency observed.
    pub fn max(&self) -> Duration {
        self.max
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Merges another recorder.
    pub fn merge(&mut self, o: &LatencyRecorder) {
        self.total += o.total;
        self.max = self.max.max(o.max);
        self.count += o.count;
    }
}

/// Wall-clock throughput meter: events per second over a processing span.
#[derive(Clone, Debug)]
pub struct ThroughputMeter {
    started: Instant,
    events: u64,
}

impl Default for ThroughputMeter {
    fn default() -> Self {
        Self::new()
    }
}

impl ThroughputMeter {
    /// Starts the clock.
    pub fn new() -> Self {
        ThroughputMeter {
            started: Instant::now(),
            events: 0,
        }
    }

    /// Counts processed events.
    pub fn add(&mut self, n: u64) {
        self.events += n;
    }

    /// Events processed.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Events per second since construction.
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.started.elapsed().as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.events as f64 / secs
        }
    }
}

/// Tracks the peak of a byte-accounted state size (§6.1: snapshot
/// expressions, stored events, per-query aggregates, and the executor's
/// watermark expiration index — not RSS, for determinism).
#[derive(Clone, Copy, Debug, Default)]
pub struct MemoryGauge {
    peak: usize,
    last: usize,
}

impl MemoryGauge {
    /// New gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds a current state size sample.
    pub fn sample(&mut self, bytes: usize) {
        self.last = bytes;
        if bytes > self.peak {
            self.peak = bytes;
        }
    }

    /// Peak bytes observed.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Last sample.
    pub fn last(&self) -> usize {
        self.last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_recorder_stats() {
        let mut r = LatencyRecorder::new();
        assert_eq!(r.avg(), Duration::ZERO);
        r.record(Duration::from_millis(10));
        r.record(Duration::from_millis(30));
        assert_eq!(r.avg(), Duration::from_millis(20));
        assert_eq!(r.max(), Duration::from_millis(30));
        assert_eq!(r.count(), 2);
        let mut r2 = LatencyRecorder::new();
        r2.record(Duration::from_millis(50));
        r.merge(&r2);
        assert_eq!(r.count(), 3);
        assert_eq!(r.max(), Duration::from_millis(50));
    }

    #[test]
    fn throughput_counts() {
        let mut t = ThroughputMeter::new();
        t.add(100);
        t.add(50);
        assert_eq!(t.events(), 150);
        std::thread::sleep(Duration::from_millis(1));
        assert!(t.events_per_sec() > 0.0);
    }

    #[test]
    fn memory_gauge_peaks() {
        let mut g = MemoryGauge::new();
        g.sample(10);
        g.sample(100);
        g.sample(20);
        assert_eq!(g.peak(), 100);
        assert_eq!(g.last(), 20);
    }
}
