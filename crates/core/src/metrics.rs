//! Measurement utilities for the evaluation metrics of §6.1: latency,
//! throughput, and peak memory.

use std::time::{Duration, Instant};

/// Records per-result latencies: the difference between result output time
/// and the arrival time of the last event that contributed to the result
/// (§2.2 / §6.1).
#[derive(Clone, Debug, Default)]
pub struct LatencyRecorder {
    total: Duration,
    max: Duration,
    count: u64,
}

impl LatencyRecorder {
    /// New empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, d: Duration) {
        self.total += d;
        self.max = self.max.max(d);
        self.count += 1;
    }

    /// Average latency (zero when no samples).
    pub fn avg(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / self.count as u32
        }
    }

    /// Maximum latency observed.
    pub fn max(&self) -> Duration {
        self.max
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Merges another recorder.
    pub fn merge(&mut self, o: &LatencyRecorder) {
        self.total += o.total;
        self.max = self.max.max(o.max);
        self.count += o.count;
    }

    /// Serializes the recorder (checkpoint codec).
    pub(crate) fn encode(&self, e: &mut crate::checkpoint::Enc) {
        e.duration(self.total);
        e.duration(self.max);
        e.u64(self.count);
    }

    /// Mirror of [`encode`](Self::encode).
    pub(crate) fn decode(
        d: &mut crate::checkpoint::Dec<'_>,
    ) -> Result<LatencyRecorder, crate::checkpoint::CheckpointError> {
        Ok(LatencyRecorder {
            total: d.duration()?,
            max: d.duration()?,
            count: d.u64()?,
        })
    }
}

/// Number of log-linear buckets in a [`LatencyHistogram`]: 64 octaves of
/// nanoseconds × 4 sub-buckets per octave.
const HIST_BUCKETS: usize = 64 * SUBS as usize;
/// Sub-buckets per power-of-two octave (25% relative resolution).
const SUBS: u32 = 4;

/// Fixed-size log-linear latency histogram for tail quantiles (p50/p99)
/// under sustained load — the latency metric the online pipeline reports
/// in its live metrics snapshots, where a plain average
/// ([`LatencyRecorder`]) hides queueing spikes.
///
/// Buckets are powers of two of nanoseconds split into 4 linear
/// sub-buckets each, so any reported quantile is within ~25% of the true
/// value — tight enough to gate "p99 doubled" regressions, small enough
/// (2 KiB) to clone into every snapshot.
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    total: Duration,
    max: Duration,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            total: Duration::ZERO,
            max: Duration::ZERO,
        }
    }
}

impl LatencyHistogram {
    /// New empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for a nanosecond value.
    fn index(ns: u64) -> usize {
        // Values below 2^SUBS ns index linearly; above, the top SUBS+1
        // bits select (octave, sub-bucket).
        if ns < (1 << SUBS) {
            return ns as usize;
        }
        let msb = 63 - ns.leading_zeros();
        // The SUBS.ilog2() bits right below the leading one pick the
        // linear sub-bucket within the octave.
        let sub = ((ns >> (msb - SUBS.ilog2())) as usize) & (SUBS as usize - 1);
        let idx = (msb - 1) as usize * SUBS as usize + sub + SUBS as usize;
        idx.min(HIST_BUCKETS - 1)
    }

    /// Representative (geometric low edge) value of a bucket, in ns.
    fn value(idx: usize) -> u64 {
        if idx < (1 << SUBS) {
            return idx as u64;
        }
        let rel = idx - SUBS as usize;
        let msb = (rel / SUBS as usize + 1) as u32;
        let sub = (rel % SUBS as usize) as u64;
        (1u64 << msb) + (sub << (msb - SUBS.ilog2()))
    }

    /// Records one latency sample. Samples beyond the top octave clamp
    /// into the last bucket, and the running total saturates instead of
    /// overflowing, so even `Duration::MAX` outliers cannot panic the
    /// hot path.
    pub fn record(&mut self, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.buckets[Self::index(ns)] += 1;
        self.count += 1;
        self.total = self.total.saturating_add(d);
        self.max = self.max.max(d);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency (zero when empty).
    pub fn avg(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / u32::try_from(self.count).unwrap_or(u32::MAX)
        }
    }

    /// Maximum recorded latency.
    pub fn max(&self) -> Duration {
        self.max
    }

    /// Quantile `q` in `[0, 1]`: the smallest bucket value below which at
    /// least `q · count` samples fall (zero when empty, within ~25% of
    /// the true sample by construction).
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        if target >= self.count {
            return self.max;
        }
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Duration::from_nanos(Self::value(i)).min(self.max);
            }
        }
        self.max
    }

    /// Median latency.
    pub fn p50(&self) -> Duration {
        self.quantile(0.50)
    }

    /// 99th-percentile latency — the pipeline's gated tail metric.
    pub fn p99(&self) -> Duration {
        self.quantile(0.99)
    }

    /// Non-empty buckets as `(low edge in ns, sample count)` pairs,
    /// ascending — the sparse form metrics exporters ship so consumers
    /// can reconstruct any quantile, not just the pre-picked p50/p99.
    pub fn sparse_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (Self::value(i), n))
            .collect()
    }

    /// Merges another histogram (bucket-wise).
    pub fn merge(&mut self, o: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(o.buckets.iter()) {
            *a += b;
        }
        self.count += o.count;
        self.total = self.total.saturating_add(o.total);
        self.max = self.max.max(o.max);
    }
}

/// Wall-clock throughput meter: events per second over a processing span.
#[derive(Clone, Debug)]
pub struct ThroughputMeter {
    started: Instant,
    events: u64,
}

impl Default for ThroughputMeter {
    fn default() -> Self {
        Self::new()
    }
}

impl ThroughputMeter {
    /// Starts the clock.
    pub fn new() -> Self {
        ThroughputMeter {
            started: Instant::now(),
            events: 0,
        }
    }

    /// Counts processed events.
    pub fn add(&mut self, n: u64) {
        self.events += n;
    }

    /// Events processed.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Events per second since construction.
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.started.elapsed().as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.events as f64 / secs
        }
    }
}

/// Tracks the peak of a byte-accounted state size (§6.1: snapshot
/// expressions, stored events, per-query aggregates, and the executor's
/// watermark expiration index — not RSS, for determinism).
#[derive(Clone, Copy, Debug, Default)]
pub struct MemoryGauge {
    peak: usize,
    last: usize,
}

impl MemoryGauge {
    /// New gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds a current state size sample.
    pub fn sample(&mut self, bytes: usize) {
        self.last = bytes;
        if bytes > self.peak {
            self.peak = bytes;
        }
    }

    /// Peak bytes observed.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Last sample.
    pub fn last(&self) -> usize {
        self.last
    }

    /// Serializes the gauge (checkpoint codec).
    pub(crate) fn encode(&self, e: &mut crate::checkpoint::Enc) {
        e.usize(self.peak);
        e.usize(self.last);
    }

    /// Mirror of [`encode`](Self::encode).
    pub(crate) fn decode(
        d: &mut crate::checkpoint::Dec<'_>,
    ) -> Result<MemoryGauge, crate::checkpoint::CheckpointError> {
        Ok(MemoryGauge {
            peak: d.usize()?,
            last: d.usize()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_recorder_stats() {
        let mut r = LatencyRecorder::new();
        assert_eq!(r.avg(), Duration::ZERO);
        r.record(Duration::from_millis(10));
        r.record(Duration::from_millis(30));
        assert_eq!(r.avg(), Duration::from_millis(20));
        assert_eq!(r.max(), Duration::from_millis(30));
        assert_eq!(r.count(), 2);
        let mut r2 = LatencyRecorder::new();
        r2.record(Duration::from_millis(50));
        r.merge(&r2);
        assert_eq!(r.count(), 3);
        assert_eq!(r.max(), Duration::from_millis(50));
    }

    #[test]
    fn throughput_counts() {
        let mut t = ThroughputMeter::new();
        t.add(100);
        t.add(50);
        assert_eq!(t.events(), 150);
        std::thread::sleep(Duration::from_millis(1));
        assert!(t.events_per_sec() > 0.0);
    }

    #[test]
    fn histogram_quantiles_track_samples() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.p50(), Duration::ZERO);
        assert_eq!(h.p99(), Duration::ZERO);
        // 99 samples at 1ms, one spike at 100ms: p50 ~ 1ms, p99 picks up
        // the body's edge, max is exact.
        for _ in 0..99 {
            h.record(Duration::from_millis(1));
        }
        h.record(Duration::from_millis(100));
        assert_eq!(h.count(), 100);
        assert_eq!(h.max(), Duration::from_millis(100));
        let p50 = h.p50();
        assert!(
            p50 >= Duration::from_micros(750) && p50 <= Duration::from_micros(1250),
            "p50 within 25% of 1ms: {p50:?}"
        );
        // p99 still falls in the 1ms body (99 of 100 samples).
        assert!(h.p99() < Duration::from_millis(2), "p99 {:?}", h.p99());
        // p100 reaches the spike.
        assert_eq!(h.quantile(1.0), Duration::from_millis(100));
        assert!(h.avg() > Duration::from_millis(1));
    }

    #[test]
    fn histogram_bucket_roundtrip_is_within_resolution() {
        // Every recorded duration must land in a bucket whose
        // representative value is within 25% below the sample.
        for ns in [0u64, 1, 7, 15, 16, 17, 100, 999, 12_345, u32::MAX as u64] {
            let idx = LatencyHistogram::index(ns);
            let v = LatencyHistogram::value(idx);
            assert!(v <= ns, "bucket edge {v} above sample {ns}");
            assert!(
                ns == 0 || (v as f64) >= ns as f64 * 0.75,
                "bucket edge {v} more than 25% below {ns}"
            );
        }
        // Indices are monotone in the sample value.
        let mut last = 0;
        for ns in 0..100_000u64 {
            let idx = LatencyHistogram::index(ns);
            assert!(idx >= last, "index not monotone at {ns}");
            last = idx;
        }
    }

    #[test]
    fn histogram_merge_accumulates() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_micros(10));
        b.record(Duration::from_micros(500));
        b.record(Duration::from_micros(20));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), Duration::from_micros(500));
        assert!(a.quantile(1.0) >= Duration::from_micros(375));
    }

    /// Zero samples: every quantile and summary statistic must be an
    /// exact zero, never a division by zero or a bucket-edge artifact.
    #[test]
    fn histogram_empty_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.avg(), Duration::ZERO);
        assert_eq!(h.max(), Duration::ZERO);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Duration::ZERO, "q={q}");
        }
    }

    /// A single sample: every quantile is that sample (max short-circuit),
    /// and the mean is exact.
    #[test]
    fn histogram_single_sample_quantiles() {
        let mut h = LatencyHistogram::new();
        let d = Duration::from_micros(123);
        h.record(d);
        assert_eq!(h.count(), 1);
        assert_eq!(h.avg(), d);
        assert_eq!(h.max(), d);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), d, "q={q}");
        }
    }

    /// Samples beyond the top octave (and beyond u64 nanoseconds
    /// entirely) must clamp into the last bucket, not wrap or panic, and
    /// the exact max must still be reported.
    #[test]
    fn histogram_clamps_beyond_top_octave() {
        let mut h = LatencyHistogram::new();
        // Duration::MAX has ~2^94 ns; record() saturates it to u64::MAX.
        h.record(Duration::MAX);
        h.record(Duration::from_nanos(u64::MAX));
        h.record(Duration::from_millis(1));
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), Duration::MAX);
        // Both huge samples land in the final bucket.
        assert_eq!(LatencyHistogram::index(u64::MAX), HIST_BUCKETS - 1);
        // The top quantile reports the exact max, and everything stays
        // capped by it (quantile() clamps bucket edges to the max).
        assert_eq!(h.quantile(1.0), Duration::MAX);
        assert!(h.quantile(0.9) <= h.max());
        // Out-of-range q values clamp instead of indexing out of bounds.
        assert_eq!(h.quantile(-1.0), h.quantile(0.0));
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
    }

    /// Quantiles are monotone in q for an arbitrary spread of samples —
    /// the property every gate comparing p50 against p99 relies on.
    #[test]
    fn histogram_quantiles_are_monotone() {
        let mut h = LatencyHistogram::new();
        // Deterministic pseudo-random spread over 6 orders of magnitude.
        let mut s = 0x9E37_79B9u64;
        for _ in 0..500 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            h.record(Duration::from_nanos(s % 1_000_000_000));
        }
        let mut last = Duration::ZERO;
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            let v = h.quantile(q);
            assert!(v >= last, "quantile({q}) = {v:?} < {last:?}");
            last = v;
        }
        assert_eq!(h.quantile(1.0), h.max());
        assert!(h.p50() <= h.p99());
    }

    #[test]
    fn memory_gauge_peaks() {
        let mut g = MemoryGauge::new();
        g.sample(10);
        g.sample(100);
        g.sample(20);
        assert_eq!(g.peak(), 100);
        assert_eq!(g.last(), 20);
    }
}
