//! Workload analysis: breaking a query workload into *share groups*
//! (sets of sharable queries, Def. 5) at compile time (§3.1 step 1).
//!
//! Two queries are sharable when (i) their patterns contain a common
//! sharable Kleene sub-pattern `E+` (Def. 4), (ii) their aggregation
//! functions can be shared, (iii) their windows are compatible, and
//! (iv) their grouping attributes coincide.
//!
//! Deviation from the paper (documented in DESIGN.md): window
//! compatibility here means *equal* `(WITHIN, SLIDE)` rather than merely
//! overlapping — the paper's pane mechanism does not specify how trend
//! aggregates are stitched across panes of different windows, so we share
//! only among aligned windows. Queries that fail any condition run in
//! singleton groups (GRETA-style non-shared execution).

use crate::template::{MergedTemplate, TemplateError};
use hamlet_query::{AggFunc, Query, Window};
use hamlet_types::EventTypeId;
use std::fmt;
use std::sync::Arc;

/// Aggregate "skeleton" of a share group: the propagation dimensions all
/// members agree on.
#[derive(Clone, Debug, PartialEq)]
pub enum AggSkeleton {
    /// `COUNT(*)` members only: just the trend count.
    CountOnly,
    /// `COUNT(E)` / `SUM(E.attr)` / `AVG(E.attr)` members: ring-linear
    /// count/sum/cnt propagation over the target type (and attribute, if
    /// any member reads one).
    Linear {
        /// The target event type `E`.
        ty: EventTypeId,
        /// The attribute slot read by `SUM`/`AVG` members, if any.
        attr: Option<usize>,
    },
    /// `MIN`/`MAX` members: lattice propagation; never executed via shared
    /// graphlets (the lattice is not ring-linear, see DESIGN.md).
    MinMax {
        /// The target event type.
        ty: EventTypeId,
        /// The attribute slot.
        attr: usize,
        /// `true` for MIN, `false` for MAX.
        is_min: bool,
    },
}

impl AggSkeleton {
    /// Skeleton implied by a single aggregation function.
    pub fn of(agg: &AggFunc) -> AggSkeleton {
        match agg {
            AggFunc::CountStar => AggSkeleton::CountOnly,
            AggFunc::CountType(t) => AggSkeleton::Linear { ty: *t, attr: None },
            AggFunc::Sum(t, a) | AggFunc::Avg(t, a) => AggSkeleton::Linear {
                ty: *t,
                attr: Some(*a),
            },
            AggFunc::Min(t, a) => AggSkeleton::MinMax {
                ty: *t,
                attr: *a,
                is_min: true,
            },
            AggFunc::Max(t, a) => AggSkeleton::MinMax {
                ty: *t,
                attr: *a,
                is_min: false,
            },
        }
    }

    /// Merges another member's skeleton into this one, filling in the
    /// attribute slot if needed. Assumes sharability was already checked.
    fn absorb(&mut self, other: &AggSkeleton) {
        if let (AggSkeleton::Linear { attr, .. }, AggSkeleton::Linear { attr: Some(a2), .. }) =
            (&mut *self, other)
        {
            attr.get_or_insert(*a2);
        }
    }

    /// True iff the shared (snapshot-expression) execution path supports
    /// this skeleton.
    pub fn supports_sharing(&self) -> bool {
        !matches!(self, AggSkeleton::MinMax { .. })
    }
}

/// One set of sharable queries, with its merged template.
pub struct ShareGroup {
    /// Member queries in dense member order (member index = position).
    pub queries: Vec<Arc<Query>>,
    /// The group's window (all members agree).
    pub window: Window,
    /// Stream-partitioning attributes (group-by + equivalence).
    pub partition_attrs: Vec<Arc<str>>,
    /// Merged template (Fig. 3(b)).
    pub template: Arc<MergedTemplate>,
    /// Aggregation skeleton.
    pub skeleton: AggSkeleton,
}

impl fmt::Debug for ShareGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShareGroup")
            .field(
                "members",
                &self.queries.iter().map(|q| q.id).collect::<Vec<_>>(),
            )
            .field("window", &self.window)
            .field("skeleton", &self.skeleton)
            .finish()
    }
}

/// Compile-time plan for the whole workload.
#[derive(Debug)]
pub struct WorkloadPlan {
    /// Share groups; singleton groups hold non-sharable queries.
    pub groups: Vec<ShareGroup>,
}

impl WorkloadPlan {
    /// Number of groups with more than one member.
    pub fn num_shared_groups(&self) -> usize {
        self.groups.iter().filter(|g| g.queries.len() > 1).count()
    }
}

/// Errors from workload analysis.
#[derive(Debug)]
pub enum WorkloadError {
    /// A pattern failed template compilation.
    Template(hamlet_query::QueryId, TemplateError),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Template(q, e) => write!(f, "query {q:?}: {e}"),
        }
    }
}

impl std::error::Error for WorkloadError {}

fn windows_compatible(a: &Query, b: &Query) -> bool {
    a.window == b.window
}

fn grouping_equal(a: &Query, b: &Query) -> bool {
    a.partition_attrs() == b.partition_attrs()
}

fn kleene_overlap(a: &Query, b: &Query) -> bool {
    let ka = a.pattern.kleene_types();
    let kb = b.pattern.kleene_types();
    ka.intersection(&kb).next().is_some()
}

/// Def. 5 for a pair of queries.
pub fn sharable(a: &Query, b: &Query) -> bool {
    kleene_overlap(a, b)
        && a.agg.sharable_with(&b.agg)
        && windows_compatible(a, b)
        && grouping_equal(a, b)
}

/// Greedily clusters the workload into share groups and builds each
/// group's merged template (§3.1 steps 1–2).
///
/// Clustering is greedy-first-fit: a query joins the first group where it
/// is pairwise sharable with *every* member (aggregate sharability is not
/// transitive — e.g. `COUNT(E)` shares with both `SUM(E.a1)` and
/// `SUM(E.a2)`, which do not share with each other).
pub fn analyze(queries: &[Arc<Query>]) -> Result<WorkloadPlan, WorkloadError> {
    let mut buckets: Vec<Vec<Arc<Query>>> = Vec::new();
    for q in queries {
        let mut placed = false;
        for bucket in &mut buckets {
            if bucket.iter().all(|m| sharable(m, q)) {
                bucket.push(q.clone());
                placed = true;
                break;
            }
        }
        if !placed {
            buckets.push(vec![q.clone()]);
        }
    }

    let mut groups = Vec::with_capacity(buckets.len());
    for bucket in buckets {
        let refs: Vec<&Query> = bucket.iter().map(|q| q.as_ref()).collect();
        let template =
            MergedTemplate::build(&refs).map_err(|e| WorkloadError::Template(bucket[0].id, e))?;
        let mut skeleton = AggSkeleton::of(&bucket[0].agg);
        for m in &bucket[1..] {
            skeleton.absorb(&AggSkeleton::of(&m.agg));
        }
        groups.push(ShareGroup {
            window: bucket[0].window,
            partition_attrs: bucket[0].partition_attrs(),
            template: Arc::new(template),
            skeleton,
            queries: bucket,
        });
    }
    Ok(WorkloadPlan { groups })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamlet_query::Pattern;

    const A: EventTypeId = EventTypeId(0);
    const B: EventTypeId = EventTypeId(1);
    const C: EventTypeId = EventTypeId(2);

    fn seq(first: EventTypeId, kleene: EventTypeId) -> Pattern {
        Pattern::seq(vec![
            Pattern::Type(first),
            Pattern::plus(Pattern::Type(kleene)),
        ])
    }

    fn q(id: u32, p: Pattern, w: Window) -> Arc<Query> {
        Arc::new(Query::count_star(id, p, w))
    }

    #[test]
    fn fig3b_workload_forms_one_group() {
        let w = Window::tumbling(100);
        let plan = analyze(&[q(1, seq(A, B), w), q(2, seq(C, B), w)]).unwrap();
        assert_eq!(plan.groups.len(), 1);
        assert_eq!(plan.groups[0].queries.len(), 2);
        assert_eq!(plan.num_shared_groups(), 1);
        let tpl = &plan.groups[0].template;
        assert!(tpl.sharable[tpl.local(B).unwrap()]);
    }

    #[test]
    fn different_windows_do_not_share() {
        let plan = analyze(&[
            q(1, seq(A, B), Window::tumbling(100)),
            q(2, seq(C, B), Window::tumbling(200)),
        ])
        .unwrap();
        assert_eq!(plan.groups.len(), 2);
        assert_eq!(plan.num_shared_groups(), 0);
    }

    #[test]
    fn disjoint_kleene_types_do_not_share() {
        let w = Window::tumbling(100);
        let plan = analyze(&[q(1, seq(A, B), w), q(2, seq(B, C), w)]).unwrap();
        assert_eq!(plan.groups.len(), 2);
    }

    #[test]
    fn different_grouping_does_not_share() {
        let w = Window::tumbling(100);
        let q1 = q(1, seq(A, B), w);
        let mut q2v = Query::count_star(2, seq(C, B), w);
        q2v.group_by = vec![Arc::from("district")];
        let plan = analyze(&[q1, Arc::new(q2v)]).unwrap();
        assert_eq!(plan.groups.len(), 2);
    }

    #[test]
    fn agg_skeletons() {
        assert_eq!(AggSkeleton::of(&AggFunc::CountStar), AggSkeleton::CountOnly);
        assert_eq!(
            AggSkeleton::of(&AggFunc::Avg(B, 3)),
            AggSkeleton::Linear {
                ty: B,
                attr: Some(3)
            }
        );
        assert!(!AggSkeleton::of(&AggFunc::Min(B, 0)).supports_sharing());
        assert!(AggSkeleton::of(&AggFunc::CountStar).supports_sharing());
    }

    #[test]
    fn count_type_absorbs_attr_from_sum() {
        let w = Window::tumbling(100);
        let mk = |id, agg| {
            Arc::new(
                Query::new(
                    hamlet_query::QueryId(id),
                    seq(A, B),
                    agg,
                    vec![],
                    vec![],
                    vec![],
                    vec![],
                    w,
                )
                .unwrap(),
            )
        };
        let plan = analyze(&[mk(1, AggFunc::CountType(B)), mk(2, AggFunc::Sum(B, 1))]).unwrap();
        assert_eq!(plan.groups.len(), 1);
        assert_eq!(
            plan.groups[0].skeleton,
            AggSkeleton::Linear {
                ty: B,
                attr: Some(1)
            }
        );
    }

    #[test]
    fn sum_on_different_attrs_splits_groups() {
        let w = Window::tumbling(100);
        let mk = |id, agg| {
            Arc::new(
                Query::new(
                    hamlet_query::QueryId(id),
                    seq(A, B),
                    agg,
                    vec![],
                    vec![],
                    vec![],
                    vec![],
                    w,
                )
                .unwrap(),
            )
        };
        let plan = analyze(&[mk(1, AggFunc::Sum(B, 0)), mk(2, AggFunc::Sum(B, 1))]).unwrap();
        assert_eq!(plan.groups.len(), 2);
    }
}
