//! The HAMLET executor (Fig. 2): stream partitioning, pane-aligned burst
//! buffering, per-window runs, optimizer invocation, and result emission.
//!
//! For each share group the executor partitions the stream by the group's
//! grouping/equivalence attributes (§2.2), tracks the window instances that
//! contain each event (`WITHIN`/`SLIDE`), buffers consecutive same-type
//! events into bursts bounded by pane boundaries (Def. 10), asks the
//! optimizer for a sharing decision per burst (§4.2), and feeds the burst
//! to the window's [`Run`]. When the watermark (event time) passes a
//! window's end, the run is finalized and one result per member query and
//! group-by key is emitted.

use crate::general::{self, CombineKind};
use crate::metrics::{LatencyRecorder, MemoryGauge};
use crate::optimizer::{decide, DivergenceEstimator, SharingPolicy};
use crate::run::{GroupRuntime, MemberOutput, Run, RunStats};
use crate::workload::{self, WorkloadError};
use hamlet_obs::{GroupMetrics, SpanRecorder, Stage};
use hamlet_query::{AggFunc, Query, QueryId, Window};
use hamlet_types::time::window_end;
use hamlet_types::{AttrValue, Event, GroupKey, Ts, TypeRegistry};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap, HashSet};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How the optimizer obtains per-burst divergence counts (`sc`, §4.1).
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum DivergenceMode {
    /// Pre-scan each burst's predicates exactly — O(k·b) per decision.
    Exact,
    /// Predict from exponential moving averages of past bursts — O(k) per
    /// decision, the paper's "locally available stream statistics" (§4.2).
    /// `alpha` is the EMA smoothing factor.
    Ema {
        /// Weight of the newest observation.
        alpha: f64,
    },
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Sharing policy (dynamic HAMLET, static always-share, or GRETA-style
    /// never-share).
    pub policy: SharingPolicy,
    /// Divergence statistics for dynamic decisions.
    pub divergence: DivergenceMode,
    /// Sample the byte-accounted state size every this many events
    /// (0 disables the memory gauge).
    pub mem_sample_every: u64,
    /// Track per-result latency with wall-clock arrival stamps.
    pub track_latency: bool,
    /// Shared-nothing sharding: `(index, total)` makes this engine own
    /// only the partitions whose key hashes to `index` — the building
    /// block of [`crate::parallel::ParallelEngine`]. `None` owns all.
    pub shard: Option<(u32, u32)>,
    /// Maintain the per-share-group observability registry
    /// ([`HamletEngine::group_metrics`]): live counters per group plus
    /// the Def. 12 benefit priced at placement. Off, `group_metrics()`
    /// is empty and the per-group counter sites vanish (the
    /// `fig_obs` sweep prices the difference; it is budgeted ≤ 3%).
    pub obs: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            policy: SharingPolicy::Dynamic,
            divergence: DivergenceMode::Exact,
            mem_sample_every: 256,
            track_latency: true,
            shard: None,
            obs: true,
        }
    }
}

/// A rendered aggregation value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AggValue {
    /// `COUNT(*)` / `COUNT(E)` result (ring-valued, wraps at 2⁶⁴ like the
    /// reference implementation's `long`).
    Count(u64),
    /// `SUM` / `AVG` / `MIN` / `MAX` result.
    Float(f64),
    /// No value (e.g. `MIN` over an empty trend set).
    Null,
}

impl AggValue {
    /// Numeric view (Null → 0, counts as f64).
    pub fn as_f64(&self) -> f64 {
        match self {
            AggValue::Count(c) => *c as f64,
            AggValue::Float(f) => *f,
            AggValue::Null => 0.0,
        }
    }

    /// Count view (panics on floats — intended for `COUNT` queries).
    pub fn as_count(&self) -> u64 {
        match self {
            AggValue::Count(c) => *c,
            AggValue::Null => 0,
            AggValue::Float(_) => panic!("float aggregate read as count"),
        }
    }
}

/// One aggregation result: query × group-by key × window instance.
#[derive(Clone, Debug, PartialEq)]
pub struct WindowResult {
    /// The (original) query that produced the result.
    pub query: QueryId,
    /// Group-by / equivalence key of the partition.
    pub group_key: GroupKey,
    /// Window instance start.
    pub window_start: Ts,
    /// The aggregate.
    pub value: AggValue,
}

/// Engine construction errors.
#[derive(Debug)]
pub enum EngineError {
    /// Workload analysis failed.
    Workload(WorkloadError),
    /// A general (`OR`/`AND`) query could not be decomposed.
    General(QueryId, general::GeneralError),
    /// Unsupported clause combination.
    Unsupported(String),
    /// A churn schedule (timestamped add/remove ops validated up front,
    /// e.g. a pipeline churn script) is invalid against the workload it
    /// evolves.
    Churn(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Workload(e) => write!(f, "workload analysis: {e}"),
            EngineError::General(q, e) => write!(f, "query {q:?}: {e}"),
            EngineError::Unsupported(m) => write!(f, "unsupported: {m}"),
            EngineError::Churn(m) => write!(f, "churn schedule: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Aggregated executor statistics (feeds §6.2's figures).
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineStats {
    /// Accumulated run counters (snapshots, graphlets, merges, splits …).
    pub runs: RunStats,
    /// Optimizer decisions taken.
    pub decisions: u64,
    /// Total wall time spent deciding (§6.2 reports < 0.2% of latency).
    pub decision_time: Duration,
    /// Window results emitted.
    pub windows_emitted: u64,
    /// Events accepted by at least one group.
    pub events_routed: u64,
    /// Entries pushed into the watermark expiration index (= runs
    /// created; each live run is indexed exactly once).
    pub expiry_pushes: u64,
    /// Index entries popped whose run was already gone (lazy
    /// invalidation); stays 0 unless a run is drained out of band.
    pub expiry_tombstones: u64,
    /// Window-instance contributions skipped because the event arrived
    /// after its window instance had already been emitted (the engine's
    /// out-of-order safety net; stays 0 on in-order streams and behind
    /// a correctly-slacked pipeline reorder stage).
    pub late_skips: u64,
}

impl EngineStats {
    /// Accumulates another engine's counters, e.g. to aggregate the
    /// per-worker statistics of a [`crate::parallel::ParallelEngine`] run
    /// into one workload-level view.
    pub fn merge(&mut self, o: &EngineStats) {
        self.runs.add(&o.runs);
        self.decisions += o.decisions;
        self.decision_time += o.decision_time;
        self.windows_emitted += o.windows_emitted;
        self.events_routed += o.events_routed;
        self.expiry_pushes += o.expiry_pushes;
        self.expiry_tombstones += o.expiry_tombstones;
        self.late_skips += o.late_skips;
    }

    /// Serializes the counters (checkpoint codec).
    pub(crate) fn encode(&self, e: &mut crate::checkpoint::Enc) {
        self.runs.encode(e);
        e.u64(self.decisions);
        e.duration(self.decision_time);
        e.u64(self.windows_emitted);
        e.u64(self.events_routed);
        e.u64(self.expiry_pushes);
        e.u64(self.expiry_tombstones);
        e.u64(self.late_skips);
    }

    /// Mirror of [`encode`](Self::encode).
    pub(crate) fn decode(
        d: &mut crate::checkpoint::Dec<'_>,
    ) -> Result<EngineStats, crate::checkpoint::CheckpointError> {
        Ok(EngineStats {
            runs: RunStats::decode(d)?,
            decisions: d.u64()?,
            decision_time: d.duration()?,
            windows_emitted: d.u64()?,
            events_routed: d.u64()?,
            expiry_pushes: d.u64()?,
            expiry_tombstones: d.u64()?,
            late_skips: d.u64()?,
        })
    }
}

/// Maps a partition key to its owning shard under `total`-way sharding —
/// the single hash both the engine's `EngineConfig::shard` filter and the
/// parallel router use, so they can never disagree.
pub(crate) fn shard_index(key: &GroupKey, total: u32) -> u32 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % total as u64) as u32
}

/// Sorts window results into the canonical report order: ascending
/// `(window_start, query, group_key)`. This is the order
/// [`crate::parallel::ParallelReport::results`] guarantees; applying it to
/// a single-threaded run makes the two byte-comparable.
pub fn sort_results(results: &mut [WindowResult]) {
    results.sort_by(|a, b| {
        (a.window_start, a.query)
            .cmp(&(b.window_start, b.query))
            .then_with(|| a.group_key.total_cmp(&b.group_key))
    });
}

struct RunState {
    run: Run,
    burst_ty: Option<usize>,
    burst: Vec<Event>,
    /// Count-only tail of the pending burst: events buffered by the
    /// batched path for *uniform* groups ([`GroupRuntime::uniform_bursts`])
    /// carry no information beyond their number, so they are never
    /// materialized — the flush replays them with the closed-form burst
    /// advance. Both halves flush together as one burst (one decision).
    burst_extra: u64,
    burst_pane: u64,
    last_arrival: Option<Instant>,
}

impl RunState {
    fn new(rt: Arc<GroupRuntime>) -> RunState {
        RunState {
            run: Run::new(rt),
            burst_ty: None,
            burst: Vec::new(),
            burst_extra: 0,
            burst_pane: 0,
            last_arrival: None,
        }
    }
}

struct GroupExec {
    rt: Arc<GroupRuntime>,
    /// [`GroupRuntime::uniform_bursts`], checked once at build time: the
    /// batched path buffers this group's bursts as a bare count.
    uniform: bool,
    window: Window,
    pane: u64,
    partition_attrs: Vec<Arc<str>>,
    /// `partition_slots[type][attr_pos]` — the schema slot of each
    /// partition attribute, resolved once at build time so the hot path
    /// never does per-event attribute-name lookups (string compares).
    partition_slots: Vec<Vec<Option<usize>>>,
    partitions: HashMap<GroupKey, BTreeMap<u64, RunState>>,
    /// Stream statistics for O(k) dynamic decisions (shared across the
    /// group's partitions — divergence is a property of the stream).
    estimator: DivergenceEstimator,
}

impl GroupExec {
    /// Name-resolving reference form of the key computation; the batched
    /// path uses the slot-resolved [`partition_key_into`] instead.
    ///
    /// [`partition_key_into`]: Self::partition_key_into
    fn partition_key(&self, reg: &TypeRegistry, e: &Event) -> GroupKey {
        GroupKey(
            self.partition_attrs
                .iter()
                .map(|name| {
                    reg.attr_index(e.ty, name)
                        .and_then(|i| e.attr(i).cloned())
                        .unwrap_or(AttrValue::Int(0))
                })
                .collect(),
        )
    }

    /// Writes `e`'s partition key into `key` (cleared first) through the
    /// pre-resolved slots — equal to [`partition_key`](Self::partition_key)
    /// on every event, with no name lookups and no allocation beyond what
    /// `key` already owns.
    #[inline]
    fn partition_key_into(&self, e: &Event, key: &mut GroupKey) {
        key.0.clear();
        for slot in &self.partition_slots[e.ty.idx()] {
            key.0.push(match slot.and_then(|i| e.attr(i)) {
                Some(v) => v.clone(),
                None => AttrValue::Int(0),
            });
        }
    }
}

/// One live run in the watermark expiration index.
///
/// The engine keeps a min-heap of these ordered by `(end, start, group,
/// key)`: `emit_expired(wm)` pops exactly the runs whose window end has
/// passed `wm` — O(k log n) for k expirations — instead of scanning every
/// live partition of every group per event. An entry is pushed once per
/// run creation; if the run is gone by the time its entry surfaces (lazy
/// invalidation) the pop is a tombstone and is skipped.
struct ExpiryEntry {
    /// Window end (`start + within`, saturating — see [`window_end`]).
    end: u64,
    /// Window instance start.
    start: u64,
    /// Owning share group index.
    group: usize,
    /// Partition key within the group.
    key: GroupKey,
}

impl PartialEq for ExpiryEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for ExpiryEntry {}

impl PartialOrd for ExpiryEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ExpiryEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.end, self.start, self.group)
            .cmp(&(other.end, other.start, other.group))
            .then_with(|| self.key.total_cmp(&other.key))
    }
}

/// Recycled `Event` attribute buffers for burst appends — the batch
/// scratch arena. Flushed bursts hand their events' attribute vectors
/// back here and subsequent appends reuse them, so steady-state burst
/// buffering allocates nothing per event. Bounded so a burst storm cannot
/// pin memory forever; never serialized (a restored engine starts empty
/// and refills from its first flushes).
struct EventArena {
    pool: Vec<Vec<AttrValue>>,
}

impl EventArena {
    /// Retention cap; beyond it, freed buffers fall through to the
    /// allocator as before.
    const MAX_POOLED: usize = 1 << 16;

    fn new() -> EventArena {
        EventArena { pool: Vec::new() }
    }

    /// Clones `e` for burst storage, reusing a pooled attribute buffer
    /// when one is available.
    #[inline]
    fn alloc_event(&mut self, e: &Event) -> Event {
        match self.pool.pop() {
            Some(mut attrs) => {
                attrs.clear();
                attrs.extend_from_slice(&e.attrs);
                Event {
                    time: e.time,
                    ty: e.ty,
                    attrs,
                }
            }
            None => e.clone(),
        }
    }

    /// Takes a flushed burst event's attribute buffer back into the pool.
    #[inline]
    fn recycle(&mut self, ev: Event) {
        if self.pool.len() < Self::MAX_POOLED && ev.attrs.capacity() > 0 {
            let mut attrs = ev.attrs;
            attrs.clear();
            self.pool.push(attrs);
        }
    }

    /// Byte footprint of the pooled buffers, reported by
    /// [`HamletEngine::state_bytes`].
    fn bytes(&self) -> usize {
        self.pool.capacity() * std::mem::size_of::<Vec<AttrValue>>()
            + self
                .pool
                .iter()
                .map(|v| v.capacity() * std::mem::size_of::<AttrValue>())
                .sum::<usize>()
    }
}

/// One key-grouped bucket of a batch segment: the events (by index into
/// the segment, with their local type) that one `(group, key)` partition
/// receives, in stream order.
struct Bucket {
    group: u32,
    key: GroupKey,
    /// `(segment index, local type)` per event.
    events: Vec<(u32, u32)>,
}

/// Reusable buffers of [`HamletEngine::process_batch`], kept on the
/// engine so steady-state batch processing performs no per-event
/// allocation. Pure scratch: cleared between segments, never serialized,
/// and holds no semantic state.
struct BatchScratch {
    /// Per key class (see [`HamletEngine::route`]): the key built for the
    /// current event, whether it has been built yet, and whether it
    /// passes the shard filter. Groups with identical partition-slot
    /// tables share one key computation (and one shard hash) per event
    /// instead of one per group.
    class_keys: Vec<GroupKey>,
    class_built: Vec<bool>,
    class_shard_ok: Vec<bool>,
    /// Per window class: whether this event already folded its earliest
    /// window end into the segment boundary.
    wnd_done: Vec<bool>,
    /// Per key class: map from partition key to *slot* — a row of
    /// per-group bucket indices in `slots` (stride = number of groups).
    /// One hash probe resolves the buckets of every group in the class.
    slot_of: Vec<HashMap<GroupKey, u32>>,
    /// Flat `slot × group → bucket index` table (`u32::MAX` = none yet).
    slots: Vec<u32>,
    /// Per key class: the previous event's key and its slot — bursty
    /// streams mostly repeat the key, skipping even the one hash probe.
    prev_keys: Vec<GroupKey>,
    prev_slot: Vec<u32>,
    /// Buckets of the current segment, in first-appearance order — a
    /// deterministic processing order, unlike hash iteration.
    buckets: Vec<Bucket>,
    /// Spare bucket-event vectors recycled between segments.
    spare: Vec<Vec<(u32, u32)>>,
    /// Window starts of the most recently looked-up event time.
    starts: Vec<Ts>,
    /// Per segment event: the watermark the fold would have seen at that
    /// event — the late-guard boundary (grouping reorders processing, so
    /// the guard must use each event's own fold-order watermark).
    wms: Vec<u64>,
}

impl BatchScratch {
    fn new(num_classes: usize, num_wnd_classes: usize) -> BatchScratch {
        BatchScratch {
            class_keys: (0..num_classes).map(|_| GroupKey(Vec::new())).collect(),
            class_built: vec![false; num_classes],
            class_shard_ok: vec![false; num_classes],
            wnd_done: vec![false; num_wnd_classes],
            slot_of: (0..num_classes).map(|_| HashMap::new()).collect(),
            slots: Vec::new(),
            prev_keys: (0..num_classes).map(|_| GroupKey(Vec::new())).collect(),
            prev_slot: vec![u32::MAX; num_classes],
            buckets: Vec::new(),
            spare: Vec::new(),
            starts: Vec::new(),
            wms: Vec::new(),
        }
    }
}

/// Identifies a decomposed general query's halves.
struct Combiner {
    orig: QueryId,
    kind: CombineKind,
    same_pattern: bool,
    left: QueryId,
    right: QueryId,
}

/// Everything [`HamletEngine::compile`] derives from a query list: the
/// share groups with their runtimes, the general-query combiners, and
/// the batched path's routing/class tables. Built identically by
/// [`HamletEngine::new`] and by runtime query churn, so a churned engine
/// and a fresh engine over the same final query set agree on every
/// compiled structure (and therefore on the workload fingerprint).
struct CompiledWorkload {
    groups: Vec<GroupExec>,
    combiners: Vec<Combiner>,
    sub_of: HashMap<QueryId, usize>,
    route: Vec<Vec<(u32, u32, u32, u32)>>,
    num_classes: usize,
    num_wnd_classes: usize,
}

/// One workload-churn operation: register or retire a query on a live
/// engine (see [`HamletEngine::add_query`] /
/// [`HamletEngine::remove_query`]).
#[derive(Clone, Debug)]
pub enum ChurnOp {
    /// Register a new query. Its id must be unused.
    Add(Query),
    /// Retire the query with this id.
    Remove(QueryId),
}

/// Errors from runtime query churn. The engine is never left
/// half-churned: on any error the previous workload keeps running
/// untouched.
#[derive(Debug)]
pub enum ChurnError {
    /// `remove_query` named an id that is not registered (including a
    /// double remove).
    Unknown(QueryId),
    /// `add_query` re-used an id that is still registered.
    Duplicate(QueryId),
    /// The post-churn workload failed to compile (same errors as
    /// [`HamletEngine::new`]).
    Engine(EngineError),
}

impl fmt::Display for ChurnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChurnError::Unknown(q) => write!(f, "no query with id {q:?} is registered"),
            ChurnError::Duplicate(q) => write!(f, "query id {q:?} is already registered"),
            ChurnError::Engine(e) => write!(f, "post-churn workload: {e}"),
        }
    }
}

impl std::error::Error for ChurnError {}

/// Post-churn placement of one share group, with the Def. 12 benefit
/// model re-run against the group's current stream statistics (§4.1) —
/// the *a-priori* shared-vs-solo call for the new workload. Runtime
/// per-burst decisions still re-price continuously; this records what
/// the optimizer thinks at the churn barrier.
#[derive(Clone, Debug)]
pub struct GroupPlacement {
    /// Member (original) query ids.
    pub members: Vec<QueryId>,
    /// Whether the group carried live state over from before the churn
    /// (an untouched group) or started fresh (touched/rebuilt).
    pub carried_over: bool,
    /// Def. 12 benefit estimate for sharing this group's sharable burst
    /// processing (`NonShared − Shared`; positive favors sharing).
    /// Singleton groups have nothing to share and report 0.
    pub benefit: f64,
    /// The placement decision implied by `benefit` and the group size:
    /// `true` = execute shared (HAMLET graphlets), `false` = solo
    /// (GRETA-style per-query processing).
    pub shared: bool,
}

/// What a successful [`HamletEngine::add_query`] /
/// [`HamletEngine::remove_query`] hands back.
#[derive(Debug)]
pub struct ChurnReport {
    /// Results of in-flight windows that belonged to *touched* share
    /// groups, drained at the churn barrier in the canonical
    /// `(window_start, group, key)` order. Untouched groups keep their
    /// in-flight state and are not represented here.
    pub drained: Vec<WindowResult>,
    /// Share groups whose member set was unchanged: their live runs,
    /// partitions, and learned divergence statistics carried over.
    pub groups_carried: usize,
    /// Share groups that were created or restructured by the churn and
    /// start empty (their prior in-flight windows are in `drained`).
    pub groups_rebuilt: usize,
    /// Per-group placement after re-running the benefit model.
    pub placements: Vec<GroupPlacement>,
    /// The engine's workload epoch after the churn (monotone; stamped
    /// into every subsequent checkpoint).
    pub epoch: u64,
}

/// One buffered general-query half, as keyed in `HamletEngine::pending`:
/// the `(combiner index, group, window start)` slot plus the sub-query that
/// arrived first and its trend count.
type PendingHalf = ((usize, GroupKey, u64), (QueryId, u64));

/// Decoded-but-not-applied content of one delta record: per-group
/// partition removals/upserts plus the full scalar tail. Staged so a
/// chain restore can decode every record before committing any
/// (chain-level decode-then-commit, mirroring [`HamletEngine::restore`]).
struct DeltaStage {
    /// Parallel to `HamletEngine::groups`.
    groups: Vec<GroupDeltaStage>,
    pending_removals: Vec<(usize, GroupKey, u64)>,
    pending_upserts: Vec<PendingHalf>,
    stats: EngineStats,
    latency: LatencyRecorder,
    gauge: MemoryGauge,
    event_counter: u64,
    watermark: Option<Ts>,
    obs: Vec<[u64; 8]>,
}

/// One group's slice of a [`DeltaStage`]: partitions that vanished
/// since the parent cut, partitions re-encoded wholesale because they
/// were (possibly) touched, and the group's full divergence estimator
/// (small, so deltas always carry it rather than diffing it).
struct GroupDeltaStage {
    removals: Vec<GroupKey>,
    upserts: Vec<(GroupKey, BTreeMap<u64, RunState>)>,
    estimator: DivergenceEstimator,
}

/// The multi-query trend aggregation engine (§2.2).
pub struct HamletEngine {
    reg: Arc<TypeRegistry>,
    cfg: EngineConfig,
    groups: Vec<GroupExec>,
    combiners: Vec<Combiner>,
    /// sub-query id → combiner index.
    sub_of: HashMap<QueryId, usize>,
    /// (combiner, key, window) → the half that arrived first.
    pending: HashMap<(usize, GroupKey, u64), (QueryId, u64)>,
    /// Watermark expiration index: min-heap over the window ends of every
    /// live run, across all groups (see [`ExpiryEntry`]).
    expiry: BinaryHeap<Reverse<ExpiryEntry>>,
    /// Test-only oracle switch: route expiry through the old full
    /// partition scan instead of the index (kept as the reference the
    /// property tests compare the heap path against).
    #[cfg(test)]
    scan_expiry: bool,
    stats: EngineStats,
    latency: LatencyRecorder,
    gauge: MemoryGauge,
    /// Reusable batch-path buffers (see [`BatchScratch`]).
    scratch: BatchScratch,
    /// `route[type]` — the `(group, local type, key class, window class)`
    /// rows of every group the type is local to, so the batched scan only
    /// touches matching groups. Key classes number groups with identical
    /// partition-slot tables (one class = one key build per event);
    /// window classes additionally fold in the window, deduplicating the
    /// segment-boundary computation.
    route: Vec<Vec<(u32, u32, u32, u32)>>,
    /// Recycled burst-event attribute buffers (see [`EventArena`]).
    arena: EventArena,
    event_counter: u64,
    /// Monotone event-time watermark: the maximum event timestamp seen.
    /// Expiry only ever advances with it, so a window instance that was
    /// emitted stays emitted — late contributions to it are skipped (and
    /// counted in [`EngineStats::late_skips`]) instead of resurrecting
    /// the window and double-emitting it at flush.
    watermark: Option<Ts>,
    /// Per-share-group observability registry (`cfg.obs`): one
    /// [`GroupMetrics`] per group, parallel to `groups`. Empty when
    /// disabled, so every counter site is a single `get_mut` miss.
    obs: Vec<GroupMetrics>,
    /// Attached stage-span recorder and the lane to record on
    /// (`None` = spans off; see [`Self::attach_span_recorder`]).
    span: Option<(Arc<SpanRecorder>, u32)>,
    /// The original (pre-decomposition) query set, kept so runtime churn
    /// can recompile the workload from scratch.
    queries: Vec<Query>,
    /// Workload epoch: 0 at construction, +1 per successful churn.
    /// Stamped into checkpoints so restore can reject state taken under
    /// a different query set generation.
    epoch: u64,
    /// Partitions possibly touched since the last chain cut, as
    /// `(group index, key)`. At cut time a touched key still present is
    /// re-encoded wholesale (upsert); an absent one becomes a removal.
    dirty_parts: HashSet<(usize, GroupKey)>,
    /// Pending general-query half slots possibly touched since the last
    /// cut (same present/absent → upsert/removal rule).
    dirty_pending: HashSet<(usize, GroupKey, u64)>,
    /// Sequence number of the last chain record cut from this engine
    /// (0 = never cut; the first cut is always a base).
    cut_seq: u64,
    /// Dirty tracking is off until the first [`Self::cut_record`], so
    /// engines that never cut pay nothing for the chain machinery.
    track_dirty: bool,
    /// Set when state jumped without going through the dirty log
    /// (runtime churn, a legacy full `restore`): the next delta cut is
    /// silently promoted to a base.
    delta_unsound: bool,
}

impl HamletEngine {
    /// Compiles a workload and builds the engine (§3.1 pre-processing).
    pub fn new(
        reg: Arc<TypeRegistry>,
        queries: Vec<Query>,
        cfg: EngineConfig,
    ) -> Result<HamletEngine, EngineError> {
        let compiled = Self::compile(&reg, &queries, &cfg)?;
        let mut eng = HamletEngine {
            reg,
            cfg,
            groups: compiled.groups,
            combiners: compiled.combiners,
            sub_of: compiled.sub_of,
            pending: HashMap::new(),
            expiry: BinaryHeap::new(),
            #[cfg(test)]
            scan_expiry: false,
            stats: EngineStats::default(),
            latency: LatencyRecorder::new(),
            gauge: MemoryGauge::new(),
            scratch: BatchScratch::new(compiled.num_classes, compiled.num_wnd_classes),
            route: compiled.route,
            arena: EventArena::new(),
            obs: Vec::new(),
            span: None,
            event_counter: 0,
            watermark: None,
            queries,
            epoch: 0,
            dirty_parts: HashSet::new(),
            dirty_pending: HashSet::new(),
            cut_seq: 0,
            track_dirty: false,
            delta_unsound: false,
        };
        if eng.cfg.obs {
            eng.obs = eng.build_obs();
        }
        Ok(eng)
    }

    /// Builds the per-group observability registry for the current
    /// compiled workload, pricing each group's Def. 12 benefit and
    /// sharing decision exactly as a churn barrier would
    /// ([`Self::placement_for`]); counters start at zero.
    fn build_obs(&self) -> Vec<GroupMetrics> {
        let sigs = Self::group_sigs(&self.groups, &self.sub_of, &self.combiners);
        self.groups
            .iter()
            .zip(sigs)
            .enumerate()
            .map(|(gi, (g, sig))| {
                let p = self.placement_for(g, false);
                let mut m = GroupMetrics::new(gi as u32, sig);
                m.shared = p.shared;
                m.benefit = p.benefit;
                m
            })
            .collect()
    }

    /// Compiles a query list into executable share groups: decomposes
    /// general patterns, clusters by sharability, builds the per-group
    /// runtimes and the batched path's routing tables. Deterministic in
    /// the query list, so churn and `new` agree structure-for-structure.
    fn compile(
        reg: &Arc<TypeRegistry>,
        queries: &[Query],
        cfg: &EngineConfig,
    ) -> Result<CompiledWorkload, EngineError> {
        let mut next_id = queries.iter().map(|q| q.id.0 + 1).max().unwrap_or(0);
        let mut simple: Vec<Arc<Query>> = Vec::new();
        let mut combiners = Vec::new();
        let mut sub_of = HashMap::new();
        for q in queries {
            if !q.pattern.negated_types().is_empty()
                && matches!(q.agg, AggFunc::Min(..) | AggFunc::Max(..))
            {
                return Err(EngineError::Unsupported(format!(
                    "query {:?}: MIN/MAX with negation (lattice values cannot be \
                     un-blocked; see DESIGN.md)",
                    q.id
                )));
            }
            match general::decompose(q, QueryId(next_id), QueryId(next_id + 1))
                .map_err(|e| EngineError::General(q.id, e))?
            {
                Some(d) => {
                    let ci = combiners.len();
                    sub_of.insert(d.left.id, ci);
                    sub_of.insert(d.right.id, ci);
                    combiners.push(Combiner {
                        orig: q.id,
                        kind: d.kind,
                        same_pattern: d.same_pattern,
                        left: d.left.id,
                        right: d.right.id,
                    });
                    simple.push(Arc::new(d.left));
                    simple.push(Arc::new(d.right));
                    next_id += 2;
                }
                None => simple.push(Arc::new(q.clone())),
            }
        }
        let plan = workload::analyze(&simple).map_err(EngineError::Workload)?;
        let groups = plan
            .groups
            .iter()
            .map(|g| {
                let pane = hamlet_types::time::gcd(g.window.within, g.window.slide);
                let rt = GroupRuntime::new(g);
                let alpha = match cfg.divergence {
                    DivergenceMode::Ema { alpha } => alpha,
                    DivergenceMode::Exact => 0.5,
                };
                let partition_slots = (0..reg.len())
                    .map(|t| {
                        let id = hamlet_types::EventTypeId(t as u16);
                        g.partition_attrs
                            .iter()
                            .map(|name| reg.attr_index(id, name))
                            .collect()
                    })
                    .collect();
                GroupExec {
                    estimator: DivergenceEstimator::new(rt.template.num_types(), rt.k(), alpha),
                    uniform: rt.uniform_bursts(),
                    rt,
                    window: g.window,
                    pane: pane.max(1),
                    partition_attrs: g.partition_attrs.clone(),
                    partition_slots,
                    partitions: HashMap::new(),
                }
            })
            .collect();
        let groups: Vec<GroupExec> = groups;
        // Key classes: one per distinct partition-slot table.
        let mut class_reps: Vec<usize> = Vec::new();
        let class_of: Vec<u32> = groups
            .iter()
            .enumerate()
            .map(|(gi, g)| {
                match class_reps
                    .iter()
                    .position(|&r| groups[r].partition_slots == g.partition_slots)
                {
                    Some(i) => i as u32,
                    None => {
                        class_reps.push(gi);
                        (class_reps.len() - 1) as u32
                    }
                }
            })
            .collect();
        // Window classes: one per distinct (window, key class) pair — the
        // segment-boundary fold is identical within a class, so the scan
        // computes it once per event.
        let mut wnd_reps: Vec<(u64, u64, u32)> = Vec::new();
        let wnd_of: Vec<u32> = groups
            .iter()
            .enumerate()
            .map(|(gi, g)| {
                let sig = (g.window.within, g.window.slide, class_of[gi]);
                match wnd_reps.iter().position(|&r| r == sig) {
                    Some(i) => i as u32,
                    None => {
                        wnd_reps.push(sig);
                        (wnd_reps.len() - 1) as u32
                    }
                }
            })
            .collect();
        let route: Vec<Vec<(u32, u32, u32, u32)>> = (0..reg.len())
            .map(|t| {
                let id = hamlet_types::EventTypeId(t as u16);
                groups
                    .iter()
                    .enumerate()
                    .filter_map(|(gi, g)| {
                        g.rt.template
                            .local(id)
                            .map(|tl| (gi as u32, tl as u32, class_of[gi], wnd_of[gi]))
                    })
                    .collect()
            })
            .collect();
        let num_classes = class_reps.len().max(1);
        let num_wnd_classes = wnd_reps.len().max(1);
        Ok(CompiledWorkload {
            groups,
            combiners,
            sub_of,
            route,
            num_classes,
            num_wnd_classes,
        })
    }

    /// Number of share groups (singletons included).
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Bitmask of the shards (under `total`-way sharding, `total` ≤ 64)
    /// that must see `e`: for each share group the event is local to, the
    /// bit of the shard owning its partition key is set. An event can
    /// carry different keys in different groups, so more than one bit may
    /// be set; an event no group accepts routes nowhere (empty mask).
    ///
    /// Uses the same hash as the `EngineConfig::shard` filter, so a
    /// sharded engine fed only the events whose mask covers its index
    /// computes exactly what it would from the full stream.
    pub fn shard_mask(&self, e: &Event, total: u32) -> u64 {
        assert!(
            (1..=64).contains(&total),
            "shard_mask needs 1..=64 shards, got {total}"
        );
        let full: u64 = if total == 64 {
            u64::MAX
        } else {
            (1u64 << total) - 1
        };
        let mut mask = 0u64;
        for g in &self.groups {
            if g.rt.template.local(e.ty).is_none() {
                continue;
            }
            let key = g.partition_key(&self.reg, e);
            mask |= 1u64 << shard_index(&key, total);
            if mask == full {
                break;
            }
        }
        mask
    }

    /// Processes one event; returns results of windows closed by the
    /// watermark advance.
    ///
    /// # Incremental feeding contract
    ///
    /// `process` may be called any number of times with any interleaving
    /// of event times; state is carried across calls, so feeding a stream
    /// event-by-event (online) produces exactly the same results as any
    /// batched feeding of the same sequence. The watermark is the maximum
    /// event time seen and only ever advances: an in-order stream closes
    /// each window exactly once, and an *out-of-order* event whose window
    /// instance already closed is skipped for that instance (counted in
    /// [`EngineStats::late_skips`]) rather than resurrecting it — the
    /// engine never emits the same `(query, key, window)` twice. Ordering
    /// within still-open windows is the caller's responsibility (the
    /// `hamlet-pipeline` reorder stage restores it up to a configured
    /// lateness bound).
    pub fn process(&mut self, e: &Event) -> Vec<WindowResult> {
        self.process_batch(std::slice::from_ref(e))
    }

    /// Processes a batch of events; returns the results of all windows
    /// the batch's watermark advances close, in the same order the
    /// per-event fold would emit them.
    ///
    /// Output and state evolution are **equal to folding
    /// [`process`](Self::process) over the batch** — batching is purely an
    /// execution strategy (this is asserted by the equivalence suite).
    /// The batch is cut into *expiry-quiet segments*: maximal stretches
    /// during which the running watermark stays below every pending
    /// window end, so no window can close mid-segment and the fold's
    /// per-event expiry drains are all no-ops. Within a segment events
    /// are grouped by `(share group, partition key)` and appended
    /// bucket-at-a-time, so each partition probe and run touch happens
    /// once per (segment, key) instead of once per event, with burst
    /// storage drawn from a reusable arena instead of per-event clones.
    /// The two observable deviations from the fold are timing-only: the
    /// memory gauge samples at segment (not event) granularity, and
    /// per-burst arrival stamps are taken once per segment.
    ///
    /// ```
    /// use hamlet_core::{EngineConfig, HamletEngine};
    /// use hamlet_query::parse_query;
    /// use hamlet_types::{EventBuilder, TypeRegistry};
    /// use std::sync::Arc;
    ///
    /// let mut reg = TypeRegistry::new();
    /// let a = reg.register("A", &[]);
    /// let b = reg.register("B", &[]);
    /// let reg = Arc::new(reg);
    /// let q = parse_query(&reg, 1, "RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 10").unwrap();
    /// let mk =
    ///     || HamletEngine::new(reg.clone(), vec![q.clone()], EngineConfig::default()).unwrap();
    /// let batch: Vec<_> = (0..40)
    ///     .map(|t| EventBuilder::new(&reg, if t % 4 == 0 { a } else { b }, t).build())
    ///     .collect();
    ///
    /// let (mut batched, mut folded) = (mk(), mk());
    /// let mut fast = batched.process_batch(&batch);
    /// fast.extend(batched.flush());
    /// let mut slow: Vec<_> = batch.iter().flat_map(|e| folded.process(e)).collect();
    /// slow.extend(folded.flush());
    /// assert_eq!(fast, slow); // batching never changes results
    /// ```
    pub fn process_batch(&mut self, events: &[Event]) -> Vec<WindowResult> {
        let batch_span = self.span.clone();
        let batch_t = batch_span.as_ref().map(|(rec, _)| rec.start());
        let mut out = Vec::new();
        let mut i = 0;
        while i < events.len() {
            // Segment head: advance the watermark and drain expiry
            // exactly as the fold does before routing an event. Monotone
            // watermark: an out-of-order event must not rewind expiry,
            // only (possibly) fail its own closed windows' guard.
            let head_wm = match self.watermark {
                Some(w) if w >= events[i].time => w,
                _ => events[i].time,
            };
            self.watermark = Some(head_wm);
            // Span only the drains that will actually pop something —
            // the per-segment no-op case stays a heap peek.
            let drain_span = if self.span.is_some()
                && self
                    .expiry
                    .peek()
                    .is_some_and(|Reverse(e)| e.end <= head_wm.ticks())
            {
                self.span.clone()
            } else {
                None
            };
            let drain_t = drain_span.as_ref().map(|(rec, _)| rec.start());
            let before = out.len();
            self.emit_expired(head_wm, &mut out);
            if let (Some((rec, lane)), Some(t)) = (drain_span, drain_t) {
                rec.record(
                    lane,
                    Stage::ExpiryDrain,
                    t,
                    Some(head_wm.ticks()),
                    (out.len() - before) as u64,
                );
            }
            i = self.process_segment(events, i, head_wm);
        }
        if let (Some((rec, lane)), Some(t)) = (batch_span, batch_t) {
            rec.record(
                lane,
                Stage::ProcessBatch,
                t,
                self.watermark.map(|w| w.ticks()),
                events.len() as u64,
            );
        }
        out
    }

    /// Consumes one expiry-quiet segment starting at `first` and returns
    /// the index of the first unconsumed event (see
    /// [`process_batch`](Self::process_batch) for the invariant).
    fn process_segment(&mut self, events: &[Event], first: usize, head_wm: Ts) -> usize {
        // hamlet-lint: allow(wallclock) -- latency stamp (only under track_latency); feeds the recorder, not results
        let now = self.cfg.track_latency.then(Instant::now);
        let policy = self.cfg.policy;
        let mode = self.cfg.divergence;
        let shard = self.cfg.shard;
        let BatchScratch {
            class_keys,
            class_built,
            class_shard_ok,
            wnd_done,
            slot_of,
            slots,
            prev_keys,
            prev_slot,
            buckets,
            spare,
            starts,
            wms,
        } = &mut self.scratch;

        // ---- Scan + bucket phase (fold order) --------------------------
        // The segment extends while the running watermark stays strictly
        // below every pending window end: the expiry heap's minimum plus
        // the earliest end any admitted event could create a run with.
        // Each event also records the watermark the fold would have seen
        // at it (`wms`) — grouping reorders processing, so the late guard
        // below must use each event's own fold-order watermark.
        debug_assert!(buckets.is_empty());
        wms.clear();
        let stride = self.groups.len();
        let mut min_end = match self.expiry.peek() {
            Some(Reverse(e)) => e.end,
            None => u64::MAX,
        };
        let mut wm = head_wm.ticks();
        let mut n_routed = 0u64;
        let mut j = first;
        while j < events.len() {
            let e = &events[j];
            let new_wm = wm.max(e.time.ticks());
            if j > first && new_wm >= min_end {
                break; // a window would close here — next segment
            }
            wm = new_wm;
            let mut routed = false;
            let entries = self.route.get(e.ty.idx()).map_or(&[][..], Vec::as_slice);
            if !entries.is_empty() {
                for b in class_built.iter_mut() {
                    *b = false;
                }
                for w in wnd_done.iter_mut() {
                    *w = false;
                }
            }
            for &(gi, tl, class, wnd) in entries {
                let (gi, ci, wi) = (gi as usize, class as usize, wnd as usize);
                let g = &self.groups[gi];
                if !class_built[ci] {
                    g.partition_key_into(e, &mut class_keys[ci]);
                    class_built[ci] = true;
                    let key = &class_keys[ci];
                    class_shard_ok[ci] = match shard {
                        Some((idx, total)) => shard_index(key, total) == idx,
                        None => true,
                    };
                    // Resolve the key's slot: previous event's key first
                    // (bursty streams repeat it), then one hash probe for
                    // every group in the class.
                    if class_shard_ok[ci] {
                        let sl = if prev_slot[ci] != u32::MAX && prev_keys[ci] == *key {
                            prev_slot[ci]
                        } else {
                            let sl = match slot_of[ci].get(key) {
                                Some(&sl) => sl,
                                None => {
                                    let sl = (slots.len() / stride) as u32;
                                    slot_of[ci].insert(key.clone(), sl);
                                    slots.resize(slots.len() + stride, u32::MAX);
                                    sl
                                }
                            };
                            prev_keys[ci].clone_from(key);
                            sl
                        };
                        prev_slot[ci] = sl;
                    }
                }
                if !class_shard_ok[ci] {
                    continue;
                }
                routed = true;
                // Any run this event creates ends no earlier than its
                // earliest containing instance (instances yield starts
                // ascending, so the first has the smallest end) — folded
                // into the segment boundary once per window class.
                if !wnd_done[wi] {
                    wnd_done[wi] = true;
                    if let Some(s) = g.window.instances_containing(e.time).next() {
                        min_end = min_end.min(window_end(s.ticks(), g.window.within));
                    }
                }
                let cell = prev_slot[ci] as usize * stride + gi;
                let mut bi = slots[cell];
                if bi == u32::MAX {
                    bi = buckets.len() as u32;
                    slots[cell] = bi;
                    buckets.push(Bucket {
                        group: gi as u32,
                        key: class_keys[ci].clone(),
                        events: spare.pop().unwrap_or_default(),
                    });
                }
                buckets[bi as usize].events.push(((j - first) as u32, tl));
            }
            if routed {
                n_routed += 1;
            }
            wms.push(wm);
            j += 1;
        }
        self.watermark = Some(Ts(wm));
        let seg = &events[first..j];

        // ---- Processing phase (first-appearance bucket order) ----------
        for mut b in buckets.drain(..) {
            let gi = b.group as usize;
            if let Some(m) = self.obs.get_mut(gi) {
                m.events_routed += b.events.len() as u64;
            }
            if self.track_dirty {
                self.dirty_parts.insert((gi, b.key.clone()));
            }
            let g = &mut self.groups[gi];
            let window = g.window;
            let within = window.within;
            let pane = g.pane;
            let uniform = g.uniform;
            // One partition probe per (segment, key); only a first-seen
            // key pays the clone into the map.
            if !g.partitions.contains_key(&b.key) {
                g.partitions.insert(b.key.clone(), BTreeMap::new());
            }
            // hamlet-lint: allow(panic-hygiene) -- get_mut right after contains_key/insert of the same key; entry() would clone the key on every probe
            let runs = g.partitions.get_mut(&b.key).expect("inserted above");
            let mut late_skipped = false;
            let mut last_time: Option<u64> = None;
            // Watermark at the segment tail — if a window's end beats it,
            // no event in the segment is late for that window.
            let seg_wm = wms.last().copied().unwrap_or(0);
            // Consecutive events that agree on type-local, pane, and
            // window-instance set form a *range*: one run-map probe, one
            // flush check, and one expiry push cover the whole range, so
            // the per-event work shrinks to the burst append itself.
            let nb = b.events.len();
            let mut idx = 0;
            while idx < nb {
                let (si0, tl) = b.events[idx];
                let e0 = &seg[si0 as usize];
                let tl = tl as usize;
                let t0 = e0.time.ticks();
                let pane_idx = t0 / pane;
                if last_time != Some(t0) {
                    starts.clear();
                    starts.extend(window.instances_containing(e0.time));
                    last_time = Some(t0);
                }
                let mut end_idx = idx + 1;
                while end_idx < nb {
                    let (sj, tlj) = b.events[end_idx];
                    if tlj as usize != tl {
                        break;
                    }
                    let tj = seg[sj as usize].time.ticks();
                    if tj != t0 {
                        if tj / pane != pane_idx {
                            break;
                        }
                        // Same pane but a different tick: join only if the
                        // instance set is unchanged.
                        let mut k = 0;
                        let mut same = true;
                        for s in window.instances_containing(Ts(tj)) {
                            if k >= starts.len() || starts[k] != s {
                                same = false;
                                break;
                            }
                            k += 1;
                        }
                        if !same || k != starts.len() {
                            break;
                        }
                    }
                    end_idx += 1;
                }
                let range = &b.events[idx..end_idx];
                for &start in starts.iter() {
                    let end = window_end(start.ticks(), within);
                    // The fold's late-event guard against each event's own
                    // watermark (see `process_reference`). `wms` is
                    // monotone over the segment, so the range splits into
                    // an on-time prefix and a late suffix.
                    let split = if end > seg_wm {
                        range.len()
                    } else {
                        range.partition_point(|&(sj, _)| end > wms[sj as usize])
                    };
                    if split < range.len() {
                        self.stats.late_skips += (range.len() - split) as u64;
                        late_skipped = true;
                    }
                    if split == 0 {
                        continue;
                    }
                    let rs = match runs.entry(start.ticks()) {
                        std::collections::btree_map::Entry::Occupied(o) => o.into_mut(),
                        std::collections::btree_map::Entry::Vacant(v) => {
                            // New run: index its expiration once (see
                            // `process_reference`).
                            self.expiry.push(Reverse(ExpiryEntry {
                                end,
                                start: start.ticks(),
                                group: gi,
                                key: b.key.clone(),
                            }));
                            self.stats.expiry_pushes += 1;
                            if let Some(m) = self.obs.get_mut(gi) {
                                m.runs_created += 1;
                            }
                            v.insert(RunState::new(g.rt.clone()))
                        }
                    };
                    if rs.burst_ty != Some(tl) || rs.burst_pane != pane_idx {
                        flush_burst(
                            rs,
                            policy,
                            mode,
                            &mut g.estimator,
                            &mut self.stats,
                            &mut self.arena,
                        );
                    }
                    rs.burst_ty = Some(tl);
                    rs.burst_pane = pane_idx;
                    if uniform {
                        // Uniform group: the burst is its length — no
                        // event clones, no per-event pushes.
                        rs.burst_extra += split as u64;
                    } else {
                        for &(sj, _) in &range[..split] {
                            rs.burst.push(self.arena.alloc_event(&seg[sj as usize]));
                        }
                    }
                    if let Some(now) = now {
                        rs.last_arrival = Some(now);
                    }
                }
                idx = end_idx;
            }
            // A first-seen key whose every window instance was late would
            // leave an empty run map behind — drop it, it holds no state.
            if late_skipped && runs.is_empty() {
                g.partitions.remove(&b.key);
            }
            b.events.clear();
            spare.push(b.events);
        }
        for m in slot_of.iter_mut() {
            m.clear();
        }
        slots.clear();
        for p in prev_slot.iter_mut() {
            *p = u32::MAX;
        }

        self.stats.events_routed += n_routed;
        let m = self.cfg.mem_sample_every;
        let before = self.event_counter;
        self.event_counter += seg.len() as u64;
        // One gauge sample per crossed sampling interval, segment-batched.
        let crossed = matches!(
            (self.event_counter.checked_div(m), before.checked_div(m)),
            (Some(a), Some(b)) if a > b
        );
        if crossed {
            let bytes = self.live_state_bytes();
            self.gauge.sample(bytes);
        }
        j
    }

    /// The pre-batching per-event implementation, kept verbatim as the
    /// reference: the equivalence suite asserts
    /// [`process_batch`](Self::process_batch) matches a fold of this, and
    /// the `fig_batch` sweep measures the batched path's speedup against
    /// it (the `perf_gate --min-batch-speedup` denominator). Shares all
    /// engine state with the batched path, so the two may be interleaved
    /// freely.
    pub fn process_reference(&mut self, e: &Event) -> Vec<WindowResult> {
        // hamlet-lint: allow(wallclock) -- latency stamp (only under track_latency); feeds the recorder, not results
        let now = self.cfg.track_latency.then(Instant::now);
        let mut out = Vec::new();
        // Monotone watermark: an out-of-order event must not rewind
        // expiry, only (possibly) fail its own closed windows' guard.
        let wm = match self.watermark {
            Some(w) if w >= e.time => w,
            _ => {
                self.watermark = Some(e.time);
                e.time
            }
        };
        self.emit_expired(wm, &mut out);

        let mut routed = false;
        let reg = self.reg.clone();
        let policy = self.cfg.policy;
        for gi in 0..self.groups.len() {
            let Some(tl) = self.groups[gi].rt.template.local(e.ty) else {
                continue;
            };
            let key = self.groups[gi].partition_key(&reg, e);
            if let Some((idx, total)) = self.cfg.shard {
                if shard_index(&key, total) != idx {
                    continue;
                }
            }
            routed = true;
            if let Some(m) = self.obs.get_mut(gi) {
                m.events_routed += 1;
            }
            if self.track_dirty {
                self.dirty_parts.insert((gi, key.clone()));
            }
            let (window, pane, rt) = {
                let g = &self.groups[gi];
                (g.window, g.pane, g.rt.clone())
            };
            let pane_idx = e.time.ticks() / pane;
            let starts: Vec<Ts> = window.instances_containing(e.time).collect();
            let mode = self.cfg.divergence;
            let g = &mut self.groups[gi];
            let within = g.window.within;
            // Zero-clone hit path: only a first-seen key pays the clone
            // into the map (new-run heap pushes below clone either way).
            if !g.partitions.contains_key(&key) {
                g.partitions.insert(key.clone(), BTreeMap::new());
            }
            // hamlet-lint: allow(panic-hygiene) -- get_mut right after contains_key/insert of the same key; entry() would clone the key on every probe
            let runs = g.partitions.get_mut(&key).expect("inserted above");
            let mut late_skipped = false;
            for start in starts {
                // Late-event guard: this window instance was already
                // emitted (its end is at or behind the watermark), so the
                // contribution is dropped — re-creating the run would
                // double-emit the window at the next flush. Never fires
                // on in-order streams (a window containing `e` ends after
                // `e.time` = watermark).
                if window_end(start.ticks(), within) <= wm.ticks() {
                    self.stats.late_skips += 1;
                    late_skipped = true;
                    continue;
                }
                let rs = match runs.entry(start.ticks()) {
                    std::collections::btree_map::Entry::Occupied(o) => o.into_mut(),
                    std::collections::btree_map::Entry::Vacant(v) => {
                        // New run: index its expiration once. Re-touching
                        // an existing (key, start) takes the occupied arm,
                        // so the heap never holds duplicate live entries.
                        self.expiry.push(Reverse(ExpiryEntry {
                            end: window_end(start.ticks(), within),
                            start: start.ticks(),
                            group: gi,
                            key: key.clone(),
                        }));
                        self.stats.expiry_pushes += 1;
                        if let Some(m) = self.obs.get_mut(gi) {
                            m.runs_created += 1;
                        }
                        v.insert(RunState::new(rt.clone()))
                    }
                };
                if rs.burst_ty != Some(tl) || rs.burst_pane != pane_idx {
                    flush_burst(
                        rs,
                        policy,
                        mode,
                        &mut g.estimator,
                        &mut self.stats,
                        &mut self.arena,
                    );
                }
                rs.burst_ty = Some(tl);
                rs.burst_pane = pane_idx;
                rs.burst.push(e.clone());
                if let Some(now) = now {
                    rs.last_arrival = Some(now);
                }
            }
            // A first-seen key whose every window instance was late would
            // leave an empty run map behind — drop it, it holds no state.
            // Guarded by the late path so in-order streams (the hot case)
            // never pay the extra map probe.
            if late_skipped && g.partitions.get(&key).is_some_and(|r| r.is_empty()) {
                g.partitions.remove(&key);
            }
        }
        if routed {
            self.stats.events_routed += 1;
        }
        self.event_counter += 1;
        if self.cfg.mem_sample_every > 0
            && self.event_counter.is_multiple_of(self.cfg.mem_sample_every)
        {
            let bytes = self.live_state_bytes();
            self.gauge.sample(bytes);
        }
        out
    }

    /// Emits every window whose end has passed the watermark.
    ///
    /// Pops the expiration index instead of scanning live partitions:
    /// O(k log n) for k expirations, O(1) when nothing expires — the
    /// common per-event case. Emission follows the defined total order
    /// `(window_start, group, key)`, so single-threaded output is
    /// deterministic by construction (the same order
    /// [`sort_results`] / [`crate::parallel::ParallelReport`] guarantee
    /// within one window instance).
    fn emit_expired(&mut self, watermark: Ts, out: &mut Vec<WindowResult>) {
        #[cfg(test)]
        if self.scan_expiry {
            self.emit_expired_scan(watermark, out);
            return;
        }
        let wm = watermark.ticks();
        let mut finished: Vec<(usize, GroupKey, u64, RunState)> = Vec::new();
        while self.expiry.peek().is_some_and(|Reverse(e)| e.end <= wm) {
            let Some(Reverse(e)) = self.expiry.pop() else {
                break;
            };
            let g = &mut self.groups[e.group];
            // Lazy invalidation: skip entries whose run is already gone.
            let Some(runs) = g.partitions.get_mut(&e.key) else {
                self.stats.expiry_tombstones += 1;
                continue;
            };
            let Some(rs) = runs.remove(&e.start) else {
                self.stats.expiry_tombstones += 1;
                continue;
            };
            if runs.is_empty() {
                g.partitions.remove(&e.key);
            }
            if self.track_dirty {
                self.dirty_parts.insert((e.group, e.key.clone()));
            }
            finished.push((e.group, e.key, e.start, rs));
        }
        self.finalize_finished(finished, out);
    }

    /// Reference implementation of expiry selection: the pre-index full
    /// scan over every live partition of every group (O(P) per call).
    /// Kept only as the oracle the property tests compare the indexed
    /// path against — emission goes through the same
    /// [`finalize_finished`](Self::finalize_finished), so any divergence
    /// is in *which* runs expire, the property under test.
    #[cfg(test)]
    fn emit_expired_scan(&mut self, watermark: Ts, out: &mut Vec<WindowResult>) {
        let mut finished: Vec<(usize, GroupKey, u64, RunState)> = Vec::new();
        for gi in 0..self.groups.len() {
            let within = self.groups[gi].window.within;
            for (key, runs) in self.groups[gi].partitions.iter_mut() {
                while let Some((&start, _)) = runs.first_key_value() {
                    if window_end(start, within) <= watermark.ticks() {
                        let rs = runs.remove(&start).expect("first key exists");
                        if self.track_dirty {
                            self.dirty_parts.insert((gi, key.clone()));
                        }
                        finished.push((gi, key.clone(), start, rs));
                    } else {
                        break;
                    }
                }
            }
            self.groups[gi]
                .partitions
                .retain(|_, runs| !runs.is_empty());
        }
        self.finalize_finished(finished, out);
    }

    /// Finalizes a batch of expired runs and emits their results in the
    /// defined total order `(window_start, group, key)`.
    fn finalize_finished(
        &mut self,
        mut finished: Vec<(usize, GroupKey, u64, RunState)>,
        out: &mut Vec<WindowResult>,
    ) {
        finished.sort_by(|a, b| {
            (a.2, a.0)
                .cmp(&(b.2, b.0))
                .then_with(|| a.1.total_cmp(&b.1))
        });
        let policy = self.cfg.policy;
        let mode = self.cfg.divergence;
        for (gi, key, start, mut rs) in finished {
            flush_burst(
                &mut rs,
                policy,
                mode,
                &mut self.groups[gi].estimator,
                &mut self.stats,
                &mut self.arena,
            );
            let outputs = rs.run.finalize();
            self.stats.runs.add(rs.run.stats());
            if let Some(m) = self.obs.get_mut(gi) {
                let s = rs.run.stats();
                m.runs_expired += 1;
                m.shared_bursts += s.shared_bursts;
                m.solo_bursts += s.solo_bursts;
                m.graphlet_snapshots += s.graphlet_snapshots;
                m.event_snapshots += s.event_snapshots;
            }
            if let Some(arr) = rs.last_arrival {
                self.latency.record(arr.elapsed());
            }
            self.emit_run(gi, &key, start, &outputs, out);
        }
    }

    /// Test-only: route expiry through the full-scan oracle instead of
    /// the index (see [`emit_expired_scan`](Self::emit_expired_scan)).
    #[cfg(test)]
    fn set_scan_expiry(&mut self, on: bool) {
        self.scan_expiry = on;
    }

    fn emit_run(
        &mut self,
        gi: usize,
        key: &GroupKey,
        start: u64,
        outputs: &[MemberOutput],
        out: &mut Vec<WindowResult>,
    ) {
        let rt = self.groups[gi].rt.clone();
        for (qi, o) in outputs.iter().enumerate() {
            let q = &rt.queries[qi];
            if let Some(&ci) = self.sub_of.get(&q.id) {
                // Half of a decomposed OR/AND query: combine when both
                // halves of the same (key, window) have arrived.
                let slot = (ci, key.clone(), start);
                if self.track_dirty {
                    self.dirty_pending.insert(slot.clone());
                }
                let count = o.raw.count.0;
                match self.pending.remove(&slot) {
                    None => {
                        self.pending.insert(slot, (q.id, count));
                    }
                    Some((other_id, other_count)) => {
                        let c = &self.combiners[ci];
                        let (c1, c2) = if other_id == c.left {
                            (other_count, count)
                        } else {
                            debug_assert_eq!(other_id, c.right);
                            (count, other_count)
                        };
                        let combined = general::combine(
                            c.kind,
                            hamlet_types::TrendVal(c1),
                            hamlet_types::TrendVal(c2),
                            c.same_pattern,
                        );
                        out.push(WindowResult {
                            query: c.orig,
                            group_key: key.clone(),
                            window_start: Ts(start),
                            value: AggValue::Count(combined.0),
                        });
                        self.stats.windows_emitted += 1;
                        // Attributed to the later-finalizing half's
                        // group: both halves of a (key, window) expire
                        // at the same watermark in canonical order, so
                        // the attribution is deterministic and
                        // shard-invariant.
                        if let Some(m) = self.obs.get_mut(gi) {
                            m.results_emitted += 1;
                        }
                    }
                }
                continue;
            }
            out.push(WindowResult {
                query: q.id,
                group_key: key.clone(),
                window_start: Ts(start),
                value: render(&q.agg, o),
            });
            self.stats.windows_emitted += 1;
            if let Some(m) = self.obs.get_mut(gi) {
                m.results_emitted += 1;
            }
        }
    }

    /// Event-time watermark: the maximum event timestamp processed so
    /// far (`None` before the first event). Windows whose end is at or
    /// behind it have been emitted and will never be emitted again.
    pub fn watermark(&self) -> Option<Ts> {
        self.watermark
    }

    /// Finalizes all in-flight windows (end of stream).
    ///
    /// # Flush contract
    ///
    /// `flush` behaves exactly like observing a watermark beyond every
    /// open window: every in-flight `(query, key, window)` emits once, in
    /// the canonical `(window_start, group, key)` order, and the engine's
    /// live state drains to empty. `process`+`flush` over a stream is
    /// therefore the offline reference the online pipeline's
    /// drain-on-shutdown is tested to be byte-identical against
    /// (`tests/pipeline_equivalence.rs`).
    ///
    /// The watermark advances to the end of time with the flush, so the
    /// no-double-emission guarantee survives it: events processed *after*
    /// a flush find every window instance already closed and are dropped
    /// as late ([`EngineStats::late_skips`]) instead of resurrecting and
    /// re-emitting windows the flush already emitted.
    pub fn flush(&mut self) -> Vec<WindowResult> {
        let flush_span = self.span.clone();
        let flush_t = flush_span.as_ref().map(|(rec, _)| rec.start());
        let wm_before = self.watermark.map(|w| w.ticks());
        // Capture the end-of-stream state before draining it: short
        // streams (or small shards) may never hit a periodic sample, and
        // peak_memory() would otherwise read 0.
        if self.cfg.mem_sample_every > 0 {
            let bytes = self.live_state_bytes();
            self.gauge.sample(bytes);
        }
        let mut out = Vec::new();
        self.watermark = Some(Ts(u64::MAX));
        self.emit_expired(Ts(u64::MAX), &mut out);
        // Any unmatched general-query half emits with the other half = 0
        // (its branch matched nothing in that window). `pending` is a
        // HashMap, so impose the canonical (window_start, query, key)
        // order before emitting — end-of-stream output must not depend
        // on hash iteration order.
        if self.track_dirty {
            for slot in self.pending.keys() {
                self.dirty_pending.insert(slot.clone());
            }
        }
        let mut pending: Vec<_> = self.pending.drain().collect();
        pending.sort_by(|((ca, ka, sa), _), ((cb, kb, sb), _)| {
            (sa, self.combiners[*ca].orig)
                .cmp(&(sb, self.combiners[*cb].orig))
                .then_with(|| ka.total_cmp(kb))
        });
        for ((ci, key, start), (id, count)) in pending {
            let c = &self.combiners[ci];
            let (c1, c2) = if id == c.left { (count, 0) } else { (0, count) };
            let combined = general::combine(
                c.kind,
                hamlet_types::TrendVal(c1),
                hamlet_types::TrendVal(c2),
                c.same_pattern,
            );
            out.push(WindowResult {
                query: c.orig,
                group_key: key,
                window_start: Ts(start),
                value: AggValue::Count(combined.0),
            });
            self.stats.windows_emitted += 1;
            // Cold path: attribute the unmatched half to the group
            // that held it (linear group scan, once per orphan half).
            if let Some(gi) = self.group_of_sub(id) {
                if let Some(m) = self.obs.get_mut(gi) {
                    m.results_emitted += 1;
                }
            }
        }
        if let (Some((rec, lane)), Some(t)) = (flush_span, flush_t) {
            rec.record(lane, Stage::Flush, t, wm_before, out.len() as u64);
        }
        out
    }

    /// The group index holding (sub-)query `id`, if any. Linear scan —
    /// only used on cold paths (flush, churn orphan settlement).
    fn group_of_sub(&self, id: QueryId) -> Option<usize> {
        self.groups
            .iter()
            .position(|g| g.rt.queries.iter().any(|q| q.id == id))
    }

    /// Renders the compiled sharing plan: share groups, their members,
    /// windows, panes, aggregation skeletons, and the merged template's
    /// labeled transitions (Fig. 3(b)) with sharable Kleene types
    /// highlighted (Def. 4). Useful as an `EXPLAIN` for workloads.
    pub fn explain(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "workload plan: {} share group(s)", self.groups.len());
        for (gi, g) in self.groups.iter().enumerate() {
            let tpl = &g.rt.template;
            let members: Vec<String> = g.rt.queries.iter().map(|q| format!("{}", q.id)).collect();
            let _ = writeln!(
                out,
                "group {gi}: members [{}], WITHIN {} SLIDE {} (pane {}), partition by [{}], skeleton {:?}",
                members.join(", "),
                g.window.within,
                g.window.slide,
                g.pane,
                g.partition_attrs
                    .iter()
                    .map(|a| a.to_string())
                    .collect::<Vec<_>>()
                    .join(", "),
                g.rt.skeleton,
            );
            for (tl, ty) in tpl.types.iter().enumerate() {
                if tpl.sharable[tl] {
                    let _ = writeln!(
                        out,
                        "  sharable Kleene sub-pattern: {}+ (members {:?})",
                        self.reg.name(*ty),
                        tpl.self_loop[tl].iter().collect::<Vec<_>>(),
                    );
                }
            }
            for ((from, to), qs) in tpl.labeled_edges() {
                let _ = writeln!(
                    out,
                    "  {} -> {} [{}]",
                    self.reg.name(from),
                    self.reg.name(to),
                    qs.iter()
                        .map(|q| format!("{}", g.rt.queries[*q].id))
                        .collect::<Vec<_>>()
                        .join(", "),
                );
            }
        }
        out
    }

    /// Engine statistics.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Per-share-group observability registry: one [`GroupMetrics`] per
    /// compiled share group (parallel to the group order `explain`
    /// prints), with the Def. 12 benefit and sharing decision priced at
    /// placement and re-priced at each churn epoch. Empty when
    /// [`EngineConfig::obs`] is off.
    pub fn group_metrics(&self) -> &[GroupMetrics] {
        &self.obs
    }

    /// Attaches a stage-span recorder; the engine records
    /// [`Stage::ProcessBatch`] (one span per [`Self::process_batch`]
    /// call), [`Stage::ExpiryDrain`] (non-empty watermark drains), and
    /// [`Stage::Flush`] on `lane`. Pipeline workers attach their
    /// shard's engine at lane `1 + worker_index` (lane 0 is ingest).
    pub fn attach_span_recorder(&mut self, rec: Arc<SpanRecorder>, lane: u32) {
        self.span = Some((rec, lane));
    }

    /// Per-result latency recorder.
    pub fn latency(&self) -> &LatencyRecorder {
        &self.latency
    }

    /// Peak byte-accounted state (§6.1 memory metric).
    pub fn peak_memory(&self) -> usize {
        self.gauge.peak()
    }

    /// Current byte-accounted state across all live runs, buffers, the
    /// watermark expiration index, and the batch scratch arena's pooled
    /// buffers.
    ///
    /// The memory gauge (peak-memory metric, §6.1) samples the internal
    /// `live_state_bytes` (everything but the arena) instead: the arena is
    /// path-dependent (it remembers how bursts happened to flush) and is
    /// not checkpointed, so including it would make gauge readings — and
    /// with them checkpoint bytes — differ between an uninterrupted run
    /// and a restored one.
    pub fn state_bytes(&self) -> usize {
        self.live_state_bytes() + self.arena.bytes()
    }

    /// Byte-accounted *serializable* state: live runs, burst buffers, and
    /// the watermark expiration index — everything a checkpoint carries.
    fn live_state_bytes(&self) -> usize {
        let mut b = 0;
        for g in &self.groups {
            // hamlet-lint: allow(unordered-iter) -- commutative sum (memory accounting)
            for runs in g.partitions.values() {
                for rs in runs.values() {
                    b += rs.run.mem_bytes();
                    b += rs.burst.iter().map(Event::mem_bytes).sum::<usize>();
                }
            }
        }
        for Reverse(e) in &self.expiry {
            b += std::mem::size_of::<ExpiryEntry>()
                + e.key.0.capacity() * std::mem::size_of::<AttrValue>();
        }
        b
    }

    /// Live entries in the watermark expiration index (= live runs, plus
    /// any not-yet-popped tombstones).
    pub fn expiry_index_len(&self) -> usize {
        self.expiry.len()
    }

    /// Workload fingerprint embedded in every checkpoint: the compiled
    /// shape a blob must match to be restorable — shard assignment, share
    /// groups (members, windows, panes, partition attributes) and
    /// general-query combiners. Two engines compiled from the same
    /// workload under the same sharding always agree on it.
    fn fingerprint(&self) -> Vec<u8> {
        let mut e = crate::checkpoint::Enc::new();
        match self.cfg.shard {
            None => e.some(false),
            Some((idx, total)) => {
                e.some(true);
                e.u32(idx);
                e.u32(total);
            }
        }
        e.usize(self.groups.len());
        for g in &self.groups {
            e.usize(g.rt.k());
            e.usize(g.rt.template.num_types());
            e.u64(g.window.within);
            e.u64(g.window.slide);
            e.u64(g.pane);
            e.usize(g.partition_attrs.len());
            for a in &g.partition_attrs {
                e.str(a);
            }
            for q in &g.rt.queries {
                e.u32(q.id.0);
            }
        }
        e.usize(self.combiners.len());
        for c in &self.combiners {
            e.u32(c.orig.0);
            e.u32(c.left.0);
            e.u32(c.right.0);
        }
        e.finish()
    }

    /// Serializes the engine's complete mutable state into a versioned,
    /// self-describing blob: every live run (with its snapshot table and
    /// active graphlets), buffered bursts, pending general-query halves,
    /// learned divergence statistics, counters, metrics, and the
    /// watermark. The expiration index is *not* serialized — it is
    /// derivable (one entry per live run) and
    /// [`restore`](Self::restore) rebuilds it.
    ///
    /// The encoding is deterministic: hash maps are written in their
    /// canonical total order, so checkpointing the same state twice — or
    /// checkpointing a just-restored engine — produces identical bytes.
    ///
    /// Restoring the blob into a freshly built engine over the same
    /// workload and continuing the stream yields byte-identical output to
    /// never having checkpointed (`tests/checkpoint_equivalence.rs`).
    /// The only state that does not travel is wall-clock arrival stamps
    /// of in-flight runs (an `Instant` cannot be serialized): latency
    /// *metrics* for windows open across the checkpoint lose those
    /// samples, results do not.
    ///
    /// See `docs/checkpoint-format.md` for the byte layout.
    ///
    /// ```
    /// use hamlet_core::{EngineConfig, HamletEngine};
    /// use hamlet_query::parse_query;
    /// use hamlet_types::{EventBuilder, TypeRegistry};
    /// use std::sync::Arc;
    ///
    /// let mut reg = TypeRegistry::new();
    /// let a = reg.register("A", &[]);
    /// let b = reg.register("B", &[]);
    /// let reg = Arc::new(reg);
    /// let q = parse_query(&reg, 1, "RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 10").unwrap();
    /// let mk =
    ///     || HamletEngine::new(reg.clone(), vec![q.clone()], EngineConfig::default()).unwrap();
    ///
    /// let mut eng = mk();
    /// eng.process(&EventBuilder::new(&reg, a, 0).build());
    /// let blob = eng.checkpoint(); // mid-window: a run is in flight
    ///
    /// let mut restored = mk();
    /// restored.restore(&blob).unwrap();
    /// assert_eq!(restored.checkpoint(), blob); // round trip is the identity
    /// // ...and both finish the stream identically.
    /// let e = EventBuilder::new(&reg, b, 1).build();
    /// assert_eq!(restored.process(&e), eng.process(&e));
    /// assert_eq!(restored.flush(), eng.flush());
    /// ```
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut e = crate::checkpoint::Enc::new();
        e.raw(&crate::checkpoint::ENGINE_MAGIC);
        e.u16(crate::checkpoint::ENGINE_VERSION);
        e.u64(self.epoch);
        e.bytes(&self.fingerprint());
        e.usize(self.groups.len());
        for g in &self.groups {
            // Canonical key order: the partition map is a HashMap.
            let mut parts: Vec<(&GroupKey, &BTreeMap<u64, RunState>)> =
                g.partitions.iter().collect();
            parts.sort_by(|(a, _), (b, _)| a.total_cmp(b));
            e.usize(parts.len());
            for (key, runs) in parts {
                e.group_key(key);
                e.usize(runs.len());
                for (&start, rs) in runs {
                    e.u64(start);
                    rs.run.encode(&mut e);
                    match rs.burst_ty {
                        None => e.some(false),
                        Some(tl) => {
                            e.some(true);
                            e.usize(tl);
                        }
                    }
                    e.usize(rs.burst.len());
                    for ev in &rs.burst {
                        e.event(ev);
                    }
                    e.u64(rs.burst_extra);
                    e.u64(rs.burst_pane);
                }
            }
            g.estimator.encode(&mut e);
        }
        let mut pending: Vec<_> = self.pending.iter().collect();
        pending.sort_by(|((ca, ka, sa), _), ((cb, kb, sb), _)| {
            (ca, sa).cmp(&(cb, sb)).then_with(|| ka.total_cmp(kb))
        });
        e.usize(pending.len());
        for ((ci, key, start), (id, count)) in pending {
            e.usize(*ci);
            e.group_key(key);
            e.u64(*start);
            e.u32(id.0);
            e.u64(*count);
        }
        self.stats.encode(&mut e);
        self.latency.encode(&mut e);
        self.gauge.encode(&mut e);
        e.u64(self.event_counter);
        match self.watermark {
            None => e.some(false),
            Some(wm) => {
                e.some(true);
                e.u64(wm.ticks());
            }
        }
        // v4 tail: per-share-group observability counters (placement
        // fields are *not* serialized — benefit/shared are re-priced by
        // the restoring engine's own build/churn, keeping round-trip
        // identity independent of estimator drift).
        e.usize(self.obs.len());
        for m in &self.obs {
            // Fixed 8-slot layout, mirrored by restore's counter loop.
            for c in [
                m.events_routed,
                m.runs_created,
                m.runs_expired,
                m.shared_bursts,
                m.solo_bursts,
                m.graphlet_snapshots,
                m.event_snapshots,
                m.results_emitted,
            ] {
                e.u64(c);
            }
        }
        e.finish()
    }

    /// Restores the engine's state from a [`checkpoint`](Self::checkpoint)
    /// blob, replacing whatever state it currently holds.
    ///
    /// The engine must have been built ([`HamletEngine::new`]) over the
    /// same workload and shard configuration the checkpoint was taken
    /// under — validated via an embedded fingerprint, mismatches return
    /// [`WorkloadMismatch`](crate::checkpoint::CheckpointError::WorkloadMismatch).
    /// The watermark expiration index is rebuilt from the restored runs
    /// (one entry per live run), so expiry behavior continues exactly as
    /// if the engine had never stopped.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), crate::checkpoint::CheckpointError> {
        use crate::checkpoint::{CheckpointError, Dec};
        let mut d = Dec::new(bytes);
        d.magic(&crate::checkpoint::ENGINE_MAGIC)?;
        let version = d.u16()?;
        // v2 blobs predate the workload epoch; they can only describe an
        // engine that never churned, i.e. epoch 0. v3/v4 carry the epoch
        // explicitly. Anything else is unknown.
        let blob_epoch = match version {
            crate::checkpoint::ENGINE_VERSION | crate::checkpoint::ENGINE_VERSION_V3 => d.u64()?,
            crate::checkpoint::ENGINE_VERSION_V2 => 0,
            other => return Err(CheckpointError::BadVersion(other)),
        };
        if blob_epoch != self.epoch {
            return Err(CheckpointError::WorkloadMismatch(format!(
                "checkpoint was taken at workload epoch {blob_epoch} but the engine is at \
                 epoch {} — the query set has churned since this checkpoint; restore it \
                 into an engine whose churn history matches (see set_epoch)",
                self.epoch
            )));
        }
        let fp = d.bytes()?;
        if fp != self.fingerprint() {
            return Err(CheckpointError::WorkloadMismatch(
                "compiled workload, sharding, or combiners differ from the checkpoint".into(),
            ));
        }
        let n_groups = d.seq_len()?;
        if n_groups != self.groups.len() {
            return Err(CheckpointError::WorkloadMismatch(format!(
                "{n_groups} groups in checkpoint, {} compiled",
                self.groups.len()
            )));
        }
        // Decode into fresh state first so a corrupt blob cannot leave
        // the engine half-restored.
        let mut new_partitions: Vec<HashMap<GroupKey, BTreeMap<u64, RunState>>> = Vec::new();
        let mut new_estimators = Vec::new();
        for g in &self.groups {
            let n_parts = d.seq_len()?;
            let mut parts: HashMap<GroupKey, BTreeMap<u64, RunState>> =
                HashMap::with_capacity(n_parts);
            for _ in 0..n_parts {
                let key = d.group_key()?;
                let n_runs = d.seq_len()?;
                let mut runs = BTreeMap::new();
                for _ in 0..n_runs {
                    let start = d.u64()?;
                    let run = Run::decode(&mut d, g.rt.clone())?;
                    let burst_ty = if d.some()? {
                        let tl = d.usize()?;
                        if tl >= g.rt.template.num_types() {
                            return Err(CheckpointError::Corrupt(format!(
                                "burst type {tl} of {}",
                                g.rt.template.num_types()
                            )));
                        }
                        Some(tl)
                    } else {
                        None
                    };
                    let n_burst = d.seq_len()?;
                    let mut burst = Vec::with_capacity(n_burst);
                    for _ in 0..n_burst {
                        burst.push(d.event()?);
                    }
                    let burst_extra = d.u64()?;
                    let burst_pane = d.u64()?;
                    runs.insert(
                        start,
                        RunState {
                            run,
                            burst_ty,
                            burst,
                            burst_extra,
                            burst_pane,
                            // Wall-clock stamps do not survive a restore;
                            // the next arrival re-stamps the run.
                            last_arrival: None,
                        },
                    );
                }
                parts.insert(key, runs);
            }
            new_partitions.push(parts);
            new_estimators.push(DivergenceEstimator::decode(
                &mut d,
                g.rt.template.num_types(),
                g.rt.k(),
            )?);
        }
        let n_pending = d.seq_len()?;
        let mut pending = HashMap::with_capacity(n_pending);
        for _ in 0..n_pending {
            let ci = d.usize()?;
            if ci >= self.combiners.len() {
                return Err(CheckpointError::Corrupt(format!(
                    "pending combiner index {ci} out of range"
                )));
            }
            let key = d.group_key()?;
            let start = d.u64()?;
            let id = QueryId(d.u32()?);
            let count = d.u64()?;
            pending.insert((ci, key, start), (id, count));
        }
        let stats = EngineStats::decode(&mut d)?;
        let latency = LatencyRecorder::decode(&mut d)?;
        let gauge = MemoryGauge::decode(&mut d)?;
        let event_counter = d.u64()?;
        let watermark = if d.some()? { Some(Ts(d.u64()?)) } else { None };
        // v4 tail: per-group observability counters. Earlier versions
        // (and blobs from obs-disabled engines, which write length 0)
        // restore with zeroed counters.
        let mut obs_counters: Vec<[u64; 8]> = Vec::new();
        if version == crate::checkpoint::ENGINE_VERSION {
            let n_obs = d.seq_len()?;
            if n_obs != 0 && n_obs != self.groups.len() {
                return Err(CheckpointError::Corrupt(format!(
                    "{n_obs} observability records for {} groups",
                    self.groups.len()
                )));
            }
            for _ in 0..n_obs {
                let mut c = [0u64; 8];
                for slot in &mut c {
                    *slot = d.u64()?;
                }
                obs_counters.push(c);
            }
        }
        d.expect_end()?;

        // Commit: swap the decoded state in and rebuild the expiration
        // index — exactly one entry per live run, as process() maintains.
        for (g, (parts, est)) in self
            .groups
            .iter_mut()
            .zip(new_partitions.into_iter().zip(new_estimators))
        {
            g.partitions = parts;
            g.estimator = est;
        }
        self.pending = pending;
        self.stats = stats;
        self.latency = latency;
        self.gauge = gauge;
        self.event_counter = event_counter;
        self.watermark = watermark;
        // Replace the per-group counters wholesale (restore semantics):
        // a blob without them resets this engine's registry to zero.
        // Placement fields keep what this engine priced at build/churn.
        for (gi, m) in self.obs.iter_mut().enumerate() {
            let c = obs_counters.get(gi).copied().unwrap_or_default();
            m.events_routed = c[0];
            m.runs_created = c[1];
            m.runs_expired = c[2];
            m.shared_bursts = c[3];
            m.solo_bursts = c[4];
            m.graphlet_snapshots = c[5];
            m.event_snapshots = c[6];
            m.results_emitted = c[7];
        }
        self.rebuild_derived();
        // A legacy full restore jumps state without going through the
        // dirty log; any open delta interval is void. restore_chain
        // re-arms tracking after it finishes replaying.
        self.dirty_parts.clear();
        self.dirty_pending.clear();
        self.delta_unsound = true;
        Ok(())
    }

    /// Rebuilds the state that is derived rather than serialized after
    /// any wholesale state swap: the watermark expiration index (exactly
    /// one entry per live run, as `process()` maintains) and the event
    /// arena (restored engines start with an empty pool so
    /// `state_bytes` matches a fresh engine's).
    fn rebuild_derived(&mut self) {
        self.expiry.clear();
        for (gi, g) in self.groups.iter().enumerate() {
            let within = g.window.within;
            // hamlet-lint: allow(unordered-iter) -- heap rebuild; expiry drains every due entry before finalize_finished sorts emissions canonically
            for (key, runs) in &g.partitions {
                for &start in runs.keys() {
                    self.expiry.push(Reverse(ExpiryEntry {
                        end: window_end(start, within),
                        start,
                        group: gi,
                        key: key.clone(),
                    }));
                }
            }
        }
        self.arena = EventArena::new();
    }

    /// True when the engine can cut a *sound* delta record: dirty
    /// tracking is armed (a chain cut happened) and state has not
    /// jumped past the dirty log since (no churn, no legacy restore).
    pub(crate) fn delta_ready(&self) -> bool {
        self.track_dirty && !self.delta_unsound && self.cut_seq > 0
    }

    /// Cuts the next record of this engine's checkpoint chain and
    /// advances the dirty log: a `Full` cut (or any cut the engine
    /// cannot prove a sound delta for — the first cut, post-churn,
    /// post-legacy-restore) emits a base frame wrapping a full
    /// [`checkpoint`](Self::checkpoint) blob; a `Delta` cut emits only
    /// the partitions and pending halves touched since the previous
    /// cut. Restore with [`crate::Snapshot::restore_chain`].
    pub(crate) fn cut_record(&mut self, kind: crate::store::CutKind) -> Vec<u8> {
        use crate::checkpoint::{write_delta_frame, Enc};
        let base = !(matches!(kind, crate::store::CutKind::Delta) && self.delta_ready());
        let seq = self.cut_seq + 1;
        let payload = if base {
            self.checkpoint()
        } else {
            let mut e = Enc::new();
            self.encode_delta(&mut e);
            e.finish()
        };
        let parent = if base { 0 } else { self.cut_seq };
        let rec = write_delta_frame(base, seq, parent, self.epoch, &payload);
        self.cut_seq = seq;
        self.track_dirty = true;
        self.delta_unsound = false;
        self.dirty_parts.clear();
        self.dirty_pending.clear();
        rec
    }

    /// Encodes the delta-record payload: everything (possibly) touched
    /// since the last cut, in the same canonical orders — and the same
    /// per-run layout — as the full format, plus the full scalar tail
    /// (estimators, stats, counters, watermark, obs; all small).
    /// Layout in `docs/checkpoint-format.md`. Mirrored by
    /// [`decode_delta`](Self::decode_delta).
    fn encode_delta(&self, e: &mut crate::checkpoint::Enc) {
        // Split the dirty log per group: a touched key still present is
        // re-encoded wholesale, a vanished one becomes a removal.
        let mut removals: Vec<Vec<&GroupKey>> = vec![Vec::new(); self.groups.len()];
        let mut upserts: Vec<Vec<(&GroupKey, &BTreeMap<u64, RunState>)>> =
            vec![Vec::new(); self.groups.len()];
        for (gi, key) in &self.dirty_parts {
            match self.groups[*gi].partitions.get(key) {
                Some(runs) => upserts[*gi].push((key, runs)),
                None => removals[*gi].push(key),
            }
        }
        for v in &mut removals {
            v.sort_by(|a, b| a.total_cmp(b));
        }
        for v in &mut upserts {
            v.sort_by(|(a, _), (b, _)| a.total_cmp(b));
        }
        let mut prem: Vec<&(usize, GroupKey, u64)> = Vec::new();
        // Borrowed halves of `pending` entries, `(&key, &value)`.
        let mut pups = Vec::new();
        for slot in &self.dirty_pending {
            match self.pending.get_key_value(slot) {
                Some(kv) => pups.push(kv),
                None => prem.push(slot),
            }
        }
        prem.sort_by(|(ca, ka, sa), (cb, kb, sb)| {
            (ca, sa).cmp(&(cb, sb)).then_with(|| ka.total_cmp(kb))
        });
        pups.sort_by(|((ca, ka, sa), _), ((cb, kb, sb), _)| {
            (ca, sa).cmp(&(cb, sb)).then_with(|| ka.total_cmp(kb))
        });

        e.bytes(&self.fingerprint());
        e.usize(self.groups.len());
        for (g, (rem, ups)) in self.groups.iter().zip(removals.into_iter().zip(upserts)) {
            e.usize(rem.len());
            for key in rem {
                e.group_key(key);
            }
            e.usize(ups.len());
            for (key, runs) in ups {
                e.group_key(key);
                e.usize(runs.len());
                for (&start, rs) in runs {
                    e.u64(start);
                    rs.run.encode(e);
                    match rs.burst_ty {
                        None => e.some(false),
                        Some(tl) => {
                            e.some(true);
                            e.usize(tl);
                        }
                    }
                    e.usize(rs.burst.len());
                    for ev in &rs.burst {
                        e.event(ev);
                    }
                    e.u64(rs.burst_extra);
                    e.u64(rs.burst_pane);
                }
            }
            g.estimator.encode(e);
        }
        e.usize(prem.len());
        for (ci, key, start) in prem {
            e.usize(*ci);
            e.group_key(key);
            e.u64(*start);
        }
        e.usize(pups.len());
        for ((ci, key, start), (id, count)) in pups {
            e.usize(*ci);
            e.group_key(key);
            e.u64(*start);
            e.u32(id.0);
            e.u64(*count);
        }
        self.stats.encode(e);
        self.latency.encode(e);
        self.gauge.encode(e);
        e.u64(self.event_counter);
        match self.watermark {
            None => e.some(false),
            Some(wm) => {
                e.some(true);
                e.u64(wm.ticks());
            }
        }
        e.usize(self.obs.len());
        for m in &self.obs {
            // Fixed 8-slot layout, shared with the full format.
            for c in [
                m.events_routed,
                m.runs_created,
                m.runs_expired,
                m.shared_bursts,
                m.solo_bursts,
                m.graphlet_snapshots,
                m.event_snapshots,
                m.results_emitted,
            ] {
                e.u64(c);
            }
        }
    }

    /// Decodes one delta-record payload into a [`DeltaStage`] without
    /// touching engine state (validated against this engine's workload
    /// fingerprint and bounds). Mirror of
    /// [`encode_delta`](Self::encode_delta).
    fn decode_delta(
        &self,
        d: &mut crate::checkpoint::Dec,
    ) -> Result<DeltaStage, crate::checkpoint::CheckpointError> {
        use crate::checkpoint::CheckpointError;
        let fp = d.bytes()?;
        if fp != self.fingerprint() {
            return Err(CheckpointError::WorkloadMismatch(
                "compiled workload, sharding, or combiners differ from the delta record".into(),
            ));
        }
        let n_groups = d.seq_len()?;
        if n_groups != self.groups.len() {
            return Err(CheckpointError::WorkloadMismatch(format!(
                "{n_groups} groups in delta record, {} compiled",
                self.groups.len()
            )));
        }
        let mut groups = Vec::with_capacity(n_groups);
        for g in &self.groups {
            let n_rem = d.seq_len()?;
            let mut removals = Vec::with_capacity(n_rem);
            for _ in 0..n_rem {
                removals.push(d.group_key()?);
            }
            let n_ups = d.seq_len()?;
            let mut upserts = Vec::with_capacity(n_ups);
            for _ in 0..n_ups {
                let key = d.group_key()?;
                let n_runs = d.seq_len()?;
                let mut runs = BTreeMap::new();
                for _ in 0..n_runs {
                    let start = d.u64()?;
                    let run = Run::decode(d, g.rt.clone())?;
                    let burst_ty = if d.some()? {
                        let tl = d.usize()?;
                        if tl >= g.rt.template.num_types() {
                            return Err(CheckpointError::Corrupt(format!(
                                "burst type {tl} of {}",
                                g.rt.template.num_types()
                            )));
                        }
                        Some(tl)
                    } else {
                        None
                    };
                    let n_burst = d.seq_len()?;
                    let mut burst = Vec::with_capacity(n_burst);
                    for _ in 0..n_burst {
                        burst.push(d.event()?);
                    }
                    let burst_extra = d.u64()?;
                    let burst_pane = d.u64()?;
                    runs.insert(
                        start,
                        RunState {
                            run,
                            burst_ty,
                            burst,
                            burst_extra,
                            burst_pane,
                            // As in a full restore: wall-clock stamps do
                            // not survive; the next arrival re-stamps.
                            last_arrival: None,
                        },
                    );
                }
                upserts.push((key, runs));
            }
            let estimator = DivergenceEstimator::decode(d, g.rt.template.num_types(), g.rt.k())?;
            groups.push(GroupDeltaStage {
                removals,
                upserts,
                estimator,
            });
        }
        let n_prem = d.seq_len()?;
        let mut pending_removals = Vec::with_capacity(n_prem);
        for _ in 0..n_prem {
            let ci = d.usize()?;
            if ci >= self.combiners.len() {
                return Err(CheckpointError::Corrupt(format!(
                    "pending combiner index {ci} out of range"
                )));
            }
            let key = d.group_key()?;
            let start = d.u64()?;
            pending_removals.push((ci, key, start));
        }
        let n_pups = d.seq_len()?;
        let mut pending_upserts = Vec::with_capacity(n_pups);
        for _ in 0..n_pups {
            let ci = d.usize()?;
            if ci >= self.combiners.len() {
                return Err(CheckpointError::Corrupt(format!(
                    "pending combiner index {ci} out of range"
                )));
            }
            let key = d.group_key()?;
            let start = d.u64()?;
            let id = QueryId(d.u32()?);
            let count = d.u64()?;
            pending_upserts.push(((ci, key, start), (id, count)));
        }
        let stats = EngineStats::decode(d)?;
        let latency = LatencyRecorder::decode(d)?;
        let gauge = MemoryGauge::decode(d)?;
        let event_counter = d.u64()?;
        let watermark = if d.some()? { Some(Ts(d.u64()?)) } else { None };
        let n_obs = d.seq_len()?;
        if n_obs != 0 && n_obs != self.groups.len() {
            return Err(CheckpointError::Corrupt(format!(
                "{n_obs} observability records for {} groups",
                self.groups.len()
            )));
        }
        let mut obs = Vec::with_capacity(n_obs);
        for _ in 0..n_obs {
            let mut c = [0u64; 8];
            for slot in &mut c {
                *slot = d.u64()?;
            }
            obs.push(c);
        }
        d.expect_end()?;
        Ok(DeltaStage {
            groups,
            pending_removals,
            pending_upserts,
            stats,
            latency,
            gauge,
            event_counter,
            watermark,
            obs,
        })
    }

    /// Replays one staged delta on top of the current state. Pure state
    /// mutation — all validation happened in
    /// [`decode_delta`](Self::decode_delta). Derived state (expiry
    /// index, arena) is rebuilt once by the caller after the last delta.
    fn apply_delta(&mut self, s: DeltaStage) {
        for (g, gs) in self.groups.iter_mut().zip(s.groups) {
            for key in gs.removals {
                g.partitions.remove(&key);
            }
            for (key, runs) in gs.upserts {
                g.partitions.insert(key, runs);
            }
            g.estimator = gs.estimator;
        }
        for slot in s.pending_removals {
            self.pending.remove(&slot);
        }
        for (slot, val) in s.pending_upserts {
            self.pending.insert(slot, val);
        }
        self.stats = s.stats;
        self.latency = s.latency;
        self.gauge = s.gauge;
        self.event_counter = s.event_counter;
        self.watermark = s.watermark;
        for (gi, m) in self.obs.iter_mut().enumerate() {
            let c = s.obs.get(gi).copied().unwrap_or_default();
            m.events_routed = c[0];
            m.runs_created = c[1];
            m.runs_expired = c[2];
            m.shared_bursts = c[3];
            m.solo_bursts = c[4];
            m.graphlet_snapshots = c[5];
            m.event_snapshots = c[6];
            m.results_emitted = c[7];
        }
    }

    /// Restores the engine from an ordered checkpoint chain: the last
    /// base record (earlier records are obsolete history a store may
    /// legitimately still hold) followed by its contiguous deltas.
    /// Validates the whole chain — linkage (`parent` == predecessor
    /// `seq`), epoch uniformity, workload fingerprints — and decodes
    /// every record before committing any state. A bare engine blob
    /// ([`checkpoint`](Self::checkpoint)) is accepted as a chain of one.
    pub(crate) fn restore_chain_bytes(
        &mut self,
        records: &[&[u8]],
    ) -> Result<(), crate::checkpoint::CheckpointError> {
        use crate::checkpoint::{read_delta_frame, CheckpointError, Dec, DeltaFrame, DELTA_MAGIC};
        if records.is_empty() {
            return Err(CheckpointError::Corrupt("empty checkpoint chain".into()));
        }
        let mut frames = Vec::with_capacity(records.len());
        for r in records {
            if r.len() >= 4 && r[..4] == DELTA_MAGIC {
                frames.push(read_delta_frame(r)?);
            } else {
                // A bare engine blob restores as a chain of one base.
                frames.push(DeltaFrame {
                    base: true,
                    seq: 0,
                    parent: 0,
                    epoch: checkpoint_epoch(r)?,
                    payload: r.to_vec(),
                });
            }
        }
        let Some(base_idx) = frames.iter().rposition(|f| f.base) else {
            return Err(CheckpointError::Corrupt(
                "checkpoint chain has no base record".into(),
            ));
        };
        let chain = &frames[base_idx..];
        let chain_epoch = chain[0].epoch;
        if checkpoint_epoch(&chain[0].payload)? != chain_epoch {
            return Err(CheckpointError::Corrupt(
                "base frame epoch disagrees with its payload".into(),
            ));
        }
        for w in chain.windows(2) {
            if w[1].epoch != chain_epoch {
                return Err(CheckpointError::WorkloadMismatch(format!(
                    "delta seq {} was cut at workload epoch {} but the chain base is at \
                     epoch {chain_epoch} — the query set churned mid-chain",
                    w[1].seq, w[1].epoch
                )));
            }
            if w[1].parent != w[0].seq {
                return Err(CheckpointError::Corrupt(format!(
                    "broken checkpoint chain: record seq {} expects parent seq {} but \
                     follows seq {}",
                    w[1].seq, w[1].parent, w[0].seq
                )));
            }
        }
        // Stage every delta before committing anything; the bounds they
        // are validated against (groups, combiners) are workload-derived
        // and unchanged by the base restore below.
        let mut stages = Vec::with_capacity(chain.len().saturating_sub(1));
        for f in &chain[1..] {
            let mut d = Dec::new(&f.payload);
            stages.push(self.decode_delta(&mut d)?);
        }
        let saved_epoch = self.epoch;
        self.epoch = chain_epoch;
        if let Err(e) = self.restore(&chain[0].payload) {
            self.epoch = saved_epoch;
            return Err(e);
        }
        for s in stages {
            self.apply_delta(s);
        }
        self.rebuild_derived();
        self.cut_seq = chain.last().map(|f| f.seq).unwrap_or(0);
        self.track_dirty = true;
        self.delta_unsound = false;
        self.dirty_parts.clear();
        self.dirty_pending.clear();
        Ok(())
    }

    /// The engine's workload epoch: 0 at construction, +1 per successful
    /// [`add_query`](Self::add_query) / [`remove_query`](Self::remove_query).
    /// Every checkpoint is stamped with it, and [`restore`](Self::restore)
    /// rejects blobs from a different epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Declares the engine's workload epoch without churning, for
    /// restoring a checkpoint taken *after* churn into a freshly built
    /// engine: build with the final query set
    /// ([`HamletEngine::new`] starts at epoch 0), set the epoch the blob
    /// reports ([`checkpoint_epoch`]), then [`restore`](Self::restore).
    /// Only meaningful on an engine with no live state.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// The registered (original, pre-decomposition) query set.
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// Registers a query on the live engine (see the churn contract on
    /// [`remove_query`](Self::remove_query)).
    ///
    /// Only the share groups the new query restructures are rebuilt;
    /// every other group keeps its in-flight runs and learned statistics.
    /// The Def. 12 benefit model is re-run for the post-churn workload
    /// ([`ChurnReport::placements`]). Fails with
    /// [`ChurnError::Duplicate`] if the id is already registered, or
    /// [`ChurnError::Engine`] if the resulting workload does not compile;
    /// on any error the engine is untouched.
    ///
    /// ```
    /// use hamlet_core::{EngineConfig, HamletEngine};
    /// use hamlet_query::{parse_query, QueryId};
    /// use hamlet_types::{EventBuilder, TypeRegistry};
    /// use std::sync::Arc;
    ///
    /// let mut reg = TypeRegistry::new();
    /// let a = reg.register("A", &[]);
    /// let b = reg.register("B", &[]);
    /// let reg = Arc::new(reg);
    /// let q1 = parse_query(&reg, 1, "RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 10").unwrap();
    /// let q2 = parse_query(&reg, 2, "RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 20").unwrap();
    /// let mut eng = HamletEngine::new(reg.clone(), vec![q1], EngineConfig::default()).unwrap();
    ///
    /// eng.process(&EventBuilder::new(&reg, a, 0).build());
    /// let report = eng.add_query(q2).unwrap(); // churn barrier
    /// assert_eq!(report.epoch, 1);
    /// assert_eq!(eng.queries().len(), 2);
    /// let report = eng.remove_query(QueryId(2)).unwrap();
    /// assert_eq!(report.epoch, 2);
    /// ```
    pub fn add_query(&mut self, q: Query) -> Result<ChurnReport, ChurnError> {
        if self.queries.iter().any(|p| p.id == q.id) {
            return Err(ChurnError::Duplicate(q.id));
        }
        let mut wanted = self.queries.clone();
        wanted.push(q);
        self.apply_churn(wanted)
    }

    /// Retires a query from the live engine.
    ///
    /// # Churn contract
    ///
    /// Churn applies at a *watermark barrier*: the stream between two
    /// `process` calls. Share groups whose member set is unchanged carry
    /// all in-flight state over — their output is byte-identical to never
    /// having churned. Groups the churn touches (created, dissolved, or
    /// re-clustered) drain at the barrier: their in-flight windows emit
    /// immediately with the data seen so far ([`ChurnReport::drained`],
    /// canonical `(window_start, group, key)` order), and — for queries
    /// that remain registered — the window re-opens for post-barrier
    /// events, so nothing is silently dropped. A removed query's windows
    /// thus appear exactly once (the drain); a surviving re-grouped
    /// query's mid-flight windows appear as a drained prefix plus a
    /// regular suffix emission.
    ///
    /// Fails with [`ChurnError::Unknown`] on an unregistered id (double
    /// removes included); the engine is untouched on error.
    pub fn remove_query(&mut self, id: QueryId) -> Result<ChurnReport, ChurnError> {
        if !self.queries.iter().any(|p| p.id == id) {
            return Err(ChurnError::Unknown(id));
        }
        let wanted: Vec<Query> = self
            .queries
            .iter()
            .filter(|p| p.id != id)
            .cloned()
            .collect();
        self.apply_churn(wanted)
    }

    /// Per-group member signature used to match groups across a churn:
    /// `(original query id, half tag)` per member, in member order. Half
    /// ids of decomposed general queries are renumbered whenever the
    /// query set changes (`compile` numbers them from `max(id)+1`), so
    /// identity must go through the original id plus which half it is
    /// (0 = the query itself, 1 = left half, 2 = right half).
    fn group_sigs(
        groups: &[GroupExec],
        sub_of: &HashMap<QueryId, usize>,
        combiners: &[Combiner],
    ) -> Vec<Vec<(u32, u8)>> {
        groups
            .iter()
            .map(|g| {
                g.rt.queries
                    .iter()
                    .map(|q| match sub_of.get(&q.id) {
                        None => (q.id.0, 0u8),
                        Some(&ci) => {
                            let c = &combiners[ci];
                            if q.id == c.left {
                                (c.orig.0, 1)
                            } else {
                                (c.orig.0, 2)
                            }
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Rebuilds the engine around `final_queries`, carrying over every
    /// share group whose membership is unchanged and draining the rest.
    /// Strong exception safety: the workload is compiled before any
    /// engine state is touched.
    fn apply_churn(&mut self, final_queries: Vec<Query>) -> Result<ChurnReport, ChurnError> {
        let mut compiled =
            Self::compile(&self.reg, &final_queries, &self.cfg).map_err(ChurnError::Engine)?;

        // Match old groups to new ones by member signature. Each
        // (query, half) lives in exactly one group on each side, so the
        // match is a partial bijection; member *order* must also agree
        // because run state is indexed by member position.
        let old_sigs = Self::group_sigs(&self.groups, &self.sub_of, &self.combiners);
        let new_sigs = Self::group_sigs(&compiled.groups, &compiled.sub_of, &compiled.combiners);
        let mut old_of_new: Vec<Option<usize>> = vec![None; compiled.groups.len()];
        let mut carried_old: Vec<bool> = vec![false; self.groups.len()];
        for (oi, os) in old_sigs.iter().enumerate() {
            if let Some(ni) = new_sigs.iter().position(|ns| ns == os) {
                old_of_new[ni] = Some(oi);
                carried_old[oi] = true;
            }
        }

        // Drain the in-flight windows of every group that does not carry
        // over, through the normal finalization path (the old groups,
        // estimators, and combiners are still installed, so general-query
        // halves pair correctly).
        let mut finished: Vec<(usize, GroupKey, u64, RunState)> = Vec::new();
        for (oi, carried) in carried_old.iter().enumerate() {
            if *carried {
                continue;
            }
            // hamlet-lint: allow(unordered-iter) -- drained windows flow through finalize_finished, which sorts before emitting
            for (key, runs) in std::mem::take(&mut self.groups[oi].partitions) {
                for (start, rs) in runs {
                    finished.push((oi, key.clone(), start, rs));
                }
            }
        }
        let mut drained = Vec::new();
        self.finalize_finished(finished, &mut drained);

        // Settle pending general-query halves. A pending entry's partner
        // run can no longer exist (both halves of a window expire at the
        // same watermark), so entries whose original query survives are
        // re-keyed to the new combiner table, and entries of removed
        // queries emit now with the missing half = 0, exactly as `flush`
        // would have.
        let new_ci_of_orig: HashMap<u32, usize> = compiled
            .combiners
            .iter()
            .enumerate()
            .map(|(i, c)| (c.orig.0, i))
            .collect();
        let mut surviving_pending = HashMap::new();
        let mut orphaned: Vec<PendingHalf> = Vec::new();
        // hamlet-lint: allow(unordered-iter) -- re-keys into a map; orphaned halves are sorted canonically before emitting below
        for ((ci, key, start), (id, count)) in self.pending.drain() {
            let oc = &self.combiners[ci];
            match new_ci_of_orig.get(&oc.orig.0) {
                Some(&nci) => {
                    let nc = &compiled.combiners[nci];
                    let nid = if id == oc.left { nc.left } else { nc.right };
                    surviving_pending.insert((nci, key, start), (nid, count));
                }
                None => orphaned.push(((ci, key, start), (id, count))),
            }
        }
        orphaned.sort_by(|((ca, ka, sa), _), ((cb, kb, sb), _)| {
            (sa, self.combiners[*ca].orig)
                .cmp(&(sb, self.combiners[*cb].orig))
                .then_with(|| ka.total_cmp(kb))
        });
        for ((ci, key, start), (id, count)) in orphaned {
            let c = &self.combiners[ci];
            let (c1, c2) = if id == c.left { (count, 0) } else { (0, count) };
            let combined = general::combine(
                c.kind,
                hamlet_types::TrendVal(c1),
                hamlet_types::TrendVal(c2),
                c.same_pattern,
            );
            drained.push(WindowResult {
                query: c.orig,
                group_key: key,
                window_start: Ts(start),
                value: AggValue::Count(combined.0),
            });
            self.stats.windows_emitted += 1;
            // The old groups are still installed here; attribute the
            // orphaned half to the (old) group that held it.
            if let Some(gi) = self.group_of_sub(id) {
                if let Some(m) = self.obs.get_mut(gi) {
                    m.results_emitted += 1;
                }
            }
        }

        // Migrate carried groups: the group is recompiled (identical
        // runtime — deterministic from the member set), the live runs and
        // learned statistics move over, and each run re-points at the
        // recompiled runtime.
        let mut groups_carried = 0;
        for (ni, oi) in old_of_new.iter().enumerate() {
            let Some(oi) = *oi else { continue };
            groups_carried += 1;
            let ng = &mut compiled.groups[ni];
            let og = &mut self.groups[oi];
            ng.partitions = std::mem::take(&mut og.partitions);
            std::mem::swap(&mut ng.estimator, &mut og.estimator);
            let rt = ng.rt.clone();
            // hamlet-lint: allow(unordered-iter) -- uniform retarget of every run; order-free
            for runs in ng.partitions.values_mut() {
                for rs in runs.values_mut() {
                    rs.run.retarget(rt.clone());
                }
            }
        }

        // Commit: swap in the compiled workload, rebuild the expiration
        // index (group indices changed), keep the stream-global state
        // (watermark, counters, metrics) running.
        let groups_rebuilt = compiled.groups.len() - groups_carried;
        self.groups = compiled.groups;
        self.combiners = compiled.combiners;
        self.sub_of = compiled.sub_of;
        self.route = compiled.route;
        self.scratch = BatchScratch::new(compiled.num_classes, compiled.num_wnd_classes);
        self.pending = surviving_pending;
        self.queries = final_queries;
        self.epoch += 1;
        // Group indices just changed meaning; the dirty log keyed by the
        // old layout is useless. The next delta cut is promoted to a
        // base, which re-snapshots everything under the new layout.
        self.dirty_parts.clear();
        self.dirty_pending.clear();
        self.delta_unsound = true;
        self.expiry.clear();
        for (gi, g) in self.groups.iter().enumerate() {
            let within = g.window.within;
            // hamlet-lint: allow(unordered-iter) -- heap rebuild; expiry drains every due entry before finalize_finished sorts emissions canonically
            for (key, runs) in &g.partitions {
                for &start in runs.keys() {
                    self.expiry.push(Reverse(ExpiryEntry {
                        end: window_end(start, within),
                        start,
                        group: gi,
                        key: key.clone(),
                    }));
                }
            }
        }

        let placements: Vec<GroupPlacement> = self
            .groups
            .iter()
            .enumerate()
            .map(|(ni, g)| self.placement_for(g, old_of_new[ni].is_some()))
            .collect();

        // Rebuild the observability registry for the new group layout:
        // carried groups keep their counters (moved via the signature
        // match), rebuilt groups start at zero (their history was
        // drained above), and every group takes the placement the
        // benefit model just re-priced.
        if self.cfg.obs {
            let old_obs = std::mem::take(&mut self.obs);
            self.obs = new_sigs
                .iter()
                .enumerate()
                .map(|(ni, sig)| {
                    let mut m = match old_of_new[ni].and_then(|oi| old_obs.get(oi)) {
                        Some(old) => old.clone(),
                        None => GroupMetrics::default(),
                    };
                    m.group = ni as u32;
                    m.sig = sig.clone();
                    m.shared = placements[ni].shared;
                    m.benefit = placements[ni].benefit;
                    m
                })
                .collect();
        }
        Ok(ChurnReport {
            drained,
            groups_carried,
            groups_rebuilt,
            placements,
            epoch: self.epoch,
        })
    }

    /// Re-runs the Def. 12 benefit model for one group at the churn
    /// barrier: for each type of the group's template, the a-priori
    /// sharing decision for a nominal burst, with `sc` predicted from the
    /// group's divergence statistics (learned, for carried groups; the
    /// optimistic zero-divergence prior for fresh ones — the same bias
    /// the per-burst optimizer starts from).
    fn placement_for(&self, g: &GroupExec, carried_over: bool) -> GroupPlacement {
        let members: Vec<QueryId> = g.rt.queries.iter().map(|q| q.id).collect();
        if g.rt.k() < 2 {
            return GroupPlacement {
                members,
                carried_over,
                benefit: 0.0,
                shared: false,
            };
        }
        const NOMINAL_BURST: u64 = 16;
        let probe = Run::new(g.rt.clone());
        let mut total_benefit = 0.0;
        let mut shared = false;
        for tl in 0..g.rt.template.num_types() {
            let mut ctx = probe.burst_shape(tl);
            if ctx.candidates.len() < 2 {
                continue;
            }
            ctx.diverging = ctx
                .candidates
                .iter()
                .map(|&q| g.estimator.predict(tl, q, NOMINAL_BURST))
                .collect();
            // Def. 12 benefit of sharing the *whole* candidate set (can be
            // negative — the optimizer would then process solo or share a
            // subset, which is what `decide` below settles).
            let bf = NOMINAL_BURST as f64;
            let sc = 1.0
                + ctx
                    .diverging
                    .iter()
                    .zip(&ctx.has_edge)
                    .map(|(&d, &e)| d as f64 + if e { bf } else { 0.0 })
                    .sum::<f64>();
            let factors = crate::optimizer::CostFactors {
                b: bf,
                n: ctx.n as f64,
                g: (ctx.g + NOMINAL_BURST) as f64,
                sp: (ctx.sp as f64).max(1.0),
                p: ctx.p,
            };
            total_benefit += crate::optimizer::benefit(ctx.candidates.len() as f64, sc, &factors);
            let dec = decide(self.cfg.policy, &ctx, NOMINAL_BURST);
            shared |= dec.share.len() >= 2;
        }
        GroupPlacement {
            members,
            carried_over,
            benefit: total_benefit,
            shared,
        }
    }
}

/// Reads the workload epoch stamped in an engine checkpoint without
/// restoring it (v2 blobs predate epochs and report 0). Used by the
/// parallel/pipeline resume paths to [`HamletEngine::set_epoch`] freshly
/// built engines before handing them the blob.
pub fn checkpoint_epoch(bytes: &[u8]) -> Result<u64, crate::checkpoint::CheckpointError> {
    use crate::checkpoint::{CheckpointError, Dec};
    let mut d = Dec::new(bytes);
    d.magic(&crate::checkpoint::ENGINE_MAGIC)?;
    match d.u16()? {
        crate::checkpoint::ENGINE_VERSION | crate::checkpoint::ENGINE_VERSION_V3 => d.u64(),
        crate::checkpoint::ENGINE_VERSION_V2 => Ok(0),
        other => Err(CheckpointError::BadVersion(other)),
    }
}

fn flush_burst(
    rs: &mut RunState,
    policy: SharingPolicy,
    mode: DivergenceMode,
    estimator: &mut DivergenceEstimator,
    stats: &mut EngineStats,
    arena: &mut EventArena,
) {
    let Some(tl) = rs.burst_ty else { return };
    let b = rs.burst.len() as u64 + rs.burst_extra;
    if b == 0 {
        return;
    }
    // hamlet-lint: allow(wallclock) -- decision-time accounting only (stats.decision_time)
    let t0 = Instant::now();
    let mut ctx = rs.run.burst_shape(tl);
    let exact = match mode {
        DivergenceMode::Exact => {
            // `burst_extra` events exist only for uniform groups, which
            // have no selection predicates — their divergence is zero,
            // exactly what scanning them would have produced.
            ctx.diverging = rs.run.exact_divergence(tl, &rs.burst, &ctx.candidates);
            true
        }
        DivergenceMode::Ema { .. } => {
            ctx.diverging = ctx
                .candidates
                .iter()
                .map(|&q| estimator.predict(tl, q, b))
                .collect();
            false
        }
    };
    let dec = decide(policy, &ctx, b);
    stats.decision_time += t0.elapsed();
    stats.decisions += 1;
    let snaps_before = rs.run.stats().event_snapshots;
    rs.run
        .process_burst_ext(tl, &rs.burst, rs.burst_extra, &dec.share);
    // Feed the statistics back: exact mode learns the true per-member
    // divergence; EMA mode attributes the event-level snapshots the burst
    // actually created across the sharing members.
    if exact {
        for (i, &q) in ctx.candidates.iter().enumerate() {
            estimator.observe(tl, q, ctx.diverging[i], b);
        }
    } else {
        let created = rs.run.stats().event_snapshots - snaps_before;
        let members: Vec<usize> = dec.share.iter().collect();
        if members.is_empty() {
            // No sharing happened; decay gently toward the prediction.
            for &q in &ctx.candidates {
                let predicted = estimator.predict(tl, q, b);
                estimator.observe(tl, q, predicted, b);
            }
        } else {
            estimator.observe_aggregate(tl, &members, created, b);
        }
    }
    // Hand the burst's attribute buffers back to the arena for the next
    // `alloc_event` (keeps the burst Vec's own capacity).
    for ev in rs.burst.drain(..) {
        arena.recycle(ev);
    }
    rs.burst_extra = 0;
    rs.burst_ty = None;
}

/// Renders a member's raw output according to its aggregation function.
pub fn render(agg: &AggFunc, o: &MemberOutput) -> AggValue {
    match agg {
        AggFunc::CountStar => AggValue::Count(o.raw.count.0),
        AggFunc::CountType(_) => AggValue::Count(o.raw.cnt.0),
        AggFunc::Sum(_, _) => AggValue::Float(crate::agg::attr_of_ring(o.raw.sum)),
        AggFunc::Avg(_, _) => {
            if o.raw.cnt.is_zero() {
                AggValue::Null
            } else {
                AggValue::Float(crate::agg::attr_of_ring(o.raw.sum) / o.raw.cnt.0 as f64)
            }
        }
        AggFunc::Min(_, _) | AggFunc::Max(_, _) => {
            if o.mm.is_finite() {
                AggValue::Float(o.mm)
            } else {
                AggValue::Null
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamlet_query::Pattern;
    use hamlet_types::EventTypeId;

    fn registry() -> (Arc<TypeRegistry>, EventTypeId, EventTypeId, EventTypeId) {
        let mut reg = TypeRegistry::new();
        let a = reg.register("A", &["g", "v"]);
        let b = reg.register("B", &["g", "v"]);
        let c = reg.register("C", &["g", "v"]);
        (Arc::new(reg), a, b, c)
    }

    fn seq(a: EventTypeId, b: EventTypeId) -> Pattern {
        Pattern::seq(vec![Pattern::Type(a), Pattern::plus(Pattern::Type(b))])
    }

    fn ev(reg: &TypeRegistry, ty: EventTypeId, t: u64, g: i64, v: f64) -> Event {
        hamlet_types::EventBuilder::new(reg, ty, t)
            .attr("g", g)
            .attr("v", v)
            .build()
    }

    fn collect(
        engine: &mut HamletEngine,
        events: impl IntoIterator<Item = Event>,
    ) -> Vec<WindowResult> {
        let mut out = Vec::new();
        for e in events {
            out.extend(engine.process(&e));
        }
        out.extend(engine.flush());
        out
    }

    #[test]
    fn tumbling_window_counts() {
        let (reg, a, b, c) = registry();
        let q1 = Query::count_star(1, seq(a, b), Window::tumbling(10));
        let q2 = Query::count_star(2, seq(c, b), Window::tumbling(10));
        let mut eng =
            HamletEngine::new(reg.clone(), vec![q1, q2], EngineConfig::default()).unwrap();
        assert_eq!(eng.num_groups(), 1);
        // Window [0,10): a@1, c@2, b@3, b@4 → q1: trends (a,b3),(a,b4),
        // (a,b3,b4) = 3; q2 likewise = 3.
        // Window [10,20): a@11, b@12 → q1: 1; q2: 0.
        let evs = vec![
            ev(&reg, a, 1, 0, 0.0),
            ev(&reg, c, 2, 0, 0.0),
            ev(&reg, b, 3, 0, 0.0),
            ev(&reg, b, 4, 0, 0.0),
            ev(&reg, a, 11, 0, 0.0),
            ev(&reg, b, 12, 0, 0.0),
        ];
        let mut results = collect(&mut eng, evs);
        results.sort_by_key(|r| (r.window_start, r.query));
        assert_eq!(results.len(), 4);
        assert_eq!(results[0].value, AggValue::Count(3)); // q1 w0
        assert_eq!(results[1].value, AggValue::Count(3)); // q2 w0
        assert_eq!(results[2].value, AggValue::Count(1)); // q1 w1
        assert_eq!(results[3].value, AggValue::Count(0)); // q2 w1
        assert!(eng.stats().decisions > 0);
        assert_eq!(eng.stats().windows_emitted, 4);
    }

    #[test]
    fn policies_agree_on_results() {
        let (reg, a, b, c) = registry();
        let mk = |policy| {
            let q1 = Query::count_star(1, seq(a, b), Window::tumbling(20));
            let q2 = Query::count_star(2, seq(c, b), Window::tumbling(20));
            HamletEngine::new(
                reg.clone(),
                vec![q1, q2],
                EngineConfig {
                    policy,
                    ..EngineConfig::default()
                },
            )
            .unwrap()
        };
        let evs: Vec<Event> = (0..18)
            .map(|t| {
                let ty = match t % 6 {
                    0 => a,
                    1 => c,
                    _ => b,
                };
                ev(&reg, ty, t, 0, t as f64)
            })
            .collect();
        let mut base: Option<Vec<WindowResult>> = None;
        for policy in [
            SharingPolicy::Dynamic,
            SharingPolicy::AlwaysShare,
            SharingPolicy::NeverShare,
        ] {
            let mut eng = mk(policy);
            let mut rs = collect(&mut eng, evs.clone());
            rs.sort_by_key(|r| (r.window_start, r.query));
            match &base {
                None => base = Some(rs),
                Some(b) => assert_eq!(b, &rs, "policy {policy:?} diverged"),
            }
        }
    }

    #[test]
    fn group_by_partitions_results() {
        let (reg, a, b, _) = registry();
        let mut q1 = Query::count_star(1, seq(a, b), Window::tumbling(10));
        q1.group_by = vec![Arc::from("g")];
        let mut eng = HamletEngine::new(reg.clone(), vec![q1], EngineConfig::default()).unwrap();
        let evs = vec![
            ev(&reg, a, 1, 1, 0.0),
            ev(&reg, a, 1, 2, 0.0),
            ev(&reg, b, 2, 1, 0.0),
            ev(&reg, b, 3, 2, 0.0),
            ev(&reg, b, 4, 2, 0.0),
        ];
        let mut results = collect(&mut eng, evs);
        results.sort_by_key(|r| match &r.group_key.0[0] {
            AttrValue::Int(i) => *i,
            _ => 0,
        });
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].value, AggValue::Count(1)); // g=1: (a,b)
        assert_eq!(results[1].value, AggValue::Count(3)); // g=2: b3,b4,b3b4
    }

    #[test]
    fn sliding_windows_replicate() {
        let (reg, a, b, _) = registry();
        let q1 = Query::count_star(1, seq(a, b), Window::new(10, 5));
        let mut eng = HamletEngine::new(reg.clone(), vec![q1], EngineConfig::default()).unwrap();
        // a@6, b@8: in windows starting at 0 and 5.
        let evs = vec![ev(&reg, a, 6, 0, 0.0), ev(&reg, b, 8, 0, 0.0)];
        let mut results = collect(&mut eng, evs);
        results.sort_by_key(|r| r.window_start);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].window_start, Ts(0));
        assert_eq!(results[0].value, AggValue::Count(1));
        assert_eq!(results[1].window_start, Ts(5));
        assert_eq!(results[1].value, AggValue::Count(1));
    }

    #[test]
    fn sum_and_avg_render() {
        let (reg, a, b, _) = registry();
        let mk_q = |id, agg| {
            Query::new(
                QueryId(id),
                seq(a, b),
                agg,
                vec![],
                vec![],
                vec![],
                vec![],
                Window::tumbling(10),
            )
            .unwrap()
        };
        let vb = reg.attr_index(b, "v").unwrap();
        let queries = vec![
            mk_q(1, AggFunc::Sum(b, vb)),
            mk_q(2, AggFunc::Avg(b, vb)),
            mk_q(3, AggFunc::CountType(b)),
        ];
        let mut eng = HamletEngine::new(reg.clone(), queries, EngineConfig::default()).unwrap();
        // a@1, b@2 (v=10), b@3 (v=20). Trends: (a,b2) (a,b3) (a,b2,b3).
        // B-events across trends: b2×2, b3×2 → COUNT(B)=4, SUM=10+20+30=60,
        // AVG = 60/4 = 15.
        let evs = vec![
            ev(&reg, a, 1, 0, 0.0),
            ev(&reg, b, 2, 0, 10.0),
            ev(&reg, b, 3, 0, 20.0),
        ];
        let mut results = collect(&mut eng, evs);
        results.sort_by_key(|r| r.query);
        assert_eq!(results[0].value, AggValue::Float(60.0));
        assert_eq!(results[1].value, AggValue::Float(15.0));
        assert_eq!(results[2].value, AggValue::Count(4));
    }

    #[test]
    fn min_max_render() {
        let (reg, a, b, _) = registry();
        let vb = reg.attr_index(b, "v").unwrap();
        let mk_q = |id, agg| {
            Query::new(
                QueryId(id),
                seq(a, b),
                agg,
                vec![],
                vec![],
                vec![],
                vec![],
                Window::tumbling(10),
            )
            .unwrap()
        };
        let queries = vec![mk_q(1, AggFunc::Min(b, vb)), mk_q(2, AggFunc::Max(b, vb))];
        let mut eng = HamletEngine::new(reg.clone(), queries, EngineConfig::default()).unwrap();
        let evs = vec![
            ev(&reg, a, 1, 0, 0.0),
            ev(&reg, b, 2, 0, 7.0),
            ev(&reg, b, 3, 0, 3.0),
        ];
        let mut results = collect(&mut eng, evs);
        results.sort_by_key(|r| r.query);
        assert_eq!(results[0].value, AggValue::Float(3.0));
        assert_eq!(results[1].value, AggValue::Float(7.0));
        // Empty window → Null.
        let mut eng2 = HamletEngine::new(
            reg.clone(),
            vec![mk_q(3, AggFunc::Min(b, vb))],
            EngineConfig::default(),
        )
        .unwrap();
        let evs = vec![ev(&reg, b, 2, 0, 7.0)]; // no A → no trend
        let results = collect(&mut eng2, evs);
        assert_eq!(results[0].value, AggValue::Null);
    }

    #[test]
    fn or_query_combines_branches() {
        let (reg, a, b, c) = registry();
        let mut regm = (*reg).clone();
        let d = regm.register("D", &["g", "v"]);
        let reg = Arc::new(regm);
        let p = Pattern::Or(Box::new(seq(a, b)), Box::new(seq(c, d)));
        let q = Query::count_star(9, p, Window::tumbling(10));
        let mut eng = HamletEngine::new(reg.clone(), vec![q], EngineConfig::default()).unwrap();
        // Branch 1: a@1,b@2 → 1 trend. Branch 2: c@3,d@4,d@5 → 3 trends.
        let evs = vec![
            ev(&reg, a, 1, 0, 0.0),
            ev(&reg, b, 2, 0, 0.0),
            ev(&reg, c, 3, 0, 0.0),
            ev(&reg, d, 4, 0, 0.0),
            ev(&reg, d, 5, 0, 0.0),
        ];
        let results = collect(&mut eng, evs);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].query, QueryId(9));
        assert_eq!(results[0].value, AggValue::Count(4));
    }

    /// A window whose `start + within` exceeds `u64::MAX` must not wrap
    /// (debug builds: panic; release: expire instantly) — it saturates
    /// and closes exactly once, at the final flush.
    #[test]
    fn window_end_near_u64_max_does_not_overflow() {
        let (reg, a, b, _) = registry();
        let q1 = Query::count_star(1, seq(a, b), Window::tumbling(10));
        let mut eng = HamletEngine::new(reg.clone(), vec![q1], EngineConfig::default()).unwrap();
        // t = u64::MAX - 1 sits in the tumbling instance starting at
        // MAX - 1 - ((MAX - 1) % 10), whose end overflows u64.
        let t = u64::MAX - 1;
        let mut out = eng.process(&ev(&reg, a, t, 0, 0.0));
        out.extend(eng.process(&ev(&reg, b, t, 0, 0.0)));
        assert!(out.is_empty(), "nothing expires before the flush: {out:?}");
        out.extend(eng.flush());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, AggValue::Count(1));
        assert_eq!(eng.expiry_index_len(), 0, "flush drains the index");
    }

    /// Two runs over the same stream produce *identical* (not just
    /// set-equal) output — expiry emission follows the defined total
    /// order (window_start, group, key), never HashMap iteration order.
    #[test]
    fn same_stream_twice_is_byte_identical() {
        let (reg, a, b, c) = registry();
        let mk = || {
            let mut q1 = Query::count_star(1, seq(a, b), Window::new(10, 5));
            q1.group_by = vec![Arc::from("g")];
            let mut q2 = Query::count_star(2, seq(c, b), Window::new(10, 5));
            q2.group_by = vec![Arc::from("g")];
            HamletEngine::new(reg.clone(), vec![q1, q2], EngineConfig::default()).unwrap()
        };
        // Many group-by keys per window so one watermark advance expires
        // several partitions at once — the case HashMap order scrambled.
        let mut evs = Vec::new();
        for t in 0..120u64 {
            let ty = match t % 5 {
                0 => a,
                1 => c,
                _ => b,
            };
            evs.push(ev(&reg, ty, t, (t % 13) as i64, 0.0));
        }
        let run = || {
            let mut eng = mk();
            let mut out = Vec::new();
            for e in &evs {
                out.extend(eng.process(e));
            }
            out.extend(eng.flush());
            out
        };
        let first = run();
        assert!(!first.is_empty());
        assert_eq!(first, run(), "re-run diverged in order or content");
    }

    /// flush() is a point of no return: it advances the watermark to the
    /// end of time, so events processed afterwards are dropped as late
    /// instead of resurrecting (and re-emitting) windows the flush
    /// already emitted.
    #[test]
    fn process_after_flush_cannot_re_emit() {
        let (reg, a, b, _) = registry();
        let q1 = Query::count_star(1, seq(a, b), Window::tumbling(10));
        let mut eng = HamletEngine::new(reg.clone(), vec![q1], EngineConfig::default()).unwrap();
        let mut out = Vec::new();
        out.extend(eng.process(&ev(&reg, a, 1, 0, 0.0)));
        out.extend(eng.process(&ev(&reg, b, 2, 0, 0.0)));
        out.extend(eng.flush());
        assert_eq!(out.len(), 1, "flush emitted [0,10) once");
        assert_eq!(eng.watermark(), Some(Ts(u64::MAX)));
        // A continuation into the already-flushed window must not
        // double-emit it.
        let more = eng.process(&ev(&reg, a, 3, 0, 0.0));
        assert!(more.is_empty());
        assert!(eng.stats().late_skips > 0, "post-flush events count late");
        assert!(eng.flush().is_empty(), "no window re-emitted");
    }

    /// The expiration index is maintained exactly: one push per run
    /// creation, no tombstones in normal operation, drained by flush.
    #[test]
    fn expiry_index_bookkeeping() {
        let (reg, a, b, _) = registry();
        let q1 = Query::count_star(1, seq(a, b), Window::new(10, 5));
        let mut eng = HamletEngine::new(reg.clone(), vec![q1], EngineConfig::default()).unwrap();
        let evs: Vec<Event> = (0..40)
            .map(|t| ev(&reg, if t % 4 == 0 { a } else { b }, t, 0, 0.0))
            .collect();
        let _ = collect(&mut eng, evs);
        let stats = eng.stats();
        assert!(stats.expiry_pushes > 0, "runs were indexed");
        assert_eq!(stats.expiry_tombstones, 0, "no out-of-band drains");
        assert_eq!(eng.expiry_index_len(), 0, "flush drained the heap");
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(16))]

        /// The heap-indexed expiry is bit-identical — per process() call
        /// and at flush — to the old full-partition scan (kept behind
        /// cfg(test) as the oracle).
        #[test]
        fn heap_expiry_matches_scan_oracle(
            seed in 0u64..10_000,
            within in 4u64..20,
            slide_div in 1u64..4,
            keys in 1i64..8,
        ) {
            use proptest::prelude::prop_assert_eq;
            let (reg, a, b, c) = registry();
            let slide = (within / slide_div).max(1);
            let mk = || {
                let mut q1 = Query::count_star(1, seq(a, b), Window::new(within, slide));
                q1.group_by = vec![Arc::from("g")];
                let mut q2 = Query::count_star(2, seq(c, b), Window::new(within, slide));
                q2.group_by = vec![Arc::from("g")];
                HamletEngine::new(reg.clone(), vec![q1, q2], EngineConfig::default()).unwrap()
            };
            let mut heap_eng = mk();
            let mut scan_eng = mk();
            scan_eng.set_scan_expiry(true);
            // Deterministic pseudo-random stream from the seed (xorshift).
            let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
            let mut step = || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s
            };
            let mut t = 0u64;
            for _ in 0..200 {
                t += step() % 3;
                let ty = match step() % 5 {
                    0 => a,
                    1 => c,
                    _ => b,
                };
                let g = (step() % keys as u64) as i64;
                let e = ev(&reg, ty, t, g, 0.0);
                prop_assert_eq!(heap_eng.process(&e), scan_eng.process(&e));
            }
            prop_assert_eq!(heap_eng.flush(), scan_eng.flush());
        }
    }

    /// The counters every execution path must agree on: the batched path
    /// may not drift from the fold on any observable statistic.
    fn counters(eng: &HamletEngine) -> (u64, u64, u64, u64, u64, u64) {
        let s = eng.stats();
        (
            s.decisions,
            s.windows_emitted,
            s.events_routed,
            s.expiry_pushes,
            s.expiry_tombstones,
            s.late_skips,
        )
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(24))]

        /// `process_batch` output and counters are identical to folding
        /// `process` (the one-element wrapper) and `process_reference`
        /// (the preserved pre-batching body) over the same stream —
        /// including duplicate timestamps, bounded lateness, grouped
        /// partitions, and both divergence modes.
        #[test]
        fn process_batch_matches_fold(
            seed in 0u64..10_000,
            within in 4u64..20,
            slide_div in 1u64..4,
            keys in 1i64..6,
            batch_size in 1usize..50,
            lateness in 0u64..4,
        ) {
            use proptest::prelude::prop_assert_eq;
            let (reg, a, b, c) = registry();
            let slide = (within / slide_div).max(1);
            let mode = if seed % 2 == 0 {
                DivergenceMode::Exact
            } else {
                DivergenceMode::Ema { alpha: 0.3 }
            };
            let mk = || {
                let mut q1 = Query::count_star(1, seq(a, b), Window::new(within, slide));
                q1.group_by = vec![Arc::from("g")];
                let mut q2 = Query::count_star(2, seq(c, b), Window::new(within, slide));
                q2.group_by = vec![Arc::from("g")];
                HamletEngine::new(
                    reg.clone(),
                    vec![q1, q2],
                    EngineConfig {
                        divergence: mode,
                        ..EngineConfig::default()
                    },
                )
                .unwrap()
            };
            // Deterministic pseudo-random stream (xorshift) with repeated
            // ticks and bounded out-of-order arrivals.
            let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
            let mut step = || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s
            };
            let mut t = 0u64;
            let mut events = Vec::new();
            for _ in 0..200 {
                t += step() % 3;
                let ty = match step() % 5 {
                    0 => a,
                    1 => c,
                    _ => b,
                };
                let g = (step() % keys as u64) as i64;
                let delay = if lateness == 0 { 0 } else { step() % (lateness + 1) };
                events.push(ev(&reg, ty, t.saturating_sub(delay), g, 0.0));
            }

            let mut ref_eng = mk();
            let mut ref_out = Vec::new();
            for e in &events {
                ref_out.extend(ref_eng.process_reference(e));
            }
            let mut fold_eng = mk();
            let mut fold_out = Vec::new();
            for e in &events {
                fold_out.extend(fold_eng.process(e));
            }
            let mut batch_eng = mk();
            let mut batch_out = Vec::new();
            for chunk in events.chunks(batch_size) {
                batch_out.extend(batch_eng.process_batch(chunk));
            }

            prop_assert_eq!(&fold_out, &ref_out);
            prop_assert_eq!(&batch_out, &ref_out);
            let ref_flush = ref_eng.flush();
            prop_assert_eq!(batch_eng.flush(), ref_flush.clone());
            prop_assert_eq!(fold_eng.flush(), ref_flush);
            prop_assert_eq!(counters(&batch_eng), counters(&ref_eng));
            prop_assert_eq!(counters(&fold_eng), counters(&ref_eng));
        }
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let (reg, a, b, _) = registry();
        let mk = || {
            let q = Query::count_star(1, seq(a, b), Window::tumbling(10));
            HamletEngine::new(reg.clone(), vec![q], EngineConfig::default()).unwrap()
        };
        // Fresh engine: a zero-length batch must not set a watermark or
        // emit — the checkpoint pins every bit of engine state.
        let mut eng = mk();
        assert!(eng.process_batch(&[]).is_empty());
        assert_eq!(eng.checkpoint(), mk().checkpoint());
        // Mid-stream, with open runs pending: still byte-for-byte inert.
        eng.process(&ev(&reg, a, 1, 0, 0.0));
        eng.process(&ev(&reg, b, 2, 0, 0.0));
        let before = eng.checkpoint();
        assert!(eng.process_batch(&[]).is_empty());
        assert_eq!(eng.checkpoint(), before);
        assert_eq!(eng.flush().len(), 1);
    }

    /// Satellite invariant: the public byte accounting covers the batch
    /// scratch arena, while checkpoints (which don't carry the arena)
    /// restore to a fresh-engine accounting.
    #[test]
    fn state_bytes_accounts_for_batch_arena() {
        use hamlet_query::{CmpOp, SelectionPredicate};
        let (reg, a, b, _) = registry();
        let mk = || {
            // The always-true selection keeps the group non-uniform, so
            // the batched path materializes bursts through the arena
            // (uniform groups buffer a bare count and never touch it).
            let mut q = Query::count_star(1, seq(a, b), Window::tumbling(10));
            q.selections.push(SelectionPredicate {
                ty: b,
                attr: 1,
                op: CmpOp::Lt,
                value: hamlet_types::AttrValue::Float(1e9),
            });
            HamletEngine::new(reg.clone(), vec![q], EngineConfig::default()).unwrap()
        };
        let mut eng = mk();
        assert_eq!(eng.state_bytes(), 0);
        let events: Vec<Event> = (0..64)
            .map(|i| ev(&reg, if i % 8 == 0 { a } else { b }, i, 0, 0.0))
            .collect();
        eng.process_batch(&events);
        eng.flush();
        // Everything live has drained, but the arena keeps the bursts'
        // attribute buffers pooled for reuse — the public accounting
        // must still see those bytes.
        assert_eq!(eng.live_state_bytes(), 0);
        assert!(eng.state_bytes() > 0);
        // restore() drops the pool: a restored engine accounts like a
        // fresh one.
        let blob = eng.checkpoint();
        let mut resumed = mk();
        resumed.process_batch(&events);
        resumed.flush();
        assert!(resumed.state_bytes() > 0);
        resumed.restore(&blob).unwrap();
        assert_eq!(resumed.state_bytes(), 0);
    }

    /// Interleaving the batched and reference paths on one engine mixes a
    /// count-only burst tail (`burst_extra`) with materialized events in a
    /// single pending burst; the flush must replay both halves as one
    /// burst — same outputs, same decision and event counters as a pure
    /// event-at-a-time run.
    #[test]
    fn mixed_compact_and_event_burst_flushes_once() {
        let (reg, a, b, _) = registry();
        let mk = || {
            let q = Query::count_star(1, seq(a, b), Window::tumbling(100));
            HamletEngine::new(reg.clone(), vec![q], EngineConfig::default()).unwrap()
        };
        let evs: Vec<Event> = (0..40)
            .map(|i| ev(&reg, if i == 0 { a } else { b }, i, 0, 0.0))
            .collect();
        let mut mixed = mk();
        let mut ref_eng = mk();
        let mut mixed_out = Vec::new();
        let mut ref_out = Vec::new();
        for (i, e) in evs.iter().enumerate() {
            // Alternate paths within one pane: when the flush fires, the
            // pending burst holds cloned events *and* a count-only tail.
            if i % 2 == 0 {
                mixed_out.extend(mixed.process(e));
            } else {
                mixed_out.extend(mixed.process_reference(e));
            }
            ref_out.extend(ref_eng.process_reference(e));
        }
        mixed_out.extend(mixed.flush());
        ref_out.extend(ref_eng.flush());
        assert_eq!(mixed_out, ref_out);
        assert_eq!(counters(&mixed), counters(&ref_eng));
    }

    /// Direct evidence for the O(P)→O(log n) claim: at high partition
    /// cardinality the indexed expiry path beats the old full scan by a
    /// wide margin, because the scan pays O(live partitions) on every
    /// event while the heap pays O(1) when nothing expires.
    #[test]
    #[ignore = "slow tier: expiry-cost scaling; run with `cargo test --release -- --ignored`"]
    fn indexed_expiry_beats_full_scan_at_high_cardinality() {
        let (reg, a, b, _) = registry();
        let mk = || {
            let mut q = Query::count_star(1, seq(a, b), Window::tumbling(50));
            q.group_by = vec![Arc::from("g")];
            HamletEngine::new(
                reg.clone(),
                vec![q],
                EngineConfig {
                    track_latency: false,
                    mem_sample_every: 0,
                    ..EngineConfig::default()
                },
            )
            .unwrap()
        };
        // ~5000 live partitions per window, small per-partition state.
        let evs: Vec<Event> = (0..100_000u64)
            .map(|i| {
                let t = i / 1_000; // 100 windows over the stream
                let ty = if i % 10 == 0 { a } else { b };
                ev(&reg, ty, t, (i % 5_000) as i64, 0.0)
            })
            .collect();
        let time = |eng: &mut HamletEngine| {
            let t0 = Instant::now();
            let mut n = 0usize;
            for e in &evs {
                n += eng.process(e).len();
            }
            n += eng.flush().len();
            (t0.elapsed(), n)
        };
        let mut heap_eng = mk();
        let mut scan_eng = mk();
        scan_eng.set_scan_expiry(true);
        let (heap_t, heap_n) = time(&mut heap_eng);
        let (scan_t, scan_n) = time(&mut scan_eng);
        assert_eq!(heap_n, scan_n, "paths emit the same result count");
        // The margin is ~10–100× in release; 2× keeps noisy hosts green.
        assert!(
            heap_t.as_secs_f64() * 2.0 < scan_t.as_secs_f64(),
            "indexed expiry ({heap_t:?}) not faster than full scan ({scan_t:?})"
        );
    }

    /// A late event whose window already closed must not resurrect the
    /// window: the engine skips the contribution (counting it) instead of
    /// emitting the same (query, key, window) twice.
    #[test]
    fn late_event_cannot_double_emit_a_window() {
        let (reg, a, b, _) = registry();
        let q1 = Query::count_star(1, seq(a, b), Window::tumbling(10));
        let mut eng = HamletEngine::new(reg.clone(), vec![q1], EngineConfig::default()).unwrap();
        assert_eq!(eng.watermark(), None);
        let mut out = Vec::new();
        out.extend(eng.process(&ev(&reg, a, 1, 0, 0.0)));
        out.extend(eng.process(&ev(&reg, b, 2, 0, 0.0)));
        // Watermark jumps past the window end: [0,10) emits.
        out.extend(eng.process(&ev(&reg, a, 15, 0, 0.0)));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].window_start, Ts(0));
        assert_eq!(out[0].value, AggValue::Count(1));
        assert_eq!(eng.watermark(), Some(Ts(15)));
        // A straggler for the closed window arrives late.
        let late = eng.process(&ev(&reg, b, 3, 0, 0.0));
        assert!(late.is_empty(), "late event emitted: {late:?}");
        assert_eq!(eng.stats().late_skips, 1);
        assert_eq!(eng.watermark(), Some(Ts(15)), "watermark is monotone");
        // Flush emits only the still-open [10,20) window — no duplicate
        // of [0,10).
        let mut rest = eng.flush();
        rest.retain(|r| r.window_start == Ts(0));
        assert!(rest.is_empty(), "window [0,10) re-emitted: {rest:?}");
    }

    /// An out-of-order event that is late for one (closed) sliding window
    /// instance still contributes to the instances that remain open.
    #[test]
    fn late_event_still_feeds_open_windows() {
        let (reg, a, b, _) = registry();
        let q1 = Query::count_star(1, seq(a, b), Window::new(10, 5));
        let mut eng = HamletEngine::new(reg.clone(), vec![q1], EngineConfig::default()).unwrap();
        let mut out = Vec::new();
        out.extend(eng.process(&ev(&reg, a, 6, 0, 0.0)));
        // Watermark 12 closes [0,10) but leaves [5,15) and [10,20) open.
        out.extend(eng.process(&ev(&reg, a, 12, 0, 0.0)));
        // b@8 is late for [0,10) (skipped) but lands in the open [5,15).
        out.extend(eng.process(&ev(&reg, b, 8, 0, 0.0)));
        out.extend(eng.flush());
        assert_eq!(eng.stats().late_skips, 1);
        let w5: Vec<_> = out.iter().filter(|r| r.window_start == Ts(5)).collect();
        assert_eq!(w5.len(), 1);
        // The late b contributes to the open [5,15) window. (Within an
        // open window the engine orders by *arrival*, so both a@6 and
        // a@12 precede the late b — in-window ordering is the reorder
        // stage's job, the engine only guarantees no double emission.)
        assert_eq!(w5[0].value, AggValue::Count(2), "late b fed [5,15)");
        // Each window instance emitted exactly once.
        let mut starts: Vec<u64> = out.iter().map(|r| r.window_start.ticks()).collect();
        starts.sort_unstable();
        starts.dedup();
        assert_eq!(starts.len(), out.len(), "duplicate window emission");
    }

    /// Checkpoint mid-stream, restore into a fresh engine, continue:
    /// suffix output and final flush are byte-identical to the
    /// uninterrupted run, and a checkpoint of the restored engine is
    /// byte-identical to the original blob (round-trip identity).
    #[test]
    fn checkpoint_restore_continue_is_identical() {
        let (reg, a, b, c) = registry();
        let mk = || {
            let mut q1 = Query::count_star(1, seq(a, b), Window::new(10, 5));
            q1.group_by = vec![Arc::from("g")];
            let mut q2 = Query::count_star(2, seq(c, b), Window::new(10, 5));
            q2.group_by = vec![Arc::from("g")];
            HamletEngine::new(reg.clone(), vec![q1, q2], EngineConfig::default()).unwrap()
        };
        let evs: Vec<Event> = (0..90u64)
            .map(|t| {
                let ty = match t % 5 {
                    0 => a,
                    1 => c,
                    _ => b,
                };
                ev(&reg, ty, t, (t % 7) as i64, t as f64)
            })
            .collect();
        for cut in [0usize, 1, 37, 89, 90] {
            let mut uninterrupted = mk();
            let mut gold = Vec::new();
            for e in &evs {
                gold.push(uninterrupted.process(e));
            }
            let gold_flush = uninterrupted.flush();

            let mut first = mk();
            for e in &evs[..cut] {
                let _ = first.process(e);
            }
            let blob = first.checkpoint();
            drop(first); // the "kill"
            let mut resumed = mk();
            resumed.restore(&blob).unwrap();
            assert_eq!(resumed.checkpoint(), blob, "round-trip identity at {cut}");
            for (i, e) in evs[cut..].iter().enumerate() {
                assert_eq!(
                    resumed.process(e),
                    gold[cut + i],
                    "event {} cut {cut}",
                    cut + i
                );
            }
            assert_eq!(resumed.flush(), gold_flush, "flush at cut {cut}");
            assert_eq!(
                resumed.stats().windows_emitted,
                uninterrupted.stats().windows_emitted,
                "counters continue across restore (cut {cut})"
            );
        }
    }

    /// A checkpoint refuses to restore into a different workload or
    /// sharding, and corrupt blobs fail cleanly.
    #[test]
    fn restore_validates_fingerprint_and_blob() {
        use crate::checkpoint::CheckpointError;
        let (reg, a, b, c) = registry();
        let q1 = Query::count_star(1, seq(a, b), Window::tumbling(10));
        let mut eng =
            HamletEngine::new(reg.clone(), vec![q1.clone()], EngineConfig::default()).unwrap();
        let _ = eng.process(&ev(&reg, a, 1, 0, 0.0));
        let blob = eng.checkpoint();

        // Different workload.
        let q2 = Query::count_star(2, seq(c, b), Window::tumbling(10));
        let mut other = HamletEngine::new(reg.clone(), vec![q2], EngineConfig::default()).unwrap();
        assert!(matches!(
            other.restore(&blob),
            Err(CheckpointError::WorkloadMismatch(_))
        ));

        // Different sharding.
        let mut sharded = HamletEngine::new(
            reg.clone(),
            vec![q1.clone()],
            EngineConfig {
                shard: Some((0, 4)),
                ..EngineConfig::default()
            },
        )
        .unwrap();
        assert!(matches!(
            sharded.restore(&blob),
            Err(CheckpointError::WorkloadMismatch(_))
        ));

        // Garbage and truncation.
        let mut fresh = HamletEngine::new(reg.clone(), vec![q1], EngineConfig::default()).unwrap();
        assert_eq!(fresh.restore(b"nope"), Err(CheckpointError::BadMagic));
        assert!(fresh.restore(&blob[..blob.len() - 3]).is_err());
        // The failed restores did not corrupt the fresh engine.
        fresh.restore(&blob).unwrap();
        assert_eq!(fresh.checkpoint(), blob);
    }

    /// The expiration index is rebuilt on restore: exactly one live entry
    /// per restored run, and expiry continues to drain them.
    #[test]
    fn restore_rebuilds_expiry_index() {
        let (reg, a, b, _) = registry();
        let q1 = Query::count_star(1, seq(a, b), Window::new(10, 5));
        let mut eng =
            HamletEngine::new(reg.clone(), vec![q1.clone()], EngineConfig::default()).unwrap();
        for t in 0..20u64 {
            let _ = eng.process(&ev(&reg, if t % 4 == 0 { a } else { b }, t, 0, 0.0));
        }
        let live = eng.expiry_index_len();
        assert!(live > 0);
        let blob = eng.checkpoint();
        let mut resumed =
            HamletEngine::new(reg.clone(), vec![q1], EngineConfig::default()).unwrap();
        resumed.restore(&blob).unwrap();
        assert_eq!(resumed.expiry_index_len(), live);
        let _ = resumed.flush();
        assert_eq!(resumed.expiry_index_len(), 0, "flush drains rebuilt index");
    }

    #[test]
    fn latency_and_memory_tracked() {
        let (reg, a, b, _) = registry();
        let q1 = Query::count_star(1, seq(a, b), Window::tumbling(4));
        let mut eng = HamletEngine::new(
            reg.clone(),
            vec![q1],
            EngineConfig {
                mem_sample_every: 1,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let evs: Vec<Event> = (0..20)
            .map(|t| ev(&reg, if t % 4 == 0 { a } else { b }, t, 0, 0.0))
            .collect();
        let _ = collect(&mut eng, evs);
        assert!(eng.latency().count() > 0);
        assert!(eng.peak_memory() > 0);
        assert!(eng.stats().runs.events > 0);
    }

    /// A stream the churn tests share: a, c and bursts of b, two group-by
    /// values.
    fn churn_stream(
        reg: &TypeRegistry,
        a: EventTypeId,
        b: EventTypeId,
        c: EventTypeId,
        n: u64,
    ) -> Vec<Event> {
        (0..n)
            .map(|t| {
                let ty = match t % 5 {
                    0 => a,
                    1 => c,
                    _ => b,
                };
                ev(reg, ty, t, (t % 2) as i64, t as f64)
            })
            .collect()
    }

    /// Adding and later removing a query whose window differs (its own
    /// share group) must not perturb the untouched group's output at all.
    #[test]
    fn churn_of_unrelated_query_leaves_other_groups_byte_identical() {
        let (reg, a, b, c) = registry();
        let q1 = Query::count_star(1, seq(a, b), Window::tumbling(20));
        let q2 = Query::count_star(2, seq(c, b), Window::tumbling(20));
        let q3 = Query::count_star(7, seq(a, b), Window::tumbling(10));
        let evs = churn_stream(&reg, a, b, c, 100);

        let mut base = HamletEngine::new(
            reg.clone(),
            vec![q1.clone(), q2.clone()],
            EngineConfig::default(),
        )
        .unwrap();
        let baseline = collect(&mut base, evs.clone());

        let mut eng = HamletEngine::new(
            reg.clone(),
            vec![q1.clone(), q2.clone()],
            EngineConfig::default(),
        )
        .unwrap();
        let mut out = Vec::new();
        for (i, e) in evs.iter().enumerate() {
            if i == 33 {
                let rep = eng.add_query(q3.clone()).unwrap();
                assert_eq!(rep.groups_carried, 1, "the {{q1,q2}} group carries over");
                assert_eq!(rep.groups_rebuilt, 1, "q3 starts its own group");
                assert_eq!(rep.epoch, 1);
                out.extend(rep.drained);
            }
            if i == 71 {
                let rep = eng.remove_query(QueryId(7)).unwrap();
                assert_eq!(rep.epoch, 2);
                out.extend(rep.drained);
            }
            out.extend(eng.process(e));
        }
        out.extend(eng.flush());
        let churned: Vec<WindowResult> =
            out.into_iter().filter(|r| r.query != QueryId(7)).collect();
        assert_eq!(baseline, churned);
        assert_eq!(eng.epoch(), 2);
        assert_eq!(eng.queries().len(), 2);
    }

    /// Removing a query with open windows drains them exactly once at the
    /// barrier and never again.
    #[test]
    fn removed_query_drains_in_flight_windows_once() {
        let (reg, a, b, c) = registry();
        let q1 = Query::count_star(1, seq(a, b), Window::tumbling(20));
        let q2 = Query::count_star(2, seq(c, b), Window::tumbling(20));
        let evs = churn_stream(&reg, a, b, c, 30);
        let mut eng =
            HamletEngine::new(reg.clone(), vec![q1, q2], EngineConfig::default()).unwrap();
        let mut out = Vec::new();
        for e in &evs {
            out.extend(eng.process(e));
        }
        // Window [20,40) is mid-flight for both queries.
        let rep = eng.remove_query(QueryId(2)).unwrap();
        let q2_drained = rep.drained.iter().filter(|r| r.query == QueryId(2)).count();
        assert!(q2_drained > 0, "q2's open window drains at the barrier");
        let before_flush = out.len() + rep.drained.len();
        out.extend(rep.drained);
        let flushed = eng.flush();
        assert!(
            !flushed.iter().any(|r| r.query == QueryId(2)),
            "a removed query's windows never emit again after the drain"
        );
        out.extend(flushed);
        assert!(out.len() >= before_flush);
        // Each of q2's windows appears exactly once overall.
        let mut seen = std::collections::BTreeSet::new();
        for r in out.iter().filter(|r| r.query == QueryId(2)) {
            assert!(
                seen.insert((r.window_start.ticks(), format!("{}", r.group_key))),
                "duplicate emission for {r:?}"
            );
        }
    }

    /// Removing the last co-member of a shared group: the survivor's
    /// group is rebuilt (drain + re-open), and it keeps producing.
    #[test]
    fn remove_last_member_of_shared_group() {
        let (reg, a, b, c) = registry();
        let q1 = Query::count_star(1, seq(a, b), Window::tumbling(20));
        let q2 = Query::count_star(2, seq(c, b), Window::tumbling(20));
        let mut eng =
            HamletEngine::new(reg.clone(), vec![q1, q2], EngineConfig::default()).unwrap();
        assert_eq!(eng.num_groups(), 1);
        let evs = churn_stream(&reg, a, b, c, 30);
        let mut out = Vec::new();
        for e in &evs {
            out.extend(eng.process(e));
        }
        let rep = eng.remove_query(QueryId(2)).unwrap();
        assert_eq!(rep.groups_carried, 0, "the shared group was restructured");
        assert_eq!(rep.groups_rebuilt, 1);
        assert_eq!(eng.num_groups(), 1);
        assert!(
            rep.drained.iter().any(|r| r.query == QueryId(1)),
            "q1's mid-flight window drains as a prefix"
        );
        out.extend(rep.drained);
        // q1 keeps producing after the churn.
        for t in 30..60u64 {
            let ty = if t % 5 == 0 { a } else { b };
            out.extend(eng.process(&ev(&reg, ty, t, (t % 2) as i64, 0.0)));
        }
        out.extend(eng.flush());
        assert!(out
            .iter()
            .any(|r| r.query == QueryId(1) && r.window_start.ticks() >= 40));
        // The singleton placement reports solo execution.
        assert_eq!(rep.placements.len(), 1);
        assert!(!rep.placements[0].shared);
        assert_eq!(rep.placements[0].benefit, 0.0);
    }

    /// Adding a query whose Def. 12 benefit is negative (edge predicates
    /// force an event-level snapshot per burst event): the re-priced
    /// placement must not share it.
    #[test]
    fn negative_benefit_add_goes_solo() {
        let (reg, a, b, _) = registry();
        let q1 = Query::count_star(1, seq(a, b), Window::tumbling(20));
        let mut eng = HamletEngine::new(reg.clone(), vec![q1], EngineConfig::default()).unwrap();
        // Same pattern and window — sharable, so it joins q1's group — but
        // every adjacent B pair must be non-decreasing in v: an edge
        // predicate, the Def. 9 worst case (snapshot per event).
        let v_slot = reg.attr_index(b, "v").unwrap();
        let q9 = Query::new(
            QueryId(9),
            seq(a, b),
            hamlet_query::AggFunc::CountStar,
            vec![],
            vec![hamlet_query::predicate::EdgePredicate {
                ty: b,
                cur_attr: v_slot,
                op: hamlet_query::predicate::CmpOp::Ge,
                prev_attr: v_slot,
            }],
            vec![],
            vec![],
            Window::tumbling(20),
        )
        .unwrap();
        let rep = eng.add_query(q9).unwrap();
        let grp = rep
            .placements
            .iter()
            .find(|p| p.members.len() == 2)
            .expect("q1 and q9 cluster into one group");
        assert!(
            grp.benefit < 0.0,
            "edge predicates make sharing lose: {}",
            grp.benefit
        );
        assert!(!grp.shared, "negative benefit ⇒ solo execution");
    }

    /// Churn error paths: duplicate add, unknown remove, double remove —
    /// and the engine is untouched on error.
    #[test]
    fn churn_errors_leave_engine_untouched() {
        let (reg, a, b, c) = registry();
        let q1 = Query::count_star(1, seq(a, b), Window::tumbling(20));
        let q2 = Query::count_star(2, seq(c, b), Window::tumbling(20));
        let mut eng =
            HamletEngine::new(reg.clone(), vec![q1.clone(), q2], EngineConfig::default()).unwrap();
        assert!(matches!(
            eng.add_query(q1.clone()),
            Err(ChurnError::Duplicate(QueryId(1)))
        ));
        assert!(matches!(
            eng.remove_query(QueryId(42)),
            Err(ChurnError::Unknown(QueryId(42)))
        ));
        assert_eq!(eng.epoch(), 0, "failed churn does not bump the epoch");
        eng.remove_query(QueryId(2)).unwrap();
        assert!(matches!(
            eng.remove_query(QueryId(2)),
            Err(ChurnError::Unknown(QueryId(2)))
        ));
        assert_eq!(eng.epoch(), 1);
        // Unsupported workloads are rejected with the compile error and
        // leave the engine running.
        let mut neg = Query::count_star(3, seq(a, b), Window::tumbling(20));
        neg.pattern = Pattern::seq(vec![
            Pattern::Type(a),
            Pattern::Not(Box::new(Pattern::Type(c))),
            Pattern::plus(Pattern::Type(b)),
        ]);
        neg.agg = hamlet_query::AggFunc::Min(b, 1);
        match eng.add_query(neg) {
            Err(ChurnError::Engine(EngineError::Unsupported(_))) => {}
            other => panic!("expected Unsupported, got {other:?}"),
        }
        assert_eq!(eng.epoch(), 1);
        assert_eq!(eng.queries().len(), 1);
    }

    /// Checkpoint after churn restores only into an engine at the same
    /// epoch; cross-epoch and pre-churn blobs are rejected with a clear
    /// error; v2-era semantics (epoch 0) keep working.
    #[test]
    fn churn_versions_the_checkpoint_epoch() {
        let (reg, a, b, c) = registry();
        let q1 = Query::count_star(1, seq(a, b), Window::tumbling(20));
        let q2 = Query::count_star(2, seq(c, b), Window::tumbling(20));
        let evs = churn_stream(&reg, a, b, c, 90);
        let mut eng = HamletEngine::new(
            reg.clone(),
            vec![q1.clone(), q2.clone()],
            EngineConfig::default(),
        )
        .unwrap();
        let mut out = Vec::new();
        for e in &evs[..40] {
            out.extend(eng.process(e));
        }
        let pre_churn_blob = eng.checkpoint();
        assert_eq!(
            crate::executor::checkpoint_epoch(&pre_churn_blob).unwrap(),
            0
        );
        let rep = eng.remove_query(QueryId(2)).unwrap();
        out.extend(rep.drained);
        for e in &evs[40..60] {
            out.extend(eng.process(e));
        }
        let blob = eng.checkpoint();
        assert_eq!(crate::executor::checkpoint_epoch(&blob).unwrap(), 1);

        // Restoring into a fresh engine over the final query set fails
        // without the epoch — the clear cross-epoch error…
        let mut fresh =
            HamletEngine::new(reg.clone(), vec![q1.clone()], EngineConfig::default()).unwrap();
        match fresh.restore(&blob) {
            Err(crate::checkpoint::CheckpointError::WorkloadMismatch(msg)) => {
                assert!(msg.contains("epoch"), "unhelpful error: {msg}");
            }
            other => panic!("expected WorkloadMismatch, got {other:?}"),
        }
        // …and succeeds once the epoch is declared.
        fresh.set_epoch(1);
        fresh.restore(&blob).unwrap();
        let mut resumed = Vec::new();
        for e in &evs[60..] {
            resumed.extend(fresh.process(e));
        }
        resumed.extend(fresh.flush());
        let mut direct = Vec::new();
        for e in &evs[60..] {
            direct.extend(eng.process(e));
        }
        direct.extend(eng.flush());
        assert_eq!(direct, resumed, "restored suffix is byte-identical");

        // The pre-churn blob no longer restores into the churned engine.
        let mut eng2 = HamletEngine::new(
            reg.clone(),
            vec![q1.clone(), q2.clone()],
            EngineConfig::default(),
        )
        .unwrap();
        eng2.remove_query(QueryId(2)).unwrap();
        assert!(matches!(
            eng2.restore(&pre_churn_blob),
            Err(crate::checkpoint::CheckpointError::WorkloadMismatch(_))
        ));
    }

    /// Churn across general (OR/AND) queries: pending halves re-key to
    /// the renumbered combiner table, removed general queries settle
    /// their halves at the barrier, and untouched queries are unaffected.
    #[test]
    fn churn_with_general_queries_settles_pending_halves() {
        let (reg, a, b, c) = registry();
        let q1 = Query::count_star(1, seq(a, b), Window::tumbling(20));
        let mut q_or = Query::count_star(2, seq(a, b), Window::tumbling(20));
        // Branches must be type-disjoint; the left half SEQ(a, b+) shares
        // q1's group, the right half c+ is its own group.
        q_or.pattern = Pattern::Or(
            Box::new(seq(a, b)),
            Box::new(Pattern::plus(Pattern::Type(c))),
        );
        let evs = churn_stream(&reg, a, b, c, 100);

        let mut base = HamletEngine::new(
            reg.clone(),
            vec![q1.clone(), q_or.clone()],
            EngineConfig::default(),
        )
        .unwrap();
        let baseline = collect(&mut base, evs.clone());

        // Remove the OR query mid-stream, then re-add it; q1's output must
        // be untouched, and the OR query's windows all appear.
        let mut eng = HamletEngine::new(
            reg.clone(),
            vec![q1.clone(), q_or.clone()],
            EngineConfig::default(),
        )
        .unwrap();
        let mut out = Vec::new();
        for (i, e) in evs.iter().enumerate() {
            if i == 50 {
                let rep = eng.remove_query(QueryId(2)).unwrap();
                out.extend(rep.drained);
                let rep = eng.add_query(q_or.clone()).unwrap();
                out.extend(rep.drained);
            }
            out.extend(eng.process(e));
        }
        out.extend(eng.flush());
        // q1 shares a group with the OR query's *left half*, so the churn
        // touches it too: its mid-flight window [40,60) splits into a
        // drained prefix plus a reopened suffix (the documented churn
        // contract); every other window is byte-identical to baseline.
        let q1_rows = |rs: &[WindowResult], w: u64| -> Vec<WindowResult> {
            rs.iter()
                .filter(|r| r.query == QueryId(1) && r.window_start.ticks() == w)
                .cloned()
                .collect()
        };
        for w in [0u64, 20, 60, 80] {
            assert_eq!(q1_rows(&baseline, w), q1_rows(&out, w), "window {w}");
        }
        assert_eq!(
            q1_rows(&out, 40).len(),
            2,
            "the mid-flight window splits at the barrier"
        );
        // Every window of the OR query emits (possibly split at the
        // barrier), and they cover the same window starts as baseline.
        let windows = |rs: &[WindowResult], q: u32| -> std::collections::BTreeSet<u64> {
            rs.iter()
                .filter(|r| r.query == QueryId(q))
                .map(|r| r.window_start.ticks())
                .collect()
        };
        assert_eq!(
            windows(&baseline, 2),
            windows(&out, 2),
            "OR query covers the same windows"
        );
    }
}
