//! Pipeline-level checkpoints: everything a live pipeline must persist
//! to resume after a crash or planned restart.
//!
//! A pipeline's durable state spans three layers:
//!
//! 1. **Engines** — one serialized
//!    [`HamletEngine`](hamlet_core::HamletEngine) checkpoint per shard
//!    worker (open windows, snapshot tables, watermark, counters);
//! 2. **Reorder buffer** — events the ingest stage pulled but had not
//!    yet released past the watermark;
//! 3. **Source cursor** — how many events were pulled from the source,
//!    so a replayable source can be repositioned, plus the maximum event
//!    time observed (the watermark seed for the resumed policy).
//!
//! [`PipelineHandle::checkpoint`](crate::PipelineHandle::checkpoint)
//! produces one, [`PipelineBuilder::resume`](crate::PipelineBuilder::resume)
//! consumes it. The container serializes through the same hand-rolled
//! versioned codec as the engine blobs
//! ([`hamlet_core::checkpoint`]), so a checkpoint written to disk by one
//! process restores cleanly in another.

use hamlet_core::checkpoint::{CheckpointError, Dec};
use hamlet_types::{Event, Ts};

/// Magic tag opening a serialized pipeline checkpoint.
pub const PIPELINE_MAGIC: [u8; 4] = *b"HMPL";
/// Pipeline checkpoint format version.
pub const PIPELINE_VERSION: u16 = 1;

/// Durable state of a quiesced pipeline (see the module docs for the
/// three layers). Obtain one via
/// [`PipelineHandle::checkpoint`](crate::PipelineHandle::checkpoint).
pub struct PipelineCheckpoint {
    pub(crate) workers: u32,
    /// Per-shard engine blobs (index = shard).
    pub(crate) engines: Vec<Vec<u8>>,
    /// Reorder-buffer events not yet released, in `(time, arrival)`
    /// order.
    pub(crate) buffered: Vec<Event>,
    /// Events pulled from the source before the barrier (the cursor a
    /// replayable source must skip to on resume — late drops included).
    pub(crate) events_pulled: u64,
    /// Maximum event time observed — seeds the resumed watermark policy.
    pub(crate) max_seen: Option<Ts>,
    /// Counter continuity: ingested / late / released / results at the
    /// barrier, carried into the resumed pipeline's metrics.
    pub(crate) counters: [u64; 4],
}

impl PipelineCheckpoint {
    /// Worker count the checkpoint was taken under. A checkpoint only
    /// resumes under the same sharding (partition ownership depends on
    /// it); this is validated on resume.
    pub fn workers(&self) -> u32 {
        self.workers
    }

    /// Events pulled from the source before the barrier. On resume,
    /// hand [`PipelineBuilder::resume`](crate::PipelineBuilder::resume)
    /// a source positioned *after* these events (e.g. a
    /// [`ReplaySource`](crate::ReplaySource) over `events[cursor..]`);
    /// the events the barrier caught in the reorder buffer travel inside
    /// the checkpoint and are re-injected automatically.
    pub fn events_pulled(&self) -> u64 {
        self.events_pulled
    }

    /// Events frozen inside the reorder buffer.
    pub fn buffered_len(&self) -> usize {
        self.buffered.len()
    }

    /// Serialized size of the per-shard engine state, in bytes.
    pub fn engine_bytes(&self) -> usize {
        self.engines.iter().map(Vec::len).sum()
    }

    /// Serializes the container for file persistence.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut e = hamlet_core::checkpoint::container_header(
            &PIPELINE_MAGIC,
            PIPELINE_VERSION,
            self.workers,
            &self.engines,
        );
        e.usize(self.buffered.len());
        for ev in &self.buffered {
            e.event(ev);
        }
        e.u64(self.events_pulled);
        match self.max_seen {
            None => e.some(false),
            Some(t) => {
                e.some(true);
                e.u64(t.ticks());
            }
        }
        for c in self.counters {
            e.u64(c);
        }
        e.finish()
    }

    /// Mirror of [`to_bytes`](Self::to_bytes).
    pub fn from_bytes(bytes: &[u8]) -> Result<PipelineCheckpoint, CheckpointError> {
        let mut d = Dec::new(bytes);
        let (workers, engines) =
            hamlet_core::checkpoint::read_container(&mut d, &PIPELINE_MAGIC, PIPELINE_VERSION)?;
        let n_buf = d.seq_len()?;
        let mut buffered = Vec::with_capacity(n_buf);
        for _ in 0..n_buf {
            buffered.push(d.event()?);
        }
        let events_pulled = d.u64()?;
        let max_seen = if d.some()? { Some(Ts(d.u64()?)) } else { None };
        let mut counters = [0u64; 4];
        for c in &mut counters {
            *c = d.u64()?;
        }
        d.expect_end()?;
        Ok(PipelineCheckpoint {
            workers,
            engines,
            buffered,
            events_pulled,
            max_seen,
            counters,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamlet_types::EventTypeId;

    #[test]
    fn container_round_trips() {
        let ck = PipelineCheckpoint {
            workers: 2,
            engines: vec![vec![1, 2, 3], vec![4]],
            buffered: vec![Event::new(Ts(9), EventTypeId(1), vec![])],
            events_pulled: 42,
            max_seen: Some(Ts(11)),
            counters: [42, 1, 40, 7],
        };
        let blob = ck.to_bytes();
        let back = PipelineCheckpoint::from_bytes(&blob).unwrap();
        assert_eq!(back.workers(), 2);
        assert_eq!(back.engines, ck.engines);
        assert_eq!(back.buffered, ck.buffered);
        assert_eq!(back.events_pulled(), 42);
        assert_eq!(back.buffered_len(), 1);
        assert_eq!(back.engine_bytes(), 4);
        assert_eq!(back.max_seen, Some(Ts(11)));
        assert_eq!(back.counters, ck.counters);
    }

    #[test]
    fn garbage_and_truncation_fail_cleanly() {
        assert!(matches!(
            PipelineCheckpoint::from_bytes(b"????"),
            Err(CheckpointError::BadMagic)
        ));
        let ck = PipelineCheckpoint {
            workers: 1,
            engines: vec![vec![]],
            buffered: vec![],
            events_pulled: 0,
            max_seen: None,
            counters: [0; 4],
        };
        let blob = ck.to_bytes();
        assert!(PipelineCheckpoint::from_bytes(&blob[..blob.len() - 1]).is_err());
    }
}
