//! Pipeline-level checkpoints: everything a live pipeline must persist
//! to resume after a crash or planned restart.
//!
//! A pipeline's durable state spans three layers:
//!
//! 1. **Engines** — one serialized
//!    [`HamletEngine`](hamlet_core::HamletEngine) checkpoint per shard
//!    worker (open windows, snapshot tables, watermark, counters);
//! 2. **Reorder buffer** — events the ingest stage pulled but had not
//!    yet released past the watermark;
//! 3. **Source cursor** — how many events were pulled from the source,
//!    so a replayable source can be repositioned, plus the maximum event
//!    time observed (the watermark seed for the resumed policy).
//!
//! [`PipelineHandle::checkpoint`](crate::PipelineHandle::checkpoint)
//! produces one, [`PipelineBuilder::resume`](crate::PipelineBuilder::resume)
//! consumes it. The container serializes through the same hand-rolled
//! versioned codec as the engine blobs
//! ([`hamlet_core::checkpoint`]), so a checkpoint written to disk by one
//! process restores cleanly in another.

use hamlet_core::checkpoint::{CheckpointError, Dec};
use hamlet_types::{Event, Ts};
use std::time::Duration;

/// Magic tag opening a serialized pipeline checkpoint.
pub const PIPELINE_MAGIC: [u8; 4] = *b"HMPL";
/// Pipeline checkpoint format version. v2 appends the accumulated run
/// time (nanoseconds) so a resumed pipeline's `elapsed`/`ingest_eps()`
/// report the whole logical run; v1 blobs still restore (elapsed
/// restarts at zero).
pub const PIPELINE_VERSION: u16 = 2;
/// Previous pipeline checkpoint version, still accepted on read.
const PIPELINE_VERSION_V1: u16 = 1;

/// Durable state of a quiesced pipeline (see the module docs for the
/// three layers). Obtain one via
/// [`PipelineHandle::checkpoint`](crate::PipelineHandle::checkpoint).
pub struct PipelineCheckpoint {
    pub(crate) workers: u32,
    /// Per-shard engine blobs (index = shard).
    pub(crate) engines: Vec<Vec<u8>>,
    /// Reorder-buffer events not yet released, in `(time, arrival)`
    /// order.
    pub(crate) buffered: Vec<Event>,
    /// Events pulled from the source before the barrier (the cursor a
    /// replayable source must skip to on resume — late drops included).
    pub(crate) events_pulled: u64,
    /// Maximum event time observed — seeds the resumed watermark policy.
    pub(crate) max_seen: Option<Ts>,
    /// Counter continuity: ingested / late / released / results at the
    /// barrier, carried into the resumed pipeline's metrics.
    pub(crate) counters: [u64; 4],
    /// Wall time the logical run had accumulated at the barrier (this
    /// incarnation plus any it resumed from) — carried so the resumed
    /// pipeline's `elapsed` keeps counting instead of restarting.
    pub(crate) elapsed: Duration,
}

impl PipelineCheckpoint {
    /// Worker count the checkpoint was taken under. A checkpoint only
    /// resumes under the same sharding (partition ownership depends on
    /// it); this is validated on resume.
    pub fn workers(&self) -> u32 {
        self.workers
    }

    /// Events pulled from the source before the barrier. On resume,
    /// hand [`PipelineBuilder::resume`](crate::PipelineBuilder::resume)
    /// a source positioned *after* these events (e.g. a
    /// [`ReplaySource`](crate::ReplaySource) over `events[cursor..]`);
    /// the events the barrier caught in the reorder buffer travel inside
    /// the checkpoint and are re-injected automatically.
    pub fn events_pulled(&self) -> u64 {
        self.events_pulled
    }

    /// Events frozen inside the reorder buffer.
    pub fn buffered_len(&self) -> usize {
        self.buffered.len()
    }

    /// Serialized size of the per-shard engine state, in bytes.
    pub fn engine_bytes(&self) -> usize {
        self.engines.iter().map(Vec::len).sum()
    }

    /// Wall time the logical run had accumulated when the checkpoint was
    /// taken (zero for blobs written before format v2).
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// Serializes the container for file persistence.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut e = hamlet_core::checkpoint::container_header(
            &PIPELINE_MAGIC,
            PIPELINE_VERSION,
            self.workers,
            &self.engines,
        );
        e.usize(self.buffered.len());
        for ev in &self.buffered {
            e.event(ev);
        }
        e.u64(self.events_pulled);
        match self.max_seen {
            None => e.some(false),
            Some(t) => {
                e.some(true);
                e.u64(t.ticks());
            }
        }
        for c in self.counters {
            e.u64(c);
        }
        // v2 tail: accumulated run time, saturated to u64 nanoseconds.
        e.u64(u64::try_from(self.elapsed.as_nanos()).unwrap_or(u64::MAX));
        e.finish()
    }

    /// Mirror of [`to_bytes`](Self::to_bytes).
    pub fn from_bytes(bytes: &[u8]) -> Result<PipelineCheckpoint, CheckpointError> {
        let mut d = Dec::new(bytes);
        let (version, workers, engines) = hamlet_core::checkpoint::read_container_any(
            &mut d,
            &PIPELINE_MAGIC,
            &[PIPELINE_VERSION, PIPELINE_VERSION_V1],
        )?;
        let n_buf = d.seq_len()?;
        let mut buffered = Vec::with_capacity(n_buf);
        for _ in 0..n_buf {
            buffered.push(d.event()?);
        }
        let events_pulled = d.u64()?;
        let max_seen = if d.some()? { Some(Ts(d.u64()?)) } else { None };
        let mut counters = [0u64; 4];
        for c in &mut counters {
            *c = d.u64()?;
        }
        let elapsed = if version >= PIPELINE_VERSION {
            Duration::from_nanos(d.u64()?)
        } else {
            Duration::ZERO
        };
        d.expect_end()?;
        Ok(PipelineCheckpoint {
            workers,
            engines,
            buffered,
            events_pulled,
            max_seen,
            counters,
            elapsed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamlet_types::EventTypeId;

    #[test]
    fn container_round_trips() {
        let ck = PipelineCheckpoint {
            workers: 2,
            engines: vec![vec![1, 2, 3], vec![4]],
            buffered: vec![Event::new(Ts(9), EventTypeId(1), vec![])],
            events_pulled: 42,
            max_seen: Some(Ts(11)),
            counters: [42, 1, 40, 7],
            elapsed: Duration::from_millis(1234),
        };
        let blob = ck.to_bytes();
        let back = PipelineCheckpoint::from_bytes(&blob).unwrap();
        assert_eq!(back.workers(), 2);
        assert_eq!(back.engines, ck.engines);
        assert_eq!(back.buffered, ck.buffered);
        assert_eq!(back.events_pulled(), 42);
        assert_eq!(back.buffered_len(), 1);
        assert_eq!(back.engine_bytes(), 4);
        assert_eq!(back.max_seen, Some(Ts(11)));
        assert_eq!(back.counters, ck.counters);
        assert_eq!(back.elapsed(), Duration::from_millis(1234));
    }

    /// A v1 blob (no elapsed tail) still restores, with elapsed zero.
    #[test]
    fn v1_blob_restores_with_zero_elapsed() {
        let ck = PipelineCheckpoint {
            workers: 1,
            engines: vec![vec![7]],
            buffered: vec![],
            events_pulled: 3,
            max_seen: None,
            counters: [3, 0, 3, 1],
            elapsed: Duration::from_secs(5),
        };
        // Re-encode by hand as v1: same payload minus the elapsed tail.
        let mut e = hamlet_core::checkpoint::container_header(
            &PIPELINE_MAGIC,
            PIPELINE_VERSION_V1,
            ck.workers,
            &ck.engines,
        );
        e.usize(0);
        e.u64(ck.events_pulled);
        e.some(false);
        for c in ck.counters {
            e.u64(c);
        }
        let blob = e.finish();
        let back = PipelineCheckpoint::from_bytes(&blob).unwrap();
        assert_eq!(back.counters, ck.counters);
        assert_eq!(back.elapsed(), Duration::ZERO);
    }

    #[test]
    fn garbage_and_truncation_fail_cleanly() {
        assert!(matches!(
            PipelineCheckpoint::from_bytes(b"????"),
            Err(CheckpointError::BadMagic)
        ));
        let ck = PipelineCheckpoint {
            workers: 1,
            engines: vec![vec![]],
            buffered: vec![],
            events_pulled: 0,
            max_seen: None,
            counters: [0; 4],
            elapsed: Duration::ZERO,
        };
        let blob = ck.to_bytes();
        assert!(PipelineCheckpoint::from_bytes(&blob[..blob.len() - 1]).is_err());
    }
}
