//! Out-of-order ingestion: watermark generation and the reorder stage.
//!
//! The pipeline accepts streams where an event may trail the running
//! timestamp maximum by a bounded amount (the bounded-delay network
//! model — `hamlet_stream::bounded_delay_shuffle` produces exactly such
//! streams). A [`WatermarkPolicy`] turns arrivals into a monotone
//! event-time watermark; the [`ReorderBuffer`] holds events back until
//! the watermark passes them and releases them in timestamp order. If
//! the stream's true lateness is within the policy's slack, the engine
//! downstream sees a perfectly in-order stream — which is what makes the
//! online pipeline's output provably identical to an offline run
//! (`tests/pipeline_equivalence.rs`).
//!
//! Events that arrive *behind* the watermark are late: they are counted,
//! handed to the dead-letter hook, and never fed to the engine (whose own
//! [`late_skips`](hamlet_core::EngineStats::late_skips) guard is the
//! second line of defense).

use hamlet_types::{Event, Ts};
use std::collections::BTreeMap;
use std::time::Instant;

/// Generates the pipeline's event-time watermark from arrivals.
///
/// The contract: the watermark is monotone, and after observing an
/// arrival every buffered event with `time <= watermark` may be released
/// in timestamp order — the policy promises no future on-time arrival
/// will carry a smaller timestamp.
pub trait WatermarkPolicy: Send {
    /// Observes an arriving event time; returns the watermark after it.
    fn observe(&mut self, t: Ts) -> Ts;

    /// Current watermark (`None` before the first observation).
    fn current(&self) -> Option<Ts>;
}

/// Bounded-lateness watermark: `max observed time − slack` ticks.
///
/// `slack = 0` degenerates to a strictly-ascending policy (every event
/// is released immediately; any out-of-order event is late) — the right
/// setting for in-order streams, adding zero reorder latency.
#[derive(Clone, Debug)]
pub struct BoundedLateness {
    slack: u64,
    max_seen: Option<Ts>,
}

impl BoundedLateness {
    /// Tolerates events up to `slack` ticks behind the stream maximum.
    pub fn new(slack: u64) -> Self {
        BoundedLateness {
            slack,
            max_seen: None,
        }
    }

    /// The configured slack, in ticks.
    pub fn slack(&self) -> u64 {
        self.slack
    }
}

impl WatermarkPolicy for BoundedLateness {
    fn observe(&mut self, t: Ts) -> Ts {
        let max = match self.max_seen {
            Some(m) if m >= t => m,
            _ => {
                self.max_seen = Some(t);
                t
            }
        };
        Ts(max.ticks().saturating_sub(self.slack))
    }

    fn current(&self) -> Option<Ts> {
        self.max_seen
            .map(|m| Ts(m.ticks().saturating_sub(self.slack)))
    }
}

/// Buffers out-of-order events until the watermark passes them, then
/// releases them in `(timestamp, arrival)` order.
///
/// Arrival order breaks timestamp ties, so a stream whose ties were
/// never reordered in flight (the bounded-delay model) is reconstructed
/// *exactly* — byte-identical inputs to the engine, not merely
/// time-sorted ones.
#[derive(Default)]
pub struct ReorderBuffer {
    /// `(event time, arrival sequence) → (event, ingest stamp)`.
    held: BTreeMap<(u64, u64), (Event, Instant)>,
    seq: u64,
}

impl ReorderBuffer {
    /// New empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffers one event with its ingest stamp (for end-to-end latency).
    pub fn push(&mut self, e: Event, arrival: Instant) {
        let key = (e.time.ticks(), self.seq);
        self.seq += 1;
        self.held.insert(key, (e, arrival));
    }

    /// Releases every buffered event with `time <= watermark`, in
    /// `(time, arrival)` order.
    pub fn release(&mut self, watermark: Ts) -> Vec<(Event, Instant)> {
        let wm = watermark.ticks();
        if wm == u64::MAX {
            return self.drain();
        }
        // Everything strictly after the watermark stays buffered.
        let rest = self.held.split_off(&(wm + 1, 0));
        let released = std::mem::replace(&mut self.held, rest);
        released.into_values().collect()
    }

    /// Releases everything (end of stream / drain), in order.
    pub fn drain(&mut self) -> Vec<(Event, Instant)> {
        std::mem::take(&mut self.held).into_values().collect()
    }

    /// The buffered events in release order, without draining them —
    /// what a checkpoint cut freezes while the pipeline keeps running.
    pub fn contents(&self) -> Vec<Event> {
        self.held.values().map(|(e, _)| e.clone()).collect()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.held.len()
    }

    /// True iff nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.held.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamlet_types::EventTypeId;

    fn ev(t: u64) -> Event {
        Event::new(Ts(t), EventTypeId(0), vec![])
    }

    #[test]
    fn bounded_lateness_tracks_max_minus_slack() {
        let mut p = BoundedLateness::new(5);
        assert_eq!(p.current(), None);
        assert_eq!(p.observe(Ts(3)), Ts(0)); // saturates below zero
        assert_eq!(p.observe(Ts(20)), Ts(15));
        // Out-of-order arrival does not rewind the watermark.
        assert_eq!(p.observe(Ts(10)), Ts(15));
        assert_eq!(p.current(), Some(Ts(15)));
        assert_eq!(p.slack(), 5);
    }

    #[test]
    fn zero_slack_is_ascending() {
        let mut p = BoundedLateness::new(0);
        assert_eq!(p.observe(Ts(7)), Ts(7));
        assert_eq!(p.observe(Ts(4)), Ts(7));
    }

    #[test]
    fn reorder_releases_in_time_order() {
        let mut b = ReorderBuffer::new();
        let now = Instant::now();
        for t in [5u64, 3, 8, 3, 1] {
            b.push(ev(t), now);
        }
        assert_eq!(b.len(), 5);
        let out = b.release(Ts(4));
        let times: Vec<u64> = out.iter().map(|(e, _)| e.time.ticks()).collect();
        assert_eq!(times, vec![1, 3, 3], "sorted, ties in arrival order");
        assert_eq!(b.len(), 2);
        let rest = b.drain();
        assert_eq!(
            rest.iter().map(|(e, _)| e.time.ticks()).collect::<Vec<_>>(),
            vec![5, 8]
        );
        assert!(b.is_empty());
    }

    #[test]
    fn ties_preserve_arrival_order() {
        let mut b = ReorderBuffer::new();
        let now = Instant::now();
        let mut tagged = Vec::new();
        for i in 0..10u64 {
            let mut e = ev(4);
            e.attrs = vec![hamlet_types::AttrValue::Int(i as i64)];
            tagged.push(e.clone());
            b.push(e, now);
        }
        let out = b.release(Ts(4));
        assert_eq!(
            out.into_iter().map(|(e, _)| e).collect::<Vec<_>>(),
            tagged,
            "equal timestamps must come back in push order"
        );
    }

    #[test]
    fn max_watermark_drains_everything() {
        let mut b = ReorderBuffer::new();
        b.push(ev(u64::MAX), Instant::now());
        b.push(ev(2), Instant::now());
        let out = b.release(Ts(u64::MAX));
        assert_eq!(out.len(), 2);
        assert!(b.is_empty());
    }
}
