//! Event sources: where a live pipeline's events come from.
//!
//! A [`Source`] is a pull-based, possibly unbounded supplier of events.
//! The pipeline's ingest thread owns it and pulls one event at a time;
//! pulling stops when the source ends ([`Source::next_event`] returns
//! `None`) or the pipeline is drained. Because the ingest thread feeds
//! *bounded* channels, a source is naturally backpressured: when the
//! engine falls behind, `next_event` simply is not called — a paced
//! source (e.g. [`RateLimitedSource`]) then measures real queueing
//! latency instead of buffering the world.

use hamlet_types::Event;
use std::time::{Duration, Instant};

/// An unbounded (or finite) supplier of stream events.
///
/// Implementations may block inside [`next_event`](Self::next_event)
/// (pacing, polling an external feed); the pipeline treats a `None` as
/// end-of-stream and begins its drain.
pub trait Source: Send {
    /// The next event, or `None` at end of stream.
    fn next_event(&mut self) -> Option<Event>;
}

/// Replays a pre-materialized stream — the adapter that connects the
/// `hamlet-stream` generators (or any recorded trace) to the pipeline.
///
/// ```
/// use hamlet_pipeline::{ReplaySource, Source};
/// use hamlet_types::{Event, Ts, EventTypeId};
/// let mut s = ReplaySource::new(vec![Event::new(Ts(0), EventTypeId(0), vec![])]);
/// assert!(s.next_event().is_some());
/// assert!(s.next_event().is_none());
/// ```
pub struct ReplaySource {
    events: std::vec::IntoIter<Event>,
}

impl ReplaySource {
    /// Replays `events` in order.
    pub fn new(events: Vec<Event>) -> Self {
        ReplaySource {
            events: events.into_iter(),
        }
    }
}

impl Source for ReplaySource {
    fn next_event(&mut self) -> Option<Event> {
        self.events.next()
    }
}

/// Paces an inner source to a sustained offered rate (events per second
/// of *wall-clock* time) — the driver for latency-under-load experiments
/// (`fig_latency`): below engine capacity the pipeline's p99 stays flat,
/// at capacity the bounded queues fill and latency measures backpressure.
///
/// Pacing is absolute, not inter-event: event `i` is released no earlier
/// than `start + i/rate`, so a slow consumer does not lower the offered
/// rate of later events (the source "catches up" — an open-loop load
/// model).
pub struct RateLimitedSource<S> {
    inner: S,
    events_per_sec: f64,
    started: Option<Instant>,
    emitted: u64,
}

impl<S: Source> RateLimitedSource<S> {
    /// Paces `inner` to `events_per_sec` (must be positive and finite).
    pub fn new(inner: S, events_per_sec: f64) -> Self {
        assert!(
            events_per_sec.is_finite() && events_per_sec > 0.0,
            "offered rate must be positive and finite"
        );
        RateLimitedSource {
            inner,
            events_per_sec,
            started: None,
            emitted: 0,
        }
    }
}

impl<S: Source> Source for RateLimitedSource<S> {
    fn next_event(&mut self) -> Option<Event> {
        let e = self.inner.next_event()?;
        // hamlet-lint: allow(wallclock) -- the paced source's purpose is metering real time; event timestamps are untouched
        let start = *self.started.get_or_insert_with(Instant::now);
        let target = start + Duration::from_secs_f64(self.emitted as f64 / self.events_per_sec);
        loop {
            // hamlet-lint: allow(wallclock) -- the paced source's purpose is metering real time; event timestamps are untouched
            let now = Instant::now();
            if now >= target {
                break;
            }
            let left = target - now;
            if left > Duration::from_micros(200) {
                // Coarse sleep, then spin the tail for sub-ms precision.
                std::thread::sleep(left - Duration::from_micros(100));
            } else {
                std::hint::spin_loop();
            }
        }
        self.emitted += 1;
        Some(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamlet_types::{EventTypeId, Ts};

    fn evs(n: u64) -> Vec<Event> {
        (0..n)
            .map(|t| Event::new(Ts(t), EventTypeId(0), vec![]))
            .collect()
    }

    #[test]
    fn replay_yields_all_in_order() {
        let mut s = ReplaySource::new(evs(5));
        let mut got = Vec::new();
        while let Some(e) = s.next_event() {
            got.push(e.time.ticks());
        }
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert!(s.next_event().is_none(), "stays exhausted");
    }

    #[test]
    fn rate_limit_paces_wall_clock() {
        // 200 events at 10k/s must take >= 20ms minus the first event's
        // free release; generous upper bound for noisy hosts.
        let mut s = RateLimitedSource::new(ReplaySource::new(evs(200)), 10_000.0);
        let t0 = Instant::now();
        let mut n = 0;
        while s.next_event().is_some() {
            n += 1;
        }
        let wall = t0.elapsed();
        assert_eq!(n, 200);
        assert!(wall >= Duration::from_millis(18), "too fast: {wall:?}");
        assert!(wall < Duration::from_secs(5), "too slow: {wall:?}");
    }

    #[test]
    #[should_panic(expected = "offered rate must be positive")]
    fn zero_rate_rejected() {
        let _ = RateLimitedSource::new(ReplaySource::new(vec![]), 0.0);
    }
}
