//! Result sinks: where a live pipeline's window results go.
//!
//! A [`Sink`] runs on its own thread behind a bounded channel, so a slow
//! sink backpressures the workers (and transitively the source) instead
//! of buffering unbounded results. The sink is handed back by
//! [`PipelineHandle::drain`](crate::PipelineHandle::drain), so whatever
//! it accumulated is available after shutdown.

use hamlet_core::executor::WindowResult;

/// Consumes batches of window results as the pipeline emits them.
pub trait Sink: Send {
    /// Accepts one batch of results (never empty). Results of one engine
    /// arrive in emission order; batches from different shard workers
    /// interleave arbitrarily.
    fn accept(&mut self, batch: Vec<WindowResult>);
}

/// Collects every result in arrival order — the sink the equivalence
/// tests drain and compare against an offline run.
#[derive(Default)]
pub struct VecSink {
    /// All accepted results.
    pub results: Vec<WindowResult>,
}

impl VecSink {
    /// New empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Sink for VecSink {
    fn accept(&mut self, batch: Vec<WindowResult>) {
        self.results.extend(batch);
    }
}

/// Counts results without retaining them — for sustained-load runs where
/// retaining every window would distort the memory story.
#[derive(Default)]
pub struct CountingSink {
    /// Results accepted so far.
    pub count: u64,
}

impl CountingSink {
    /// New zeroed sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Sink for CountingSink {
    fn accept(&mut self, batch: Vec<WindowResult>) {
        self.count += batch.len() as u64;
    }
}

/// Discards everything (pure engine benchmarking).
#[derive(Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn accept(&mut self, _batch: Vec<WindowResult>) {}
}

/// Any closure over result batches is a sink.
impl<F: FnMut(Vec<WindowResult>) + Send> Sink for F {
    fn accept(&mut self, batch: Vec<WindowResult>) {
        self(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamlet_core::executor::AggValue;
    use hamlet_query::QueryId;
    use hamlet_types::{GroupKey, Ts};

    fn row(start: u64) -> WindowResult {
        WindowResult {
            query: QueryId(1),
            group_key: GroupKey::empty(),
            window_start: Ts(start),
            value: AggValue::Count(start),
        }
    }

    #[test]
    fn sinks_accumulate() {
        let mut v = VecSink::new();
        v.accept(vec![row(1), row(2)]);
        v.accept(vec![row(3)]);
        assert_eq!(v.results.len(), 3);

        let mut c = CountingSink::new();
        c.accept(vec![row(1), row(2)]);
        assert_eq!(c.count, 2);

        NullSink.accept(vec![row(9)]);

        let mut seen = 0usize;
        {
            let mut f = |batch: Vec<WindowResult>| seen += batch.len();
            Sink::accept(&mut f, vec![row(1)]);
        }
        assert_eq!(seen, 1);
    }
}
