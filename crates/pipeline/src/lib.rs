//! # hamlet-pipeline
//!
//! The **online streaming runtime** for the HAMLET engine: long-running
//! pipelines that connect unbounded [`Source`]s through bounded-channel
//! stages — with real backpressure — to shard-owning engines and a
//! result [`Sink`], while a [`PipelineHandle`] serves live
//! [`MetricsSnapshot`]s (throughput, per-stage queue depths, p50/p99
//! latency) and performs graceful, `flush()`-equivalent drains.
//!
//! The paper's setting is *online* event trend aggregation over bursty
//! streams; the offline harnesses (`HamletEngine::process` over a slice,
//! `ParallelEngine::run`) measure throughput but cannot measure latency
//! under sustained load or tolerate out-of-order delivery. This crate
//! adds that missing runtime layer:
//!
//! * **Sources** ([`Source`]) — unbounded pull-based feeds: replay a
//!   generated stream ([`ReplaySource`]), pace it to an offered rate
//!   ([`RateLimitedSource`]), or implement the trait over a live feed.
//! * **Out-of-order ingestion** ([`WatermarkPolicy`], `ReorderBuffer`) —
//!   a bounded-lateness watermark holds events back just long enough to
//!   restore timestamp order; events behind the watermark are counted
//!   and dead-lettered, never fed to the engine.
//! * **Backpressure** — every stage boundary is a bounded
//!   `sync_channel`; a slow engine or sink stalls the source instead of
//!   buffering the stream.
//! * **Sharded workers** — `workers > 1` reuses the engine's
//!   `shard_mask` routing *online*: per-shard channels, each worker
//!   owning the partitions that hash to it, same bit-identical merged
//!   results as the offline parallel path.
//! * **Drain ≡ flush** — [`PipelineHandle::drain`] stops the source,
//!   releases the reorder buffer, flushes every engine and hands back
//!   the sink: for an in-order stream the drained output is
//!   byte-identical to offline `process`+`flush`
//!   (`tests/pipeline_equivalence.rs`).
//! * **Runtime query churn** — queries can be added and removed while
//!   the pipeline runs, either on a schedule
//!   ([`PipelineBuilder::churn_at`], applied when the watermark first
//!   reaches the trigger time) or live
//!   ([`PipelineHandle::add_query`] / [`remove_query`](PipelineHandle::remove_query)).
//!   Every shard engine re-plans only the touched share groups at the
//!   same watermark barrier, so no result is dropped or duplicated.
//!
//! ```
//! use hamlet_pipeline::{Pipeline, ReplaySource, VecSink, BoundedLateness};
//! use hamlet_core::EngineConfig;
//! use hamlet_query::parse_query;
//! use hamlet_types::{EventBuilder, TypeRegistry};
//! use std::sync::Arc;
//!
//! let mut reg = TypeRegistry::new();
//! let a = reg.register("A", &[]);
//! let b = reg.register("B", &[]);
//! let reg = Arc::new(reg);
//! let q = parse_query(&reg, 1, "RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 10").unwrap();
//! let events = vec![
//!     EventBuilder::new(&reg, a, 0).build(),
//!     EventBuilder::new(&reg, b, 1).build(),
//! ];
//! let handle = Pipeline::builder(reg, vec![q])
//!     .watermark(BoundedLateness::new(0))
//!     .spawn(ReplaySource::new(events), VecSink::new())
//!     .unwrap();
//! let report = handle.drain();
//! assert_eq!(report.sink.results.len(), 1);
//! assert_eq!(report.events, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod sink;
mod source;
mod stats;
mod watermark;

pub use checkpoint::{PipelineCheckpoint, PIPELINE_MAGIC, PIPELINE_VERSION};
pub use sink::{CountingSink, NullSink, Sink, VecSink};
pub use source::{RateLimitedSource, ReplaySource, Source};
pub use stats::{LatencySummary, MetricsSnapshot};
pub use watermark::{BoundedLateness, ReorderBuffer, WatermarkPolicy};

use hamlet_core::checkpoint::CheckpointError;
use hamlet_core::executor::{
    checkpoint_epoch, ChurnError, ChurnOp, EngineConfig, EngineError, EngineStats, HamletEngine,
    WindowResult,
};
use hamlet_core::{
    Checkpoint, CheckpointStore, CutKind, GroupMetrics, LatencyHistogram, LatencyRecorder,
    Snapshot, Span, SpanRecorder, Stage,
};
use hamlet_obs::merge_group_metrics;
use hamlet_query::{Query, QueryId};
use hamlet_types::{Event, Ts, TypeRegistry};
use stats::SharedStats;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default events per routed batch (small: the pipeline is latency-first;
/// the offline `ParallelEngine` uses 1024 for pure throughput).
pub const DEFAULT_BATCH: usize = 256;
/// Default bounded depth of each stage channel, in batches.
pub const DEFAULT_CHANNEL_CAPACITY: usize = 8;

/// A routed unit of work: the event plus its ingest stamp (for
/// end-to-end latency accounting).
type Routed = (Event, Instant);
/// What flows over a worker's event channel: routed batches, or a churn
/// op riding the same FIFO — so every worker applies it at exactly the
/// same stream cut (after everything the ingest stage routed before it,
/// before everything after).
enum WorkerMsg {
    Batch(Vec<Routed>),
    Churn(ChurnOp),
    /// A coordinated checkpoint cut riding the same FIFO: the worker
    /// serializes its engine (full or delta, per `kind`) at exactly this
    /// stream position and replies with `(shard, frame)`.
    Cut {
        kind: CutKind,
        reply: mpsc::Sender<(usize, Result<Checkpoint, CheckpointError>)>,
    },
}
/// A live churn request from a [`PipelineHandle`] to the ingest stage;
/// the ack carries the post-churn workload epoch (or the rejection).
struct ChurnRequest {
    op: ChurnOp,
    ack: mpsc::Sender<Result<u64, ChurnError>>,
}
/// An on-demand [`Snapshot::cut`] request from a [`PipelineHandle`] to
/// the ingest stage; applied at the next barrier between source events.
struct CutRequest {
    kind: CutKind,
    ack: mpsc::Sender<Result<Checkpoint, CheckpointError>>,
}
/// What one worker thread returns at shutdown; the final slot carries
/// the shard's serialized engine state when the run ended at a
/// checkpoint barrier instead of a flush.
type WorkerOutput = (
    EngineStats,
    LatencyRecorder,
    usize,
    Vec<GroupMetrics>,
    Option<Vec<u8>>,
);

/// How a worker ends once its event channel closes: drain every open
/// window into the sink, or freeze the engine state into a checkpoint.
/// Sent over a per-worker control channel by
/// [`PipelineHandle::drain`] / [`PipelineHandle::checkpoint`], so the
/// choice is explicit and can never race with a source ending early.
#[derive(Copy, Clone)]
enum WorkerEnd {
    Flush,
    Checkpoint,
}

/// What the ingest thread hands back when it stops: the reorder-buffer
/// remainder (only kept on a checkpoint — a drain releases it
/// downstream instead) and the maximum event time observed.
struct IngestExit {
    buffered: Vec<Event>,
    max_seen: Option<Ts>,
}

/// Why a [`PipelineBuilder::resume`] failed.
#[derive(Debug)]
pub enum ResumeError {
    /// The workload failed to compile (same errors as a fresh spawn).
    Engine(EngineError),
    /// The checkpoint is invalid or does not match this pipeline's
    /// workload / worker count.
    Checkpoint(CheckpointError),
}

impl fmt::Display for ResumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResumeError::Engine(e) => write!(f, "engine: {e}"),
            ResumeError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
        }
    }
}

impl std::error::Error for ResumeError {}

/// Why a live [`PipelineHandle::add_query`] /
/// [`PipelineHandle::remove_query`] call failed.
#[derive(Debug)]
pub enum PipelineChurnError {
    /// The op was rejected (duplicate/unknown id or a non-compiling
    /// post-churn workload); the running workload is unchanged.
    Rejected(ChurnError),
    /// The pipeline is no longer ingesting: the source ended,
    /// [`PipelineHandle::stop`] was called, or a drain/checkpoint is in
    /// progress. The op was not applied.
    Stopped,
}

impl fmt::Display for PipelineChurnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineChurnError::Rejected(e) => write!(f, "rejected: {e}"),
            PipelineChurnError::Stopped => write!(f, "the pipeline has stopped ingesting"),
        }
    }
}

impl std::error::Error for PipelineChurnError {}

/// Dead-letter hook: invoked (on the ingest thread) with every late
/// event the pipeline drops.
pub type LateHook = Box<dyn FnMut(Event) + Send>;

/// Namespace for [`Pipeline::builder`].
pub struct Pipeline;

impl Pipeline {
    /// Starts configuring a pipeline over a workload.
    pub fn builder(reg: Arc<TypeRegistry>, queries: Vec<Query>) -> PipelineBuilder {
        PipelineBuilder {
            reg,
            queries,
            engine_cfg: EngineConfig::default(),
            workers: 1,
            batch: DEFAULT_BATCH,
            channel_capacity: DEFAULT_CHANNEL_CAPACITY,
            policy: Box::new(BoundedLateness::new(0)),
            on_late: None,
            churn_at: Vec::new(),
            trace_capacity: 0,
            store: None,
            checkpoint_every: None,
            compact_every: DEFAULT_COMPACT_EVERY,
        }
    }
}

/// Default compaction cadence: every this-many cadence cuts, the cut is
/// promoted to a full base (compacting the store's chain) instead of a
/// delta.
pub const DEFAULT_COMPACT_EVERY: u64 = 8;

/// Configures and spawns a [`PipelineHandle`].
pub struct PipelineBuilder {
    reg: Arc<TypeRegistry>,
    queries: Vec<Query>,
    engine_cfg: EngineConfig,
    workers: u32,
    batch: usize,
    channel_capacity: usize,
    policy: Box<dyn WatermarkPolicy>,
    on_late: Option<LateHook>,
    churn_at: Vec<(Ts, ChurnOp)>,
    trace_capacity: usize,
    store: Option<Arc<dyn CheckpointStore>>,
    checkpoint_every: Option<u64>,
    compact_every: u64,
}

impl PipelineBuilder {
    /// Engine configuration for every worker (the `shard` field is
    /// overwritten per worker).
    pub fn engine_config(mut self, cfg: EngineConfig) -> Self {
        self.engine_cfg = cfg;
        self
    }

    /// Number of shard-owning workers, `1..=64`. With 1 worker events
    /// flow to a single engine; with more, the router sends each event
    /// only to the shards owning one of its partition keys.
    pub fn workers(mut self, workers: u32) -> Self {
        assert!(workers >= 1, "at least one worker");
        assert!(workers <= 64, "at most 64 workers (shard mask is a u64)");
        self.workers = workers;
        self
    }

    /// Maximum events per routed batch (latency/throughput knob).
    pub fn batch(mut self, events: usize) -> Self {
        assert!(events >= 1, "batch size must be positive");
        self.batch = events;
        self
    }

    /// Bounded depth of each stage channel, in batches — the knob that
    /// trades queueing latency for burst absorption.
    pub fn channel_capacity(mut self, batches: usize) -> Self {
        assert!(batches >= 1, "channel capacity must be positive");
        self.channel_capacity = batches;
        self
    }

    /// Watermark policy for out-of-order ingestion (default:
    /// `BoundedLateness::new(0)`, i.e. strictly ascending).
    pub fn watermark(mut self, policy: impl WatermarkPolicy + 'static) -> Self {
        self.policy = Box::new(policy);
        self
    }

    /// Dead-letter hook for late events (called on the ingest thread).
    pub fn on_late(mut self, hook: impl FnMut(Event) + Send + 'static) -> Self {
        self.on_late = Some(Box::new(hook));
        self
    }

    /// Enables stage span tracing: every pipeline stage (ingest, reorder
    /// release, route, per-worker batch processing, expiry drains, flush,
    /// checkpoint pause, churn barriers) records [`Span`]s into per-lane
    /// rings holding at most `capacity` spans each (lane 0 = ingest,
    /// lanes 1.. = workers). Memory is bounded: full rings drop their
    /// oldest span and count it in
    /// [`MetricsSnapshot::dropped_spans`]. `capacity` 0 (the default)
    /// disables tracing entirely — the recorder then never reads the
    /// clock, so an untraced pipeline pays only a branch per stage.
    /// Export with [`PipelineHandle::export_chrome_trace`] or read them
    /// from [`PipelineReport::spans`].
    pub fn trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// The [`CheckpointStore`] cadence cuts and on-demand
    /// [`Snapshot::cut`]s append to — base/delta chain management
    /// (linkage validation, compaction GC) is the store's job. Required
    /// when [`checkpoint_every`](Self::checkpoint_every) is set;
    /// [`Pipeline::builder`]`(…).resume_from` reads the same store back.
    pub fn checkpoint_store(mut self, store: Arc<dyn CheckpointStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Enables periodic delta checkpoints: every `released` events
    /// released past the reorder stage, the ingest thread runs a
    /// **drain-barrier cut** — every partial batch is flushed down the
    /// worker FIFOs, each shard engine serializes the state that changed
    /// since the previous cut (a delta frame; periodically a full base,
    /// see [`compact_every`](Self::compact_every)), and the assembled
    /// container is appended to the configured
    /// [`checkpoint_store`](Self::checkpoint_store). The pipeline keeps
    /// running; the pause is the flush + serialize time, visible as
    /// `checkpoint_pause` spans and the
    /// [`MetricsSnapshot::checkpoints`] counters.
    ///
    /// Recovery: [`resume_from`](Self::resume_from) replays base +
    /// deltas and repositions the source; results emitted between the
    /// last completed cut and the crash are re-emitted on resume
    /// (at-least-once across a crash — a run that resumes from a cut it
    /// took itself never duplicates).
    pub fn checkpoint_every(mut self, released: u64) -> Self {
        assert!(released >= 1, "checkpoint cadence must be positive");
        self.checkpoint_every = Some(released);
        self
    }

    /// Every `cuts`-th cadence cut is promoted from a delta to a full
    /// base, compacting the store's chain (default
    /// [`DEFAULT_COMPACT_EVERY`]). `1` makes every cut a full
    /// checkpoint.
    pub fn compact_every(mut self, cuts: u64) -> Self {
        assert!(cuts >= 1, "compaction cadence must be positive");
        self.compact_every = cuts;
        self
    }

    /// Schedules churn ops in event time: each op is applied at the
    /// **watermark barrier** where the watermark first reaches its
    /// trigger — events up to and including the trigger time are
    /// processed under the old workload, everything after under the new.
    /// The whole schedule is validated at spawn (duplicate/unknown ids,
    /// every intermediate workload must compile), so a bad script fails
    /// synchronously instead of inside a thread. Ops whose trigger the
    /// stream never reaches are discarded at drain. Repeated calls
    /// append; the merged schedule is applied in trigger order (ties in
    /// insertion order).
    ///
    /// ```
    /// use hamlet_core::ChurnOp;
    /// use hamlet_pipeline::{BoundedLateness, Pipeline, ReplaySource, VecSink};
    /// use hamlet_query::{parse_query, QueryId};
    /// use hamlet_types::{EventBuilder, Ts, TypeRegistry};
    /// use std::sync::Arc;
    ///
    /// let mut reg = TypeRegistry::new();
    /// let a = reg.register("A", &[]);
    /// let b = reg.register("B", &[]);
    /// let reg = Arc::new(reg);
    /// let q1 = parse_query(&reg, 1, "RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 10").unwrap();
    /// let q2 = parse_query(&reg, 2, "RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 20").unwrap();
    /// let events: Vec<_> = (0..30)
    ///     .map(|t| EventBuilder::new(&reg, if t % 3 == 0 { a } else { b }, t).build())
    ///     .collect();
    /// let handle = Pipeline::builder(reg, vec![q1])
    ///     // q2 joins once the watermark passes t=15; earlier events
    ///     // are processed under the original workload.
    ///     .churn_at(vec![(Ts(15), ChurnOp::Add(q2))])
    ///     .watermark(BoundedLateness::new(0))
    ///     .spawn(ReplaySource::new(events), VecSink::new())
    ///     .unwrap();
    /// let report = handle.drain();
    /// assert!(report.sink.results.iter().any(|r| r.query == QueryId(2)));
    /// ```
    pub fn churn_at(mut self, schedule: Vec<(Ts, ChurnOp)>) -> Self {
        self.churn_at.extend(schedule);
        self.churn_at.sort_by_key(|(t, _)| *t); // stable: ties keep insertion order
        self
    }

    /// Validates the workload, builds every engine, and spawns the
    /// pipeline threads: `ingest → [workers] → sink`, every arrow a
    /// bounded channel. Construction errors surface here, not inside
    /// threads.
    pub fn spawn<Src, S>(self, source: Src, sink: S) -> Result<PipelineHandle<S>, EngineError>
    where
        Src: Source + 'static,
        S: Sink + 'static,
    {
        self.spawn_inner(source, sink, RestorePlan::Fresh)
            .map_err(|e| match e {
                ResumeError::Engine(err) => err,
                ResumeError::Checkpoint(_) => unreachable!("no checkpoint on a fresh spawn"),
            })
    }

    /// Restores a pipeline from a [`PipelineCheckpoint`] and continues
    /// it: every shard engine is rebuilt and restored, the frozen
    /// reorder-buffer events are re-injected ahead of the source, the
    /// watermark policy is re-seeded with the checkpointed stream
    /// maximum, and the metrics counters continue from where they
    /// stopped.
    ///
    /// The builder must be configured like the original pipeline (same
    /// workload, worker count, watermark slack); `source` must be
    /// positioned *after* the first
    /// [`events_pulled`](PipelineCheckpoint::events_pulled) events of
    /// the original stream. Continuing to the end of the stream and
    /// draining yields byte-identical output to a run that never
    /// stopped (`tests/checkpoint_equivalence.rs`).
    ///
    /// Deprecated: this is the raw single-blob path kept for existing
    /// callers. New code should persist cuts through a
    /// [`CheckpointStore`] ([`checkpoint_store`](Self::checkpoint_store)
    /// \+ [`checkpoint_every`](Self::checkpoint_every) or
    /// [`Snapshot::cut`] on the handle) and recover with
    /// [`resume_from`](Self::resume_from), which also replays
    /// incremental delta chains.
    pub fn resume<Src, S>(
        self,
        checkpoint: &PipelineCheckpoint,
        source: Src,
        sink: S,
    ) -> Result<PipelineHandle<S>, ResumeError>
    where
        Src: Source + 'static,
        S: Sink + 'static,
    {
        if checkpoint.workers != self.workers {
            return Err(ResumeError::Checkpoint(CheckpointError::WorkloadMismatch(
                format!(
                    "checkpoint taken under {} workers, resuming under {}",
                    checkpoint.workers, self.workers
                ),
            )));
        }
        self.spawn_inner(source, sink, RestorePlan::Whole(checkpoint))
    }

    /// Restores a pipeline from the base + delta chain held in a
    /// [`CheckpointStore`] and continues it: the chain's last base is
    /// restored into every shard engine, the delta frames are replayed
    /// in order on top, the frozen reorder-buffer events of the **last**
    /// record are re-injected ahead of the source, and the metrics
    /// counters continue from that record.
    ///
    /// The builder must be configured like the original pipeline (same
    /// workload, worker count, watermark slack); `source` must be
    /// positioned *after* the first
    /// [`events_pulled`](PipelineCheckpoint::events_pulled) events of
    /// the original stream, where `events_pulled` is read from the
    /// chain's newest record (decode it with
    /// [`PipelineCheckpoint::from_bytes`] over
    /// [`Checkpoint::as_bytes`], or track the cursor out of band).
    /// Replaying the remainder of the stream and draining emits exactly
    /// the results the original run had not yet emitted at the cut —
    /// byte-identical to the uninterrupted run's suffix
    /// (`tests/delta_checkpoint.rs`).
    ///
    /// An empty store is an error: recovery from nothing is a fresh
    /// [`spawn`](Self::spawn), and conflating the two would turn a
    /// mis-pointed store directory into silent data loss.
    pub fn resume_from<Src, S>(
        self,
        store: &dyn CheckpointStore,
        source: Src,
        sink: S,
    ) -> Result<PipelineHandle<S>, ResumeError>
    where
        Src: Source + 'static,
        S: Sink + 'static,
    {
        let chain = store.load_chain().map_err(ResumeError::Checkpoint)?;
        if chain.is_empty() {
            return Err(ResumeError::Checkpoint(CheckpointError::Corrupt(
                "the checkpoint store holds no records".into(),
            )));
        }
        let mut records = Vec::with_capacity(chain.len());
        for ck in &chain {
            let pc =
                PipelineCheckpoint::from_bytes(ck.as_bytes()).map_err(ResumeError::Checkpoint)?;
            if pc.workers != self.workers {
                return Err(ResumeError::Checkpoint(CheckpointError::WorkloadMismatch(
                    format!(
                        "checkpoint taken under {} workers, resuming under {}",
                        pc.workers, self.workers
                    ),
                )));
            }
            if pc.engines.len() != pc.workers as usize {
                return Err(ResumeError::Checkpoint(CheckpointError::Corrupt(format!(
                    "pipeline record carries {} shard frames for {} workers",
                    pc.engines.len(),
                    pc.workers
                ))));
            }
            records.push(pc);
        }
        self.spawn_inner(source, sink, RestorePlan::Chain(records))
    }

    fn spawn_inner<Src, S>(
        mut self,
        source: Src,
        sink: S,
        restore: RestorePlan<'_>,
    ) -> Result<PipelineHandle<S>, ResumeError>
    where
        Src: Source + 'static,
        S: Sink + 'static,
    {
        assert!(
            self.checkpoint_every.is_none() || self.store.is_some(),
            "checkpoint_every requires a checkpoint_store to append to"
        );
        // Re-seed the watermark policy before destructuring: the resumed
        // policy must never emit a watermark behind the one the
        // checkpointed pipeline already released events under.
        if let Some(ck) = restore.tail() {
            if let Some(max_seen) = ck.max_seen {
                let _ = self.policy.observe(max_seen);
            }
        }
        let PipelineBuilder {
            reg,
            queries,
            engine_cfg,
            workers,
            batch,
            channel_capacity,
            policy,
            on_late,
            churn_at,
            trace_capacity,
            store,
            checkpoint_every,
            compact_every,
        } = self;
        let n = workers as usize;

        // The probe configuration used to compile-check churned
        // workloads without shard filtering or metrics overhead.
        let mut probe_cfg = engine_cfg.clone();
        probe_cfg.shard = None;
        probe_cfg.track_latency = false;
        probe_cfg.mem_sample_every = 0;
        probe_cfg.obs = false;

        // Validate the whole churn schedule now: simulate the query-set
        // evolution and compile every intermediate workload, so workers
        // can never hit a churn failure mid-stream.
        {
            let mut sim = queries.clone();
            for (i, (_, op)) in churn_at.iter().enumerate() {
                let invalid = |e: ChurnError| {
                    ResumeError::Engine(EngineError::Churn(format!("entry {i}: {e}")))
                };
                match op {
                    ChurnOp::Add(q) => {
                        if sim.iter().any(|x| x.id == q.id) {
                            return Err(invalid(ChurnError::Duplicate(q.id)));
                        }
                        sim.push(q.clone());
                    }
                    ChurnOp::Remove(id) => {
                        if !sim.iter().any(|x| x.id == *id) {
                            return Err(invalid(ChurnError::Unknown(*id)));
                        }
                        sim.retain(|x| x.id != *id);
                    }
                }
                HamletEngine::new(reg.clone(), sim.clone(), probe_cfg.clone())
                    .map_err(ResumeError::Engine)?;
            }
        }

        // A checkpoint taken after churn carries the workload epoch in
        // every shard blob: all shards must agree (they churn at the same
        // barrier), and the resumed engines adopt it before restoring.
        let mut start_epoch = 0u64;
        if let RestorePlan::Whole(ck) = &restore {
            let mut agreed = None;
            for blob in &ck.engines {
                let e = checkpoint_epoch(blob).map_err(ResumeError::Checkpoint)?;
                match agreed {
                    None => agreed = Some(e),
                    Some(e0) if e0 != e => {
                        return Err(ResumeError::Checkpoint(CheckpointError::WorkloadMismatch(
                            format!("mixed workload epochs in pipeline checkpoint ({e0} vs {e})"),
                        )))
                    }
                    Some(_) => {}
                }
            }
            start_epoch = agreed.unwrap_or(0);
        }

        // Build (and restore) every engine up front so errors are
        // synchronous.
        let mut engines = Vec::with_capacity(n);
        for idx in 0..n {
            let mut cfg = engine_cfg.clone();
            cfg.shard = (workers > 1).then_some((idx as u32, workers));
            let mut eng = HamletEngine::new(reg.clone(), queries.clone(), cfg)
                .map_err(ResumeError::Engine)?;
            match &restore {
                RestorePlan::Fresh => {}
                RestorePlan::Whole(ck) => {
                    eng.set_epoch(start_epoch);
                    eng.restore(&ck.engines[idx])
                        .map_err(ResumeError::Checkpoint)?;
                }
                RestorePlan::Chain(records) => {
                    // This shard's frame from every record in the chain;
                    // the engine replays base + deltas (and adopts the
                    // chain's workload epoch) itself.
                    let mut shard_chain = Vec::with_capacity(records.len());
                    for pc in records {
                        shard_chain.push(
                            Checkpoint::from_bytes(pc.engines[idx].clone())
                                .map_err(ResumeError::Checkpoint)?,
                        );
                    }
                    eng.restore_chain(&shard_chain)
                        .map_err(ResumeError::Checkpoint)?;
                }
            }
            engines.push(eng);
        }
        if let RestorePlan::Chain(_) = &restore {
            // Chain restore derives each shard's epoch from its frames;
            // cross-shard agreement is validated after the fact.
            start_epoch = engines.first().map(HamletEngine::epoch).unwrap_or(0);
            if let Some(off) = engines.iter().find(|e| e.epoch() != start_epoch) {
                return Err(ResumeError::Checkpoint(CheckpointError::WorkloadMismatch(
                    format!(
                        "mixed workload epochs across restored shards ({start_epoch} vs {})",
                        off.epoch()
                    ),
                )));
            }
        }
        // The router only maps events to shards; it never processes.
        let router = if workers > 1 {
            Some(
                HamletEngine::new(reg.clone(), queries.clone(), probe_cfg.clone())
                    .map_err(ResumeError::Engine)?,
            )
        } else {
            None
        };

        // Lane 0 traces the ingest stage, lanes 1..=n the workers.
        let spans = Arc::new(if trace_capacity > 0 {
            SpanRecorder::new(n + 1, trace_capacity)
        } else {
            SpanRecorder::disabled()
        });
        let accum = restore
            .tail()
            .map(|ck| ck.elapsed)
            .unwrap_or(Duration::ZERO);
        let shared = Arc::new(SharedStats::new(n, accum, spans.clone()));
        shared.epoch.store(start_epoch, Ordering::Relaxed);
        let stop = Arc::new(AtomicBool::new(false));

        // Metrics continuity across a restore: the counters pick up where
        // the checkpointed pipeline stopped.
        let mut buffer = ReorderBuffer::new();
        let mut max_seen = None;
        if let Some(ck) = restore.tail() {
            let [ingested, late, released, results] = ck.counters;
            shared.ingested.store(ingested, Ordering::Relaxed);
            shared.late.store(late, Ordering::Relaxed);
            shared.released.store(released, Ordering::Relaxed);
            shared.results.store(results, Ordering::Relaxed);
            if let Some(t) = ck.max_seen {
                if let Some(wm) = policy.current() {
                    shared.set_watermark(wm);
                }
                max_seen = Some(t);
            }
            // Re-inject the frozen reorder buffer. The events are stored
            // in release order, so re-pushing preserves equal-timestamp
            // arrival ties; arrival stamps restart now (they only feed
            // latency metrics).
            // hamlet-lint: allow(wallclock) -- restored arrival stamps only feed latency metrics
            let now = Instant::now();
            for ev in &ck.buffered {
                buffer.push(ev.clone(), now);
            }
            shared.reorder_depth.store(buffer.len(), Ordering::Relaxed);
        }

        let (result_tx, result_rx) = mpsc::sync_channel::<Vec<WindowResult>>(channel_capacity * n);
        let mut event_txs = Vec::with_capacity(n);
        let mut ctrl_txs = Vec::with_capacity(n);
        let mut worker_handles = Vec::with_capacity(n);
        for (idx, mut engine) in engines.into_iter().enumerate() {
            if spans.is_enabled() {
                engine.attach_span_recorder(spans.clone(), 1 + idx as u32);
            }
            // Publish each shard's priced groups before any event flows,
            // so a snapshot taken immediately after spawn already shows
            // the optimizer's placement decisions.
            shared.publish_groups(idx, engine.group_metrics().to_vec());
            let (tx, rx) = mpsc::sync_channel::<WorkerMsg>(channel_capacity);
            event_txs.push(tx);
            let (ctrl_tx, ctrl_rx) = mpsc::channel::<WorkerEnd>();
            ctrl_txs.push(ctrl_tx);
            let shared = shared.clone();
            let result_tx = result_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("hamlet-pipe-worker-{idx}"))
                .spawn(move || worker_loop(idx, &mut engine, &rx, &ctrl_rx, &result_tx, &shared))
                // hamlet-lint: allow(panic-hygiene) -- thread spawn failing at startup leaves nothing to clean up; abort the pipeline
                .expect("spawn worker thread");
            worker_handles.push(handle);
        }
        drop(result_tx); // sink ends when the last worker hangs up

        let sink_shared = shared.clone();
        let sink_handle = std::thread::Builder::new()
            .name("hamlet-pipe-sink".into())
            .spawn(move || sink_loop(sink, &result_rx, &sink_shared))
            // hamlet-lint: allow(panic-hygiene) -- thread spawn failing at startup leaves nothing to clean up; abort the pipeline
            .expect("spawn sink thread");

        let (churn_tx, churn_rx) = mpsc::channel::<ChurnRequest>();
        let (cut_tx, cut_rx) = mpsc::channel::<CutRequest>();
        let mut ingest = Ingest {
            source,
            policy,
            on_late,
            router,
            reg,
            queries,
            probe_cfg,
            scheduled: churn_at.into(),
            churn_rx,
            cut_rx,
            epoch: start_epoch,
            buffer,
            max_seen,
            out: (0..n).map(|_| Vec::with_capacity(batch)).collect(),
            txs: event_txs,
            workers,
            batch,
            last_tick: vec![None; n],
            store,
            cut_every: checkpoint_every,
            compact_every,
            cuts_taken: 0,
            last_cut_released: shared.released.load(Ordering::Relaxed),
            shared: shared.clone(),
            stop: stop.clone(),
        };
        let ingest_handle = std::thread::Builder::new()
            .name("hamlet-pipe-ingest".into())
            .spawn(move || ingest.run())
            // hamlet-lint: allow(panic-hygiene) -- thread spawn failing at startup leaves nothing to clean up; abort the pipeline
            .expect("spawn ingest thread");

        Ok(PipelineHandle {
            shared,
            stop,
            ingest: ingest_handle,
            workers: worker_handles,
            ctrl: ctrl_txs,
            churn: churn_tx,
            cut: cut_tx,
            sink: sink_handle,
            n_workers: workers,
        })
    }
}

/// How [`PipelineBuilder::spawn_inner`] seeds engine state: fresh, from
/// one whole legacy [`PipelineCheckpoint`], or by replaying a base +
/// delta chain loaded from a [`CheckpointStore`].
enum RestorePlan<'a> {
    Fresh,
    Whole(&'a PipelineCheckpoint),
    Chain(Vec<PipelineCheckpoint>),
}

impl RestorePlan<'_> {
    /// The record carrying the pipeline-level tail state (reorder
    /// buffer, source cursor, counters, elapsed): the chain's newest
    /// record — every earlier record's tail is superseded.
    fn tail(&self) -> Option<&PipelineCheckpoint> {
        match self {
            RestorePlan::Fresh => None,
            RestorePlan::Whole(ck) => Some(ck),
            RestorePlan::Chain(records) => records.last(),
        }
    }
}

/// The ingest stage: pulls the source, generates watermarks, reorders,
/// counts/dead-letters late events, and routes released events to the
/// shard workers over bounded channels.
struct Ingest<Src> {
    source: Src,
    policy: Box<dyn WatermarkPolicy>,
    on_late: Option<LateHook>,
    router: Option<HamletEngine>,
    /// Workload bookkeeping for churn: the current query set (evolves
    /// with every applied op) and what is needed to compile-check a
    /// churned workload before committing to it.
    reg: Arc<TypeRegistry>,
    queries: Vec<Query>,
    probe_cfg: EngineConfig,
    /// Event-time churn schedule, trigger-ordered (validated at spawn).
    scheduled: VecDeque<(Ts, ChurnOp)>,
    /// Live churn requests from the handle, polled between source events.
    churn_rx: mpsc::Receiver<ChurnRequest>,
    /// On-demand checkpoint cuts from the handle, polled alongside.
    cut_rx: mpsc::Receiver<CutRequest>,
    /// Workload epoch — incremented by every applied churn op, in
    /// lockstep with every worker engine.
    epoch: u64,
    buffer: ReorderBuffer,
    /// Maximum event time pulled from the source — recorded into
    /// checkpoints as the resumed watermark policy's seed.
    max_seen: Option<Ts>,
    /// Per-worker batch under construction.
    out: Vec<Vec<Routed>>,
    txs: Vec<mpsc::SyncSender<WorkerMsg>>,
    workers: u32,
    batch: usize,
    /// Per-shard event-time tick of the last pushed event — the batching
    /// boundary (see [`push_to`](Self::push_to)).
    last_tick: Vec<Option<u64>>,
    /// Where completed cuts are appended (cadence and on-demand).
    store: Option<Arc<dyn CheckpointStore>>,
    /// Cadence: cut after this many released events (None = no cadence).
    cut_every: Option<u64>,
    /// Every this-many cadence cuts, promote the cut to a full base.
    compact_every: u64,
    /// Cadence cuts taken by this incarnation (drives compaction).
    cuts_taken: u64,
    /// `released` counter at the previous cut (cadence anchor).
    last_cut_released: u64,
    shared: Arc<SharedStats>,
    stop: Arc<AtomicBool>,
}

impl<Src: Source> Ingest<Src> {
    fn run(&mut self) -> IngestExit {
        // Acquire pairs with checkpoint()'s Release store of `stop`: if
        // the loop exits because a checkpoint set the flag, everything
        // stored before it — the checkpoint_mode flag in particular —
        // is visible below.
        while !self.stop.load(Ordering::Acquire) {
            // Live churn and on-demand cuts are applied *between* source
            // events — the watermark barrier. A source blocked inside
            // `next_event` delays pending requests until it yields.
            self.poll_live_churn();
            self.poll_cut_requests();
            let pull = self.shared.spans.start();
            let Some(e) = self.source.next_event() else {
                break;
            };
            // The ingest span measures the source pull (wait) time — the
            // signal that separates a source-bound run from an
            // engine-bound one in a trace.
            self.shared.spans.record(0, Stage::Ingest, pull, None, 1);
            // hamlet-lint: allow(wallclock) -- ingest arrival stamp; latency metrics only
            let arrival = Instant::now();
            self.shared.ingested.fetch_add(1, Ordering::Relaxed);
            if self.max_seen.is_none_or(|m| e.time > m) {
                self.max_seen = Some(e.time);
            }
            let wm = self.policy.observe(e.time);
            self.shared.set_watermark(wm);
            if e.time < wm {
                self.shared.late.fetch_add(1, Ordering::Relaxed);
                if let Some(hook) = &mut self.on_late {
                    hook(e);
                }
                continue;
            }
            self.buffer.push(e, arrival);
            let release = self.shared.spans.start();
            let tranche = self.buffer.release(wm);
            self.shared
                .reorder_depth
                .store(self.buffer.len(), Ordering::Relaxed);
            if !tranche.is_empty() {
                let n = tranche.len() as u64;
                self.shared
                    .spans
                    .record(0, Stage::ReorderRelease, release, Some(wm.ticks()), n);
                let route = self.shared.spans.start();
                self.route_tranche(tranche);
                self.shared
                    .spans
                    .record(0, Stage::Route, route, Some(wm.ticks()), n);
            }
            self.fire_scheduled_churn(wm);
            self.maybe_cadence_cut();
        }
        // End of stream, drain, or checkpoint. A drain releases the
        // buffered remainder downstream in order — exactly like a
        // watermark advancing past the stream's end. A checkpoint must
        // NOT: those events were never released, so they are frozen into
        // the checkpoint and re-injected on resume.
        let buffered: Vec<Event> = if self.shared.checkpoint_mode.load(Ordering::Relaxed) {
            self.buffer.drain().into_iter().map(|(e, _)| e).collect()
        } else {
            let rest = self.buffer.drain();
            if !rest.is_empty() {
                self.route_tranche(rest);
            }
            Vec::new()
        };
        self.shared.reorder_depth.store(0, Ordering::Relaxed);
        self.flush_batches();
        self.shared.source_done.store(true, Ordering::Relaxed);
        self.txs.clear(); // hang up: workers drain and await their end command
        IngestExit {
            buffered,
            max_seen: self.max_seen,
        }
    }

    /// Routes one released-in-order tranche to the owning shard(s).
    fn route_tranche(&mut self, tranche: Vec<Routed>) {
        self.shared
            .released
            .fetch_add(tranche.len() as u64, Ordering::Relaxed);
        for (e, arrival) in tranche {
            match &self.router {
                None => self.push_to(0, e, arrival),
                Some(router) => {
                    let mut mask = router.shard_mask(&e, self.workers);
                    while mask != 0 {
                        let idx = mask.trailing_zeros() as usize;
                        mask &= mask - 1;
                        if mask == 0 {
                            self.push_to(idx, e, arrival);
                            break;
                        }
                        self.push_to(idx, e.clone(), arrival);
                    }
                }
            }
        }
    }

    /// Appends to a shard's batch and flushes it when full (`batch`
    /// events) or when *this shard's* event time advanced a tick — the
    /// boundary that costs no result latency: a shard's windows only
    /// close when one of its own events advances its engine's watermark,
    /// and exactly that tick-advancing event ships inside the batch its
    /// push flushes, while same-tick followers (which cannot close
    /// anything) stay buffered and amortize the channel.
    fn push_to(&mut self, idx: usize, e: Event, arrival: Instant) {
        let tick = e.time.ticks();
        let advanced = self.last_tick[idx].is_some_and(|t| t != tick);
        self.last_tick[idx] = Some(tick);
        self.out[idx].push((e, arrival));
        if advanced || self.out[idx].len() >= self.batch {
            self.send(idx);
        }
    }

    fn flush_batches(&mut self) {
        for idx in 0..self.out.len() {
            if !self.out[idx].is_empty() {
                self.send(idx);
            }
        }
    }

    fn send(&mut self, idx: usize) {
        let full = std::mem::replace(&mut self.out[idx], Vec::with_capacity(self.batch));
        self.shared.worker_depths[idx].fetch_add(full.len(), Ordering::Relaxed);
        // Blocking on a full channel IS the backpressure. A send only
        // fails if the worker died (panicked): stop pulling the source so
        // an unbounded run cannot silently discard that shard's events
        // forever — the drain join then surfaces the worker's panic.
        if self.txs[idx].send(WorkerMsg::Batch(full)).is_err() {
            self.shared.worker_depths[idx].store(0, Ordering::Relaxed);
            self.stop.store(true, Ordering::Relaxed);
        }
    }

    /// Applies every scheduled churn op whose trigger the watermark has
    /// reached. The schedule was validated at spawn, but a live op may
    /// have invalidated an entry since (e.g. already removed the id):
    /// such entries are skipped and counted, never applied half-way.
    fn fire_scheduled_churn(&mut self, wm: Ts) {
        while self.scheduled.front().is_some_and(|(t, _)| *t <= wm) {
            let Some((_, op)) = self.scheduled.pop_front() else {
                break;
            };
            if self.apply_churn(op).is_err() {
                self.shared.churns_rejected.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Drains pending live churn requests and acks each with the
    /// post-churn epoch (or the rejection).
    fn poll_live_churn(&mut self) {
        while let Ok(req) = self.churn_rx.try_recv() {
            let outcome = self.apply_churn(req.op);
            if outcome.is_err() {
                self.shared.churns_rejected.fetch_add(1, Ordering::Relaxed);
            }
            let _ = req.ack.send(outcome);
        }
    }

    /// Applies one churn op at the current watermark barrier: validates
    /// it against the evolving query set, compile-checks the post-churn
    /// workload (so the workers' own churn cannot fail), ships every
    /// partial batch followed by the op down each worker's FIFO channel
    /// (every shard churns at the same stream cut), re-plans the router,
    /// and bumps the workload epoch.
    fn apply_churn(&mut self, op: ChurnOp) -> Result<u64, ChurnError> {
        let mut wanted = self.queries.clone();
        match &op {
            ChurnOp::Add(q) => {
                if wanted.iter().any(|x| x.id == q.id) {
                    return Err(ChurnError::Duplicate(q.id));
                }
                wanted.push(q.clone());
            }
            ChurnOp::Remove(id) => {
                if !wanted.iter().any(|x| x.id == *id) {
                    return Err(ChurnError::Unknown(*id));
                }
                wanted.retain(|x| x.id != *id);
            }
        }
        HamletEngine::new(self.reg.clone(), wanted.clone(), self.probe_cfg.clone())
            .map_err(ChurnError::Engine)?;
        let barrier = self.shared.spans.start();
        // The barrier: everything routed so far reaches each worker
        // before the op does (per-channel FIFO), everything after it
        // follows — the same cut on every shard.
        self.flush_batches();
        if let Some(router) = &mut self.router {
            // Re-plan the router before any worker sees the op: ingest
            // is the only thread that routes, so between the flush above
            // and the sends below no event observes the routing — and a
            // rejected re-plan (the dry-run makes that unreachable)
            // fails the churn cleanly instead of desyncing shards.
            // It holds no window state to drain.
            match &op {
                ChurnOp::Add(q) => drop(router.add_query(q.clone())?),
                ChurnOp::Remove(id) => drop(router.remove_query(*id)?),
            }
        }
        for idx in 0..self.txs.len() {
            if self.txs[idx].send(WorkerMsg::Churn(op.clone())).is_err() {
                self.stop.store(true, Ordering::Relaxed);
            }
        }
        self.queries = wanted;
        self.epoch += 1;
        self.shared.epoch.store(self.epoch, Ordering::Relaxed);
        self.shared
            .spans
            .record(0, Stage::ChurnBarrier, barrier, None, 0);
        Ok(self.epoch)
    }

    /// Drains pending on-demand cut requests; each runs a coordinated
    /// cut at the current barrier and is acked with the assembled
    /// [`Checkpoint`].
    fn poll_cut_requests(&mut self) {
        while let Ok(req) = self.cut_rx.try_recv() {
            let outcome = self.coordinated_cut(req.kind);
            let _ = req.ack.send(outcome);
        }
    }

    /// Runs a cadence cut once enough events have been released since
    /// the previous one. Every `compact_every`-th cadence cut is
    /// promoted to a full base, compacting the store's chain. A failed
    /// cut is counted and the pipeline keeps running — the next cadence
    /// boundary tries again.
    fn maybe_cadence_cut(&mut self) {
        let Some(every) = self.cut_every else { return };
        let released = self.shared.released.load(Ordering::Relaxed);
        if released.saturating_sub(self.last_cut_released) < every {
            return;
        }
        let compact =
            self.compact_every <= 1 || (self.cuts_taken + 1).is_multiple_of(self.compact_every);
        let kind = if compact {
            CutKind::Full
        } else {
            CutKind::Delta
        };
        if self.coordinated_cut(kind).is_ok() {
            self.cuts_taken += 1;
        }
    }

    /// A coordinated checkpoint cut at the current barrier: flushes
    /// every partial batch down the worker FIFOs (so every shard
    /// serializes at exactly the same stream position), collects one
    /// frame per shard, assembles the pipeline container, and appends it
    /// to the configured store.
    fn coordinated_cut(&mut self, kind: CutKind) -> Result<Checkpoint, CheckpointError> {
        let span = self.shared.spans.start();
        let result = self.coordinated_cut_inner(kind);
        self.shared
            .spans
            .record(0, Stage::CheckpointPause, span, None, 0);
        // Anchor the cadence even on failure: retrying on every released
        // event while a store stays broken would turn one bad disk into a
        // per-event barrier.
        self.last_cut_released = self.shared.released.load(Ordering::Relaxed);
        match &result {
            Ok(ck) => {
                self.shared.checkpoints.fetch_add(1, Ordering::Relaxed);
                self.shared
                    .checkpoint_bytes
                    .fetch_add(ck.len() as u64, Ordering::Relaxed);
            }
            Err(_) => {
                self.shared
                    .checkpoint_failures
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        result
    }

    fn coordinated_cut_inner(&mut self, kind: CutKind) -> Result<Checkpoint, CheckpointError> {
        // The same barrier as churn: everything routed so far reaches
        // each worker before the cut marker does (per-channel FIFO).
        self.flush_batches();
        let (reply_tx, reply_rx) = mpsc::channel();
        for idx in 0..self.txs.len() {
            let msg = WorkerMsg::Cut {
                kind,
                reply: reply_tx.clone(),
            };
            if self.txs[idx].send(msg).is_err() {
                self.stop.store(true, Ordering::Relaxed);
                return Err(CheckpointError::Io(format!(
                    "worker {idx} is gone; cannot cut"
                )));
            }
        }
        drop(reply_tx);
        let n = self.txs.len();
        let mut frames: Vec<Option<Vec<u8>>> = vec![None; n];
        for _ in 0..n {
            match reply_rx.recv() {
                Ok((idx, Ok(ck))) => frames[idx] = Some(ck.into_bytes()),
                Ok((_, Err(e))) => return Err(e),
                Err(_) => {
                    self.stop.store(true, Ordering::Relaxed);
                    return Err(CheckpointError::Io("a worker died during the cut".into()));
                }
            }
        }
        let mut engines = Vec::with_capacity(n);
        for f in frames {
            match f {
                Some(bytes) => engines.push(bytes),
                None => {
                    return Err(CheckpointError::Io(
                        "a shard replied twice during the cut".into(),
                    ))
                }
            }
        }
        // Every pre-cut result is now enqueued to the sink (each worker
        // sent its results before replying with its frame); wait for the
        // sink thread to land them so the frozen counters are exact.
        // Bounded, so a wedged sink cannot hang ingest forever.
        for _ in 0..1_000_000 {
            if self.shared.sink_depth.load(Ordering::Relaxed) == 0 {
                break;
            }
            std::thread::yield_now();
        }
        let counters = [
            self.shared.ingested.load(Ordering::Relaxed),
            self.shared.late.load(Ordering::Relaxed),
            self.shared.released.load(Ordering::Relaxed),
            self.shared.results.load(Ordering::Relaxed),
        ];
        let pc = PipelineCheckpoint {
            workers: self.workers,
            engines,
            buffered: self.buffer.contents(),
            events_pulled: counters[0],
            max_seen: self.max_seen,
            counters,
            elapsed: self.shared.elapsed(),
        };
        let ck = Checkpoint::from_bytes(pc.to_bytes())?;
        if let Some(store) = &self.store {
            store.append(&ck)?;
        }
        Ok(ck)
    }
}

/// One shard worker: an engine fed released, in-order events; results go
/// to the sink channel with end-to-end latency recorded per result.
fn worker_loop(
    idx: usize,
    engine: &mut HamletEngine,
    rx: &mpsc::Receiver<WorkerMsg>,
    ctrl_rx: &mpsc::Receiver<WorkerEnd>,
    result_tx: &mpsc::SyncSender<Vec<WindowResult>>,
    shared: &SharedStats,
) -> WorkerOutput {
    let mut local = LatencyHistogram::new();
    // Reused split buffer: the engine takes `&[Event]`, the arrivals only
    // matter for the batch's last element (see below).
    let mut events: Vec<Event> = Vec::new();
    let lane = 1 + idx as u32;
    // Periodic group-metrics publish cadence, in batches: frequent
    // enough for live dashboards, rare enough that the clone + try_lock
    // never show up next to the engine's own batch cost.
    const PUBLISH_EVERY: u64 = 64;
    let mut batches = 0u64;
    while let Ok(msg) = rx.recv() {
        let batch = match msg {
            WorkerMsg::Batch(batch) => batch,
            WorkerMsg::Churn(op) => {
                let barrier = shared.spans.start();
                // The ingest stage validated the op and compiled the
                // post-churn workload; every worker applies it at the
                // same stream cut (FIFO channel order). Windows of
                // touched share groups drain here and reach the sink —
                // exactly once, like any other result.
                let drained = match op {
                    ChurnOp::Add(q) => engine.add_query(q),
                    ChurnOp::Remove(id) => engine.remove_query(id),
                }
                // hamlet-lint: allow(panic-hygiene) -- ingest dry-ran this op; a worker that cannot apply it must not keep running on a diverged shard
                .expect("churn ops are validated by the ingest stage")
                .drained;
                if !drained.is_empty() {
                    shared
                        .sink_depth
                        .fetch_add(drained.len(), Ordering::Relaxed);
                    let _ = result_tx.send(drained);
                }
                shared
                    .spans
                    .record(lane, Stage::ChurnBarrier, barrier, None, 0);
                // Churn replaces the share groups: re-publish promptly so
                // snapshots never show the pre-churn layout for long.
                shared.try_publish_groups(idx, engine.group_metrics());
                continue;
            }
            WorkerMsg::Cut { kind, reply } => {
                // Coordinated cut: the queue ahead of this marker is
                // already processed (FIFO), so the frame captures the
                // shard at exactly the barrier's stream position. The
                // engine decides full vs delta (it promotes a delta to a
                // base when it has no sound dirty log yet).
                let pause = shared.spans.start();
                let frame = engine.cut(kind);
                shared
                    .spans
                    .record(lane, Stage::CheckpointPause, pause, None, 0);
                let _ = reply.send((idx, frame));
                continue;
            }
        };
        let n = batch.len();
        if n == 0 {
            // A zero-length batch is a no-op — no watermark side-effect,
            // no latency sample. The router never sends one, but a
            // checkpoint/resume or future source must not be able to
            // perturb the engine with an empty hand-off.
            continue;
        }
        events.clear();
        let mut last_arrival = None;
        for (e, arrival) in batch {
            events.push(e);
            last_arrival = Some(arrival);
        }
        let emitted = engine.process_batch(&events);
        shared.worker_depths[idx].fetch_sub(n, Ordering::Relaxed);
        if !emitted.is_empty() {
            // Every result is attributed to the batch's last event: the
            // router flushes a shard's batch *on* the tick-advancing
            // event (see `Ingest::push_to`), so that final event is the
            // only one in the batch that can advance this engine's
            // watermark and close windows — identical attribution to the
            // old per-event loop. A non-empty batch always stamped an
            // arrival; the `if let` makes that panic-free rather than
            // asserted.
            if let Some(arrival) = last_arrival {
                let latency = arrival.elapsed();
                for _ in 0..emitted.len() {
                    local.record(latency);
                }
                // One lock per batch, not per result: N workers recording
                // per-event would contend on the shared histogram and
                // inflate the very tail latency being measured.
                // hamlet-lint: allow(panic-hygiene) -- a poisoned latency lock means a recorder panicked; propagate it
                shared.latency.lock().expect("latency lock").merge(&local);
                local = LatencyHistogram::new();
            }
            shared
                .sink_depth
                .fetch_add(emitted.len(), Ordering::Relaxed);
            let _ = result_tx.send(emitted);
        }
        batches += 1;
        if batches.is_multiple_of(PUBLISH_EVERY) {
            shared.try_publish_groups(idx, engine.group_metrics());
        }
    }
    // Channel closed: the queue is drained — the barrier. The handle
    // says how to end: drain() flushes every in-flight window into the
    // sink (drain ≡ offline flush, every window emits exactly once);
    // checkpoint() freezes the engine state instead, so those windows
    // emit after a resume. A disconnected control channel means the
    // handle was abandoned: flush, preserving drain semantics.
    let checkpoint = match ctrl_rx.recv() {
        Ok(WorkerEnd::Checkpoint) => Some(engine.checkpoint()),
        Ok(WorkerEnd::Flush) | Err(_) => {
            let finale = engine.flush();
            if !finale.is_empty() {
                shared.sink_depth.fetch_add(finale.len(), Ordering::Relaxed);
                let _ = result_tx.send(finale);
            }
            None
        }
    };
    // Final publish is blocking: the shard's last word must land even if
    // a snapshot reader holds the lock right now.
    let groups = engine.group_metrics().to_vec();
    shared.publish_groups(idx, groups.clone());
    (
        *engine.stats(),
        engine.latency().clone(),
        engine.peak_memory(),
        groups,
        checkpoint,
    )
}

/// The sink stage: delivers result batches and keeps the counters live.
fn sink_loop<S: Sink>(
    mut sink: S,
    rx: &mpsc::Receiver<Vec<WindowResult>>,
    shared: &SharedStats,
) -> S {
    while let Ok(batch) = rx.recv() {
        shared.sink_depth.fetch_sub(batch.len(), Ordering::Relaxed);
        shared
            .results
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        sink.accept(batch);
    }
    sink
}

/// A live pipeline: observe it with [`metrics`](Self::metrics), end it
/// with [`drain`](Self::drain) — or freeze it with
/// [`checkpoint`](Self::checkpoint) to resume later.
pub struct PipelineHandle<S> {
    shared: Arc<SharedStats>,
    stop: Arc<AtomicBool>,
    ingest: JoinHandle<IngestExit>,
    workers: Vec<JoinHandle<WorkerOutput>>,
    /// Per-worker end-of-run command channel (flush vs checkpoint).
    ctrl: Vec<mpsc::Sender<WorkerEnd>>,
    /// Live churn requests to the ingest stage.
    churn: mpsc::Sender<ChurnRequest>,
    /// On-demand checkpoint cuts to the ingest stage.
    cut: mpsc::Sender<CutRequest>,
    sink: JoinHandle<S>,
    n_workers: u32,
}

impl<S: Sink> Snapshot for PipelineHandle<S> {
    /// Cuts a checkpoint of the **running** pipeline at the next
    /// barrier between source events (same barrier semantics as
    /// [`add_query`](PipelineHandle::add_query)) and blocks until the
    /// assembled container is back — appended to the configured
    /// [`CheckpointStore`] first, if one was set at build time. The
    /// pipeline keeps running afterwards; the frame chains onto any
    /// cadence cuts taken so far. A source blocked inside `next_event`,
    /// or one that already ended, delays or fails the cut (the ingest
    /// stage only reaches barriers while events flow).
    fn cut(&mut self, kind: CutKind) -> Result<Checkpoint, CheckpointError> {
        let (ack_tx, ack_rx) = mpsc::channel();
        self.cut
            .send(CutRequest { kind, ack: ack_tx })
            .map_err(|_| CheckpointError::Io("the pipeline has stopped ingesting".into()))?;
        match ack_rx.recv() {
            Ok(outcome) => outcome,
            Err(_) => Err(CheckpointError::Io(
                "the pipeline stopped before reaching the cut barrier".into(),
            )),
        }
    }

    /// A live pipeline cannot restore in place — its engines are owned
    /// by running worker threads. Always fails; rebuild the pipeline
    /// with [`PipelineBuilder::resume_from`] instead.
    fn restore_chain(&mut self, _chain: &[Checkpoint]) -> Result<(), CheckpointError> {
        Err(CheckpointError::WorkloadMismatch(
            "a live pipeline cannot restore in place; rebuild it with \
             Pipeline::builder(...).resume_from(store, source, sink)"
                .into(),
        ))
    }
}

impl<S: Sink> PipelineHandle<S> {
    /// A live snapshot of the pipeline's counters, queue depths, and
    /// latency tail. Never blocks the data path.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.snapshot()
    }

    /// The current metrics snapshot rendered in the Prometheus text
    /// exposition format (see [`MetricsSnapshot::to_prometheus`]).
    pub fn export_prometheus(&self) -> String {
        self.metrics().to_prometheus()
    }

    /// Every stage span recorded so far as Chrome `trace_event` JSON,
    /// loadable in `chrome://tracing` / Perfetto. Empty (but valid)
    /// unless the pipeline was built with [`PipelineBuilder::trace`].
    pub fn export_chrome_trace(&self) -> String {
        hamlet_obs::export::chrome_trace(&self.shared.spans.snapshot(), self.shared.spans.dropped())
    }

    /// Requests shutdown without waiting: the source stops being pulled
    /// after its current event; everything already ingested still flows
    /// through. Idempotent. (A source blocked inside `next_event` is
    /// interrupted only when it yields.)
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Adds a query to the live workload and blocks until it is applied,
    /// returning the new workload epoch.
    ///
    /// The op takes effect at the next **watermark barrier** — between
    /// source events, after everything already released has reached the
    /// workers, never mid-batch. Every shard engine re-plans only the
    /// share groups the new query touches; untouched groups keep their
    /// in-flight state, and windows of touched groups drain to the sink
    /// exactly once (no result is dropped or duplicated). A source
    /// blocked inside `next_event` delays the barrier (and this call)
    /// until it yields.
    pub fn add_query(&self, q: Query) -> Result<u64, PipelineChurnError> {
        self.churn(ChurnOp::Add(q))
    }

    /// Removes a query from the live workload and blocks until it is
    /// applied, returning the new workload epoch. Same barrier semantics
    /// as [`add_query`](Self::add_query): the removed query's in-flight
    /// windows drain to the sink at the barrier, exactly once.
    pub fn remove_query(&self, id: QueryId) -> Result<u64, PipelineChurnError> {
        self.churn(ChurnOp::Remove(id))
    }

    fn churn(&self, op: ChurnOp) -> Result<u64, PipelineChurnError> {
        let (ack_tx, ack_rx) = mpsc::channel();
        self.churn
            .send(ChurnRequest { op, ack: ack_tx })
            .map_err(|_| PipelineChurnError::Stopped)?;
        match ack_rx.recv() {
            Ok(Ok(epoch)) => Ok(epoch),
            Ok(Err(e)) => Err(PipelineChurnError::Rejected(e)),
            // The ingest stage exited with the request still queued.
            Err(_) => Err(PipelineChurnError::Stopped),
        }
    }

    /// Gracefully drains the pipeline and returns the final report:
    /// waits for the source to end (call [`stop`](Self::stop) first to
    /// cut an unbounded source), releases the reorder buffer in order,
    /// lets every worker process its queue and `flush()`, delivers the
    /// last results to the sink, and joins all threads.
    ///
    /// Equivalent to an offline `process`+`flush` over exactly the
    /// events the pipeline released (see `tests/pipeline_equivalence.rs`
    /// for the byte-identity property).
    pub fn drain(self) -> PipelineReport<S> {
        // hamlet-lint: allow(panic-hygiene) -- join propagates the thread's panic; swallowing it would fake a clean drain
        self.ingest.join().expect("ingest thread panicked");
        for tx in &self.ctrl {
            let _ = tx.send(WorkerEnd::Flush);
        }
        let mut stats = Vec::with_capacity(self.workers.len());
        let mut peak_mem = Vec::with_capacity(self.workers.len());
        let mut engine_latency = LatencyRecorder::new();
        let mut worker_groups = Vec::with_capacity(self.workers.len());
        for handle in self.workers {
            // hamlet-lint: allow(panic-hygiene) -- join propagates the thread's panic; swallowing it would fake a clean drain
            let (s, lat, peak, groups, _) = handle.join().expect("worker thread panicked");
            stats.push(s);
            peak_mem.push(peak);
            engine_latency.merge(&lat);
            worker_groups.push(groups);
        }
        // hamlet-lint: allow(panic-hygiene) -- join propagates the thread's panic; swallowing it would fake a clean drain
        let sink = self.sink.join().expect("sink thread panicked");
        // hamlet-lint: allow(panic-hygiene) -- a poisoned lock means a recorder panicked; propagate it
        let latency = self.shared.latency.lock().expect("latency lock").clone();
        PipelineReport {
            sink,
            events: self.shared.ingested.load(Ordering::Relaxed),
            released: self.shared.released.load(Ordering::Relaxed),
            late: self.shared.late.load(Ordering::Relaxed),
            results: self.shared.results.load(Ordering::Relaxed),
            wall: self.shared.elapsed(),
            stats,
            peak_mem,
            engine_latency,
            latency,
            group_metrics: merge_group_metrics(worker_groups),
            spans: self.shared.spans.snapshot(),
            dropped_spans: self.shared.spans.dropped(),
        }
    }

    /// Quiesces the pipeline at a **drain barrier** and freezes its
    /// state instead of flushing it: the source stops being pulled, the
    /// reorder stage keeps (rather than releases) its buffered events,
    /// every worker drains its queue and serializes its engine, and the
    /// sink receives everything that was already in flight — then all
    /// threads join.
    ///
    /// The returned [`PipelineCheckpointReport`] carries the
    /// [`PipelineCheckpoint`] (persist it with
    /// [`to_bytes`](PipelineCheckpoint::to_bytes)), the sink with every
    /// result emitted *before* the barrier, and the barrier pause time.
    /// Windows still open at the barrier emit after
    /// [`PipelineBuilder::resume`] — exactly once, never twice:
    /// resuming and draining is byte-identical to a run that never
    /// stopped.
    ///
    /// An unbounded source is cut mid-stream (like
    /// [`stop`](Self::stop)); a finite source that already ended simply
    /// yields a checkpoint whose reorder buffer is empty.
    ///
    /// Deprecated: this consuming freeze is kept for existing callers
    /// and for the final cut of a planned shutdown. A pipeline built
    /// with [`PipelineBuilder::checkpoint_store`] keeps itself durable
    /// while running (cadence cuts via
    /// [`PipelineBuilder::checkpoint_every`], on-demand via
    /// [`Snapshot::cut`]) and recovers with
    /// [`PipelineBuilder::resume_from`].
    pub fn checkpoint(self) -> PipelineCheckpointReport<S> {
        // Order matters: the mode flag must be visible to the ingest
        // stage whenever the stop flag is — otherwise ingest could stop
        // for the checkpoint yet release (instead of freeze) its reorder
        // buffer. The mode store is sequenced before the Release store
        // of `stop`, and ingest's loop reads `stop` with Acquire, so
        // stop-observed ⇒ mode-visible.
        self.shared.checkpoint_mode.store(true, Ordering::Relaxed);
        self.stop.store(true, Ordering::Release);
        let pause_span = self.shared.spans.start();
        // hamlet-lint: allow(wallclock) -- checkpoint-pause measurement for the report
        let barrier = Instant::now();
        // hamlet-lint: allow(panic-hygiene) -- join propagates the thread's panic; swallowing it would fake a clean drain
        let exit = self.ingest.join().expect("ingest thread panicked");
        for tx in &self.ctrl {
            let _ = tx.send(WorkerEnd::Checkpoint);
        }
        let mut stats = Vec::with_capacity(self.workers.len());
        let mut engines = Vec::with_capacity(self.workers.len());
        for handle in self.workers {
            // hamlet-lint: allow(panic-hygiene) -- join propagates the thread's panic; swallowing it would fake a clean drain
            let (s, _, _, _, blob) = handle.join().expect("worker thread panicked");
            stats.push(s);
            // hamlet-lint: allow(panic-hygiene) -- every worker was sent WorkerEnd::Checkpoint before this join
            engines.push(blob.expect("worker was told to checkpoint"));
        }
        // hamlet-lint: allow(panic-hygiene) -- join propagates the thread's panic; swallowing it would fake a clean drain
        let sink = self.sink.join().expect("sink thread panicked");
        let pause = barrier.elapsed();
        self.shared
            .spans
            .record(0, Stage::CheckpointPause, pause_span, None, 0);
        let counters = [
            self.shared.ingested.load(Ordering::Relaxed),
            self.shared.late.load(Ordering::Relaxed),
            self.shared.released.load(Ordering::Relaxed),
            self.shared.results.load(Ordering::Relaxed),
        ];
        let wall = self.shared.elapsed();
        PipelineCheckpointReport {
            checkpoint: PipelineCheckpoint {
                workers: self.n_workers,
                engines,
                buffered: exit.buffered,
                events_pulled: counters[0],
                max_seen: exit.max_seen,
                counters,
                elapsed: wall,
            },
            sink,
            pause,
            wall,
            stats,
            spans: self.shared.spans.snapshot(),
            dropped_spans: self.shared.spans.dropped(),
        }
    }
}

/// What [`PipelineHandle::checkpoint`] hands back: the frozen state,
/// the sink with every pre-barrier result, and the barrier timing.
pub struct PipelineCheckpointReport<S> {
    /// The durable pipeline state — persist with
    /// [`PipelineCheckpoint::to_bytes`], resume with
    /// [`PipelineBuilder::resume`].
    pub checkpoint: PipelineCheckpoint,
    /// The sink, holding every result emitted before the barrier.
    pub sink: S,
    /// Drain-barrier pause: from the checkpoint request until every
    /// stage had quiesced and serialized — the unavailability window a
    /// live deployment would see.
    pub pause: Duration,
    /// Wall time of the logical run up to checkpoint completion
    /// (accumulated across resumes).
    pub wall: Duration,
    /// Per-worker engine statistics at the barrier.
    pub stats: Vec<EngineStats>,
    /// Stage spans recorded up to the barrier (empty unless the pipeline
    /// was built with [`PipelineBuilder::trace`]).
    pub spans: Vec<Span>,
    /// Spans shed by full or contended trace rings.
    pub dropped_spans: u64,
}

/// Everything a finished pipeline run measured, plus the sink itself.
pub struct PipelineReport<S> {
    /// The sink, with whatever it accumulated.
    pub sink: S,
    /// Events ingested from the source.
    pub events: u64,
    /// Events released to workers (ingested − late, once the drain
    /// completes).
    pub released: u64,
    /// Late events dropped (counted, dead-lettered).
    pub late: u64,
    /// Window results delivered to the sink.
    pub results: u64,
    /// Wall time from spawn to drain completion. For a resumed pipeline
    /// this includes the time accumulated before the checkpoint, so
    /// throughput reflects the whole logical run.
    pub wall: Duration,
    /// Per-worker engine statistics (index = shard).
    pub stats: Vec<EngineStats>,
    /// Per-worker peak byte-accounted state.
    pub peak_mem: Vec<usize>,
    /// Merged engine-internal result latency (result − last contributing
    /// event arrival, as the offline harness reports it).
    pub engine_latency: LatencyRecorder,
    /// End-to-end (ingest → emit) latency histogram (p50/p99).
    pub latency: LatencyHistogram,
    /// Per-share-group metrics merged across shard workers (empty when
    /// the engines ran with [`EngineConfig::obs`] off).
    pub group_metrics: Vec<GroupMetrics>,
    /// Stage spans recorded over the run (empty unless the pipeline was
    /// built with [`PipelineBuilder::trace`]).
    pub spans: Vec<Span>,
    /// Spans shed by full or contended trace rings.
    pub dropped_spans: u64,
}

impl<S> PipelineReport<S> {
    /// Number of workers that ran.
    pub fn workers(&self) -> usize {
        self.stats.len()
    }

    /// Ingest throughput over the whole run (0 for zero-duration runs —
    /// never `inf`/`NaN`).
    pub fn throughput_eps(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 && secs.is_finite() {
            self.events as f64 / secs
        } else {
            0.0
        }
    }

    /// Workload-level engine statistics (all workers accumulated).
    pub fn merged_stats(&self) -> EngineStats {
        let mut total = EngineStats::default();
        for s in &self.stats {
            total.merge(s);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamlet_core::executor::sort_results;
    use hamlet_query::parse_query;
    use hamlet_types::{AttrValue, EventTypeId, Ts};

    fn setup() -> (Arc<TypeRegistry>, Vec<Query>, Vec<Event>) {
        let mut reg = TypeRegistry::new();
        let a = reg.register("A", &["g"]);
        let b = reg.register("B", &["g"]);
        let c = reg.register("C", &["g"]);
        let reg = Arc::new(reg);
        let queries = vec![
            parse_query(
                &reg,
                1,
                "RETURN COUNT(*) PATTERN SEQ(A, B+) GROUP BY g WITHIN 20",
            )
            .unwrap(),
            parse_query(
                &reg,
                2,
                "RETURN COUNT(*) PATTERN SEQ(C, B+) GROUP BY g WITHIN 20",
            )
            .unwrap(),
        ];
        let mut events = Vec::new();
        for t in 0..300u64 {
            let ty = match t % 5 {
                0 => a,
                1 => c,
                _ => b,
            };
            events.push(Event::new(Ts(t), ty, vec![AttrValue::Int((t % 7) as i64)]));
        }
        (reg, queries, events)
    }

    fn offline(reg: &Arc<TypeRegistry>, queries: &[Query], events: &[Event]) -> Vec<WindowResult> {
        let mut eng =
            HamletEngine::new(reg.clone(), queries.to_vec(), EngineConfig::default()).unwrap();
        let mut out = Vec::new();
        for e in events {
            out.extend(eng.process(e));
        }
        out.extend(eng.flush());
        out
    }

    #[test]
    fn single_worker_matches_offline_in_emission_order() {
        let (reg, queries, events) = setup();
        let expected = offline(&reg, &queries, &events);
        let handle = Pipeline::builder(reg, queries)
            .spawn(ReplaySource::new(events.clone()), VecSink::new())
            .unwrap();
        let report = handle.drain();
        // Raw order, not just sorted: one worker's emission order is the
        // engine's emission order.
        assert_eq!(report.sink.results, expected);
        assert_eq!(report.events, events.len() as u64);
        assert_eq!(report.released, events.len() as u64);
        assert_eq!(report.late, 0);
        assert_eq!(report.results, expected.len() as u64);
        assert_eq!(report.workers(), 1);
        assert!(report.throughput_eps() > 0.0);
        assert!(report.latency.count() > 0, "latency samples recorded");
        assert_eq!(report.merged_stats().late_skips, 0);
    }

    #[test]
    fn sharded_workers_match_offline_canonically() {
        let (reg, queries, events) = setup();
        let mut expected = offline(&reg, &queries, &events);
        sort_results(&mut expected);
        for workers in [2u32, 4] {
            let handle = Pipeline::builder(reg.clone(), queries.clone())
                .workers(workers)
                .batch(16)
                .spawn(ReplaySource::new(events.clone()), VecSink::new())
                .unwrap();
            let report = handle.drain();
            let mut got = report.sink.results;
            sort_results(&mut got);
            assert_eq!(got, expected, "{workers} workers");
            assert_eq!(report.stats.len(), workers as usize);
        }
    }

    #[test]
    fn out_of_order_within_slack_matches_in_order() {
        let (reg, queries, events) = setup();
        let expected = offline(&reg, &queries, &events);
        // Shuffle with bounded lateness 5, ingest with slack 5.
        let mut shuffled = events.clone();
        hamlet_stream::bounded_delay_shuffle(&mut shuffled, 5, 99);
        assert_ne!(shuffled, events, "shuffle must perturb the order");
        let handle = Pipeline::builder(reg, queries)
            .watermark(BoundedLateness::new(5))
            .spawn(ReplaySource::new(shuffled), VecSink::new())
            .unwrap();
        let report = handle.drain();
        assert_eq!(report.late, 0, "lateness within slack drops nothing");
        assert_eq!(report.sink.results, expected, "reorder restored order");
    }

    #[test]
    fn late_events_are_counted_and_dead_lettered() {
        let (reg, queries, events) = setup();
        let mut shuffled = events.clone();
        hamlet_stream::bounded_delay_shuffle(&mut shuffled, 10, 42);
        let dead = Arc::new(std::sync::Mutex::new(Vec::<Event>::new()));
        let dead_in_hook = dead.clone();
        // Slack 0 with lateness 10: every out-of-order event is late.
        let handle = Pipeline::builder(reg, queries)
            .watermark(BoundedLateness::new(0))
            .on_late(move |e| dead_in_hook.lock().unwrap().push(e))
            .spawn(ReplaySource::new(shuffled.clone()), VecSink::new())
            .unwrap();
        let report = handle.drain();
        assert!(report.late > 0, "shuffled stream must produce late events");
        assert_eq!(report.late as usize, dead.lock().unwrap().len());
        assert_eq!(report.released + report.late, report.events);
        // The engine never saw the dropped events, so its own late guard
        // stayed quiet and no window was emitted twice.
        assert_eq!(report.merged_stats().late_skips, 0);
        let mut seen = std::collections::BTreeSet::new();
        for r in &report.sink.results {
            assert!(
                seen.insert((r.query, format!("{}", r.group_key), r.window_start)),
                "duplicate window emission: {r:?}"
            );
        }
    }

    /// An endless source: the pipeline must keep running, serve live
    /// metrics, and stop cleanly mid-stream.
    struct Endless {
        t: u64,
        a: EventTypeId,
        b: EventTypeId,
    }

    impl Source for Endless {
        fn next_event(&mut self) -> Option<Event> {
            let ty = if self.t.is_multiple_of(10) {
                self.a
            } else {
                self.b
            };
            let e = Event::new(
                Ts(self.t / 4),
                ty,
                vec![AttrValue::Int((self.t % 3) as i64)],
            );
            self.t += 1;
            Some(e)
        }
    }

    #[test]
    fn unbounded_source_stops_on_drain() {
        let (reg, queries, _) = setup();
        let a = reg.type_id("A").unwrap();
        let b = reg.type_id("B").unwrap();
        let handle = Pipeline::builder(reg, queries)
            .batch(32)
            .spawn(Endless { t: 0, a, b }, CountingSink::new())
            .unwrap();
        // Let it run until it has demonstrably made progress.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let m = handle.metrics();
            if m.results > 0 && m.ingested > 1_000 {
                assert_eq!(m.late, 0);
                assert!(m.watermark.is_some());
                assert!(m.ingest_eps() > 0.0);
                break;
            }
            assert!(Instant::now() < deadline, "pipeline made no progress");
            std::thread::sleep(Duration::from_millis(1));
        }
        handle.stop();
        let report = handle.drain();
        assert!(report.events > 1_000);
        assert!(report.results > 0);
        assert_eq!(report.released, report.events);
        assert_eq!(report.sink.count, report.results);
    }

    /// A deliberately slow sink with single-slot channels: backpressure
    /// must stall the source rather than losing or duplicating results.
    struct SlowVec {
        results: Vec<WindowResult>,
        delayed: u32,
    }

    impl Sink for SlowVec {
        fn accept(&mut self, batch: Vec<WindowResult>) {
            if self.delayed < 20 {
                self.delayed += 1;
                std::thread::sleep(Duration::from_millis(2));
            }
            self.results.extend(batch);
        }
    }

    #[test]
    fn backpressure_preserves_every_result() {
        let (reg, queries, events) = setup();
        let expected = offline(&reg, &queries, &events);
        let handle = Pipeline::builder(reg, queries)
            .batch(4)
            .channel_capacity(1)
            .spawn(
                ReplaySource::new(events.clone()),
                SlowVec {
                    results: Vec::new(),
                    delayed: 0,
                },
            )
            .unwrap();
        let report = handle.drain();
        assert_eq!(report.sink.results, expected, "backpressure lost results");
        assert_eq!(report.events, events.len() as u64);
    }

    /// Checkpoint after a prefix, resume with the rest of the stream:
    /// the sink ends up with exactly the uninterrupted run's results (1
    /// worker: raw emission order), and the metrics counters continue.
    #[test]
    fn checkpoint_resume_matches_uninterrupted() {
        let (reg, queries, events) = setup();
        let expected = offline(&reg, &queries, &events);
        let cut = events.len() / 2;
        let handle = Pipeline::builder(reg.clone(), queries.clone())
            .spawn(ReplaySource::new(events[..cut].to_vec()), VecSink::new())
            .unwrap();
        // Let the prefix drain fully so the cut is exact and the barrier
        // deterministic.
        let deadline = Instant::now() + Duration::from_secs(10);
        while !(handle.metrics().source_done && handle.metrics().queued() == 0) {
            assert!(Instant::now() < deadline, "prefix never drained");
            std::thread::sleep(Duration::from_millis(1));
        }
        let frozen = handle.checkpoint();
        assert_eq!(frozen.checkpoint.events_pulled(), cut as u64);
        assert_eq!(frozen.checkpoint.workers(), 1);
        assert!(frozen.checkpoint.engine_bytes() > 0);
        // Persist + reload, as a crash-recovery path would.
        let blob = frozen.checkpoint.to_bytes();
        let restored = PipelineCheckpoint::from_bytes(&blob).unwrap();
        let cursor = restored.events_pulled() as usize;
        let resumed = Pipeline::builder(reg, queries)
            .resume(
                &restored,
                ReplaySource::new(events[cursor..].to_vec()),
                frozen.sink,
            )
            .unwrap();
        let report = resumed.drain();
        assert_eq!(
            report.sink.results, expected,
            "kill-restore-continue diverged"
        );
        assert_eq!(report.events, events.len() as u64, "counters continue");
        assert_eq!(report.released, events.len() as u64);
    }

    /// Resume validates the worker count before touching any state.
    #[test]
    fn resume_rejects_wrong_worker_count() {
        let (reg, queries, events) = setup();
        let handle = Pipeline::builder(reg.clone(), queries.clone())
            .workers(2)
            .spawn(ReplaySource::new(events.clone()), VecSink::new())
            .unwrap();
        let frozen = handle.checkpoint();
        let err = Pipeline::builder(reg, queries)
            .workers(4)
            .resume(&frozen.checkpoint, ReplaySource::new(vec![]), NullSink)
            .err();
        assert!(
            matches!(err, Some(ResumeError::Checkpoint(_))),
            "wrong worker count must be a checkpoint error: {err:?}"
        );
    }

    #[test]
    fn spawn_surfaces_workload_errors() {
        let mut reg = TypeRegistry::new();
        reg.register("A", &["v"]);
        let reg = Arc::new(reg);
        // MIN with negation is unsupported — the builder must say so
        // instead of panicking a worker thread.
        let q = parse_query(&reg, 1, "RETURN MIN(A.v) PATTERN SEQ(NOT A, A+) WITHIN 10");
        let Ok(q) = q else {
            return; // parser already rejects it: equally fine
        };
        let err = Pipeline::builder(reg, vec![q])
            .spawn(ReplaySource::new(vec![]), NullSink)
            .err();
        assert!(err.is_some(), "engine error must surface at spawn");
    }

    #[test]
    #[should_panic(expected = "at most 64 workers")]
    fn too_many_workers_rejected() {
        let (reg, queries, _) = setup();
        let _ = Pipeline::builder(reg, queries).workers(65);
    }

    fn third_query(reg: &Arc<TypeRegistry>) -> Query {
        parse_query(
            reg,
            3,
            "RETURN COUNT(*) PATTERN SEQ(A, B+) GROUP BY g WITHIN 10",
        )
        .unwrap()
    }

    /// Offline reference for a churned run: with an in-order stream and
    /// zero slack, the pipeline's watermark equals each event's time, so
    /// a scheduled op fires right after the first event at/past its
    /// trigger — this mirrors that barrier exactly.
    fn offline_churned(
        reg: &Arc<TypeRegistry>,
        queries: &[Query],
        events: &[Event],
        schedule: &[(Ts, ChurnOp)],
    ) -> Vec<WindowResult> {
        let mut eng =
            HamletEngine::new(reg.clone(), queries.to_vec(), EngineConfig::default()).unwrap();
        let mut out = Vec::new();
        let mut next = 0;
        for e in events {
            out.extend(eng.process(e));
            while next < schedule.len() && schedule[next].0 <= e.time {
                let report = match schedule[next].1.clone() {
                    ChurnOp::Add(q) => eng.add_query(q),
                    ChurnOp::Remove(id) => eng.remove_query(id),
                }
                .unwrap();
                out.extend(report.drained);
                next += 1;
            }
        }
        out.extend(eng.flush());
        out
    }

    /// A scheduled add + remove mid-stream matches the same churn
    /// applied to an offline engine at the same event-time barriers —
    /// raw emission order with one worker, canonical order when sharded.
    /// An op scheduled past the stream's end never fires.
    #[test]
    fn scheduled_churn_matches_offline_replan() {
        let (reg, queries, events) = setup();
        let schedule = vec![
            (Ts(99), ChurnOp::Add(third_query(&reg))),
            (Ts(199), ChurnOp::Remove(QueryId(2))),
            (Ts(9_999), ChurnOp::Remove(QueryId(1))), // beyond the stream: discarded
        ];
        let expected = offline_churned(&reg, &queries, &events, &schedule);
        let handle = Pipeline::builder(reg.clone(), queries.clone())
            .churn_at(schedule.clone())
            .spawn(ReplaySource::new(events.clone()), VecSink::new())
            .unwrap();
        let report = handle.drain();
        assert_eq!(report.sink.results, expected, "single-worker churn");

        let mut canonical = expected;
        sort_results(&mut canonical);
        for workers in [2u32, 4] {
            let handle = Pipeline::builder(reg.clone(), queries.clone())
                .workers(workers)
                .batch(16)
                .churn_at(schedule.clone())
                .spawn(ReplaySource::new(events.clone()), VecSink::new())
                .unwrap();
            let report = handle.drain();
            let mut got = report.sink.results;
            sort_results(&mut got);
            assert_eq!(got, canonical, "{workers}-worker churn");
        }
    }

    /// The whole churn schedule is validated when the pipeline spawns.
    #[test]
    fn churn_schedule_is_validated_at_spawn() {
        let (reg, queries, _) = setup();
        let dup = queries[0].clone();
        let err = Pipeline::builder(reg.clone(), queries.clone())
            .churn_at(vec![(Ts(5), ChurnOp::Add(dup))])
            .spawn(ReplaySource::new(vec![]), NullSink)
            .err();
        assert!(matches!(err, Some(EngineError::Churn(_))), "{err:?}");
        let err = Pipeline::builder(reg, queries)
            .churn_at(vec![(Ts(5), ChurnOp::Remove(QueryId(77)))])
            .spawn(ReplaySource::new(vec![]), NullSink)
            .err();
        assert!(matches!(err, Some(EngineError::Churn(_))), "{err:?}");
    }

    /// A source fed over a channel, so a test controls exactly when the
    /// ingest loop can make progress.
    struct ChannelSource(mpsc::Receiver<Event>);

    impl Source for ChannelSource {
        fn next_event(&mut self) -> Option<Event> {
            self.0.recv().ok()
        }
    }

    /// Live `add_query`/`remove_query` on a running pipeline: acks carry
    /// monotone epochs, invalid ops are rejected without disturbing the
    /// workload, no window is emitted twice, and the pipeline keeps
    /// producing for the new workload after each barrier.
    #[test]
    fn live_churn_applies_between_source_events() {
        let (reg, queries, _) = setup();
        let a = reg.type_id("A").unwrap();
        let b = reg.type_id("B").unwrap();
        let c = reg.type_id("C").unwrap();
        // Captures only `Copy` ids, so the closure itself is `Copy` and
        // each feeder thread gets its own.
        let mk = move |t: u64| {
            let ty = match t % 5 {
                0 => a,
                1 => c,
                _ => b,
            };
            Event::new(Ts(t), ty, vec![AttrValue::Int((t % 7) as i64)])
        };
        for workers in [1u32, 4] {
            let (tx_ev, rx_ev) = mpsc::channel::<Event>();
            for t in 0..150 {
                tx_ev.send(mk(t)).unwrap();
            }
            let handle = Pipeline::builder(reg.clone(), queries.clone())
                .workers(workers)
                .batch(16)
                .spawn(ChannelSource(rx_ev), VecSink::new())
                .unwrap();
            let deadline = Instant::now() + Duration::from_secs(10);
            while !(handle.metrics().ingested == 150 && handle.metrics().queued() == 0) {
                assert!(Instant::now() < deadline, "prefix never drained");
                std::thread::sleep(Duration::from_millis(1));
            }
            assert_eq!(handle.metrics().epoch, 0);

            // Feed slowly from here: the churn barrier falls between two
            // source events, and pending ops are applied at the next one.
            let done = Arc::new(AtomicBool::new(false));
            let done_feeder = done.clone();
            let feeder = std::thread::spawn(move || {
                for t in 150..20_000u64 {
                    if done_feeder.load(Ordering::Relaxed) {
                        break;
                    }
                    if tx_ev.send(mk(t)).is_err() {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
            assert_eq!(handle.add_query(third_query(&reg)).unwrap(), 1);
            assert!(
                matches!(
                    handle.add_query(queries[0].clone()),
                    Err(PipelineChurnError::Rejected(ChurnError::Duplicate(
                        QueryId(1)
                    )))
                ),
                "duplicate id must be rejected"
            );
            assert!(
                matches!(
                    handle.remove_query(QueryId(77)),
                    Err(PipelineChurnError::Rejected(ChurnError::Unknown(QueryId(
                        77
                    ))))
                ),
                "unknown id must be rejected"
            );
            assert_eq!(handle.remove_query(QueryId(2)).unwrap(), 2);
            assert_eq!(handle.metrics().epoch, 2);
            // Let the post-churn workload run long enough to close
            // windows of the added query, then cut the stream.
            let target = handle.metrics().ingested + 60;
            while handle.metrics().ingested < target {
                assert!(Instant::now() < deadline, "post-churn stream stalled");
                std::thread::sleep(Duration::from_millis(1));
            }
            done.store(true, Ordering::Relaxed);
            feeder.join().unwrap();
            // The feeder hung up: once ingest observes the end of the
            // stream, churn can no longer be applied.
            while !handle.metrics().source_done {
                assert!(Instant::now() < deadline, "source never ended");
                std::thread::sleep(Duration::from_millis(1));
            }
            assert!(
                matches!(
                    handle.remove_query(QueryId(1)),
                    Err(PipelineChurnError::Stopped)
                ),
                "churn after the stream ended must report Stopped"
            );
            let report = handle.drain();

            // Per the churn contract: q1's group is restructured when q3
            // (same pattern) joins it, so a q1 window in flight at that
            // barrier may split into a drained prefix + post-barrier
            // suffix (two rows). q2 (removed, solo group) and q3 (added)
            // windows must appear exactly once.
            let mut mult = std::collections::BTreeMap::new();
            for r in &report.sink.results {
                *mult
                    .entry((r.query, format!("{}", r.group_key), r.window_start))
                    .or_insert(0u32) += 1;
            }
            for ((q, key, start), n) in &mult {
                let cap = if *q == QueryId(1) { 2 } else { 1 };
                assert!(
                    *n <= cap,
                    "window emitted {n} times (cap {cap}): {q:?} {key} {start:?}"
                );
            }
            let max_start = |qid: QueryId| {
                report
                    .sink
                    .results
                    .iter()
                    .filter(|r| r.query == qid)
                    .map(|r| r.window_start)
                    .max()
            };
            let q2_last = max_start(QueryId(2)).expect("q2 ran before its removal");
            let q3_last = max_start(QueryId(3)).expect("the added query must produce");
            assert!(
                q3_last > q2_last,
                "q2 must stop at its removal barrier (last {q2_last:?}) while q3 continues (last {q3_last:?})"
            );
            assert_eq!(report.results, report.sink.results.len() as u64);
        }
    }

    /// Cadence cuts on a live pipeline: an in-order stream with slack 0
    /// cuts at exact released counts, so the store's chain is
    /// deterministic. The cuts must not perturb the output, the chain
    /// must be base + contiguous deltas, and `resume_from` after a
    /// mid-delta-interval kill (the stream ends 10 events past the last
    /// cut) must emit exactly the uninterrupted run's suffix.
    #[test]
    fn cadence_cuts_resume_from_store_match_uninterrupted() {
        let (reg, queries, events) = setup();
        let expected = offline(&reg, &queries, &events);
        let store = Arc::new(hamlet_core::MemStore::new());
        let handle = Pipeline::builder(reg.clone(), queries.clone())
            .checkpoint_store(store.clone())
            .checkpoint_every(60)
            .spawn(ReplaySource::new(events[..250].to_vec()), VecSink::new())
            .unwrap();
        let report = handle.drain();
        assert_eq!(
            report.sink.results,
            offline(&reg, &queries, &events[..250]),
            "cadence cuts perturbed the output"
        );
        let chain = store.load_chain().unwrap();
        assert_eq!(chain.len(), 4, "cadence cuts at released 60/120/180/240");
        assert!(!chain[0].is_delta(), "the first cut promotes to a base");
        assert!(chain[1..].iter().all(Checkpoint::is_delta));
        let tail = PipelineCheckpoint::from_bytes(chain[chain.len() - 1].as_bytes()).unwrap();
        assert_eq!(tail.events_pulled(), 240);

        // The kill: events 240..250 were processed but never cut. The
        // resumed run replays from the last cut and emits exactly what
        // the uninterrupted run emits after stream position 240.
        let mut oracle =
            HamletEngine::new(reg.clone(), queries.clone(), EngineConfig::default()).unwrap();
        let mut pre = 0;
        for e in &events[..240] {
            pre += oracle.process(e).len();
        }
        let resumed = Pipeline::builder(reg, queries)
            .resume_from(
                store.as_ref(),
                ReplaySource::new(events[240..].to_vec()),
                VecSink::new(),
            )
            .unwrap();
        let report = resumed.drain();
        assert_eq!(
            report.sink.results,
            expected[pre..],
            "chain resume diverged"
        );
        assert_eq!(report.events, events.len() as u64, "counters continue");
    }

    /// `resume_from` over an empty store must fail loudly, and the
    /// cadence knob without a store must be rejected at spawn.
    #[test]
    fn store_misconfigurations_fail_loudly() {
        let (reg, queries, _) = setup();
        let store = hamlet_core::MemStore::new();
        let err = Pipeline::builder(reg.clone(), queries.clone())
            .resume_from(&store, ReplaySource::new(vec![]), NullSink)
            .err();
        assert!(
            matches!(
                err,
                Some(ResumeError::Checkpoint(CheckpointError::Corrupt(_)))
            ),
            "{err:?}"
        );
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Pipeline::builder(reg, queries)
                .checkpoint_every(10)
                .spawn(ReplaySource::new(vec![]), NullSink)
        }));
        assert!(res.is_err(), "checkpoint_every without a store must panic");
    }

    /// On-demand `Snapshot::cut` on a live handle: the cut lands at a
    /// barrier between source events, is appended to the store on top of
    /// any cadence cuts, and the pipeline keeps running afterwards.
    #[test]
    fn live_cut_appends_to_store_and_pipeline_continues() {
        let (reg, queries, _) = setup();
        let a = reg.type_id("A").unwrap();
        let b = reg.type_id("B").unwrap();
        let c = reg.type_id("C").unwrap();
        let mk = move |t: u64| {
            let ty = match t % 5 {
                0 => a,
                1 => c,
                _ => b,
            };
            Event::new(Ts(t), ty, vec![AttrValue::Int((t % 7) as i64)])
        };
        let total = 400u64;
        let (tx_ev, rx_ev) = mpsc::channel::<Event>();
        for t in 0..150 {
            tx_ev.send(mk(t)).unwrap();
        }
        let store = Arc::new(hamlet_core::MemStore::new());
        let mut handle = Pipeline::builder(reg.clone(), queries.clone())
            .checkpoint_store(store.clone())
            .checkpoint_every(100)
            .spawn(ChannelSource(rx_ev), VecSink::new())
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while !(handle.metrics().ingested == 150 && handle.metrics().queued() == 0) {
            assert!(Instant::now() < deadline, "prefix never drained");
            std::thread::sleep(Duration::from_millis(1));
        }
        // Feed slowly so the cut barrier falls between source events.
        let done = Arc::new(AtomicBool::new(false));
        let done_feeder = done.clone();
        let feeder = std::thread::spawn(move || {
            for t in 150..total {
                if done_feeder.load(Ordering::Relaxed) {
                    break;
                }
                if tx_ev.send(mk(t)).is_err() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        let ck = handle.cut(hamlet_core::CutKind::Delta).unwrap();
        assert!(ck.epoch() == 0 && !ck.as_bytes().is_empty());
        let cursor = PipelineCheckpoint::from_bytes(ck.as_bytes())
            .unwrap()
            .events_pulled();
        assert!(cursor >= 150, "the cut covers at least the fast prefix");
        let chain = store.load_chain().unwrap();
        assert_eq!(
            chain[chain.len() - 1].as_bytes(),
            ck.as_bytes(),
            "the on-demand cut is the store's newest record"
        );
        let m = handle.metrics();
        assert!(m.checkpoints >= 2, "cadence cut at 100 plus the live cut");
        assert_eq!(m.checkpoint_failures, 0);
        assert!(m.checkpoint_bytes > 0);
        done.store(true, Ordering::Relaxed);
        feeder.join().unwrap();
        let report = handle.drain();
        assert!(report.events >= cursor, "pipeline kept running after cut");

        // Recovery from the chain: replay everything past the cursor and
        // compare against the uninterrupted run's suffix.
        let fed: Vec<Event> = (0..report.events).map(mk).collect();
        let expected = offline(&reg, &queries, &fed);
        let mut oracle =
            HamletEngine::new(reg.clone(), queries.clone(), EngineConfig::default()).unwrap();
        let mut pre = 0;
        for e in &fed[..cursor as usize] {
            pre += oracle.process(e).len();
        }
        let resumed = Pipeline::builder(reg, queries)
            .resume_from(
                store.as_ref(),
                ReplaySource::new(fed[cursor as usize..].to_vec()),
                VecSink::new(),
            )
            .unwrap();
        let report = resumed.drain();
        assert_eq!(
            report.sink.results,
            expected[pre..],
            "live-cut resume diverged"
        );
    }

    /// A resumed pipeline's elapsed time continues from the checkpoint
    /// instead of restarting at zero — the regression that made
    /// `ingest_eps()` overreport after every resume.
    #[test]
    fn resumed_pipeline_reports_accumulated_elapsed() {
        let (reg, queries, events) = setup();
        let cut = events.len() / 2;
        let handle = Pipeline::builder(reg.clone(), queries.clone())
            .spawn(ReplaySource::new(events[..cut].to_vec()), VecSink::new())
            .unwrap();
        // Hold the pipeline open long enough that the banked time
        // dominates clock granularity.
        std::thread::sleep(Duration::from_millis(20));
        let frozen = handle.checkpoint();
        let banked = frozen.checkpoint.elapsed();
        assert!(banked >= Duration::from_millis(20), "banked {banked:?}");
        assert_eq!(frozen.wall, banked);
        let blob = frozen.checkpoint.to_bytes();
        let restored = PipelineCheckpoint::from_bytes(&blob).unwrap();
        assert_eq!(restored.elapsed(), banked, "elapsed survives the codec");
        let resumed = Pipeline::builder(reg, queries)
            .resume(
                &restored,
                ReplaySource::new(events[cut..].to_vec()),
                frozen.sink,
            )
            .unwrap();
        let snap = resumed.metrics();
        assert!(
            snap.elapsed >= banked,
            "resumed elapsed {:?} lost the banked {banked:?}",
            snap.elapsed
        );
        let report = resumed.drain();
        assert!(
            report.wall >= banked,
            "report wall restarted: {:?}",
            report.wall
        );
    }

    /// Tracing enabled: the drain report carries stage spans from both
    /// the ingest lane and worker lanes, the live exporters produce
    /// well-formed output, and ring memory stays bounded.
    #[test]
    fn traced_run_records_stage_spans() {
        let (reg, queries, events) = setup();
        let cap = 64;
        let handle = Pipeline::builder(reg, queries)
            .trace(cap)
            .batch(16)
            .spawn(ReplaySource::new(events), VecSink::new())
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while !(handle.metrics().source_done && handle.metrics().queued() == 0) {
            assert!(Instant::now() < deadline, "stream never drained");
            std::thread::sleep(Duration::from_millis(1));
        }
        let trace = handle.export_chrome_trace();
        assert!(trace.starts_with('{') && trace.ends_with("]}\n"));
        assert!(trace.contains("\"name\":\"process_batch\""));
        let prom = handle.export_prometheus();
        assert!(prom.contains("hamlet_ingested_total 300"));
        assert!(prom.contains("hamlet_group_events_routed_total{group="));
        let report = handle.drain();
        assert!(!report.spans.is_empty());
        let lanes: std::collections::BTreeSet<u32> = report.spans.iter().map(|s| s.lane).collect();
        assert!(lanes.contains(&0), "ingest lane must record");
        assert!(lanes.iter().any(|&l| l > 0), "worker lane must record");
        let stages: std::collections::BTreeSet<&str> =
            report.spans.iter().map(|s| s.stage.as_str()).collect();
        for want in [
            "ingest",
            "reorder_release",
            "route",
            "process_batch",
            "flush",
        ] {
            assert!(stages.contains(want), "missing stage {want}: {stages:?}");
        }
        // Bounded memory: 2 lanes (1 worker + ingest) x cap spans.
        assert!(
            report.spans.len() <= 2 * cap,
            "{} spans",
            report.spans.len()
        );
    }

    /// An untraced pipeline records nothing and exports an empty (but
    /// valid) trace.
    #[test]
    fn untraced_run_records_no_spans() {
        let (reg, queries, events) = setup();
        let handle = Pipeline::builder(reg, queries)
            .spawn(ReplaySource::new(events), VecSink::new())
            .unwrap();
        let report = handle.drain();
        assert!(report.spans.is_empty());
        assert_eq!(report.dropped_spans, 0);
    }

    /// Per-share-group metrics are identical however the stream is
    /// sharded: 1-worker and 4-worker runs of the same stream must agree
    /// counter for counter (the merge is order-insensitive).
    #[test]
    fn group_metrics_identical_across_worker_counts() {
        let (reg, queries, events) = setup();
        let run = |workers: u32| {
            let handle = Pipeline::builder(reg.clone(), queries.clone())
                .workers(workers)
                .batch(16)
                .spawn(ReplaySource::new(events.clone()), VecSink::new())
                .unwrap();
            handle.drain().group_metrics
        };
        let solo = run(1);
        let sharded = run(4);
        assert!(!solo.is_empty(), "obs is on by default");
        assert_eq!(solo.len(), sharded.len());
        for (a, b) in solo.iter().zip(sharded.iter()) {
            assert_eq!(a.sig, b.sig);
            assert_eq!(a.events_routed, b.events_routed, "group {}", a.sig_label());
            assert_eq!(a.runs_created, b.runs_created, "group {}", a.sig_label());
            assert_eq!(a.runs_expired, b.runs_expired, "group {}", a.sig_label());
            assert_eq!(a.shared_bursts, b.shared_bursts, "group {}", a.sig_label());
            assert_eq!(a.solo_bursts, b.solo_bursts, "group {}", a.sig_label());
            assert_eq!(
                a.graphlet_snapshots,
                b.graphlet_snapshots,
                "group {}",
                a.sig_label()
            );
            assert_eq!(
                a.event_snapshots,
                b.event_snapshots,
                "group {}",
                a.sig_label()
            );
            assert_eq!(
                a.results_emitted,
                b.results_emitted,
                "group {}",
                a.sig_label()
            );
        }
    }

    /// Churn bumps the workload epoch inside every shard's checkpoint
    /// blob; resuming adopts it, and resuming under the pre-churn
    /// workload is rejected.
    #[test]
    fn checkpoint_after_churn_resumes_with_epoch() {
        let (reg, queries, events) = setup();
        let schedule = vec![(Ts(99), ChurnOp::Add(third_query(&reg)))];
        let expected = offline_churned(&reg, &queries, &events, &schedule);
        let cut = 200;
        let handle = Pipeline::builder(reg.clone(), queries.clone())
            .churn_at(schedule)
            .spawn(ReplaySource::new(events[..cut].to_vec()), VecSink::new())
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while !(handle.metrics().source_done && handle.metrics().queued() == 0) {
            assert!(Instant::now() < deadline, "prefix never drained");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(handle.metrics().epoch, 1);
        let frozen = handle.checkpoint();
        for blob in &frozen.checkpoint.engines {
            assert_eq!(
                checkpoint_epoch(blob).unwrap(),
                1,
                "epoch stamped per shard"
            );
        }

        let mut final_queries = queries.clone();
        final_queries.push(third_query(&reg));
        let resumed = Pipeline::builder(reg.clone(), final_queries)
            .resume(
                &frozen.checkpoint,
                ReplaySource::new(events[cut..].to_vec()),
                frozen.sink,
            )
            .unwrap();
        assert_eq!(resumed.metrics().epoch, 1, "resume adopts the blob epoch");
        let report = resumed.drain();
        assert_eq!(report.sink.results, expected, "churned resume diverged");

        // The pre-churn workload no longer matches the checkpoint.
        let err = Pipeline::builder(reg, queries)
            .resume(&frozen.checkpoint, ReplaySource::new(vec![]), NullSink)
            .err();
        assert!(
            matches!(
                err,
                Some(ResumeError::Checkpoint(CheckpointError::WorkloadMismatch(
                    _
                )))
            ),
            "{err:?}"
        );
    }
}
