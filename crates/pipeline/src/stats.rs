//! Live pipeline observability: lock-light shared counters and the
//! [`MetricsSnapshot`] a [`PipelineHandle`](crate::PipelineHandle) serves
//! at any moment of a run.

use hamlet_core::{GroupMetrics, LatencyHistogram, SpanRecorder};
use hamlet_obs::merge_group_metrics;
use hamlet_types::Ts;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Counters all pipeline stages update as they run. Plain atomics +
/// one mutex-guarded histogram: snapshots never stall the hot path for
/// longer than a bucket increment.
pub(crate) struct SharedStats {
    pub(crate) started: Instant,
    /// Run time accumulated by previous incarnations of this pipeline
    /// (restored from a checkpoint), so `elapsed`/`ingest_eps()` report
    /// the whole logical run, not just the post-resume slice.
    pub(crate) accum: Duration,
    /// Stage span recorder shared by all pipeline stages (lane 0 =
    /// ingest, lanes 1.. = workers). Disabled (zero-capacity) unless
    /// tracing was requested at spawn.
    pub(crate) spans: Arc<SpanRecorder>,
    /// Per-worker share-group metrics slots, published periodically by
    /// each worker and merged across shards on snapshot.
    pub(crate) groups: Mutex<Vec<Vec<GroupMetrics>>>,
    /// Events pulled from the source.
    pub(crate) ingested: AtomicU64,
    /// Events dropped as late (behind the watermark at arrival).
    pub(crate) late: AtomicU64,
    /// Events released by the reorder stage into the worker channels.
    pub(crate) released: AtomicU64,
    /// Window results delivered to the sink.
    pub(crate) results: AtomicU64,
    /// Watermark ticks (valid iff `watermark_set`).
    pub(crate) watermark: AtomicU64,
    pub(crate) watermark_set: AtomicBool,
    /// Source exhausted (or drain requested) and the reorder buffer has
    /// been flushed downstream.
    pub(crate) source_done: AtomicBool,
    /// The pipeline is ending at a checkpoint barrier: the ingest stage
    /// must freeze (not release) its reorder buffer.
    pub(crate) checkpoint_mode: AtomicBool,
    /// Events currently held by the reorder stage.
    pub(crate) reorder_depth: AtomicUsize,
    /// Events currently queued to each worker (routed, not yet processed).
    pub(crate) worker_depths: Vec<AtomicUsize>,
    /// Results currently queued to the sink.
    pub(crate) sink_depth: AtomicUsize,
    /// Workload epoch: number of churn ops ever applied to this
    /// workload (continues across checkpoint/resume).
    pub(crate) epoch: AtomicU64,
    /// Scheduled churn ops skipped because a live op invalidated them.
    pub(crate) churns_rejected: AtomicU64,
    /// Coordinated checkpoint cuts completed (cadence plus on-demand).
    pub(crate) checkpoints: AtomicU64,
    /// Total serialized bytes across all completed cuts.
    pub(crate) checkpoint_bytes: AtomicU64,
    /// Cuts that failed (a worker died mid-cut or the store rejected
    /// the append); the pipeline keeps running after a failed cut.
    pub(crate) checkpoint_failures: AtomicU64,
    /// End-to-end (ingest → emit) result latency histogram.
    pub(crate) latency: Mutex<LatencyHistogram>,
}

impl SharedStats {
    pub(crate) fn new(workers: usize, accum: Duration, spans: Arc<SpanRecorder>) -> Self {
        SharedStats {
            started: Instant::now(),
            accum,
            spans,
            groups: Mutex::new(vec![Vec::new(); workers]),
            ingested: AtomicU64::new(0),
            late: AtomicU64::new(0),
            released: AtomicU64::new(0),
            results: AtomicU64::new(0),
            watermark: AtomicU64::new(0),
            watermark_set: AtomicBool::new(false),
            source_done: AtomicBool::new(false),
            checkpoint_mode: AtomicBool::new(false),
            reorder_depth: AtomicUsize::new(0),
            worker_depths: (0..workers).map(|_| AtomicUsize::new(0)).collect(),
            sink_depth: AtomicUsize::new(0),
            epoch: AtomicU64::new(0),
            churns_rejected: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            checkpoint_bytes: AtomicU64::new(0),
            checkpoint_failures: AtomicU64::new(0),
            latency: Mutex::new(LatencyHistogram::new()),
        }
    }

    pub(crate) fn set_watermark(&self, wm: Ts) {
        self.watermark.store(wm.ticks(), Ordering::Relaxed);
        self.watermark_set.store(true, Ordering::Release);
    }

    /// Total wall time for the logical run: what this incarnation has
    /// run plus what earlier incarnations banked before checkpointing.
    pub(crate) fn elapsed(&self) -> Duration {
        self.accum + self.started.elapsed()
    }

    /// Replaces a worker's published share-group metrics slot (blocking
    /// lock — for spawn-time and final publishes, where staleness is not
    /// an option).
    pub(crate) fn publish_groups(&self, worker: usize, groups: Vec<GroupMetrics>) {
        let mut slots = self.groups.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(slot) = slots.get_mut(worker) {
            *slot = groups;
        }
    }

    /// Best-effort periodic publish from the hot path: a contended lock
    /// skips the update (the next publish catches up) rather than stall
    /// the worker behind a snapshot reader.
    pub(crate) fn try_publish_groups(&self, worker: usize, groups: &[GroupMetrics]) {
        if let Ok(mut slots) = self.groups.try_lock() {
            if let Some(slot) = slots.get_mut(worker) {
                slot.clear();
                slot.extend_from_slice(groups);
            }
        }
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        let (latency, latency_buckets) = {
            // hamlet-lint: allow(panic-hygiene) -- a poisoned lock means a recorder panicked; propagate it
            let h = self.latency.lock().expect("latency lock");
            (
                LatencySummary {
                    count: h.count(),
                    avg: h.avg(),
                    p50: h.p50(),
                    p99: h.p99(),
                    max: h.max(),
                },
                h.sparse_buckets(),
            )
        };
        let groups = {
            let slots = self.groups.lock().unwrap_or_else(PoisonError::into_inner);
            merge_group_metrics(slots.iter().cloned())
        };
        MetricsSnapshot {
            elapsed: self.elapsed(),
            ingested: self.ingested.load(Ordering::Relaxed),
            late: self.late.load(Ordering::Relaxed),
            released: self.released.load(Ordering::Relaxed),
            results: self.results.load(Ordering::Relaxed),
            watermark: self
                .watermark_set
                .load(Ordering::Acquire)
                .then(|| Ts(self.watermark.load(Ordering::Relaxed))),
            source_done: self.source_done.load(Ordering::Relaxed),
            reorder_depth: self.reorder_depth.load(Ordering::Relaxed),
            worker_depths: self
                .worker_depths
                .iter()
                .map(|d| d.load(Ordering::Relaxed))
                .collect(),
            sink_depth: self.sink_depth.load(Ordering::Relaxed),
            epoch: self.epoch.load(Ordering::Relaxed),
            churns_rejected: self.churns_rejected.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            checkpoint_bytes: self.checkpoint_bytes.load(Ordering::Relaxed),
            checkpoint_failures: self.checkpoint_failures.load(Ordering::Relaxed),
            latency,
            latency_buckets,
            groups,
            dropped_spans: self.spans.dropped(),
        }
    }
}

/// Tail summary of the end-to-end result latency histogram.
#[derive(Clone, Copy, Debug)]
pub struct LatencySummary {
    /// Latency samples recorded (one per emitted result).
    pub count: u64,
    /// Mean latency.
    pub avg: Duration,
    /// Median latency.
    pub p50: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
    /// Maximum latency.
    pub max: Duration,
}

/// One consistent-enough view of a live pipeline: what came in, what
/// went out, where events are queued, and how the latency tail looks —
/// readable at any time without pausing the run.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Wall time since the pipeline was spawned.
    pub elapsed: Duration,
    /// Events pulled from the source.
    pub ingested: u64,
    /// Late events dropped (behind the watermark at arrival).
    pub late: u64,
    /// Events released downstream by the reorder stage.
    pub released: u64,
    /// Window results delivered to the sink.
    pub results: u64,
    /// Current event-time watermark.
    pub watermark: Option<Ts>,
    /// The source is exhausted (or a drain was requested) and the
    /// reorder buffer has been flushed.
    pub source_done: bool,
    /// Events held by the reorder stage.
    pub reorder_depth: usize,
    /// Per-worker queued events (routed, not yet processed).
    pub worker_depths: Vec<usize>,
    /// Results queued to the sink.
    pub sink_depth: usize,
    /// Workload epoch: churn ops applied so far (0 until the first
    /// add/remove; continues across checkpoint/resume).
    pub epoch: u64,
    /// Scheduled churn ops skipped because a live op invalidated them
    /// (e.g. the id they named was already removed).
    pub churns_rejected: u64,
    /// Coordinated checkpoint cuts completed so far (cadence cuts from
    /// [`PipelineBuilder::checkpoint_every`](crate::PipelineBuilder::checkpoint_every)
    /// plus on-demand [`Snapshot::cut`](hamlet_core::Snapshot::cut)s).
    pub checkpoints: u64,
    /// Total serialized checkpoint bytes across all completed cuts.
    pub checkpoint_bytes: u64,
    /// Cuts that failed (a worker died mid-cut or the configured store
    /// rejected the append). The pipeline keeps running.
    pub checkpoint_failures: u64,
    /// End-to-end (ingest → emit) result latency.
    pub latency: LatencySummary,
    /// Sparse latency histogram: `(bucket low edge in ns, samples)`
    /// pairs, ascending — the full distribution behind [`Self::latency`].
    pub latency_buckets: Vec<(u64, u64)>,
    /// Per-share-group metrics (Def. 12 benefit, events routed, runs,
    /// bursts, snapshots, results), merged across shard workers. Empty
    /// when the engines run with observability disabled.
    pub groups: Vec<GroupMetrics>,
    /// Stage spans discarded because a ring was full or contended.
    pub dropped_spans: u64,
}

impl MetricsSnapshot {
    /// Renders the snapshot in the Prometheus text exposition format —
    /// run totals, queue depths, the latency summary plus full sparse
    /// histogram, and one labeled sample set per share group (keyed by
    /// the group's query signature, e.g. `1+2L`). Output for a fixed
    /// snapshot is byte-stable.
    pub fn to_prometheus(&self) -> String {
        use hamlet_obs::export::PromText;
        let mut p = PromText::new();
        p.header("hamlet_uptime_seconds", "Run wall time.", "gauge");
        p.sample_f64("hamlet_uptime_seconds", &[], self.elapsed.as_secs_f64());
        p.header(
            "hamlet_ingested_total",
            "Events pulled from the source.",
            "counter",
        );
        p.sample_u64("hamlet_ingested_total", &[], self.ingested);
        p.header("hamlet_late_total", "Late events dropped.", "counter");
        p.sample_u64("hamlet_late_total", &[], self.late);
        p.header(
            "hamlet_released_total",
            "Events released to workers.",
            "counter",
        );
        p.sample_u64("hamlet_released_total", &[], self.released);
        p.header(
            "hamlet_results_total",
            "Window results delivered to the sink.",
            "counter",
        );
        p.sample_u64("hamlet_results_total", &[], self.results);
        if let Some(wm) = self.watermark {
            p.header(
                "hamlet_watermark",
                "Current event-time watermark (ticks).",
                "gauge",
            );
            p.sample_u64("hamlet_watermark", &[], wm.ticks());
        }
        p.header(
            "hamlet_queue_depth",
            "Events or results queued per pipeline stage.",
            "gauge",
        );
        p.sample_u64(
            "hamlet_queue_depth",
            &[("stage", "reorder")],
            self.reorder_depth as u64,
        );
        for (i, d) in self.worker_depths.iter().enumerate() {
            let worker = i.to_string();
            p.sample_u64(
                "hamlet_queue_depth",
                &[("stage", "worker"), ("worker", &worker)],
                *d as u64,
            );
        }
        p.sample_u64(
            "hamlet_queue_depth",
            &[("stage", "sink")],
            self.sink_depth as u64,
        );
        p.header(
            "hamlet_epoch",
            "Workload epoch (churn ops applied).",
            "gauge",
        );
        p.sample_u64("hamlet_epoch", &[], self.epoch);
        p.header(
            "hamlet_churns_rejected_total",
            "Scheduled churn ops skipped as invalidated.",
            "counter",
        );
        p.sample_u64("hamlet_churns_rejected_total", &[], self.churns_rejected);
        p.header(
            "hamlet_checkpoints_total",
            "Coordinated checkpoint cuts completed.",
            "counter",
        );
        p.sample_u64("hamlet_checkpoints_total", &[], self.checkpoints);
        p.header(
            "hamlet_checkpoint_bytes_total",
            "Serialized bytes across all completed cuts.",
            "counter",
        );
        p.sample_u64("hamlet_checkpoint_bytes_total", &[], self.checkpoint_bytes);
        p.header(
            "hamlet_checkpoint_failures_total",
            "Checkpoint cuts that failed.",
            "counter",
        );
        p.sample_u64(
            "hamlet_checkpoint_failures_total",
            &[],
            self.checkpoint_failures,
        );
        p.header(
            "hamlet_latency_seconds",
            "End-to-end (ingest to emit) result latency.",
            "summary",
        );
        p.sample_f64(
            "hamlet_latency_seconds",
            &[("quantile", "0.5")],
            self.latency.p50.as_secs_f64(),
        );
        p.sample_f64(
            "hamlet_latency_seconds",
            &[("quantile", "0.99")],
            self.latency.p99.as_secs_f64(),
        );
        p.sample_f64(
            "hamlet_latency_seconds_sum",
            &[],
            self.latency.avg.as_secs_f64() * self.latency.count as f64,
        );
        p.sample_u64("hamlet_latency_seconds_count", &[], self.latency.count);
        p.header(
            "hamlet_latency_bucket_total",
            "Latency histogram: samples per bucket (label = bucket low edge, ns).",
            "counter",
        );
        for &(ns, n) in &self.latency_buckets {
            let edge = ns.to_string();
            p.sample_u64("hamlet_latency_bucket_total", &[("le_ns", &edge)], n);
        }
        p.header(
            "hamlet_dropped_spans_total",
            "Stage spans shed by full or contended trace rings.",
            "counter",
        );
        p.sample_u64("hamlet_dropped_spans_total", &[], self.dropped_spans);
        if !self.groups.is_empty() {
            p.header(
                "hamlet_group_shared",
                "1 if the optimizer placed the group shared, else 0.",
                "gauge",
            );
            p.header(
                "hamlet_group_benefit",
                "Def. 12 sharing benefit priced at placement.",
                "gauge",
            );
            for g in &self.groups {
                let sig = g.sig_label();
                p.sample_u64(
                    "hamlet_group_shared",
                    &[("group", &sig)],
                    u64::from(g.shared),
                );
                p.sample_f64("hamlet_group_benefit", &[("group", &sig)], g.benefit);
            }
            type Get = fn(&GroupMetrics) -> u64;
            let counters: [(&str, &str, Get); 8] = [
                (
                    "hamlet_group_events_routed_total",
                    "Events routed into the group.",
                    |g| g.events_routed,
                ),
                (
                    "hamlet_group_runs_created_total",
                    "Per-key window runs created.",
                    |g| g.runs_created,
                ),
                (
                    "hamlet_group_runs_expired_total",
                    "Runs finalized by watermark expiry.",
                    |g| g.runs_expired,
                ),
                (
                    "hamlet_group_shared_bursts_total",
                    "Bursts processed shared.",
                    |g| g.shared_bursts,
                ),
                (
                    "hamlet_group_solo_bursts_total",
                    "Bursts processed per-query.",
                    |g| g.solo_bursts,
                ),
                (
                    "hamlet_group_graphlet_snapshots_total",
                    "Graphlet-level snapshots taken.",
                    |g| g.graphlet_snapshots,
                ),
                (
                    "hamlet_group_event_snapshots_total",
                    "Event-level snapshots taken.",
                    |g| g.event_snapshots,
                ),
                (
                    "hamlet_group_results_total",
                    "Window results emitted by the group.",
                    |g| g.results_emitted,
                ),
            ];
            for (name, help, get) in counters {
                p.header(name, help, "counter");
                for g in &self.groups {
                    let sig = g.sig_label();
                    p.sample_u64(name, &[("group", &sig)], get(g));
                }
            }
        }
        p.finish()
    }

    /// Ingest throughput in events/second over the run so far.
    pub fn ingest_eps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 && secs.is_finite() {
            self.ingested as f64 / secs
        } else {
            0.0
        }
    }

    /// Total events currently queued anywhere in the pipeline.
    pub fn queued(&self) -> usize {
        self.reorder_depth + self.worker_depths.iter().sum::<usize>() + self.sink_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_stats(workers: usize) -> SharedStats {
        SharedStats::new(workers, Duration::ZERO, Arc::new(SpanRecorder::disabled()))
    }

    #[test]
    fn snapshot_reflects_counters() {
        let s = test_stats(3);
        s.ingested.store(100, Ordering::Relaxed);
        s.late.store(2, Ordering::Relaxed);
        s.released.store(98, Ordering::Relaxed);
        s.worker_depths[1].store(7, Ordering::Relaxed);
        s.reorder_depth.store(4, Ordering::Relaxed);
        s.sink_depth.store(1, Ordering::Relaxed);
        s.set_watermark(Ts(55));
        s.latency.lock().unwrap().record(Duration::from_micros(10));
        let snap = s.snapshot();
        assert_eq!(snap.ingested, 100);
        assert_eq!(snap.late, 2);
        assert_eq!(snap.released, 98);
        assert_eq!(snap.watermark, Some(Ts(55)));
        assert_eq!(snap.worker_depths, vec![0, 7, 0]);
        assert_eq!(snap.queued(), 4 + 7 + 1);
        assert_eq!(snap.latency.count, 1);
        assert!(snap.ingest_eps() > 0.0);
        assert!(!snap.source_done);
    }

    #[test]
    fn watermark_none_before_first_event() {
        let s = test_stats(1);
        assert_eq!(s.snapshot().watermark, None);
    }

    #[test]
    fn elapsed_carries_accumulated_time() {
        let spans = Arc::new(SpanRecorder::disabled());
        let s = SharedStats::new(1, Duration::from_secs(10), spans);
        assert!(s.snapshot().elapsed >= Duration::from_secs(10));
    }

    #[test]
    fn snapshot_merges_published_groups() {
        let s = test_stats(2);
        let mut a = GroupMetrics::new(0, vec![(1, 0)]);
        a.events_routed = 3;
        let mut b = GroupMetrics::new(0, vec![(1, 0)]);
        b.events_routed = 4;
        s.publish_groups(0, vec![a]);
        s.publish_groups(1, vec![b]);
        let snap = s.snapshot();
        assert_eq!(snap.groups.len(), 1);
        assert_eq!(snap.groups[0].events_routed, 7);
    }

    #[test]
    fn snapshot_exposes_latency_buckets() {
        let s = test_stats(1);
        s.latency.lock().unwrap().record(Duration::from_micros(10));
        s.latency.lock().unwrap().record(Duration::from_micros(10));
        let snap = s.snapshot();
        assert_eq!(snap.latency_buckets.iter().map(|&(_, n)| n).sum::<u64>(), 2);
    }
}
