//! Live pipeline observability: lock-light shared counters and the
//! [`MetricsSnapshot`] a [`PipelineHandle`](crate::PipelineHandle) serves
//! at any moment of a run.

use hamlet_core::LatencyHistogram;
use hamlet_types::Ts;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Counters all pipeline stages update as they run. Plain atomics +
/// one mutex-guarded histogram: snapshots never stall the hot path for
/// longer than a bucket increment.
pub(crate) struct SharedStats {
    pub(crate) started: Instant,
    /// Events pulled from the source.
    pub(crate) ingested: AtomicU64,
    /// Events dropped as late (behind the watermark at arrival).
    pub(crate) late: AtomicU64,
    /// Events released by the reorder stage into the worker channels.
    pub(crate) released: AtomicU64,
    /// Window results delivered to the sink.
    pub(crate) results: AtomicU64,
    /// Watermark ticks (valid iff `watermark_set`).
    pub(crate) watermark: AtomicU64,
    pub(crate) watermark_set: AtomicBool,
    /// Source exhausted (or drain requested) and the reorder buffer has
    /// been flushed downstream.
    pub(crate) source_done: AtomicBool,
    /// The pipeline is ending at a checkpoint barrier: the ingest stage
    /// must freeze (not release) its reorder buffer.
    pub(crate) checkpoint_mode: AtomicBool,
    /// Events currently held by the reorder stage.
    pub(crate) reorder_depth: AtomicUsize,
    /// Events currently queued to each worker (routed, not yet processed).
    pub(crate) worker_depths: Vec<AtomicUsize>,
    /// Results currently queued to the sink.
    pub(crate) sink_depth: AtomicUsize,
    /// Workload epoch: number of churn ops ever applied to this
    /// workload (continues across checkpoint/resume).
    pub(crate) epoch: AtomicU64,
    /// Scheduled churn ops skipped because a live op invalidated them.
    pub(crate) churns_rejected: AtomicU64,
    /// End-to-end (ingest → emit) result latency histogram.
    pub(crate) latency: Mutex<LatencyHistogram>,
}

impl SharedStats {
    pub(crate) fn new(workers: usize) -> Self {
        SharedStats {
            started: Instant::now(),
            ingested: AtomicU64::new(0),
            late: AtomicU64::new(0),
            released: AtomicU64::new(0),
            results: AtomicU64::new(0),
            watermark: AtomicU64::new(0),
            watermark_set: AtomicBool::new(false),
            source_done: AtomicBool::new(false),
            checkpoint_mode: AtomicBool::new(false),
            reorder_depth: AtomicUsize::new(0),
            worker_depths: (0..workers).map(|_| AtomicUsize::new(0)).collect(),
            sink_depth: AtomicUsize::new(0),
            epoch: AtomicU64::new(0),
            churns_rejected: AtomicU64::new(0),
            latency: Mutex::new(LatencyHistogram::new()),
        }
    }

    pub(crate) fn set_watermark(&self, wm: Ts) {
        self.watermark.store(wm.ticks(), Ordering::Relaxed);
        self.watermark_set.store(true, Ordering::Release);
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        let latency = {
            // hamlet-lint: allow(panic-hygiene) -- a poisoned lock means a recorder panicked; propagate it
            let h = self.latency.lock().expect("latency lock");
            LatencySummary {
                count: h.count(),
                avg: h.avg(),
                p50: h.p50(),
                p99: h.p99(),
                max: h.max(),
            }
        };
        MetricsSnapshot {
            elapsed: self.started.elapsed(),
            ingested: self.ingested.load(Ordering::Relaxed),
            late: self.late.load(Ordering::Relaxed),
            released: self.released.load(Ordering::Relaxed),
            results: self.results.load(Ordering::Relaxed),
            watermark: self
                .watermark_set
                .load(Ordering::Acquire)
                .then(|| Ts(self.watermark.load(Ordering::Relaxed))),
            source_done: self.source_done.load(Ordering::Relaxed),
            reorder_depth: self.reorder_depth.load(Ordering::Relaxed),
            worker_depths: self
                .worker_depths
                .iter()
                .map(|d| d.load(Ordering::Relaxed))
                .collect(),
            sink_depth: self.sink_depth.load(Ordering::Relaxed),
            epoch: self.epoch.load(Ordering::Relaxed),
            churns_rejected: self.churns_rejected.load(Ordering::Relaxed),
            latency,
        }
    }
}

/// Tail summary of the end-to-end result latency histogram.
#[derive(Clone, Copy, Debug)]
pub struct LatencySummary {
    /// Latency samples recorded (one per emitted result).
    pub count: u64,
    /// Mean latency.
    pub avg: Duration,
    /// Median latency.
    pub p50: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
    /// Maximum latency.
    pub max: Duration,
}

/// One consistent-enough view of a live pipeline: what came in, what
/// went out, where events are queued, and how the latency tail looks —
/// readable at any time without pausing the run.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Wall time since the pipeline was spawned.
    pub elapsed: Duration,
    /// Events pulled from the source.
    pub ingested: u64,
    /// Late events dropped (behind the watermark at arrival).
    pub late: u64,
    /// Events released downstream by the reorder stage.
    pub released: u64,
    /// Window results delivered to the sink.
    pub results: u64,
    /// Current event-time watermark.
    pub watermark: Option<Ts>,
    /// The source is exhausted (or a drain was requested) and the
    /// reorder buffer has been flushed.
    pub source_done: bool,
    /// Events held by the reorder stage.
    pub reorder_depth: usize,
    /// Per-worker queued events (routed, not yet processed).
    pub worker_depths: Vec<usize>,
    /// Results queued to the sink.
    pub sink_depth: usize,
    /// Workload epoch: churn ops applied so far (0 until the first
    /// add/remove; continues across checkpoint/resume).
    pub epoch: u64,
    /// Scheduled churn ops skipped because a live op invalidated them
    /// (e.g. the id they named was already removed).
    pub churns_rejected: u64,
    /// End-to-end (ingest → emit) result latency.
    pub latency: LatencySummary,
}

impl MetricsSnapshot {
    /// Ingest throughput in events/second over the run so far.
    pub fn ingest_eps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 && secs.is_finite() {
            self.ingested as f64 / secs
        } else {
            0.0
        }
    }

    /// Total events currently queued anywhere in the pipeline.
    pub fn queued(&self) -> usize {
        self.reorder_depth + self.worker_depths.iter().sum::<usize>() + self.sink_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let s = SharedStats::new(3);
        s.ingested.store(100, Ordering::Relaxed);
        s.late.store(2, Ordering::Relaxed);
        s.released.store(98, Ordering::Relaxed);
        s.worker_depths[1].store(7, Ordering::Relaxed);
        s.reorder_depth.store(4, Ordering::Relaxed);
        s.sink_depth.store(1, Ordering::Relaxed);
        s.set_watermark(Ts(55));
        s.latency.lock().unwrap().record(Duration::from_micros(10));
        let snap = s.snapshot();
        assert_eq!(snap.ingested, 100);
        assert_eq!(snap.late, 2);
        assert_eq!(snap.released, 98);
        assert_eq!(snap.watermark, Some(Ts(55)));
        assert_eq!(snap.worker_depths, vec![0, 7, 0]);
        assert_eq!(snap.queued(), 4 + 7 + 1);
        assert_eq!(snap.latency.count, 1);
        assert!(snap.ingest_eps() > 0.0);
        assert!(!snap.source_done);
    }

    #[test]
    fn watermark_none_before_first_event() {
        let s = SharedStats::new(1);
        assert_eq!(s.snapshot().watermark, None);
    }
}
